"""``python -m repro`` - a quick tour of the reproduction.

Runs a small memcached comparison and points at the heavier entry
points (examples, experiments, benches).
"""

from __future__ import annotations

import argparse

from . import SimrSystem, __version__, speedup_summary
from .workloads import SERVICE_NAMES


def main(argv=None) -> int:
    """Parse arguments, run the demo comparison, print next steps."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SIMR (MICRO 2022) reproduction - quick demo",
    )
    parser.add_argument("--service", default="memcached",
                        choices=SERVICE_NAMES)
    parser.add_argument("--requests", type=int, default=128)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the design comparison")
    args = parser.parse_args(argv)

    print(f"SIMR reproduction v{__version__}")
    print(f"services: {', '.join(SERVICE_NAMES)}\n")

    system = SimrSystem(args.service)
    reports = system.compare(system.sample_requests(args.requests),
                             jobs=args.jobs)
    print(f"{args.service}: {args.requests} requests, "
          f"SIMT efficiency {reports['rpu'].simt_efficiency:.2f}\n")
    for name, ratios in speedup_summary(reports).items():
        print(f"  {name:10s} {ratios['requests_per_joule']:5.2f}x req/J  "
              f"{ratios['latency']:5.2f}x latency  "
              f"{ratios['throughput']:5.2f}x throughput")

    print("\nnext steps:")
    print("  python -m repro.experiments.run_all      # every figure/table")
    print("  python examples/quickstart.py            # the API tour")
    print("  pytest benchmarks/ --benchmark-only      # bench harness")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
