"""Plain-text reporting helpers: ASCII bar charts and series plots.

The experiment CLIs render their figures with these so a terminal run
of ``python -m repro.experiments.run_all`` shows the *shape* of each
reproduced figure, not just a table of numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

BAR = "#"


def stats_line(title: str, stats: Dict[str, object]) -> str:
    """One ``[title k=v k=v ...]`` diagnostics line (cache hit rates,
    worker counts, ...) - grep-friendly for the CI smoke jobs."""
    body = " ".join(f"{k}={v}" for k, v in stats.items())
    return f"[{title}: {body}]" if body else f"[{title}]"


_SI_STEPS = ((1e9, "G"), (1e6, "M"), (1e3, "k"))


def fmt_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Engineering-notation scalar (``3.52kW``, ``120kQPS``) for cells
    where fixed-point columns would drown the table in zeros."""
    for thresh, suffix in _SI_STEPS:
        if abs(value) >= thresh:
            return f"{value / thresh:.{digits}g}{suffix}{unit}"
    return f"{value:.{digits}g}{unit}"


def bar_chart(items: Sequence[Tuple[str, float]], width: int = 48,
              title: str = "", fmt: str = "{:.2f}",
              reference: Optional[float] = None) -> str:
    """Horizontal ASCII bar chart.

    ``reference`` draws a ``|`` marker at that value (e.g. the paper's
    number) on every row.
    """
    if not items:
        return title
    label_w = max(len(label) for label, _v in items)
    peak = max(max(v for _l, v in items),
               reference if reference is not None else 0.0)
    if peak <= 0:
        peak = 1.0
    lines = [title] if title else []
    for label, value in items:
        n = int(round(width * value / peak))
        bar = BAR * n
        if reference is not None:
            ref_pos = int(round(width * reference / peak))
            bar = bar.ljust(max(n, ref_pos + 1))
            if 0 <= ref_pos < len(bar):
                bar = bar[:ref_pos] + "|" + bar[ref_pos + 1:]
        lines.append(
            f"{label:>{label_w}s} {bar.rstrip():{width}s} "
            + fmt.format(value)
        )
    if reference is not None:
        lines.append(f"{'':{label_w}s} ('|' marks {fmt.format(reference)})")
    return "\n".join(lines)


def grouped_bar_chart(rows: Sequence[Tuple[str, Dict[str, float]]],
                      series: Sequence[str], width: int = 40,
                      title: str = "") -> str:
    """One bar per (row, series) pair, grouped by row."""
    lines = [title] if title else []
    peak = max((v for _l, values in rows for v in values.values()),
               default=1.0) or 1.0
    label_w = max((len(f"{label}/{s}") for label, _v in rows
                   for s in series), default=8)
    for label, values in rows:
        for s in series:
            v = values.get(s)
            if v is None:
                continue
            n = int(round(width * v / peak))
            lines.append(f"{label + '/' + s:>{label_w}s} "
                         f"{BAR * n:{width}s} {v:.2f}")
        lines.append("")
    return "\n".join(lines).rstrip()


def grid_table(row_labels: Sequence[str], col_labels: Sequence[str],
               cells: Dict[Tuple[str, str], str], title: str = "",
               cell_width: int = 0) -> str:
    """Rows x columns grid of preformatted cell strings.

    Renders two-factor sweeps (e.g. resilience policy x fault rate)
    where each cell packs several metrics, which ``format_rows``'s
    single-float columns cannot express.  Missing cells render as '-'.
    """
    w = max([cell_width, 3] + [len(v) for v in cells.values()]
            + [len(c) for c in col_labels])
    label_w = max((len(r) for r in row_labels), default=4)
    lines = [title] if title else []
    lines.append(f"{'':{label_w}s}  "
                 + "  ".join(f"{c:>{w}s}" for c in col_labels))
    for r in row_labels:
        row = "  ".join(f"{cells.get((r, c), '-'):>{w}s}"
                        for c in col_labels)
        lines.append(f"{r:{label_w}s}  {row}")
    return "\n".join(lines)


def series_plot(points: Sequence[Tuple[float, Dict[str, float]]],
                series: Sequence[str], height: int = 12,
                width: int = 60, title: str = "",
                logy: bool = False) -> str:
    """Scatter multiple y-series against a shared x axis (for Fig. 22).

    Each series gets a distinct marker; y may be log-scaled for
    latency curves that span orders of magnitude.
    """
    import math

    markers = "ox+*@%"
    xs = [x for x, _v in points]
    ys = [v for _x, values in points for v in values.values()
          if v is not None and v > 0]
    if not xs or not ys:
        return title

    def ty(v: float) -> float:
        return math.log10(v) if logy else v

    ymin, ymax = min(ty(v) for v in ys), max(ty(v) for v in ys)
    if ymax == ymin:
        ymax = ymin + 1.0
    xmin, xmax = min(xs), max(xs)
    if xmax == xmin:
        xmax = xmin + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, values in points:
        col = int((x - xmin) / (xmax - xmin) * (width - 1))
        for si, s in enumerate(series):
            v = values.get(s)
            if v is None or v <= 0:
                continue
            row = int((ty(v) - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = markers[si % len(markers)]

    lines = [title] if title else []
    scale = "log10(y)" if logy else "y"
    lines.append(f"{scale} in [{ymin:.2f}, {ymax:.2f}] over "
                 f"x in [{xmin:g}, {xmax:g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append("legend: " + ", ".join(
        f"{markers[i % len(markers)]}={s}" for i, s in enumerate(series)))
    return "\n".join(lines)
