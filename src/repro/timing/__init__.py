"""Approximate cycle-level timing models (Accel-Sim role in the paper)."""

from .bpred import (
    BpredStats,
    GsharePredictor,
    MajorityVotePredictor,
    PerThreadVotePredictor,
)
from .chip import ChipResult, run_chip
from .config import (
    CPU_CONFIG,
    CPU_SIMD_CONFIG,
    GPU_CONFIG,
    RPU_CONFIG,
    SMT8_CONFIG,
    CoreConfig,
    rpu_with_batches,
    rpu_with_lanes,
    rpu_without,
)
from .core import CoreModel, CoreRunResult, StreamResult
from .memhier import Counters, MemoryHierarchy
from .streams import ListSink, batch_trace, solo_traces

__all__ = [
    "BpredStats",
    "CPU_CONFIG",
    "CPU_SIMD_CONFIG",
    "ChipResult",
    "CoreConfig",
    "CoreModel",
    "CoreRunResult",
    "Counters",
    "GPU_CONFIG",
    "GsharePredictor",
    "ListSink",
    "MajorityVotePredictor",
    "MemoryHierarchy",
    "PerThreadVotePredictor",
    "RPU_CONFIG",
    "SMT8_CONFIG",
    "StreamResult",
    "batch_trace",
    "rpu_with_batches",
    "rpu_with_lanes",
    "rpu_without",
    "run_chip",
    "solo_traces",
]
