"""Approximate OoO/in-order scoreboard core model.

One :class:`CoreModel` simulates one core processing one or more
*streams* of trace events (a stream = one hardware context: a CPU
thread, one SMT thread, one RPU batch, or one GPU warp).  The model is
an interval-style approximation of Accel-Sim's extended pipeline:

* the frontend issues ``issue_width`` micro-ops per cycle, shared by
  all contexts (SMT partitioning falls out of round-robin fetch);
* out-of-order contexts start an op when its operands are ready,
  bounded by a per-context ROB window; in-order contexts additionally
  respect program order (GPU);
* a batch op with ``a`` active lanes on ``m`` SIMT lanes occupies
  ``ceil(a/m)`` issue slots (sub-batch interleaving, Fig. 8a);
* branch mispredictions bubble that context's fetch; syscalls
  serialize it; loads go through the full memory hierarchy model.

Two entry points share one event-processing engine:

* :meth:`CoreModel.run` consumes fully materialized event streams
  round-robin (tests, differential checks);
* :meth:`CoreModel.begin` returns a :class:`CoreRun` that accepts
  events *incrementally* (``feed``/``close``/``finish``), which is how
  ``run_chip`` streams executor events straight into the timing model
  without materializing them first.  Single-context runs process each
  fed event immediately; multi-context runs buffer per context and
  drain in strict round-robin sweep order, so the issue interleaving -
  and therefore every cycle and counter - is identical to
  materialize-then-``run`` by construction.

Hot-loop counter discipline: integer counters (instruction/slot/RF
event counts) are accumulated in plain Python ints and flushed to
:class:`Counters` once per run; float counters (cycle-stack
attributions) are still added per event, because reassociating float
sums would break bit-identity with the pre-optimization model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.instructions import NUM_REGS, Instruction, OpClass
from .bpred import (
    GsharePredictor,
    MajorityVotePredictor,
    PerThreadVotePredictor,
)
from .config import CoreConfig
from .memhier import Counters, MemoryHierarchy

#: trace event: (pc, inst, active, addrs, outcomes)
Event = Tuple[int, Instruction, int, Sequence, Optional[Sequence]]

#: per-class scalar-instruction counter keys, precomputed so the hot
#: loop never builds an f-string per event
_SCALAR_KEY = {cls: f"scalar_{cls.value}" for cls in OpClass}


@dataclass
class StreamResult:
    start: float
    finish: float
    events: int

    @property
    def cycles(self) -> float:
        return self.finish - self.start


@dataclass
class CoreRunResult:
    start: float
    finish: float
    streams: List[StreamResult]

    @property
    def cycles(self) -> float:
        return self.finish - self.start


class _Context:
    __slots__ = ("reg_ready", "fetch_time", "last_start", "rob",
                 "finish", "start", "events", "icache_credit")

    def __init__(self, now: float):
        self.reg_ready = [now] * NUM_REGS
        self.fetch_time = now
        self.last_start = now
        self.rob: deque = deque()
        self.finish = now
        self.start = now
        self.events = 0
        self.icache_credit = 0.0


class CoreRun:
    """One in-progress core run fed events incrementally.

    Produced by :meth:`CoreModel.begin`.  ``feed(ctx, ...)`` submits one
    event for hardware context ``ctx``; ``close(ctx)`` marks that
    context's stream exhausted; ``finish()`` drains everything, updates
    the core clock and counters and returns the :class:`CoreRunResult`.

    ``addrs``/``outcomes`` passed to :meth:`feed` are only borrowed for
    the duration of the call on the single-context fast path; on the
    multi-context path they are copied into the per-context buffer.
    """

    __slots__ = (
        "core", "cfg", "mem", "batched", "start",
        "contexts", "preds", "_inc", "_process", "_snapshot",
        "_single", "_bufs", "_closed", "_dead", "_alive", "_rr",
        "_finished",
    )

    def __init__(self, core: "CoreModel", n_contexts: int, batched: bool):
        cfg = core.cfg
        self.core = core
        self.cfg = cfg
        self.mem = core.mem
        self.batched = batched
        start = core.now
        self.start = start
        self.contexts = [_Context(start) for _ in range(n_contexts)]
        self.preds = [core._predictor(i) for i in range(n_contexts)]
        # bound once: core.counters is stable for the whole run (resets
        # only ever happen between runs), and float counters must land
        # in the same object the integer flush targets
        self._inc = core.counters.inc
        self._single = n_contexts == 1
        self._bufs = (None if self._single
                      else [deque() for _ in range(n_contexts)])
        self._closed = [False] * n_contexts
        self._dead = [False] * n_contexts
        self._alive = n_contexts
        self._rr = 0
        self._finished = False
        self._process, self._snapshot = self._build_engine()

    # ------------------------------------------------------------------
    def feed(self, ctx: int, pc, inst, active, addrs, outcomes) -> None:
        """Submit one event for context ``ctx`` (in stream order)."""
        if self._single:
            self._process(0, pc, inst, active, addrs, outcomes)
            return
        self._bufs[ctx].append(
            (pc, inst, active, tuple(addrs),
             tuple(outcomes) if outcomes else None))
        if ctx == self._rr:
            self._pump()

    def close(self, ctx: int) -> None:
        """Mark context ``ctx``'s stream exhausted."""
        self._closed[ctx] = True
        if not self._single:
            self._pump()

    def _pump(self) -> None:
        """Drain buffered events in round-robin sweep order.

        Processes one event per live context per sweep (exactly the
        consumption order of :meth:`CoreModel.run` over materialized
        streams), suspending when the next context in the sweep has no
        buffered event and is not yet closed.
        """
        bufs = self._bufs
        closed = self._closed
        dead = self._dead
        alive = self._alive
        i = self._rr
        n = len(bufs)
        while alive:
            if dead[i]:
                i += 1
                if i == n:
                    i = 0
                continue
            buf = bufs[i]
            if buf:
                ev = buf.popleft()
                self._process(i, ev[0], ev[1], ev[2], ev[3], ev[4])
                i += 1
                if i == n:
                    i = 0
            elif closed[i]:
                dead[i] = True
                alive -= 1
                i += 1
                if i == n:
                    i = 0
            else:
                break
        self._alive = alive
        self._rr = i

    def finish(self) -> CoreRunResult:
        """Drain remaining events, flush counters, advance the clock."""
        if self._finished:
            raise RuntimeError("CoreRun.finish() called twice")
        self._finished = True
        if not self._single:
            for c in range(len(self._closed)):
                self._closed[c] = True
            self._pump()
        (issue_time, n_events, n_scalar, n_slots, n_rf_reads, n_rf_writes,
         n_icache_stalls, n_syscalls, scalar_by_cls) = self._snapshot()
        start = self.start
        contexts = self.contexts
        finish_all = max((c.finish for c in contexts), default=start)
        if issue_time > finish_all:
            finish_all = issue_time
        self.core.now = finish_all

        inc = self._inc
        if n_icache_stalls:
            inc("icache_stalls", n_icache_stalls)
        if n_syscalls:
            inc("syscalls", n_syscalls)
        if n_events:
            inc("batch_instructions", n_events)
            inc("scalar_instructions", n_scalar)
            inc("issue_slots", n_slots)
        for cls, v in scalar_by_cls.items():
            inc(_SCALAR_KEY[cls], v)
        if n_rf_reads:
            inc("rf_reads", n_rf_reads)
        if n_rf_writes:
            inc("rf_writes", n_rf_writes)

        return CoreRunResult(
            start=start,
            finish=finish_all,
            streams=[
                StreamResult(start=start, finish=c.finish, events=c.events)
                for c in contexts
            ],
        )

    # ------------------------------------------------------------------
    def _build_engine(self):
        """Build the per-event processing closure (the hot loop).

        Every piece of per-event state lives in cell variables, so one
        event costs zero ``self`` attribute loads; :meth:`finish` reads
        the accumulators back through the ``snapshot`` closure.  The
        event math is an exact port of the original ``CoreModel.run``
        loop - float operation order is preserved for bit-identity.
        """
        cfg = self.cfg
        contexts = self.contexts
        preds = self.preds
        mem_access = self.mem.access
        cnt = self.core.counters
        batched = self.batched
        lanes = cfg.lanes
        issue_step = 1.0 / cfg.issue_width
        icache_rate = cfg.icache_mpki / 1000.0
        icache_penalty = float(cfg.icache_penalty)
        in_order = cfg.in_order
        rob_limit = cfg.rob_entries
        alu_latency = cfg.alu_latency
        mul_latency = cfg.mul_latency
        simd_latency = cfg.simd_latency
        branch_penalty = cfg.branch_penalty
        syscall_overhead = cfg.syscall_overhead
        ALU = OpClass.ALU
        LOAD = OpClass.LOAD
        STORE = OpClass.STORE
        BRANCH = OpClass.BRANCH
        MUL = OpClass.MUL
        SIMD = OpClass.SIMD
        ATOMIC = OpClass.ATOMIC
        SYSCALL = OpClass.SYSCALL
        FENCE = OpClass.FENCE
        CALL = OpClass.CALL
        RET = OpClass.RET

        issue_time = self.start
        n_events = n_scalar = n_slots = 0
        n_rf_reads = n_rf_writes = 0
        n_icache_stalls = n_syscalls = 0
        scalar_by_cls: Dict[OpClass, int] = {}

        def process(i, pc, inst, active, addrs, outcomes):
            nonlocal issue_time, n_events, n_scalar, n_slots
            nonlocal n_rf_reads, n_rf_writes, n_icache_stalls, n_syscalls
            ctx = contexts[i]
            cls = inst.cls

            if batched:
                slots = 1 if active <= lanes else -(-active // lanes)
            else:
                slots = 1
            # instruction-supply stalls (amortized over the batch)
            credit = ctx.icache_credit + icache_rate
            if credit >= 1.0:
                ctx.icache_credit = credit - 1.0
                ctx.fetch_time += icache_penalty
                n_icache_stalls += 1
            else:
                ctx.icache_credit = credit
            fetch = issue_time
            if ctx.fetch_time > fetch:
                fetch = ctx.fetch_time
            issue_time = fetch + issue_step * slots

            rob = ctx.rob
            if len(rob) >= rob_limit:
                head = rob.popleft()
                if head > fetch:
                    fetch = head

            srcs = inst.srcs
            dep = ctx.reg_ready
            ready = fetch
            for s in srcs:
                r = dep[s]
                if r > ready:
                    ready = r
            start_t = ready
            if in_order:
                if ctx.last_start > start_t:
                    start_t = ctx.last_start
                ctx.last_start = start_t

            # ---- execute --------------------------------------------
            if cls is ALU:
                finish = start_t + alu_latency + (slots - 1)
            elif cls is LOAD or cls is STORE:
                finish = mem_access(inst, addrs, start_t, batched)
            elif cls is BRANCH:
                finish = start_t + alu_latency + (slots - 1)
                if outcomes:
                    mispredicted = preds[i].observe(pc, outcomes)
                    if in_order:
                        # no speculation: fetch waits for resolution
                        ctx.fetch_time = finish
                    elif mispredicted:
                        bubble = finish + branch_penalty
                        if bubble > ctx.fetch_time:
                            ctx.fetch_time = bubble
            elif cls is MUL:
                finish = start_t + mul_latency + (slots - 1)
            elif cls is SIMD:
                finish = start_t + simd_latency + (slots - 1)
            elif cls is ATOMIC:
                finish = mem_access(inst, addrs, start_t, batched)
            elif cls is SYSCALL:
                finish = start_t + syscall_overhead
                ctx.fetch_time = finish  # serializing transition
                n_syscalls += active
            elif cls is FENCE:
                drain = max(rob) if rob else start_t
                finish = max(start_t, drain)
                ctx.fetch_time = finish
            elif cls is CALL or cls is RET:
                # return-address push/pop is a stack memory access
                if addrs:
                    finish = mem_access(inst, addrs, start_t, batched)
                else:
                    finish = start_t + 1
            else:  # JUMP / NOP / HALT
                finish = start_t + 1

            # cycle-stack attribution (paper: data center CPUs retire
            # only ~20% of cycles; the rest are stalls).  Float counters
            # stay per-event: flushing a locally reassociated sum would
            # not be bit-identical.
            cnt["stack_dep_wait"] += start_t - fetch
            if cls is LOAD or cls is STORE or cls is ATOMIC:
                cnt["stack_mem_service"] += finish - start_t
            else:
                cnt["stack_exec_service"] += finish - start_t

            if inst.dst:
                dep[inst.dst] = finish
                n_rf_writes += active
            rob.append(finish)
            if finish > ctx.finish:
                ctx.finish = finish
            ctx.events += 1

            # ---- energy/bookkeeping counters (flushed in finish()) --
            n_events += 1
            n_scalar += active
            scalar_by_cls[cls] = scalar_by_cls.get(cls, 0) + active
            n_slots += slots
            if srcs:
                n_rf_reads += len(srcs) * active

        def snapshot():
            return (issue_time, n_events, n_scalar, n_slots, n_rf_reads,
                    n_rf_writes, n_icache_stalls, n_syscalls,
                    scalar_by_cls)

        return process, snapshot


class CoreModel:
    """A reusable core: caches and predictors persist across runs."""

    def __init__(self, config: CoreConfig,
                 mem: Optional[MemoryHierarchy] = None):
        self.cfg = config
        self.mem = mem if mem is not None else MemoryHierarchy(config)
        self.counters = Counters()
        self.now = 0.0
        self._preds: Dict[int, GsharePredictor] = {}

    def _predictor(self, ctx_id: int) -> GsharePredictor:
        if ctx_id not in self._preds:
            if self.cfg.majority_vote_bp:
                self._preds[ctx_id] = MajorityVotePredictor()
            elif self.cfg.batch_size > 1:
                self._preds[ctx_id] = PerThreadVotePredictor()
            else:
                self._preds[ctx_id] = GsharePredictor()
        return self._preds[ctx_id]

    # ------------------------------------------------------------------
    def begin(self, n_contexts: int, batched: bool = False) -> CoreRun:
        """Start an incremental run over ``n_contexts`` event streams."""
        return CoreRun(self, n_contexts, batched)

    def run(self, streams: Sequence[Sequence[Event]],
            batched: bool = False) -> CoreRunResult:
        """Process materialized event streams round-robin.

        ``batched`` marks RPU/GPU-style streams whose events carry a
        whole batch per step (enables the MCU and lane accounting).
        Implemented on the same engine as :meth:`begin`, feeding events
        directly in sweep order, so both paths are identical by
        construction.
        """
        run = CoreRun(self, len(streams), batched)
        process = run._process
        cursors = [iter(s) for s in streams]
        pending: List[Optional[Event]] = [next(c, None) for c in cursors]
        alive = sum(1 for p in pending if p is not None)
        while alive:
            for i, ev in enumerate(pending):
                if ev is None:
                    continue
                process(i, ev[0], ev[1], ev[2], ev[3], ev[4])
                nxt = next(cursors[i], None)
                pending[i] = nxt
                if nxt is None:
                    alive -= 1
        return run.finish()

    # ------------------------------------------------------------------
    def reset_measurement(self) -> None:
        """Clear counters/statistics while keeping warm microarchitectural
        state (caches, TLBs, predictor tables, current cycle)."""
        from .bpred import BpredStats

        self.counters = Counters()
        self.mem.reset_counters()
        for p in self._preds.values():
            p.stats = BpredStats()

    def bpred_stats(self):
        lookups = sum(p.stats.lookups for p in self._preds.values())
        mis = sum(p.stats.mispredicts for p in self._preds.values())
        flushes = sum(p.stats.minority_flushes for p in self._preds.values())
        return lookups, mis, flushes

    def all_counters(self) -> Counters:
        total = Counters()
        total.merge(self.counters)
        total.merge(self.mem.counters)
        lookups, mis, flushes = self.bpred_stats()
        total.inc("bp_lookups", lookups)
        total.inc("bp_mispredicts", mis)
        total.inc("bp_minority_flushes", flushes)
        return total
