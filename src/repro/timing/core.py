"""Approximate OoO/in-order scoreboard core model.

One :class:`CoreModel` simulates one core processing one or more
*streams* of trace events (a stream = one hardware context: a CPU
thread, one SMT thread, one RPU batch, or one GPU warp).  The model is
an interval-style approximation of Accel-Sim's extended pipeline:

* the frontend issues ``issue_width`` micro-ops per cycle, shared by
  all contexts (SMT partitioning falls out of round-robin fetch);
* out-of-order contexts start an op when its operands are ready,
  bounded by a per-context ROB window; in-order contexts additionally
  respect program order (GPU);
* a batch op with ``a`` active lanes on ``m`` SIMT lanes occupies
  ``ceil(a/m)`` issue slots (sub-batch interleaving, Fig. 8a);
* branch mispredictions bubble that context's fetch; syscalls
  serialize it; loads go through the full memory hierarchy model.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..isa.instructions import NUM_REGS, Instruction, OpClass
from .bpred import (
    GsharePredictor,
    MajorityVotePredictor,
    PerThreadVotePredictor,
)
from .config import CoreConfig
from .memhier import Counters, MemoryHierarchy

#: trace event: (pc, inst, active, addrs, outcomes)
Event = Tuple[int, Instruction, int, Sequence, Optional[Sequence]]


@dataclass
class StreamResult:
    start: float
    finish: float
    events: int

    @property
    def cycles(self) -> float:
        return self.finish - self.start


@dataclass
class CoreRunResult:
    start: float
    finish: float
    streams: List[StreamResult]

    @property
    def cycles(self) -> float:
        return self.finish - self.start


class _Context:
    __slots__ = ("reg_ready", "fetch_time", "last_start", "rob",
                 "finish", "start", "events", "icache_credit")

    def __init__(self, now: float):
        self.reg_ready = [now] * NUM_REGS
        self.fetch_time = now
        self.last_start = now
        self.rob: deque = deque()
        self.finish = now
        self.start = now
        self.events = 0
        self.icache_credit = 0.0


class CoreModel:
    """A reusable core: caches and predictors persist across runs."""

    def __init__(self, config: CoreConfig,
                 mem: Optional[MemoryHierarchy] = None):
        self.cfg = config
        self.mem = mem if mem is not None else MemoryHierarchy(config)
        self.counters = Counters()
        self.now = 0.0
        self._preds: Dict[int, GsharePredictor] = {}

    def _predictor(self, ctx_id: int) -> GsharePredictor:
        if ctx_id not in self._preds:
            if self.cfg.majority_vote_bp:
                self._preds[ctx_id] = MajorityVotePredictor()
            elif self.cfg.batch_size > 1:
                self._preds[ctx_id] = PerThreadVotePredictor()
            else:
                self._preds[ctx_id] = GsharePredictor()
        return self._preds[ctx_id]

    # ------------------------------------------------------------------
    def run(self, streams: Sequence[Sequence[Event]],
            batched: bool = False) -> CoreRunResult:
        """Process event streams round-robin; returns timing summary.

        ``batched`` marks RPU/GPU-style streams whose events carry a
        whole batch per step (enables the MCU and lane accounting).
        """
        cfg = self.cfg
        cnt = self.counters
        mem = self.mem
        start = self.now
        issue_time = start
        issue_step = 1.0 / cfg.issue_width
        icache_rate = cfg.icache_mpki / 1000.0
        icache_penalty = float(cfg.icache_penalty)
        lanes = cfg.lanes
        in_order = cfg.in_order
        rob_limit = cfg.rob_entries

        contexts = [_Context(start) for _ in streams]
        cursors = [iter(s) for s in streams]
        pending: List[Optional[Event]] = [next(c, None) for c in cursors]
        alive = sum(1 for p in pending if p is not None)
        preds = [self._predictor(i) for i in range(len(streams))]

        while alive:
            for i, ev in enumerate(pending):
                if ev is None:
                    continue
                pc, inst, active, addrs, outcomes = ev
                ctx = contexts[i]
                cls = inst.cls

                slots = max(1, math.ceil(active / lanes)) if batched else 1
                # instruction-supply stalls (amortized over the batch)
                ctx.icache_credit += icache_rate
                if ctx.icache_credit >= 1.0:
                    ctx.icache_credit -= 1.0
                    ctx.fetch_time += icache_penalty
                    cnt.inc("icache_stalls")
                fetch = max(issue_time, ctx.fetch_time)
                issue_time = fetch + issue_step * slots

                if len(ctx.rob) >= rob_limit:
                    head = ctx.rob.popleft()
                    if head > fetch:
                        fetch = head

                srcs = inst.srcs
                dep = ctx.reg_ready
                ready = fetch
                for s in srcs:
                    r = dep[s]
                    if r > ready:
                        ready = r
                start_t = ready
                if in_order:
                    if ctx.last_start > start_t:
                        start_t = ctx.last_start
                    ctx.last_start = start_t

                # ---- execute ------------------------------------------
                if cls is OpClass.ALU:
                    finish = start_t + cfg.alu_latency + (slots - 1)
                elif cls is OpClass.LOAD:
                    finish = mem.access(inst, addrs, start_t, batched)
                elif cls is OpClass.STORE:
                    finish = mem.access(inst, addrs, start_t, batched)
                elif cls is OpClass.BRANCH:
                    finish = start_t + cfg.alu_latency + (slots - 1)
                    if outcomes:
                        mispredicted = preds[i].observe(pc, outcomes)
                        if in_order:
                            # no speculation: fetch waits for resolution
                            ctx.fetch_time = finish
                        elif mispredicted:
                            bubble = finish + cfg.branch_penalty
                            if bubble > ctx.fetch_time:
                                ctx.fetch_time = bubble
                elif cls is OpClass.MUL:
                    finish = start_t + cfg.mul_latency + (slots - 1)
                elif cls is OpClass.SIMD:
                    finish = start_t + cfg.simd_latency + (slots - 1)
                elif cls is OpClass.ATOMIC:
                    finish = mem.access(inst, addrs, start_t, batched)
                elif cls is OpClass.SYSCALL:
                    finish = start_t + cfg.syscall_overhead
                    ctx.fetch_time = finish  # serializing transition
                    cnt.inc("syscalls", active)
                elif cls is OpClass.FENCE:
                    drain = max(ctx.rob) if ctx.rob else start_t
                    finish = max(start_t, drain)
                    ctx.fetch_time = finish
                elif cls is OpClass.CALL or cls is OpClass.RET:
                    # return-address push/pop is a stack memory access
                    if addrs:
                        finish = mem.access(inst, addrs, start_t, batched)
                    else:
                        finish = start_t + 1
                else:  # JUMP / NOP / HALT
                    finish = start_t + 1

                # cycle-stack attribution (paper: data center CPUs
                # retire only ~20% of cycles; the rest are stalls)
                cnt.inc("stack_dep_wait", start_t - fetch)
                if cls in (OpClass.LOAD, OpClass.STORE, OpClass.ATOMIC):
                    cnt.inc("stack_mem_service", finish - start_t)
                else:
                    cnt.inc("stack_exec_service", finish - start_t)

                if inst.dst:
                    dep[inst.dst] = finish
                ctx.rob.append(finish)
                if finish > ctx.finish:
                    ctx.finish = finish
                ctx.events += 1

                # ---- energy/bookkeeping counters ----------------------
                cnt.inc("batch_instructions")
                cnt.inc("scalar_instructions", active)
                cnt.inc(f"scalar_{cls.value}", active)
                cnt.inc("issue_slots", slots)
                if srcs:
                    cnt.inc("rf_reads", len(srcs) * active)
                if inst.dst:
                    cnt.inc("rf_writes", active)

                nxt = next(cursors[i], None)
                pending[i] = nxt
                if nxt is None:
                    alive -= 1

        finish_all = max((c.finish for c in contexts), default=start)
        finish_all = max(finish_all, issue_time)
        self.now = finish_all
        results = [
            StreamResult(start=start, finish=c.finish, events=c.events)
            for c in contexts
        ]
        # fold predictor stats into counters lazily (idempotent totals
        # are recomputed by the caller via bpred_stats())
        return CoreRunResult(start=start, finish=finish_all, streams=results)

    # ------------------------------------------------------------------
    def reset_measurement(self) -> None:
        """Clear counters/statistics while keeping warm microarchitectural
        state (caches, TLBs, predictor tables, current cycle)."""
        from .bpred import BpredStats

        self.counters = Counters()
        self.mem.counters = Counters()
        for p in self._preds.values():
            p.stats = BpredStats()

    def bpred_stats(self):
        lookups = sum(p.stats.lookups for p in self._preds.values())
        mis = sum(p.stats.mispredicts for p in self._preds.values())
        flushes = sum(p.stats.minority_flushes for p in self._preds.values())
        return lookups, mis, flushes

    def all_counters(self) -> Counters:
        total = Counters()
        total.merge(self.counters)
        total.merge(self.mem.counters)
        lookups, mis, flushes = self.bpred_stats()
        total.inc("bp_lookups", lookups)
        total.inc("bp_mispredicts", mis)
        total.inc("bp_minority_flushes", flushes)
        return total
