"""Trace collection: turn executor runs into event streams for timing.

Two consumption styles share the same executors:

* :class:`ListSink` materializes a run's events (tests, fuzzing, the
  trace cache);
* :class:`TimingSink` streams events straight into an in-progress
  :class:`~repro.timing.core.CoreRun`, so ``run_chip`` can time a run
  without ever holding its trace in memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.events import LockstepResult, StepSink
from ..engine.lockstep import (IpdomExecutor, MinSpPcExecutor,
                               PredicatedExecutor, SoloExecutor)
from ..engine.memory import MemoryImage
from ..engine.thread import ThreadState
from ..memsys.alloc import BaseAllocator, SimrAwareAllocator
from ..workloads.base import Microservice, Request
from ..core.run import prepare_threads
from .core import CoreRun, Event


class ListSink(StepSink):
    """Materializes the step stream of one run as a list of events."""

    def __init__(self):
        self.events: List[Event] = []

    def on_step(self, pc, inst, active, addrs, outcomes) -> None:
        self.events.append(
            (pc, inst, active, tuple(addrs),
             tuple(outcomes) if outcomes else None)
        )


class TimingSink(StepSink):
    """Feeds executor steps straight into one :class:`CoreRun` context.

    ``on_done`` closes the context, so attaching one sink per executor
    run maps executor completion onto stream exhaustion in the timing
    model.  The borrowed ``addrs``/``outcomes`` sequences are safe to
    pass through: ``CoreRun.feed`` either consumes them synchronously
    (single-context runs) or copies them into its buffer.
    """

    def __init__(self, run: CoreRun, ctx: int = 0):
        self.run = run
        self.ctx = ctx
        # single-context runs process synchronously, so the sink can
        # call the processing closure directly and skip the feed() hop
        self._feed = (run._process if run._single and ctx == 0
                      else run.feed)

    def on_step(self, pc, inst, active, addrs, outcomes) -> None:
        self._feed(self.ctx, pc, inst, active, addrs, outcomes)

    def on_done(self) -> None:
        self.run.close(self.ctx)


def replay_events(events: Sequence[Event], sink: StepSink) -> None:
    """Drive a sink with a previously materialized event stream."""
    on_step = sink.on_step
    for ev in events:
        on_step(ev[0], ev[1], ev[2], ev[3], ev[4])
    sink.on_done()


def make_batch_executor(
    service: Microservice,
    policy: str,
    sink: Optional[StepSink],
    reconv_override: Optional[Dict[int, int]],
    max_steps: int,
):
    if policy == "ipdom":
        return IpdomExecutor(service.program, sink=sink, max_steps=max_steps,
                             reconv_override=reconv_override)
    if policy == "predicated":
        return PredicatedExecutor(service.program, sink=sink,
                                  max_steps=max_steps,
                                  reconv_override=reconv_override)
    return MinSpPcExecutor(service.program, sink=sink, max_steps=max_steps)


def run_batch(
    service: Microservice,
    requests: Sequence[Request],
    sink: Optional[StepSink],
    policy: str = "minsp_pc",
    allocator: Optional[BaseAllocator] = None,
    reconv_override: Optional[Dict[int, int]] = None,
    salt: int = 0,
    max_steps: int = 4_000_000,
) -> LockstepResult:
    """Lockstep-execute one batch, driving ``sink`` with its events."""
    mem = MemoryImage(salt=salt)
    allocator = allocator if allocator is not None else SimrAwareAllocator()
    threads = prepare_threads(service, requests, mem, allocator)
    ex = make_batch_executor(service, policy, sink, reconv_override,
                             max_steps)
    return ex.run(threads, mem)


def batch_trace(
    service: Microservice,
    requests: Sequence[Request],
    policy: str = "minsp_pc",
    allocator: Optional[BaseAllocator] = None,
    reconv_override: Optional[Dict[int, int]] = None,
    salt: int = 0,
    max_steps: int = 4_000_000,
) -> Tuple[List[Event], LockstepResult]:
    """Lockstep-execute one batch and return its event trace."""
    sink = ListSink()
    result = run_batch(service, requests, sink, policy=policy,
                       allocator=allocator, reconv_override=reconv_override,
                       salt=salt, max_steps=max_steps)
    return sink.events, result


class SoloRunner:
    """Solo-executes a service's requests over one shared memory image.

    Request ``i`` is served by worker ``i % pool_size``, whose stack and
    heap arena are reused (freed and reallocated) between requests,
    giving consecutive CPU threads the warm-cache behaviour the paper
    notes.  Requests must be run in population order - the shared
    memory image and allocator make each request's trace depend on its
    predecessors.
    """

    def __init__(
        self,
        service: Microservice,
        allocator: Optional[BaseAllocator] = None,
        salt: int = 0,
        max_steps: int = 2_000_000,
        pool_size: int = 1,
    ):
        self.service = service
        self.mem = MemoryImage(salt=salt)
        self.allocator = (allocator if allocator is not None
                          else SimrAwareAllocator())
        self.shared = service.shared_setup(self.mem, self.allocator)
        self.max_steps = max_steps
        self.pool_size = pool_size

    def run_request(self, i: int, request: Request,
                    sink: Optional[StepSink]) -> None:
        worker = i % self.pool_size
        t = ThreadState(worker)
        self.service.setup_thread(t, request, self.mem, self.allocator,
                                  self.shared)
        SoloExecutor(self.service.program, sink=sink,
                     max_steps=self.max_steps).run(t, self.mem)
        self.allocator.free_all(worker)


def solo_traces(
    service: Microservice,
    requests: Sequence[Request],
    allocator: Optional[BaseAllocator] = None,
    salt: int = 0,
    max_steps: int = 2_000_000,
    pool_size: int = 1,
) -> List[List[Event]]:
    """Solo-execute each request; one event stream per request."""
    runner = SoloRunner(service, allocator=allocator, salt=salt,
                        max_steps=max_steps, pool_size=pool_size)
    traces: List[List[Event]] = []
    for i, req in enumerate(requests):
        sink = ListSink()
        runner.run_request(i, req, sink)
        traces.append(sink.events)
    return traces
