"""Trace collection: turn executor runs into event streams for timing."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.events import LockstepResult, StepSink
from ..engine.lockstep import (IpdomExecutor, MinSpPcExecutor,
                               PredicatedExecutor, SoloExecutor)
from ..engine.memory import MemoryImage
from ..memsys.alloc import BaseAllocator, SimrAwareAllocator
from ..workloads.base import Microservice, Request
from ..core.run import prepare_threads
from .core import Event


class ListSink(StepSink):
    """Materializes the step stream of one run as a list of events."""

    def __init__(self):
        self.events: List[Event] = []

    def on_step(self, pc, inst, active, addrs, outcomes) -> None:
        self.events.append(
            (pc, inst, active, tuple(addrs),
             tuple(outcomes) if outcomes else None)
        )


def batch_trace(
    service: Microservice,
    requests: Sequence[Request],
    policy: str = "minsp_pc",
    allocator: Optional[BaseAllocator] = None,
    reconv_override: Optional[Dict[int, int]] = None,
    salt: int = 0,
    max_steps: int = 4_000_000,
) -> Tuple[List[Event], LockstepResult]:
    """Lockstep-execute one batch and return its event trace."""
    mem = MemoryImage(salt=salt)
    allocator = allocator if allocator is not None else SimrAwareAllocator()
    threads = prepare_threads(service, requests, mem, allocator)
    sink = ListSink()
    if policy == "ipdom":
        ex = IpdomExecutor(service.program, sink=sink, max_steps=max_steps,
                           reconv_override=reconv_override)
    elif policy == "predicated":
        ex = PredicatedExecutor(service.program, sink=sink,
                                max_steps=max_steps,
                                reconv_override=reconv_override)
    else:
        ex = MinSpPcExecutor(service.program, sink=sink,
                             max_steps=max_steps)
    result = ex.run(threads, mem)
    return sink.events, result


def solo_traces(
    service: Microservice,
    requests: Sequence[Request],
    allocator: Optional[BaseAllocator] = None,
    salt: int = 0,
    max_steps: int = 2_000_000,
    pool_size: int = 1,
) -> List[List[Event]]:
    """Solo-execute each request; one event stream per request.

    ``pool_size`` models the service's worker-thread pool: request ``i``
    is served by worker ``i % pool_size``, whose stack and heap arena
    are reused (freed and reallocated) between requests, giving
    consecutive CPU threads the warm-cache behaviour the paper notes.
    """
    from ..engine.thread import ThreadState

    mem = MemoryImage(salt=salt)
    allocator = allocator if allocator is not None else SimrAwareAllocator()
    shared = service.shared_setup(mem, allocator)
    traces: List[List[Event]] = []
    for i, req in enumerate(requests):
        worker = i % pool_size
        t = ThreadState(worker)
        service.setup_thread(t, req, mem, allocator, shared)
        sink = ListSink()
        SoloExecutor(service.program, sink=sink, max_steps=max_steps).run(t, mem)
        traces.append(sink.events)
        allocator.free_all(worker)
    return traces
