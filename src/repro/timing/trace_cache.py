"""Cross-config trace cache: execute once, time many designs.

Executor traces are a pure function of (service, request population,
schedule policy, allocator behaviour, memory salt, step budget) - the
*timing* configuration plays no part in producing them.  Different chip
designs therefore frequently re-execute identical traces: CPU and
CPU-SMT8 both solo-execute the same requests through the same worker
pool, and RPU and GPU lockstep-execute the same batches under the same
policy and allocator.  This module memoizes those traces per process so
each distinct execution happens once.

Keys capture everything the trace depends on:

* ``solo``  - (service, request fingerprint, allocator signature,
  salt, max_steps, pool_size); the value is the whole population's
  per-request event streams (solo traces share one memory image and
  worker pool, so individual requests are not independently reusable);
* ``batch`` - (service, batch fingerprint, policy, allocator
  signature, reconvergence override, salt, max_steps); each batch is
  traced with a fresh memory image and allocator, so batches are
  cached independently.

The allocator signature is (type name, n_banks): allocator *behaviour*
is class-determined, so two fresh instances of the same class with the
same bank count produce identical traces.  Callers with bespoke
allocator factories must bypass the cache (``run_chip`` does).

The in-memory cache is process-local.  Under the fork-based experiment
driver (``repro.experiments.common.parallel_map``) each worker inherits
a copy-on-write snapshot and keeps its own cache from there - no
locking, no cross-process invalidation, and the per-task config sweeps
(the hot reuse pattern) all happen within one worker.

Since PR 5 the memory cache is additionally a *read-through* layer over
the persistent content-addressed store (:mod:`repro.store`): a memory
miss consults the disk store (keyed by the same logical tuple plus the
source fingerprint of every trace-producing module), and a computed
entry is written through, so warm traces survive both fork and process
exit.  ``REPRO_CACHE=0`` confines caching to this process;
``REPRO_TRACE_CACHE=0`` disables trace caching entirely (memory and
disk).  Both variables are re-read on every query so tests and
benchmarks can toggle them at will.  Memory entries are LRU-evicted
once the cache holds more than ``MAX_CACHED_EVENTS`` trace events in
total; the disk store has its own byte budget.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

from .. import store as disk_store
from ..engine.events import LockstepResult
from ..memsys.alloc import BaseAllocator
from ..workloads.base import Microservice, Request

#: total events held before LRU eviction (~a few hundred MB worst case)
MAX_CACHED_EVENTS = 20_000_000


def enabled() -> bool:
    """Trace caching is on unless ``REPRO_TRACE_CACHE=0`` (re-read per
    call, so toggling the environment mid-process works)."""
    return os.environ.get("REPRO_TRACE_CACHE", "1") != "0"


def fingerprint_requests(requests: Sequence[Request]) -> str:
    """Order-sensitive digest of a request population.

    Hashes every field of every request (dataclass repr), so any change
    to the population - count, order, sizes, keys, payloads - produces
    a different key.
    """
    h = hashlib.sha256()
    for r in requests:
        h.update(repr(r).encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def allocator_signature(allocator: BaseAllocator) -> Tuple[str, object]:
    return (type(allocator).__name__, getattr(allocator, "n_banks", None))


def solo_key(service: Microservice, requests: Sequence[Request],
             allocator: BaseAllocator, salt: int, max_steps: int,
             pool_size: int) -> tuple:
    return ("solo", service.name, fingerprint_requests(requests),
            allocator_signature(allocator), salt, max_steps, pool_size)


def batch_key(service: Microservice, batch: Sequence[Request],
              policy: str, allocator: BaseAllocator,
              reconv_override: Optional[Dict[int, int]], salt: int,
              max_steps: int) -> tuple:
    reconv = (tuple(sorted(reconv_override.items()))
              if reconv_override else None)
    return ("batch", service.name, fingerprint_requests(batch), policy,
            allocator_signature(allocator), reconv, salt, max_steps)


class TraceCache:
    """LRU cache of immutable trace entries, budgeted by event count,
    backed read-through/write-through by the persistent store."""

    def __init__(self, max_events: int = MAX_CACHED_EVENTS):
        self.max_events = max_events
        self._store: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._sizes: Dict[tuple, int] = {}
        self._held_events = 0
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def get(self, key: tuple):
        entry = self._store.get(key)
        if entry is not None:
            self._store.move_to_end(key)
            self.hits += 1
            return entry
        # read through to the persistent store; a disk entry is
        # (n_events, value) so the memory budget stays accurate
        disk = disk_store.lookup("trace", disk_store.trace_fingerprint(), key)
        if disk is not disk_store.MISS:
            n_events, value = disk
            self._insert(key, value, n_events)
            self.disk_hits += 1
            return value
        self.misses += 1
        return None

    def put(self, key: tuple, value: tuple, n_events: int) -> None:
        if key in self._store:
            return
        disk_store.record("trace", disk_store.trace_fingerprint(), key,
                          (n_events, value))
        self._insert(key, value, n_events)

    def _insert(self, key: tuple, value: tuple, n_events: int) -> None:
        self._store[key] = value
        self._sizes[key] = n_events
        self._held_events += n_events
        while self._held_events > self.max_events and len(self._store) > 1:
            old_key, _ = self._store.popitem(last=False)
            self._held_events -= self._sizes.pop(old_key)

    def clear(self) -> None:
        self._store.clear()
        self._sizes.clear()
        self._held_events = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def held_events(self) -> int:
        return self._held_events


#: process-wide cache instance (copy-on-write inherited by fork workers)
_GLOBAL = TraceCache()


def get_cache() -> Optional[TraceCache]:
    """The process cache, or ``None`` when disabled by environment."""
    return _GLOBAL if enabled() else None


def clear() -> None:
    _GLOBAL.clear()


def stats() -> Dict[str, int]:
    out = {
        "entries": len(_GLOBAL),
        "held_events": _GLOBAL.held_events,
        "hits": _GLOBAL.hits,
        "misses": _GLOBAL.misses,
        "disk_hits": _GLOBAL.disk_hits,
    }
    for k, v in disk_store.stats().items():
        out[f"store_{k}"] = v
    return out


def copy_result(result: LockstepResult) -> LockstepResult:
    """Fresh LockstepResult a caller may mutate without corrupting the
    cached entry."""
    return dataclasses.replace(
        result, retired_per_thread=list(result.retired_per_thread))
