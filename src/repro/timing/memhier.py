"""Per-core memory hierarchy: MCU -> banked L1+TLB -> L2 -> NoC -> L3
slice -> DRAM slice.

Latency composition follows the paper: the RPU pays a higher L1 hit
latency (8 vs 3 cycles) and bank-conflict serialization, but the MCU
collapses batch accesses into few line requests, and the lighter
traffic plus single-hop crossbar reduce queueing downstream - the
balance quantified in Fig. 21.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.instructions import Instruction, OpClass, Segment
from ..memsys.cache import SetAssociativeCache
from ..memsys.dram import DramModel
from ..memsys.interconnect import CrossbarInterconnect, MeshInterconnect
from ..memsys.mcu import MemoryCoalescingUnit, scalar_accesses
from ..memsys.stackmap import StackInterleaver
from ..memsys.tlb import PAGE_SIZE, BankedTlb, Tlb
from .config import CoreConfig


class Counters(dict):
    """String-keyed event counters; missing keys read as 0."""

    def __missing__(self, key):
        return 0

    def inc(self, key: str, n: float = 1) -> None:
        self[key] = self.get(key, 0) + n

    def merge(self, other: "Counters") -> "Counters":
        for k, v in other.items():
            self.inc(k, v)
        return self


class MemoryHierarchy:
    """One core's view of the memory system."""

    def __init__(self, config: CoreConfig):
        self.cfg = config
        c = config
        self.l1 = SetAssociativeCache("L1D", c.l1_size, c.l1_assoc,
                                      c.line_size, n_banks=c.l1_banks)
        self.l2 = SetAssociativeCache("L2", c.l2_size, c.l2_assoc,
                                      c.line_size)
        self.l3 = SetAssociativeCache("L3-slice", c.l3_slice_size,
                                      c.l3_assoc, c.line_size)
        self.dram = DramModel(c.dram_bw_core_gbps, c.dram_latency,
                              c.freq_ghz, c.line_size)
        # each core owns a 1/n_cores share of the chip bisection; the
        # crossbar's bisection is far higher than the mesh's (paper
        # Table II), and the mesh additionally carries coherence
        # traffic, so its effective data bisection is modest
        if c.interconnect == "crossbar":
            self.noc = CrossbarInterconnect(
                ports=c.n_cores, bytes_per_cycle=1280.0 / c.n_cores)
        else:
            self.noc = MeshInterconnect(
                k=c.mesh_k, bytes_per_cycle=120.0 / c.n_cores)
        if c.tlb_banks > 1:
            self.tlb = BankedTlb(c.tlb_entries, c.tlb_banks, c.line_size)
        else:
            self.tlb = Tlb(c.tlb_entries)
        interleaver = (
            StackInterleaver(c.threads_per_core // c.hw_contexts)
            if c.stack_interleave
            else None
        )
        self.mcu = MemoryCoalescingUnit(c.line_size, interleaver)
        self.counters = Counters()
        #: MSHR file: line -> absolute completion time of the in-flight
        #: fill.  Accesses to a line already being fetched merge into
        #: the outstanding miss instead of issuing a duplicate request
        #: (the MSHR-merge filtering the paper credits SMT designs with)
        self._mshr: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def _line_latency(self, line_addr: int, now: float, write: bool) -> float:
        """Latency of one line request entering the L1."""
        cnt = self.counters
        cfg = self.cfg
        cnt.inc("l1_accesses")
        line_key = line_addr // cfg.line_size
        if self.l1.access(line_addr, write):
            # a "hit" on a line whose fill is still in flight merges
            # into the outstanding miss (MSHR) and waits for the fill
            pending = self._mshr.get(line_key)
            if pending is not None and pending > now:
                cnt.inc("mshr_merges")
                return pending - now
            return cfg.l1_latency
        cnt.inc("l1_misses")
        cnt.inc("l2_accesses")
        if self.l2.access(line_addr, write):
            return cfg.l1_latency + cfg.l2_latency
        cnt.inc("l2_misses")
        cnt.inc("noc_traversals")
        arrival = self.noc.traverse(now + cfg.l1_latency + cfg.l2_latency)
        cnt.inc("l3_accesses")
        if self.l3.access(line_addr, write):
            return arrival - now + cfg.l3_latency
        cnt.inc("l3_misses")
        cnt.inc("dram_accesses")
        done = self.dram.access(arrival + cfg.l3_latency)
        self._mshr[line_key] = done
        if len(self._mshr) > 256:  # prune completed entries
            self._mshr = {k: v for k, v in self._mshr.items() if v > done}
        return done - now

    def _translate(self, addrs: Sequence[int], now: float) -> float:
        """TLB lookups for the pages of the line addresses."""
        penalty = 0.0
        for page_addr in {a // PAGE_SIZE for a in addrs}:
            self.counters.inc("tlb_accesses")
            if not self.tlb.access(page_addr * PAGE_SIZE):
                self.counters.inc("tlb_misses")
                penalty = max(penalty, float(self.cfg.tlb_miss_penalty))
        return penalty

    # ------------------------------------------------------------------
    def access(
        self,
        inst: Instruction,
        addrs: Sequence[Tuple[int, int, int]],
        now: float,
        batched: bool,
    ) -> float:
        """Perform one (possibly batched) memory instruction.

        Returns the completion cycle of the slowest generated access.
        """
        cfg = self.cfg
        cnt = self.counters
        write = inst.cls is OpClass.STORE

        if inst.cls is OpClass.ATOMIC:
            return self._atomic(addrs, now, batched)

        if batched and cfg.mcu_enabled:
            cnt.inc("mcu_ops")
            res = self.mcu.coalesce(inst.segment, addrs)
        else:
            res = scalar_accesses(addrs, cfg.line_size)
        lines = res.line_addrs
        if not lines:
            return now

        if inst.segment is Segment.STACK:
            cnt.inc("stack_line_accesses", len(lines))
        else:
            cnt.inc("data_line_accesses", len(lines))

        # Stack interleaving needs a single translation (thread-0 base
        # override); everything else translates per page touched.
        if res.pattern == "stack":
            cnt.inc("tlb_accesses")
            tlb_penalty = 0.0
            if not self.tlb.access(lines[0]):
                cnt.inc("tlb_misses")
                tlb_penalty = float(cfg.tlb_miss_penalty)
        else:
            tlb_penalty = self._translate(lines, now)

        serial = self.l1.bank_conflicts(lines) if cfg.l1_banks > 1 else len(lines)
        serial_penalty = max(0, serial - 1)
        cnt.inc("l1_bank_conflict_cycles", serial_penalty)

        start = now + tlb_penalty + serial_penalty
        worst = 0.0
        for line in lines:
            worst = max(worst, self._line_latency(line, start, write))
        if write:
            # stores drain through the store queue off the critical path
            return start + 1
        # fig. 21 metrics: average load-to-use latency, plus the
        # latency of loads that left the L1 (the queueing-sensitive
        # part the paper's Fig. 21 reports)
        cnt.inc("load_latency_sum", start + worst - now)
        cnt.inc("load_count")
        if worst > self.cfg.l1_latency:
            cnt.inc("miss_latency_sum", start + worst - now)
            cnt.inc("miss_count")
        return start + worst

    def _atomic(self, addrs: Sequence[Tuple[int, int, int]], now: float,
                batched: bool) -> float:
        cfg = self.cfg
        cnt = self.counters
        n = len(addrs)
        if cfg.atomics_at_l3:
            # bypass private caches; serialize RMWs at the L3 slice
            cnt.inc("atomics_at_l3", n)
            cnt.inc("noc_traversals")
            arrival = self.noc.traverse(now)
            cnt.inc("l3_accesses", n)
            for _tid, a, _s in addrs:
                self.l3.access(a)
            return arrival + cfg.l3_latency + n  # one RMW slot per lane
        # CPU baseline: idealized - atomics behave like private-cache
        # loads with zero coherence traffic (paper Section IV)
        cnt.inc("atomics_in_l1", n)
        worst = 0.0
        for _tid, a, _s in addrs:
            line = a // cfg.line_size * cfg.line_size
            worst = max(worst, self._line_latency(line, now, True))
        return now + worst

    def reset_stats(self) -> None:
        self.counters = Counters()
        self._mshr.clear()
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.l3.reset_stats()
