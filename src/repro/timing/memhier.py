"""Per-core memory hierarchy: MCU -> banked L1+TLB -> L2 -> NoC -> L3
slice -> DRAM slice.

Latency composition follows the paper: the RPU pays a higher L1 hit
latency (8 vs 3 cycles) and bank-conflict serialization, but the MCU
collapses batch accesses into few line requests, and the lighter
traffic plus single-hop crossbar reduce queueing downstream - the
balance quantified in Fig. 21.

Under ``REPRO_SANITIZE=1`` every access additionally verifies the
memory-system bookkeeping: per-level cache accesses must decompose
exactly into hits + misses (+ L3 atomic RMWs), and the MCU may never
emit more line requests than its coalescing pattern permits (at most
one per active lane, except stack interleaving, which is bounded by
the per-lane word count - a single 8-byte stack access legitimately
touches two interleaved physical words 128 bytes apart).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.instructions import Instruction, OpClass, Segment
from ..memsys.cache import SetAssociativeCache
from ..memsys.dram import DramModel
from ..memsys.interconnect import CrossbarInterconnect, MeshInterconnect
from ..memsys.mcu import MemoryCoalescingUnit, scalar_accesses
from ..memsys.stackmap import StackInterleaver
from ..memsys.tlb import PAGE_SIZE, BankedTlb, Tlb
from ..sanitize import check, sanitizer_enabled
from .config import CoreConfig


class Counters(dict):
    """String-keyed event counters; missing keys read as 0."""

    def __missing__(self, key):
        return 0

    def inc(self, key: str, n: float = 1) -> None:
        self[key] = self.get(key, 0) + n

    def merge(self, other: "Counters") -> "Counters":
        for k, v in other.items():
            self.inc(k, v)
        return self


class MemoryHierarchy:
    """One core's view of the memory system."""

    def __init__(self, config: CoreConfig):
        self.cfg = config
        c = config
        self.l1 = SetAssociativeCache("L1D", c.l1_size, c.l1_assoc,
                                      c.line_size, n_banks=c.l1_banks)
        self.l2 = SetAssociativeCache("L2", c.l2_size, c.l2_assoc,
                                      c.line_size)
        self.l3 = SetAssociativeCache("L3-slice", c.l3_slice_size,
                                      c.l3_assoc, c.line_size)
        self.dram = DramModel(c.dram_bw_core_gbps, c.dram_latency,
                              c.freq_ghz, c.line_size)
        # each core owns a 1/n_cores share of the chip bisection; the
        # crossbar's bisection is far higher than the mesh's (paper
        # Table II), and the mesh additionally carries coherence
        # traffic, so its effective data bisection is modest
        if c.interconnect == "crossbar":
            self.noc = CrossbarInterconnect(
                ports=c.n_cores, bytes_per_cycle=1280.0 / c.n_cores)
        else:
            self.noc = MeshInterconnect(
                k=c.mesh_k, bytes_per_cycle=120.0 / c.n_cores)
        if c.tlb_banks > 1:
            self.tlb = BankedTlb(c.tlb_entries, c.tlb_banks, c.line_size)
        else:
            self.tlb = Tlb(c.tlb_entries)
        interleaver = (
            StackInterleaver(c.threads_per_core // c.hw_contexts)
            if c.stack_interleave
            else None
        )
        self.mcu = MemoryCoalescingUnit(c.line_size, interleaver)
        self.counters = Counters()
        #: MSHR file: line -> absolute completion time of the in-flight
        #: fill.  Accesses to a line already being fetched merge into
        #: the outstanding miss instead of issuing a duplicate request
        #: (the MSHR-merge filtering the paper credits SMT designs with)
        self._mshr: Dict[int, float] = {}
        self._san = sanitizer_enabled()
        # sanitizer shadow tallies: per-level hit counts plus L3 atomic
        # RMWs, kept outside Counters so sanitized runs stay
        # bit-identical to unsanitized ones
        self._san_hits = [0, 0, 0]
        self._san_atomic_l3 = 0

    # ------------------------------------------------------------------
    def _line_latency(self, line_addr: int, now: float, write: bool) -> float:
        """Latency of one line request entering the L1."""
        cnt = self.counters
        cfg = self.cfg
        cnt["l1_accesses"] += 1
        line_key = line_addr // cfg.line_size
        if self.l1.access(line_addr, write):
            if self._san:
                self._san_hits[0] += 1
            # a "hit" on a line whose fill is still in flight merges
            # into the outstanding miss (MSHR) and waits for the fill
            pending = self._mshr.get(line_key)
            if pending is not None and pending > now:
                cnt["mshr_merges"] += 1
                return pending - now
            return cfg.l1_latency
        cnt["l1_misses"] += 1
        cnt["l2_accesses"] += 1
        if self.l2.access(line_addr, write):
            if self._san:
                self._san_hits[1] += 1
            return cfg.l1_latency + cfg.l2_latency
        cnt["l2_misses"] += 1
        cnt["noc_traversals"] += 1
        arrival = self.noc.traverse(now + cfg.l1_latency + cfg.l2_latency)
        cnt["l3_accesses"] += 1
        if self.l3.access(line_addr, write):
            if self._san:
                self._san_hits[2] += 1
            return arrival - now + cfg.l3_latency
        cnt["l3_misses"] += 1
        cnt["dram_accesses"] += 1
        done = self.dram.access(arrival + cfg.l3_latency)
        self._mshr[line_key] = done
        if len(self._mshr) > 256:  # prune completed entries
            self._mshr = {k: v for k, v in self._mshr.items() if v > done}
        return done - now

    def _translate(self, addrs: Sequence[int], now: float) -> float:
        """TLB lookups for the pages of the line addresses."""
        cnt = self.counters
        penalty = 0.0
        for page_addr in {a // PAGE_SIZE for a in addrs}:
            cnt["tlb_accesses"] += 1
            if not self.tlb.access(page_addr * PAGE_SIZE):
                cnt["tlb_misses"] += 1
                penalty = max(penalty, float(self.cfg.tlb_miss_penalty))
        return penalty

    def _check_accounting(self, cnt: Counters) -> None:
        """Sanitizer: cache traffic must decompose exactly - for every
        level, accesses == hits + misses (+ atomic RMWs at the L3)."""
        h1, h2, h3 = self._san_hits
        check(cnt["l1_accesses"] == h1 + cnt["l1_misses"],
              "L1 accounting broken: %d accesses != %d hits + %d misses",
              cnt["l1_accesses"], h1, cnt["l1_misses"])
        check(cnt["l2_accesses"] == h2 + cnt["l2_misses"],
              "L2 accounting broken: %d accesses != %d hits + %d misses",
              cnt["l2_accesses"], h2, cnt["l2_misses"])
        check(cnt["l3_accesses"]
              == h3 + cnt["l3_misses"] + self._san_atomic_l3,
              "L3 accounting broken: %d accesses != %d hits + %d misses "
              "+ %d atomic RMWs",
              cnt["l3_accesses"], h3, cnt["l3_misses"], self._san_atomic_l3)

    def _check_mcu(self, res, addrs) -> None:
        """Sanitizer: the coalescer may not fabricate line requests.

        Non-stack patterns emit at most one request per active lane
        (``divergent``/``scalar`` exactly one; ``same_word`` and
        ``consecutive`` merge, so never more).  Stack interleaving maps
        every 4-byte word separately, so its bound is the per-lane word
        count: one 8-byte access touches two physical words (128 bytes
        apart), possibly on two lines.
        """
        n_lines = len(res.line_addrs)
        if res.pattern == "stack":
            bound = sum(max(1, s // 4) for _t, _a, s in addrs)
            check(n_lines <= bound,
                  "MCU stack pattern emitted %d lines for %d words",
                  n_lines, bound)
        else:
            check(n_lines <= len(addrs),
                  "MCU %s pattern emitted %d lines for %d lanes",
                  res.pattern, n_lines, len(addrs))
        check(len(set(res.line_addrs)) == n_lines
              or res.pattern in ("divergent", "scalar"),
              "MCU %s pattern emitted duplicate lines", res.pattern)

    # ------------------------------------------------------------------
    def access(
        self,
        inst: Instruction,
        addrs: Sequence[Tuple[int, int, int]],
        now: float,
        batched: bool,
    ) -> float:
        """Perform one (possibly batched) memory instruction.

        Returns the completion cycle of the slowest generated access.
        """
        cfg = self.cfg
        cnt = self.counters
        write = inst.cls is OpClass.STORE

        if inst.cls is OpClass.ATOMIC:
            return self._atomic(addrs, now, batched)

        if batched and cfg.mcu_enabled:
            cnt["mcu_ops"] += 1
            res = self.mcu.coalesce(inst.segment, addrs)
        else:
            res = scalar_accesses(addrs, cfg.line_size)
        lines = res.line_addrs
        if self._san:
            self._check_mcu(res, addrs)
        if not lines:
            return now

        if inst.segment is Segment.STACK:
            cnt["stack_line_accesses"] += len(lines)
        else:
            cnt["data_line_accesses"] += len(lines)

        # Stack interleaving needs a single translation (thread-0 base
        # override); everything else translates per page touched.
        if res.pattern == "stack":
            cnt["tlb_accesses"] += 1
            tlb_penalty = 0.0
            if not self.tlb.access(lines[0]):
                cnt["tlb_misses"] += 1
                tlb_penalty = float(cfg.tlb_miss_penalty)
        else:
            tlb_penalty = self._translate(lines, now)

        serial = self.l1.bank_conflicts(lines) if cfg.l1_banks > 1 else len(lines)
        if serial > 1:
            cnt["l1_bank_conflict_cycles"] += serial - 1
            start = now + tlb_penalty + (serial - 1)
        else:
            cnt["l1_bank_conflict_cycles"] += 0
            start = now + tlb_penalty
        worst = 0.0
        for line in lines:
            lat = self._line_latency(line, start, write)
            if lat > worst:
                worst = lat
        if self._san:
            self._check_accounting(cnt)
        if write:
            # stores drain through the store queue off the critical path
            return start + 1
        # fig. 21 metrics: average load-to-use latency, plus the
        # latency of loads that left the L1 (the queueing-sensitive
        # part the paper's Fig. 21 reports)
        cnt["load_latency_sum"] += start + worst - now
        cnt["load_count"] += 1
        if worst > cfg.l1_latency:
            cnt["miss_latency_sum"] += start + worst - now
            cnt["miss_count"] += 1
        return start + worst

    def _atomic(self, addrs: Sequence[Tuple[int, int, int]], now: float,
                batched: bool) -> float:
        cfg = self.cfg
        cnt = self.counters
        n = len(addrs)
        if cfg.atomics_at_l3:
            # bypass private caches; serialize RMWs at the L3 slice
            cnt["atomics_at_l3"] += n
            cnt["noc_traversals"] += 1
            arrival = self.noc.traverse(now)
            cnt["l3_accesses"] += n
            for _tid, a, _s in addrs:
                self.l3.access(a)
            if self._san:
                self._san_atomic_l3 += n
                self._check_accounting(cnt)
            return arrival + cfg.l3_latency + n  # one RMW slot per lane
        # CPU baseline: idealized - atomics behave like private-cache
        # loads with zero coherence traffic (paper Section IV)
        cnt["atomics_in_l1"] += n
        worst = 0.0
        for _tid, a, _s in addrs:
            line = a // cfg.line_size * cfg.line_size
            lat = self._line_latency(line, now, True)
            if lat > worst:
                worst = lat
        if self._san:
            self._check_accounting(cnt)
        return now + worst

    def reset_counters(self) -> None:
        """Swap in fresh counters (measurement boundary), keeping warm
        caches, TLBs and MSHRs - and resync the sanitizer shadows."""
        self.counters = Counters()
        self._san_hits = [0, 0, 0]
        self._san_atomic_l3 = 0

    def reset_stats(self) -> None:
        self.reset_counters()
        self._mshr.clear()
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.l3.reset_stats()
