"""Branch prediction: gshare per hardware context, with the RPU's
per-batch majority voting (paper Section III-A, item 3).

On the RPU only one prediction is made for the whole batch.  The
history is updated with the *majority* outcome so the predictor tracks
the common control flow; divergent-minority threads always appear
mispredicted (their work is flushed at commit - an energy event), but
the performance penalty only applies when the majority itself was
mispredicted, matching the paper's observation that majority voting
mostly helps energy, not latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass
class BpredStats:
    lookups: int = 0
    mispredicts: int = 0  # majority (performance) mispredictions
    minority_flushes: int = 0  # divergent threads flushed at commit

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


class GsharePredictor:
    """Classic gshare: 2-bit counters indexed by pc ^ global history."""

    def __init__(self, bits: int = 12):
        self.mask = (1 << bits) - 1
        self.table: List[int] = [2] * (1 << bits)  # weakly taken
        self.history = 0
        self.stats = BpredStats()

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) & self.mask

    def predict(self, pc: int) -> bool:
        self.stats.lookups += 1
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        i = self._index(pc)
        c = self.table[i]
        self.table[i] = min(3, c + 1) if taken else max(0, c - 1)
        self.history = ((self.history << 1) | int(taken)) & self.mask

    def observe(self, pc: int,
                outcomes: Sequence[Tuple[int, bool]]) -> bool:
        """Single-thread flavor: one outcome; returns mispredicted?"""
        taken = outcomes[0][1]
        predicted = self.predict(pc)
        mispredicted = predicted != taken
        if mispredicted:
            self.stats.mispredicts += 1
        self.update(pc, taken)
        return mispredicted


class MajorityVotePredictor(GsharePredictor):
    """Batch-granularity prediction with majority-vote history update."""

    def observe(self, pc: int,
                outcomes: Sequence[Tuple[int, bool]]) -> bool:
        taken_votes = sum(1 for _tid, t in outcomes if t)
        majority = taken_votes * 2 >= len(outcomes)
        predicted = self.predict(pc)
        mispredicted = predicted != majority
        if mispredicted:
            self.stats.mispredicts += 1
        # divergent minority threads are flushed at commit regardless
        minority = min(taken_votes, len(outcomes) - taken_votes)
        self.stats.minority_flushes += minority
        self.update(pc, majority)
        return mispredicted


class PerThreadVotePredictor(GsharePredictor):
    """Ablation: batch prediction keyed off thread 0 (no majority vote).

    The history can be polluted by a minority path, degrading accuracy
    for the common flow - the effect the majority-voting circuit avoids.
    """

    def observe(self, pc: int,
                outcomes: Sequence[Tuple[int, bool]]) -> bool:
        lead = outcomes[0][1]
        predicted = self.predict(pc)
        mispredicted = predicted != lead
        if mispredicted:
            self.stats.mispredicts += 1
        taken_votes = sum(1 for _tid, t in outcomes if t)
        self.stats.minority_flushes += min(taken_votes,
                                           len(outcomes) - taken_votes)
        self.update(pc, lead)
        return mispredicted
