"""Chip-level orchestration: run a request population on each design.

The chip is homogeneous, so we simulate one representative core with a
per-core slice of chip DRAM bandwidth and L3 capacity, and scale
throughput by the core count - the same methodology as the paper's
single-node Accel-Sim runs.

* CPU      - requests run back-to-back on one single-threaded core.
* CPU-SMT8 - groups of 8 requests share the core's frontend and L1.
* RPU      - batches (from the SIMR-aware server) run in lockstep.
* GPU      - 16 warps (batches) are resident and interleave in-order.

Two execution strategies produce bit-identical results:

* ``streaming=True`` (default): executor events flow through a
  :class:`~repro.timing.streams.TimingSink` straight into an
  incremental :class:`~repro.timing.core.CoreRun`, so traces are never
  materialized (unless the trace cache records them);
* ``streaming=False``: the original materialize-then-``CoreModel.run``
  pipeline, kept as the reference for differential checking.

When the cross-config trace cache (:mod:`repro.timing.trace_cache`) is
enabled, the streaming path replays memoized event streams instead of
re-executing: CPU and CPU-SMT8 share solo traces, RPU and GPU share
batch traces.  Callers supplying a bespoke ``allocator_factory``
bypass the cache (allocator behaviour is part of the trace identity
and arbitrary factories cannot be fingerprinted) unless they vouch for
the factory by passing ``allocator_signature`` — the (class name,
n_banks) tuple that keys the cache — asserting that those two values
fully determine the factory's allocation behaviour.

On top of the trace cache, whole *timed* results are persisted in the
content-addressed store (:mod:`repro.store`): a ``run_chip`` call whose
(service, population, config, policy, batching, allocator,
reconvergence, warmup) tuple was ever simulated before — by any
process, figure or fork worker with identical source — returns the
stored :class:`ChipResult` without touching the executor or the timing
model.  Only the default ``streaming=True`` path participates: the
legacy materialized path is the differential *reference* and must
always compute live.  ``REPRO_CACHE_VERIFY=1`` recomputes on every
timed hit and raises :class:`repro.store.CacheVerifyError` on any
field-level mismatch.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import sanitize
from .. import store as disk_store
from ..batching.policies import form_batches
from ..engine.events import MultiSink
from ..memsys.alloc import DefaultAllocator, SimrAwareAllocator
from ..workloads.base import Microservice, Request
from . import trace_cache
from .config import CoreConfig
from .core import CoreModel, CoreRunResult
from .memhier import Counters
from .streams import (ListSink, SoloRunner, TimingSink, batch_trace,
                      replay_events, run_batch, solo_traces)

#: executor step budgets (also part of the trace-cache key)
SOLO_MAX_STEPS = 2_000_000
BATCH_MAX_STEPS = 4_000_000


@dataclass
class ChipResult:
    config_name: str
    service: str
    n_requests: int
    core_cycles: float
    latencies_cycles: List[float] = field(default_factory=list)
    counters: Counters = field(default_factory=Counters)
    simt_efficiency: float = 1.0
    scalar_instructions: int = 0
    freq_ghz: float = 2.5
    n_cores: int = 1
    batch_size: int = 1

    @property
    def avg_latency_cycles(self) -> float:
        if not self.latencies_cycles:
            return 0.0
        return sum(self.latencies_cycles) / len(self.latencies_cycles)

    @property
    def avg_latency_us(self) -> float:
        return self.avg_latency_cycles / (self.freq_ghz * 1e3)

    @property
    def core_time_s(self) -> float:
        return self.core_cycles / (self.freq_ghz * 1e9)

    @property
    def chip_throughput_rps(self) -> float:
        """Requests/second with every core running this workload."""
        if self.core_time_s == 0:
            return 0.0
        return self.n_requests / self.core_time_s * self.n_cores

    @property
    def ipc(self) -> float:
        return (self.scalar_instructions / self.core_cycles
                if self.core_cycles else 0.0)


def _allocator_for(config: CoreConfig):
    if config.mcu_enabled:  # SIMR systems ship the SIMR-aware allocator
        return SimrAwareAllocator(n_banks=max(config.l1_banks, 1))
    return DefaultAllocator(n_banks=max(config.l1_banks, 1))


def _timed_key(service, requests, config, policy, batching, batch_size,
               reconv_override, warmup_frac, alloc_sig) -> tuple:
    """Logical identity of one timed run (content-addressed on disk
    together with the source fingerprint of executor + timing code)."""
    reconv = (tuple(sorted(reconv_override.items()))
              if reconv_override else None)
    return ("chip", service.name, trace_cache.fingerprint_requests(requests),
            repr(config), policy, batching, batch_size, reconv,
            alloc_sig, warmup_frac, 0, SOLO_MAX_STEPS, BATCH_MAX_STEPS)


def _verify_timed(stored: ChipResult, fresh: ChipResult, key: tuple) -> None:
    """REPRO_CACHE_VERIFY=1: a stored timed entry must equal a live
    recompute field-for-field (floats bit-exact - the simulation is
    deterministic, so any drift is a store or simulator bug)."""
    if dataclasses.asdict(stored) != dataclasses.asdict(fresh):
        diff = [f.name for f in dataclasses.fields(ChipResult)
                if dataclasses.asdict(stored)[f.name]
                != dataclasses.asdict(fresh)[f.name]]
        raise disk_store.CacheVerifyError(
            f"stored chip result diverges from recompute in fields {diff} "
            f"for key {key[:6]}...")


def run_chip(
    service: Microservice,
    requests: Sequence[Request],
    config: CoreConfig,
    policy: str = "minsp_pc",
    batching: str = "per_api_size",
    batch_size: Optional[int] = None,
    reconv_override: Optional[Dict[int, int]] = None,
    allocator_factory=None,
    allocator_signature: Optional[tuple] = None,
    warmup_frac: float = 0.2,
    streaming: bool = True,
) -> ChipResult:
    """Simulate ``requests`` on one core of ``config``; scale to chip.

    The first ``warmup_frac`` of the requests warm caches, TLBs and
    branch predictors (the steady state a data center node lives in)
    and are excluded from latency/energy statistics.
    """
    requests = list(requests)
    make_alloc = allocator_factory or (lambda: _allocator_for(config))
    cacheable = allocator_factory is None or allocator_signature is not None
    cache = trace_cache.get_cache() if cacheable else None
    if cacheable:
        alloc_sig = trace_cache.allocator_signature(make_alloc())
        if allocator_signature is not None and sanitize.sanitizer_enabled():
            sanitize.check(
                alloc_sig == tuple(allocator_signature),
                "run_chip: allocator_signature %r does not match the "
                "factory's actual signature %r", allocator_signature,
                alloc_sig)
    stored = disk_store.MISS
    timed_key = None
    if streaming and cacheable:
        timed_key = _timed_key(service, requests, config, policy, batching,
                               batch_size, reconv_override, warmup_frac,
                               alloc_sig)
        stored = disk_store.lookup("chip", disk_store.timed_fingerprint(),
                                   timed_key)
        if stored is not disk_store.MISS and not disk_store.verify_enabled():
            return stored
    core = CoreModel(config)
    out = ChipResult(
        config_name=config.name,
        service=service.name,
        n_requests=len(requests),
        core_cycles=0.0,
        freq_ghz=config.freq_ghz,
        n_cores=config.n_cores,
    )

    if config.batch_size <= 1 and config.hw_contexts == 1:
        _run_mimd_sequential(core, service, requests, make_alloc, out,
                             warmup_frac, streaming, cache)
    elif config.batch_size <= 1:
        _run_smt(core, config, service, requests, make_alloc, out,
                 warmup_frac, streaming, cache)
    else:
        _run_simt(core, config, service, requests, make_alloc, out,
                  policy, batching, batch_size, reconv_override,
                  warmup_frac, streaming, cache)

    out.counters = core.all_counters()
    out.scalar_instructions = int(out.counters["scalar_instructions"])
    if timed_key is not None:
        if stored is not disk_store.MISS:  # REPRO_CACHE_VERIFY=1 hit
            _verify_timed(stored, out, timed_key)
        else:
            disk_store.record("chip", disk_store.timed_fingerprint(),
                              timed_key, out)
    return out


def _end_warmup(core, out, measured_requests):
    core.reset_measurement()
    out.latencies_cycles = []
    out.n_requests = measured_requests
    return core.now


# ----------------------------------------------------------------------
# solo-execution sources (CPU / SMT)
# ----------------------------------------------------------------------

def _solo_source(core, service, requests, make_alloc, cache):
    """Build a ``play(i, request, sink)`` callable plus a ``done()`` hook.

    On a cache hit ``play`` replays the memoized population trace; on a
    miss it solo-executes live, teeing a recorder into the sink when a
    cache is present so ``done()`` can store the population.
    """
    pool = core.cfg.worker_pool
    alloc = make_alloc()
    if cache is not None:
        key = trace_cache.solo_key(service, requests, alloc, 0,
                                   SOLO_MAX_STEPS, pool)
        hit = cache.get(key)
        if hit is not None:
            def play(i, request, sink, _traces=hit):
                replay_events(_traces[i], sink)
            return play, lambda: None

    runner = SoloRunner(service, allocator=alloc,
                        max_steps=SOLO_MAX_STEPS, pool_size=pool)
    if cache is None:
        def play(i, request, sink):
            runner.run_request(i, request, sink)
        return play, lambda: None

    recorders: List[ListSink] = []

    def play(i, request, sink):
        rec = ListSink()
        recorders.append(rec)
        runner.run_request(i, request, MultiSink(rec, sink))

    def done():
        traces = tuple(tuple(r.events) for r in recorders)
        cache.put(key, traces, sum(len(t) for t in traces))

    return play, done


def _run_mimd_sequential(core, service, requests, make_alloc, out,
                         warmup_frac, streaming, cache):
    out.batch_size = 1
    if not streaming:
        traces = solo_traces(service, requests, allocator=make_alloc(),
                             pool_size=core.cfg.worker_pool)
        n_warm = int(len(traces) * warmup_frac)
        t0 = core.now
        for i, trace in enumerate(traces):
            if i == n_warm:
                t0 = _end_warmup(core, out, len(traces) - n_warm)
            res = core.run([trace])
            out.latencies_cycles.append(res.cycles)
        out.core_cycles = core.now - t0
        return

    play, done = _solo_source(core, service, requests, make_alloc, cache)
    n_warm = int(len(requests) * warmup_frac)
    t0 = core.now
    for i, req in enumerate(requests):
        if i == n_warm:
            t0 = _end_warmup(core, out, len(requests) - n_warm)
        run = core.begin(1)
        play(i, req, TimingSink(run, 0))
        res = run.finish()
        out.latencies_cycles.append(res.cycles)
    done()
    out.core_cycles = core.now - t0


def _run_smt(core, config, service, requests, make_alloc, out,
             warmup_frac, streaming, cache):
    out.batch_size = 1
    smt = config.hw_contexts
    if not streaming:
        traces = solo_traces(service, requests, allocator=make_alloc(),
                             pool_size=core.cfg.worker_pool)
        groups = [traces[i:i + smt] for i in range(0, len(traces), smt)]
        n_warm = int(len(groups) * warmup_frac)
        warm_traces = sum(len(g) for g in groups[:n_warm])
        t0 = core.now
        for i, group in enumerate(groups):
            if i == n_warm:
                t0 = _end_warmup(core, out, len(traces) - warm_traces)
            res = core.run(group)
            out.latencies_cycles.extend(s.cycles for s in res.streams)
        out.core_cycles = core.now - t0
        return

    play, done = _solo_source(core, service, requests, make_alloc, cache)
    groups = [requests[i:i + smt] for i in range(0, len(requests), smt)]
    n_warm = int(len(groups) * warmup_frac)
    warm_traces = sum(len(g) for g in groups[:n_warm])
    t0 = core.now
    idx = 0
    for gi, group in enumerate(groups):
        if gi == n_warm:
            t0 = _end_warmup(core, out, len(requests) - warm_traces)
        run = core.begin(len(group))
        for j, req in enumerate(group):
            play(idx, req, TimingSink(run, j))
            idx += 1
        res = run.finish()
        out.latencies_cycles.extend(s.cycles for s in res.streams)
    done()
    out.core_cycles = core.now - t0


# ----------------------------------------------------------------------
# lockstep-execution source (RPU / GPU)
# ----------------------------------------------------------------------

def _play_batch(service, batch, policy, make_alloc, reconv_override,
                cache, sink):
    """Drive ``sink`` with one batch's event stream; returns the batch's
    SIMT efficiency (replayed from cache when possible)."""
    alloc = make_alloc()
    if cache is not None:
        key = trace_cache.batch_key(service, batch, policy, alloc,
                                    reconv_override, 0, BATCH_MAX_STEPS)
        hit = cache.get(key)
        if hit is not None:
            events, result = hit
            replay_events(events, sink)
            return result.simt_efficiency
        rec = ListSink()
        result = run_batch(service, batch, MultiSink(rec, sink),
                           policy=policy, allocator=alloc,
                           reconv_override=reconv_override,
                           max_steps=BATCH_MAX_STEPS)
        cache.put(key, (tuple(rec.events), result), len(rec.events))
        return result.simt_efficiency
    result = run_batch(service, batch, sink, policy=policy,
                       allocator=alloc, reconv_override=reconv_override,
                       max_steps=BATCH_MAX_STEPS)
    return result.simt_efficiency


def _run_simt(core, config, service, requests, make_alloc, out,
              policy, batching, batch_size, reconv_override,
              warmup_frac, streaming, cache):
    bs = batch_size or min(service.recommended_batch, config.batch_size)
    out.batch_size = bs
    batches = form_batches(requests, bs, batching)
    warps = config.hw_contexts  # 1 for RPU, 16 for GPU

    if not streaming:
        traced = []
        effs: List[float] = []
        for batch in batches:
            events, result = batch_trace(
                service, batch, policy=policy, allocator=make_alloc(),
                reconv_override=reconv_override,
            )
            traced.append((events, len(batch)))
            effs.append(result.simt_efficiency)
        out.simt_efficiency = sum(effs) / len(effs) if effs else 1.0

        rounds = [traced[i:i + warps] for i in range(0, len(traced), warps)]
        n_warm = int(len(rounds) * warmup_frac)
        if n_warm == 0 and len(rounds) > 1 and warmup_frac > 0:
            n_warm = 1
        warm_requests = sum(n for grp in rounds[:n_warm] for _e, n in grp)
        t0 = core.now
        for i, group in enumerate(rounds):
            if i == n_warm:
                t0 = _end_warmup(core, out, len(requests) - warm_requests)
            res = core.run([ev for ev, _n in group], batched=True)
            for (_, n_req), stream in zip(group, res.streams):
                # every request in a batch completes when its batch does
                out.latencies_cycles.extend([stream.cycles] * n_req)
        out.core_cycles = core.now - t0
        return

    rounds = [batches[i:i + warps] for i in range(0, len(batches), warps)]
    n_warm = int(len(rounds) * warmup_frac)
    if n_warm == 0 and len(rounds) > 1 and warmup_frac > 0:
        n_warm = 1
    warm_requests = sum(len(b) for grp in rounds[:n_warm] for b in grp)
    effs = []
    t0 = core.now
    for i, group in enumerate(rounds):
        if i == n_warm:
            t0 = _end_warmup(core, out, len(requests) - warm_requests)
        run = core.begin(len(group), batched=True)
        sizes = []
        for j, batch in enumerate(group):
            effs.append(_play_batch(service, batch, policy, make_alloc,
                                    reconv_override, cache,
                                    TimingSink(run, j)))
            sizes.append(len(batch))
        res = run.finish()
        for n_req, stream in zip(sizes, res.streams):
            # every request in a batch completes when its batch does
            out.latencies_cycles.extend([stream.cycles] * n_req)
    out.simt_efficiency = sum(effs) / len(effs) if effs else 1.0
    out.core_cycles = core.now - t0
