"""Chip-level orchestration: run a request population on each design.

The chip is homogeneous, so we simulate one representative core with a
per-core slice of chip DRAM bandwidth and L3 capacity, and scale
throughput by the core count - the same methodology as the paper's
single-node Accel-Sim runs.

* CPU      - requests run back-to-back on one single-threaded core.
* CPU-SMT8 - groups of 8 requests share the core's frontend and L1.
* RPU      - batches (from the SIMR-aware server) run in lockstep.
* GPU      - 16 warps (batches) are resident and interleave in-order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..batching.policies import form_batches
from ..memsys.alloc import DefaultAllocator, SimrAwareAllocator
from ..workloads.base import Microservice, Request
from .config import CoreConfig
from .core import CoreModel, CoreRunResult
from .memhier import Counters
from .streams import batch_trace, solo_traces


@dataclass
class ChipResult:
    config_name: str
    service: str
    n_requests: int
    core_cycles: float
    latencies_cycles: List[float] = field(default_factory=list)
    counters: Counters = field(default_factory=Counters)
    simt_efficiency: float = 1.0
    scalar_instructions: int = 0
    freq_ghz: float = 2.5
    n_cores: int = 1
    batch_size: int = 1

    @property
    def avg_latency_cycles(self) -> float:
        if not self.latencies_cycles:
            return 0.0
        return sum(self.latencies_cycles) / len(self.latencies_cycles)

    @property
    def avg_latency_us(self) -> float:
        return self.avg_latency_cycles / (self.freq_ghz * 1e3)

    @property
    def core_time_s(self) -> float:
        return self.core_cycles / (self.freq_ghz * 1e9)

    @property
    def chip_throughput_rps(self) -> float:
        """Requests/second with every core running this workload."""
        if self.core_time_s == 0:
            return 0.0
        return self.n_requests / self.core_time_s * self.n_cores

    @property
    def ipc(self) -> float:
        return (self.scalar_instructions / self.core_cycles
                if self.core_cycles else 0.0)


def _allocator_for(config: CoreConfig):
    if config.mcu_enabled:  # SIMR systems ship the SIMR-aware allocator
        return SimrAwareAllocator(n_banks=max(config.l1_banks, 1))
    return DefaultAllocator(n_banks=max(config.l1_banks, 1))


def run_chip(
    service: Microservice,
    requests: Sequence[Request],
    config: CoreConfig,
    policy: str = "minsp_pc",
    batching: str = "per_api_size",
    batch_size: Optional[int] = None,
    reconv_override: Optional[Dict[int, int]] = None,
    allocator_factory=None,
    warmup_frac: float = 0.2,
) -> ChipResult:
    """Simulate ``requests`` on one core of ``config``; scale to chip.

    The first ``warmup_frac`` of the requests warm caches, TLBs and
    branch predictors (the steady state a data center node lives in)
    and are excluded from latency/energy statistics.
    """
    make_alloc = allocator_factory or (lambda: _allocator_for(config))
    core = CoreModel(config)
    out = ChipResult(
        config_name=config.name,
        service=service.name,
        n_requests=len(requests),
        core_cycles=0.0,
        freq_ghz=config.freq_ghz,
        n_cores=config.n_cores,
    )

    if config.batch_size <= 1 and config.hw_contexts == 1:
        _run_mimd_sequential(core, service, requests, make_alloc, out,
                             warmup_frac)
    elif config.batch_size <= 1:
        _run_smt(core, config, service, requests, make_alloc, out,
                 warmup_frac)
    else:
        _run_simt(core, config, service, requests, make_alloc, out,
                  policy, batching, batch_size, reconv_override,
                  warmup_frac)

    out.counters = core.all_counters()
    out.scalar_instructions = int(out.counters["scalar_instructions"])
    return out


def _end_warmup(core, out, measured_requests):
    core.reset_measurement()
    out.latencies_cycles = []
    out.n_requests = measured_requests
    return core.now


def _run_mimd_sequential(core, service, requests, make_alloc, out,
                         warmup_frac):
    traces = solo_traces(service, requests, allocator=make_alloc(),
                         pool_size=core.cfg.worker_pool)
    n_warm = int(len(traces) * warmup_frac)
    t0 = core.now
    for i, trace in enumerate(traces):
        if i == n_warm:
            t0 = _end_warmup(core, out, len(traces) - n_warm)
        res = core.run([trace])
        out.latencies_cycles.append(res.cycles)
    out.core_cycles = core.now - t0
    out.batch_size = 1


def _run_smt(core, config, service, requests, make_alloc, out,
             warmup_frac):
    smt = config.hw_contexts
    traces = solo_traces(service, requests, allocator=make_alloc(),
                         pool_size=core.cfg.worker_pool)
    groups = [traces[i:i + smt] for i in range(0, len(traces), smt)]
    n_warm = int(len(groups) * warmup_frac)
    warm_traces = sum(len(g) for g in groups[:n_warm])
    t0 = core.now
    for i, group in enumerate(groups):
        if i == n_warm:
            t0 = _end_warmup(core, out, len(traces) - warm_traces)
        res = core.run(group)
        out.latencies_cycles.extend(s.cycles for s in res.streams)
    out.core_cycles = core.now - t0
    out.batch_size = 1


def _run_simt(core, config, service, requests, make_alloc, out,
              policy, batching, batch_size, reconv_override,
              warmup_frac):
    bs = batch_size or min(service.recommended_batch, config.batch_size)
    out.batch_size = bs
    batches = form_batches(requests, bs, batching)
    traced = []
    effs: List[float] = []
    for batch in batches:
        events, result = batch_trace(
            service, batch, policy=policy, allocator=make_alloc(),
            reconv_override=reconv_override,
        )
        traced.append((events, len(batch)))
        effs.append(result.simt_efficiency)
    out.simt_efficiency = sum(effs) / len(effs) if effs else 1.0

    warps = config.hw_contexts  # 1 for RPU, 16 for GPU
    rounds = [traced[i:i + warps] for i in range(0, len(traced), warps)]
    n_warm = int(len(rounds) * warmup_frac)
    if n_warm == 0 and len(rounds) > 1 and warmup_frac > 0:
        n_warm = 1
    warm_requests = sum(n for grp in rounds[:n_warm] for _e, n in grp)
    t0 = core.now
    for i, group in enumerate(rounds):
        if i == n_warm:
            t0 = _end_warmup(core, out, len(requests) - warm_requests)
        res = core.run([ev for ev, _n in group], batched=True)
        for (_, n_req), stream in zip(group, res.streams):
            # every request in a batch completes when its batch does
            out.latencies_cycles.extend([stream.cycles] * n_req)
    out.core_cycles = core.now - t0
