"""Simulated hardware configurations (paper Table IV).

All four design points share the 8-wide, 256-entry OoO pipeline skeleton
and 2.5 GHz clock (except the GPU); they differ exactly where the paper
says they do: thread organization, SIMT lanes, ALU/L1 latency, cache
geometry, TLB banking, DRAM bandwidth and interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class CoreConfig:
    name: str
    # pipeline
    issue_width: int = 8
    rob_entries: int = 256  # per hardware context
    freq_ghz: float = 2.5
    in_order: bool = False
    branch_penalty: int = 12
    alu_latency: int = 1
    mul_latency: int = 4
    simd_latency: int = 4
    syscall_overhead: int = 120  # user->kernel transition cycles
    # organization
    n_cores: int = 98
    threads_per_core: int = 1  # SMT degree or batch size
    hw_contexts: int = 1  # independent fetch streams per core
    lanes: int = 1  # SIMT lanes (sub-batch interleaving width)
    # L1 data cache
    l1_size: int = 64 * 1024
    l1_assoc: int = 8
    l1_banks: int = 1
    l1_latency: int = 3
    line_size: int = 32
    # L2
    l2_size: int = 512 * 1024
    l2_assoc: int = 8
    l2_latency: int = 12
    # L3 (per-core slice of the shared 32MB)
    l3_slice_size: int = 330 * 1024
    l3_assoc: int = 16
    l3_latency: int = 36
    # TLB
    tlb_entries: int = 48
    tlb_banks: int = 1
    tlb_miss_penalty: int = 80
    # DRAM (per-core slice of chip bandwidth)
    dram_bw_chip_gbps: float = 200.0
    dram_latency: int = 160
    # interconnect
    interconnect: str = "mesh"  # mesh | crossbar
    mesh_k: int = 10
    #: worker threads a core multiplexes over time; their per-request
    #: state (stacks, arenas) cycles through the private caches, the
    #: "many threads per node" pressure of Table IV's capacity/thread.
    #: The single-threaded CPU dedicates the core to one service thread
    #: (Table IV: 64KB L1 capacity per thread).
    worker_pool: int = 1
    #: instruction-supply stalls: microservice instruction footprints
    #: (gRPC, protobuf, kernel) overwhelm the I-cache; data center CPUs
    #: lose a large IPC fraction to frontend stalls (Kanev et al.,
    #: AsmDB).  Modelled as icache misses per kilo-(batch)-instruction;
    #: a SIMT batch pays each stall once for all of its threads.
    icache_mpki: float = 18.0
    icache_penalty: int = 36
    # SIMR features
    mcu_enabled: bool = False
    stack_interleave: bool = False
    atomics_at_l3: bool = False
    majority_vote_bp: bool = False

    @property
    def total_threads(self) -> int:
        return self.n_cores * self.threads_per_core

    @property
    def dram_bw_core_gbps(self) -> float:
        return self.dram_bw_chip_gbps / self.n_cores

    @property
    def batch_size(self) -> int:
        """Threads executed in lockstep per context (1 = MIMD)."""
        return self.threads_per_core // self.hw_contexts


#: Single-threaded OoO CPU chip: 98 cores x 1 thread (Table IV col 1).
CPU_CONFIG = CoreConfig(name="cpu")

#: SMT-8 CPU chip: 80 cores x 8 threads, frontend partitioned, 32 OoO
#: entries per thread, same per-thread memory resources as the RPU.
SMT8_CONFIG = CoreConfig(
    name="cpu-smt8",
    n_cores=80,
    threads_per_core=8,
    hw_contexts=8,
    worker_pool=64,
    icache_mpki=24.0,  # 8 contexts sharing the I-cache
    rob_entries=32,
    l1_banks=8,
    tlb_entries=64,
    l3_slice_size=400 * 1024,
    dram_bw_chip_gbps=576.0,
    mesh_k=11,
)

#: The RPU: 20 cores x 32-thread batches over 8 SIMT lanes.
RPU_CONFIG = CoreConfig(
    name="rpu",
    n_cores=20,
    threads_per_core=32,
    hw_contexts=1,
    lanes=8,
    alu_latency=4,
    l1_size=256 * 1024,
    l1_banks=8,
    l1_latency=8,
    l2_size=2 * 1024 * 1024,
    l2_latency=20,
    l3_slice_size=1600 * 1024,
    tlb_entries=256,
    tlb_banks=8,
    dram_bw_chip_gbps=576.0,
    interconnect="crossbar",
    mcu_enabled=True,
    stack_interleave=True,
    atomics_at_l3=True,
    majority_vote_bp=True,
)

#: SPMD-on-SIMD alternative (paper Section VI-A): requests mapped to
#: the CPU's AVX lanes by an ISPC-style compiler.  CPU latencies, but
#: 4-request batches run predicated on the 256-bit units with no MCU,
#: no stack interleaving and no useful branch prediction.
CPU_SIMD_CONFIG = CoreConfig(
    name="cpu-simd",
    n_cores=98,
    threads_per_core=4,  # 4x 64-bit lanes per 256-bit vector
    hw_contexts=1,
    lanes=4,
    l1_banks=1,
)


#: Ampere-like GPU: in-order SIMT, lower clock, deep cache latencies,
#: 16 resident warps per SM hide latency at the cost of service latency.
GPU_CONFIG = CoreConfig(
    name="gpu",
    freq_ghz=1.4,
    in_order=True,
    branch_penalty=0,  # no speculation: branches simply stall
    alu_latency=4,
    mul_latency=8,
    simd_latency=4,
    syscall_overhead=2000,  # CPU-coordinated I/O
    n_cores=64,
    threads_per_core=1024,
    hw_contexts=32,  # 32 resident warps of 32 threads
    lanes=16,
    rob_entries=4,  # scoreboard depth, not a real ROB
    l1_size=128 * 1024,
    l1_banks=8,
    l1_latency=28,
    l2_size=4 * 1024 * 1024,
    l2_latency=180,
    l3_slice_size=96 * 1024,
    l3_latency=220,
    tlb_entries=128,
    tlb_banks=8,
    dram_bw_chip_gbps=1500.0,
    dram_latency=400,
    interconnect="crossbar",
    mcu_enabled=True,
    stack_interleave=True,
    atomics_at_l3=True,
)


def rpu_with_lanes(lanes: int) -> CoreConfig:
    """Sub-batch-interleaving sensitivity variant (Section V-A1)."""
    return replace(RPU_CONFIG, name=f"rpu-{lanes}lanes", lanes=lanes)


def rpu_with_batches(n_batches: int) -> CoreConfig:
    """Multi-batch interleaving (paper Section III-A "Sub-batch
    Interleaving" extension): keep ``n_batches`` resident batches per
    core and switch between them with zero overhead to hide long
    latencies.  The paper leaves the study to future work; the model
    supports it directly via multiple hardware contexts.
    """
    return replace(
        RPU_CONFIG,
        name=f"rpu-{n_batches}batches",
        hw_contexts=n_batches,
        threads_per_core=32 * n_batches,
    )


def rpu_without(feature: str) -> CoreConfig:
    """Ablation variants used by the sensitivity benches."""
    knobs = {
        "mcu": {"mcu_enabled": False},
        "stack_interleave": {"stack_interleave": False},
        "atomics_at_l3": {"atomics_at_l3": False},
        "majority_vote": {"majority_vote_bp": False},
    }
    if feature not in knobs:
        raise KeyError(f"unknown RPU feature {feature!r}")
    return replace(RPU_CONFIG, name=f"rpu-no-{feature}", **knobs[feature])
