"""The 15 microservice workloads and their request generators."""

from .base import Microservice, Request, pick_api, zipf_size
from .registry import SERVICE_CLASSES, SERVICE_NAMES, all_services, get_service

__all__ = [
    "Microservice",
    "Request",
    "SERVICE_CLASSES",
    "SERVICE_NAMES",
    "all_services",
    "get_service",
    "pick_api",
    "zipf_size",
]
