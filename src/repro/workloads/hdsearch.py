"""HDSearch family (µSuite image search): mid-tier and SIMD leaf."""

from __future__ import annotations

import random
from typing import Dict, List

from ..isa.builder import ProgramBuilder
from ..isa.instructions import Segment
from .base import Microservice, Request, zipf_key, zipf_size
from .kernels import (
    emit_hash,
    emit_parallel_mix,
    emit_pointer_chase,
    emit_helper_fn,
    emit_locked_update,
    emit_respond,
    emit_simd_stream,
    emit_table_probe,
    emit_word_scan,
)


class HdSearchMidTier(Microservice):
    """Contains the paper's speculative-reconvergence case study
    (Section III-B1): a data-dependent branch whose sides both flow
    into the same expensive re-ranking code, but where the static
    immediate post-dominator sits *after* it (a rare early-exit path
    bypasses the re-rank), so default IPDOM reconvergence executes the
    expensive block once per side.  Speculatively placing the sync
    point at the head of the expensive block merges the sides before
    it, at the (rare) cost of an early-exit thread running alone."""

    name = "hdsearch-midtier"
    apis = ("query",)
    tier = "mid"
    footprint_bytes = 1024

    #: label of the shared expensive block used for the speculative
    #: reconvergence override
    EXPENSIVE_LABEL = "rerank"

    def build_program(self):
        b = ProgramBuilder(self.name)
        emit_word_scan(b, "r2", "r4", "r10")
        # uniform stage: walk the k-NN index (memory-bound) + mix
        emit_pointer_chase(b, 3, "r6", "r10", "r9")
        emit_parallel_mix(b, 32, "r9", accs=("r20", "r21", "r22", "r23"))
        b.andi("r24", "r3", 7)
        b.li("r25", 2)
        b.blt("r24", "r25", "refine")  # ~25% of keys refine first
        # common side: ~1/8 of queries skip re-ranking entirely (rare
        # early exit - it pushes the *static* post-dominator of both
        # branches past the rerank block, which default IPDOM therefore
        # executes once per side)
        b.andi("r26", "r3", 56)
        b.beq("r26", "zero", "skip_rerank")
        b.jmp("rerank")
        b.label("refine")  # expensive-preamble side: refresh candidates
        emit_pointer_chase(b, 2, "r6", "r9", "r26")
        b.li("r13", 6)
        with b.loop("r13"):
            b.hash("r20", "r20", "r24")
            b.hash("r21", "r21", "r24")
        b.label("rerank")  # shared expensive block (both sides)
        b.li("r13", 12)
        with b.loop("r13"):
            b.hash("r20", "r20", "r24")
            b.hash("r21", "r21", "r24")
            b.hash("r22", "r22", "r24")
            b.hash("r23", "r23", "r24")
            b.st("r20", "sp", 24, Segment.STACK)
        b.label("skip_rerank")
        b.call("pack_helper", frame=64)
        emit_locked_update(b, "r7", "r2")
        emit_respond(b)
        emit_helper_fn(b, "pack_helper", spills=4, work_ops=4)
        return b.build()

    def speculative_reconvergence_override(self) -> Dict[int, int]:
        """Place the sync point of both divergent branches at the head
        of the shared expensive block (paper: "place the IPDOM
        synchronization point at the beginning of the expensive
        branch") instead of their static post-dominator, which the rare
        early exit pushes past it.  A thread that actually takes the
        early exit simply runs ahead alone - the speculation cost."""
        prog = self.program
        rerank = prog.labels[self.EXPENSIVE_LABEL]
        overrides = {}
        for pc, inst in enumerate(prog.instructions):
            if inst.target in ("refine", "skip_rerank") \
                    and inst.cls.value == "branch":
                overrides[pc] = rerank
        return overrides

    def generate_requests(self, n, rng: random.Random, start_rid=0) -> List[Request]:
        return [
            Request(
                rid=start_rid + i,
                service=self.name,
                api="query",
                api_id=0,
                size=zipf_size(rng, 2, 8),
                key=zipf_key(rng),
            )
            for i in range(n)
        ]


class HdSearchLeaf(Microservice):
    """k-NN distance kernel: SIMD streaming over per-thread candidate
    vectors.  Large private footprint -> runs at batch size 8 (Fig. 15)
    and is backend-dominated (39% frontend energy, Fig. 10)."""

    name = "hdsearch-leaf"
    apis = ("knn",)
    tier = "leaf"
    simd_heavy = True
    recommended_batch = 8
    footprint_bytes = 12288  # 384 candidate vectors x 32B

    def build_program(self):
        b = ProgramBuilder(self.name)
        # materialize candidate vectors into the private buffer
        b.li("r10", 384)
        b.mov("r11", "r5")
        b.counted_loop(
            "r10",
            lambda j: (b.hash("r12", "r3", "r3"),
                       b.st("r12", "r11", 32 * j, Segment.HEAP)),
            cursors=(("r11", 32),),
            unroll=4,
        )
        # distance pass 1 and 2 (filter then re-rank) over the buffer
        b.li("r13", 384)
        emit_simd_stream(b, "r13", "r5")
        b.li("r13", 384)
        emit_simd_stream(b, "r13", "r5")
        emit_hash(b, "r14", "r3", rounds=2)
        emit_table_probe(b, "r14", "r6", "r15")  # top-k dedup check
        emit_locked_update(b, "r7", "r2")
        emit_respond(b)
        return b.build()

    def generate_requests(self, n, rng: random.Random, start_rid=0) -> List[Request]:
        return [
            Request(
                rid=start_rid + i,
                service=self.name,
                api="knn",
                api_id=0,
                size=zipf_size(rng, 2, 6),
                key=zipf_key(rng),
            )
            for i in range(n)
        ]
