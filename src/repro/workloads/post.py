"""Post family (DeathStarBench social network): post, text, urlshort,
uniqueid and usertag nanoservices.

These are the stack-dominated services: short logic wrapped in deep
helper-call chains with register spills, so most of their memory
traffic is stack-segment traffic (up to 90%, Fig. 14) which the RPU's
stack interleaving coalesces almost perfectly.
"""

from __future__ import annotations

import random
from typing import List

from ..isa.builder import ProgramBuilder
from ..isa.instructions import Segment
from .base import Microservice, Request, pick_api, zipf_key, zipf_size
from .kernels import (
    emit_hash,
    emit_helper_fn,
    emit_locked_update,
    emit_respond,
    emit_table_probe,
    emit_word_scan,
)


class PostService(Microservice):
    """Compose/read/delete posts: three APIs, deep helper chains."""

    name = "post"
    apis = ("newPost", "getPostByUser", "delPost")
    tier = "mid"
    footprint_bytes = 768

    def build_program(self):
        b = ProgramBuilder(self.name)
        b.beq("r1", "zero", "api_new")
        b.li("r9", 1)
        b.beq("r1", "r9", "api_get")
        b.jmp("api_del")

        b.label("api_new")
        emit_word_scan(b, "r2", "r4", "r10")
        b.call("validate", frame=64)
        b.call("persist", frame=64)
        emit_hash(b, "r11", "r3", rounds=3)
        b.st("r11", "r5", 0, Segment.HEAP)
        b.jmp("finish")

        b.label("api_get")
        emit_table_probe(b, "r3", "r6", "r10", mask=0x7FFFF8)
        b.call("render", frame=64)
        b.jmp("finish")

        b.label("api_del")
        emit_hash(b, "r10", "r3", rounds=2)
        b.call("validate", frame=64)
        b.call("persist", frame=64)

        b.label("finish")
        emit_locked_update(b, "r7", "r2")
        emit_respond(b)
        emit_helper_fn(b, "validate", spills=5, work_ops=5)
        emit_helper_fn(b, "persist", spills=6, work_ops=4)
        emit_helper_fn(b, "render", spills=6, work_ops=6)
        return b.build()

    def generate_requests(self, n, rng: random.Random, start_rid=0) -> List[Request]:
        out = []
        for i in range(n):
            api = pick_api(rng, (0.4, 0.4, 0.2))
            out.append(
                Request(rid=start_rid + i, service=self.name,
                        api=self.apis[api], api_id=api,
                        size=zipf_size(rng, 1, 8),
                        key=zipf_key(rng))
            )
        return out


class TextService(Microservice):
    """Tokenizes/processes the post body: trip counts track text length
    (argument-size batching is worth ~5x here, Fig. 11)."""

    name = "post-text"
    apis = ("process",)
    tier = "mid"
    footprint_bytes = 768
    #: batch-size tuning (Section III-B3): token-dictionary lookups give
    #: post-text an L1 MPKI above threshold at batch 32
    recommended_batch = 8

    def build_program(self):
        b = ProgramBuilder(self.name)
        b.mov("r10", "r2")
        b.mov("r11", "r4")
        accs = ("r15", "r19")

        def token(j):
            b.ld("r12", "r11", 8 * j, Segment.HEAP)
            b.hash("r13", "r12", "r12")
            b.andi("r16", "r13", 0xFFFF8)  # 1MB token dictionary
            b.add("r16", "r16", "r6")
            b.ld("r13", "r16", 0, Segment.HEAP, note="dictionary")
            b.st("r13", "sp", 16 + 8 * j, Segment.STACK)
            b.ld("r14", "sp", 16 + 8 * j, Segment.STACK)
            a = accs[j % 2]
            b.add(a, a, "r14")

        b.counted_loop("r10", token, cursors=(("r11", 8),), unroll=4)
        b.add("r15", "r15", "r19")
        b.call("emit_tokens", frame=64)
        emit_locked_update(b, "r7", "r2")
        emit_respond(b)
        emit_helper_fn(b, "emit_tokens", spills=5, work_ops=4)
        return b.build()

    def generate_requests(self, n, rng: random.Random, start_rid=0) -> List[Request]:
        return [
            Request(rid=start_rid + i, service=self.name, api="process",
                    api_id=0, size=zipf_size(rng, 1, 32),
                    key=zipf_key(rng))
            for i in range(n)
        ]


class UrlShortenService(Microservice):
    """Hash + base-62 encode: fixed trip counts -> high SIMT efficiency."""

    name = "urlshort"
    apis = ("shorten",)
    tier = "mid"
    footprint_bytes = 512

    def build_program(self):
        b = ProgramBuilder(self.name)
        emit_hash(b, "r10", "r3", rounds=6)
        b.li("r11", 7)  # 7 base-62 digits
        with b.loop("r11"):
            b.li("r13", 62)
            b.rem("r12", "r10", "r13")
            b.div("r10", "r10", "r13")
            b.st("r12", "sp", 16, Segment.STACK)
        b.call("store_mapping", frame=48)
        emit_table_probe(b, "r10", "r6", "r15")  # collision check
        b.andi("r14", "r10", 0x3FF8)
        b.add("r14", "r14", "r6")
        b.st("r3", "r14", 0, Segment.HEAP)
        emit_locked_update(b, "r7", "r2")
        emit_respond(b)
        emit_helper_fn(b, "store_mapping", spills=4, work_ops=3, frame=48)
        return b.build()

    def generate_requests(self, n, rng: random.Random, start_rid=0) -> List[Request]:
        return [
            Request(rid=start_rid + i, service=self.name, api="shorten",
                    api_id=0, size=zipf_size(rng, 1, 3),
                    key=zipf_key(rng))
            for i in range(n)
        ]


class UniqueIdService(Microservice):
    """Snowflake-style id generation: almost perfectly uniform control
    flow -> ~95% SIMT efficiency even with naive batching (Fig. 4)."""

    name = "uniqueid"
    apis = ("gen",)
    tier = "mid"
    footprint_bytes = 256

    def build_program(self):
        b = ProgramBuilder(self.name)
        b.ld("r10", "r6", 0, Segment.HEAP, note="clock word (shared)")
        b.li("r11", 1)
        b.amoadd("r12", "r7", "r11", offset=16, note="sequence counter")
        emit_hash(b, "r13", "r3", rounds=4)
        b.shli("r14", "r10", 20)
        b.xor("r14", "r14", "r12")
        b.xor("r14", "r14", "r13")
        b.st("r14", "r5", 0, Segment.HEAP)
        b.call("format_id", frame=48)
        emit_respond(b)
        emit_helper_fn(b, "format_id", spills=3, work_ops=3, frame=48)
        return b.build()

    def generate_requests(self, n, rng: random.Random, start_rid=0) -> List[Request]:
        return [
            Request(rid=start_rid + i, service=self.name, api="gen",
                    api_id=0, size=1, key=zipf_key(rng))
            for i in range(n)
        ]


class UserTagService(Microservice):
    """Tag membership: two APIs over small per-user tag sets."""

    name = "usertag"
    apis = ("addTag", "getTags")
    tier = "mid"
    footprint_bytes = 512

    def build_program(self):
        b = ProgramBuilder(self.name)
        b.bne("r1", "zero", "api_get")

        emit_table_probe(b, "r3", "r6", "r10", mask=0x7FFFF8)  # addTag
        b.mov("r11", "r2")
        b.mov("r13", "r5")
        b.counted_loop(
            "r11",
            lambda j: (b.hash("r12", "r3", "r3"),
                       b.st("r12", "r13", 8 * j, Segment.HEAP)),
            cursors=(("r13", 8),),
            unroll=4,
        )
        b.jmp("finish")

        b.label("api_get")
        emit_table_probe(b, "r3", "r6", "r10", mask=0x7FFFF8)
        b.mov("r11", "r2")
        b.mov("r13", "r5")
        accs2 = ("r14", "r18")
        b.counted_loop(
            "r11",
            lambda j: (b.ld("r12", "r13", 8 * j, Segment.HEAP),
                       b.add(accs2[j % 2], accs2[j % 2], "r12")),
            cursors=(("r13", 8),),
            unroll=4,
        )
        b.add("r14", "r14", "r18")

        b.label("finish")
        b.call("ack_helper", frame=48)
        emit_locked_update(b, "r7", "r2")
        emit_respond(b)
        emit_helper_fn(b, "ack_helper", spills=4, work_ops=3, frame=48)
        return b.build()

    def generate_requests(self, n, rng: random.Random, start_rid=0) -> List[Request]:
        out = []
        for i in range(n):
            api = pick_api(rng, (0.5, 0.5))
            out.append(
                Request(rid=start_rid + i, service=self.name,
                        api=self.apis[api], api_id=api,
                        size=zipf_size(rng, 1, 8),
                        key=zipf_key(rng))
            )
        return out
