"""Workload framework: requests, microservice base class, conventions.

Each microservice is one program (one "binary") for all of its APIs;
the entry dispatches on the API id held in ``r1``, exactly like the
compiled services in the paper, so API divergence is a *control-flow*
phenomenon the batching server can remove (Section III-B1).

Register conventions (set up by :meth:`Microservice.setup_thread`):

===== ==========================================================
reg   meaning
===== ==========================================================
r1    api id (index into :attr:`Microservice.apis`)
r2    request size (argument/query length in words)
r3    request key (drives hashing and data-dependent paths)
r4    pointer to the per-thread input buffer (heap)
r5    pointer to the per-thread scratch/temp allocation (heap)
r6    pointer to the service's shared table (heap, shared)
r7    pointer to the service's lock/counter word (heap, shared)
===== ==========================================================
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import random

from ..engine.memory import MemoryImage
from ..engine.thread import ThreadState
from ..isa.program import Program
from ..memsys.alloc import BaseAllocator


@dataclass
class Request:
    """One client request as seen by the SIMR-aware server."""

    rid: int
    service: str
    api: str
    api_id: int
    size: int  # argument/query length in 8-byte words
    key: int
    arrival_us: float = 0.0
    payload: Dict[str, int] = field(default_factory=dict)


class Microservice(abc.ABC):
    """A microservice: program + request distribution + thread setup."""

    #: unique registry name, e.g. ``"search-leaf"``
    name: str = ""
    #: exported API names; ``api_id`` indexes this list
    apis: Sequence[str] = ("main",)
    #: position in the service graph: front / mid / leaf
    tier: str = "mid"
    #: True for services dominated by vectorized kernels (HDSearch,
    #: Recommender leaves) - lower frontend energy share, cf. Fig. 10
    simd_heavy: bool = False
    #: paper Section III-B3 batch-size tuning: data-intensive leaves
    #: run at batch 8, everything else at 32
    recommended_batch: int = 32
    #: approximate per-thread private data footprint (drives Fig. 15)
    footprint_bytes: int = 2048

    def __init__(self) -> None:
        self._program: Optional[Program] = None

    @property
    def program(self) -> Program:
        if self._program is None:
            self._program = self.build_program()
        return self._program

    @abc.abstractmethod
    def build_program(self) -> Program:
        """Author the service binary (built once, shared by requests)."""

    @abc.abstractmethod
    def generate_requests(self, n: int, rng: random.Random,
                          start_rid: int = 0) -> List[Request]:
        """Draw ``n`` requests from the service's arrival distribution."""

    def shared_setup(self, mem: MemoryImage, allocator: BaseAllocator) -> Dict[str, int]:
        """One-time shared state (tables, locks).  Returns named addresses."""
        table = allocator.alloc_shared(8 << 20)
        lock = allocator.alloc_shared(64)
        mem.write(lock, 0)
        return {"table": table, "lock": lock}

    def setup_thread(self, thread: ThreadState, request: Request,
                     mem: MemoryImage, allocator: BaseAllocator,
                     shared: Dict[str, int]) -> None:
        """Load request data into memory and registers (default ABI)."""
        regs = thread.regs
        regs[1] = request.api_id
        regs[2] = request.size
        regs[3] = request.key
        inbuf = allocator.alloc(max(64, request.size * 8 + 16), thread.tid)
        mem.write_block(inbuf, _words_of(request.key, request.size))
        regs[4] = inbuf
        scratch = allocator.alloc(max(64, self.footprint_bytes), thread.tid)
        regs[5] = scratch
        regs[6] = shared["table"]
        regs[7] = shared["lock"]
        thread.request = request


#: request content cache: (key, size) -> word list.  Key popularity is
#: heavily skewed (zipf_key's hot set), so consecutive batches mostly
#: re-request the same few hundred (key, size) pairs; bounded so an
#: adversarial key stream cannot grow it without limit.
_WORDS_CACHE: Dict[tuple, List[int]] = {}
_WORDS_CACHE_MAX = 4096


def _words_of(key: int, size: int) -> List[int]:
    """Content words for a request (cached; see :func:`_word_of`)."""
    words = _WORDS_CACHE.get((key, size))
    if words is None:
        if len(_WORDS_CACHE) >= _WORDS_CACHE_MAX:
            _WORDS_CACHE.clear()
        words = [_word_of(key, i) for i in range(size)]
        _WORDS_CACHE[(key, size)] = words
    return words


def _word_of(key: int, i: int) -> int:
    """Deterministic content word for position ``i`` of a request.

    ~80% of words come from a small hot vocabulary (natural-language
    and key-popularity skew), so dictionary/posting lookups show the
    locality real services have.
    """
    x = (key * 0x9E3779B1 + i * 0x85EBCA77) & 0xFFFF_FFFF
    x ^= x >> 15
    x &= 0x7FFF_FFFF
    if x & 0xF < 15:  # hot word (~94%)
        return x % 512
    return x


def zipf_key(rng: random.Random, hot_keys: int = 512,
             space: int = 1 << 24, p_hot: float = 0.97) -> int:
    """Key-popularity model: ``p_hot`` of requests target a small hot
    set (memcached/user-id skew), the rest are uniform over ``space``."""
    if rng.random() < p_hot:
        return rng.randrange(hot_keys)
    return rng.randrange(space)


def zipf_size(rng: random.Random, lo: int, hi: int, skew: float = 2.0) -> int:
    """Zipf-ish integer in [lo, hi]: small values common, tail long."""
    span = hi - lo + 1
    u = rng.random()
    val = int(span * (u ** skew))
    return lo + min(span - 1, val)


def pick_api(rng: random.Random, weights: Sequence[float]) -> int:
    """Weighted API selection."""
    x = rng.random() * sum(weights)
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if x < acc:
            return i
    return len(weights) - 1
