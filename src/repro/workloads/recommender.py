"""Recommender family (µSuite): mid-tier feature prep and SIMD leaf."""

from __future__ import annotations

import random
from typing import List

from ..isa.builder import ProgramBuilder
from ..isa.instructions import Segment
from .base import Microservice, Request, zipf_key, zipf_size
from .kernels import (
    emit_hash,
    emit_helper_fn,
    emit_pointer_chase,
    emit_locked_update,
    emit_respond,
    emit_simd_stream,
    emit_table_probe,
    emit_word_scan,
)


class RecommenderMidTier(Microservice):
    """Assembles the feature vector for the scoring leaf."""

    name = "recommender-midtier"
    apis = ("recommend",)
    tier = "mid"
    footprint_bytes = 1024

    def build_program(self):
        b = ProgramBuilder(self.name)
        emit_word_scan(b, "r2", "r4", "r10")
        emit_pointer_chase(b, 2, "r6", "r10", "r9")  # feature store
        b.mov("r11", "r2")
        b.mov("r12", "r5")
        b.counted_loop(  # normalize features into scratch (unrolled)
            "r11",
            lambda j: (b.hash("r13", "r10", "r10"),
                       b.st("r13", "r12", 8 * j, Segment.HEAP)),
            cursors=(("r12", 8),),
            unroll=4,
        )
        b.call("ctx_helper", frame=64)
        emit_locked_update(b, "r7", "r2")
        emit_respond(b)
        emit_helper_fn(b, "ctx_helper", spills=5, work_ops=4)
        return b.build()

    def generate_requests(self, n, rng: random.Random, start_rid=0) -> List[Request]:
        return [
            Request(rid=start_rid + i, service=self.name, api="recommend",
                    api_id=0, size=zipf_size(rng, 2, 10),
                    key=zipf_key(rng))
            for i in range(n)
        ]


class RecommenderLeaf(Microservice):
    """MLPack-style scoring: SIMD dot products against the *shared*
    model matrix - broadcast-coalescable loads, SIMD-dominated energy."""

    name = "recommender-leaf"
    apis = ("score",)
    tier = "leaf"
    simd_heavy = True
    footprint_bytes = 2048

    def build_program(self):
        b = ProgramBuilder(self.name)
        # user embedding into scratch (private, small)
        b.li("r10", 16)
        b.mov("r11", "r5")
        b.counted_loop(
            "r10",
            lambda j: (b.hash("r12", "r3", "r3"),
                       b.st("r12", "r11", 8 * j, Segment.HEAP)),
            cursors=(("r11", 8),),
            unroll=4,
        )
        # score against 128 shared model rows: identical addresses in
        # every lane -> the MCU broadcasts one access per vector
        b.li("r13", 128)
        emit_simd_stream(b, "r13", "r6")
        # rescore the private embedding
        b.li("r13", 4)
        emit_simd_stream(b, "r13", "r5")
        emit_hash(b, "r14", "r3", rounds=2)
        emit_table_probe(b, "r14", "r6", "r15")  # popularity-bias check
        emit_locked_update(b, "r7", "r2")
        emit_respond(b)
        return b.build()

    def generate_requests(self, n, rng: random.Random, start_rid=0) -> List[Request]:
        return [
            Request(rid=start_rid + i, service=self.name, api="score",
                    api_id=0, size=zipf_size(rng, 2, 6),
                    key=zipf_key(rng))
            for i in range(n)
        ]
