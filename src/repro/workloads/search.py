"""Search family (µSuite): mid-tier aggregator and leaf shard."""

from __future__ import annotations

import random
from typing import List

from ..isa.builder import ProgramBuilder
from ..isa.instructions import Segment, SyscallKind
from .base import Microservice, Request, zipf_key, zipf_size
from .kernels import (
    emit_hash,
    emit_helper_fn,
    emit_locked_update,
    emit_private_stream,
    emit_respond,
    emit_word_scan,
)


class SearchMidTier(Microservice):
    """Parses the query, fans out to leaf shards, merges responses."""

    name = "search-midtier"
    apis = ("search",)
    tier = "mid"
    footprint_bytes = 1536

    def build_program(self):
        b = ProgramBuilder(self.name)
        emit_word_scan(b, "r2", "r4", "r10")  # parse query words
        b.call("prep_helper", frame=64)
        b.syscall(SyscallKind.NETWORK, note="fan out to leaf shards")
        # merge 8 shard responses from the scratch buffer
        b.li("r12", 8)
        b.mov("r13", "r5")
        b.counted_loop(  # merge shard responses (unrolled)
            "r12",
            lambda j: (b.ld("r14", "r13", 8 * j, Segment.HEAP),
                       b.st("r14", "sp", 16 + 8 * j, Segment.STACK),
                       b.ld("r15", "sp", 16 + 8 * j, Segment.STACK),
                       b.max("r10", "r10", "r15")),
            cursors=(("r13", 8),),
            unroll=4,
        )
        emit_locked_update(b, "r7", "r2")
        emit_respond(b)
        emit_helper_fn(b, "prep_helper", spills=5, work_ops=4)
        return b.build()

    def generate_requests(self, n, rng: random.Random, start_rid=0) -> List[Request]:
        return [
            Request(
                rid=start_rid + i,
                service=self.name,
                api="search",
                api_id=0,
                size=zipf_size(rng, 1, 12),
                key=zipf_key(rng),
            )
            for i in range(n)
        ]


class SearchLeaf(Microservice):
    """Posting-list intersection over the shard's inverted index.

    Trip counts scale with the query length (argument-size batching is
    worth ~5x here, Fig. 11) with a data-dependent posting-list length
    per word; results accumulate in a private array (divergent heap).
    """

    name = "search-leaf"
    apis = ("search",)
    tier = "leaf"
    footprint_bytes = 8192
    recommended_batch = 8

    def build_program(self):
        b = ProgramBuilder(self.name)
        b.mov("r10", "r2")   # remaining query words
        b.mov("r11", "r4")   # input cursor
        b.mov("r12", "r5")   # private result cursor
        outer = b.fresh("word")
        done = b.fresh("done")
        b.label(outer)
        b.ble("r10", "zero", done)
        b.ld("r13", "r11", 0, Segment.HEAP)        # query word
        emit_hash(b, "r14", "r13", rounds=2)
        b.andi("r15", "r14", 15)
        b.addi("r15", "r15", 24)                   # posting length 24..39
        b.andi("r16", "r14", 0x7FFFF8)
        b.add("r16", "r16", "r6")                  # posting base (shared)
        b.counted_loop(  # walk the posting list (unrolled)
            "r15",
            lambda j: (b.ld("r17", "r16", 8 * j, Segment.HEAP),
                       b.hash("r18", "r17", "r13"),
                       b.st("r18", "r12", 8 * j, Segment.HEAP)),
            cursors=(("r16", 8), ("r12", 8)),
            unroll=4,
        )
        b.addi("r11", "r11", 8)
        b.addi("r10", "r10", -1)
        b.jmp(outer)
        b.label(done)
        # rank: sparse two-pass walk over the private scoring structure
        emit_private_stream(b, 256, "r5", "r19", write_first=True,
                            stride=32)
        emit_locked_update(b, "r7", "r2")
        emit_respond(b)
        return b.build()

    def generate_requests(self, n, rng: random.Random, start_rid=0) -> List[Request]:
        return [
            Request(
                rid=start_rid + i,
                service=self.name,
                api="search",
                api_id=0,
                size=zipf_size(rng, 1, 12),
                key=zipf_key(rng),
            )
            for i in range(n)
        ]
