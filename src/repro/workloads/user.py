"""User service and social-graph service.

``user`` implements the paper's Fig. 17 pattern verbatim: try the
memcached tier first (hit ~90%), fall back to millisecond-scale storage
on a miss and refill the cache - the latency-divergence case that
motivates system-level batch splitting (Section III-B5).
"""

from __future__ import annotations

import random
from typing import List

from ..isa.builder import ProgramBuilder
from ..isa.instructions import Segment, SyscallKind
from .base import Microservice, Request, pick_api, zipf_key, zipf_size
from .kernels import (
    emit_hash,
    emit_parallel_mix,
    emit_pointer_chase,
    emit_helper_fn,
    emit_locked_update,
    emit_respond,
    emit_table_probe,
    emit_word_scan,
)


class UserService(Microservice):
    """User profile/login service with the Fig. 17 cache-or-storage path."""

    name = "user"
    apis = ("profile", "login")
    tier = "mid"
    footprint_bytes = 768

    #: fraction of profile lookups that hit memcached; requests carry
    #: the outcome in ``payload["mc_hit"]`` so the system-level model
    #: and the instruction-level model agree
    MEMCACHED_HIT_RATE = 0.9

    def build_program(self):
        b = ProgramBuilder(self.name)
        b.bne("r1", "zero", "api_login")

        # --- profile: Fig. 17 get-or-fill-cache pattern ---------------
        emit_table_probe(b, "r3", "r6", "r10", mask=0x7FFFF8)
        emit_pointer_chase(b, 1, "r6", "r10", "r9")  # follow row pointer
        # r8 carries the precomputed hit/miss outcome (payload word)
        b.bne("r8", "zero", "mc_hit")
        # miss: fetch the row from storage and refill the cache
        b.syscall(SyscallKind.STORAGE, note="db_select users")
        b.li("r11", 10)
        with b.loop("r11"):  # deserialize the row
            b.hash("r12", "r11", "r3")
            b.st("r12", "r5", 0, Segment.HEAP)
        b.syscall(SyscallKind.MEMCACHED, note="memcached_add")
        b.label("mc_hit")  # SIMT reconvergence point (Fig. 17 line 11)
        emit_parallel_mix(b, 40, "r10", accs=("r20", "r21", "r22", "r23"))
        b.st("r20", "sp", 16, Segment.STACK)
        b.call("render_profile", frame=64)
        b.jmp("finish")

        # --- login: credential hash check ------------------------------
        b.label("api_login")
        emit_word_scan(b, "r2", "r4", "r10")
        # password stretching rounds (uniform)
        emit_parallel_mix(b, 40, "r10", accs=("r20", "r21", "r22", "r23"))
        emit_hash(b, "r13", "r20", rounds=6)
        b.call("session_helper", frame=64)

        b.label("finish")
        emit_locked_update(b, "r7", "r2")
        emit_respond(b)
        emit_helper_fn(b, "render_profile", spills=6, work_ops=5)
        emit_helper_fn(b, "session_helper", spills=4, work_ops=4)
        return b.build()

    def setup_thread(self, thread, request, mem, allocator, shared):
        super().setup_thread(thread, request, mem, allocator, shared)
        thread.regs[8] = request.payload.get("mc_hit", 1)

    def generate_requests(self, n, rng: random.Random, start_rid=0) -> List[Request]:
        out = []
        for i in range(n):
            api = pick_api(rng, (0.7, 0.3))
            hit = 1 if rng.random() < self.MEMCACHED_HIT_RATE else 0
            out.append(
                Request(rid=start_rid + i, service=self.name,
                        api=self.apis[api], api_id=api,
                        size=zipf_size(rng, 1, 8),
                        key=zipf_key(rng),
                        payload={"mc_hit": hit})
            )
        return out


class SocialGraphService(Microservice):
    """Streaming graph updates (SAGA-Bench): neighbor walks with
    fine-grained atomic updates to shared vertex counters."""

    name = "socialgraph"
    apis = ("update",)
    tier = "leaf"
    footprint_bytes = 1024
    #: graph partitions thrash the L1 at batch 32 (Section III-B3)
    recommended_batch = 8

    def build_program(self):
        b = ProgramBuilder(self.name)
        emit_hash(b, "r10", "r3", rounds=2)
        b.andi("r11", "r10", 7)
        b.addi("r11", "r11", 8)  # degree 8..15
        b.andi("r12", "r10", 0x3FFF8)
        b.add("r12", "r12", "r6")  # adjacency base (shared)
        accs = ("r18", "r19")

        def neighbor(j):
            b.ld("r13", "r12", 8 * j, Segment.HEAP)  # neighbor id
            b.andi("r14", "r13", 0xFFF8)
            b.add("r14", "r14", "r6")
            b.ld("r17", "r14", 0, Segment.HEAP)  # neighbor row
            a = accs[j % 2]
            b.add(a, a, "r17")

        b.counted_loop("r11", neighbor, cursors=(("r12", 8),), unroll=4)
        b.add("r18", "r18", "r19")
        # one fine-grained atomic per update (aggregated delta)
        b.amoadd("r16", "r7", "r18", note="vertex counter")
        b.call("compact_helper", frame=48)
        emit_respond(b)
        emit_helper_fn(b, "compact_helper", spills=3, work_ops=3, frame=48)
        return b.build()

    def generate_requests(self, n, rng: random.Random, start_rid=0) -> List[Request]:
        return [
            Request(rid=start_rid + i, service=self.name, api="update",
                    api_id=0, size=zipf_size(rng, 1, 4),
                    key=zipf_key(rng))
            for i in range(n)
        ]
