"""Registry of the 15 studied microservices (paper Section IV)."""

from __future__ import annotations

from typing import Dict, List, Type

from .base import Microservice
from .hdsearch import HdSearchLeaf, HdSearchMidTier
from .memcached import McRouter, MemcachedBackend
from .post import (
    PostService,
    TextService,
    UniqueIdService,
    UrlShortenService,
    UserTagService,
)
from .recommender import RecommenderLeaf, RecommenderMidTier
from .search import SearchLeaf, SearchMidTier
from .user import SocialGraphService, UserService

SERVICE_CLASSES: List[Type[Microservice]] = [
    McRouter,
    MemcachedBackend,
    SearchMidTier,
    SearchLeaf,
    HdSearchMidTier,
    HdSearchLeaf,
    RecommenderMidTier,
    RecommenderLeaf,
    PostService,
    TextService,
    UrlShortenService,
    UniqueIdService,
    UserTagService,
    UserService,
    SocialGraphService,
]

SERVICE_NAMES: List[str] = [cls.name for cls in SERVICE_CLASSES]

_BY_NAME: Dict[str, Type[Microservice]] = {c.name: c for c in SERVICE_CLASSES}


def get_service(name: str) -> Microservice:
    """Instantiate a microservice by registry name."""
    try:
        return _BY_NAME[name]()
    except KeyError:
        raise KeyError(
            f"unknown service {name!r}; known: {', '.join(SERVICE_NAMES)}"
        ) from None


def all_services() -> List[Microservice]:
    """Fresh instances of all 15 studied microservices."""
    return [cls() for cls in SERVICE_CLASSES]
