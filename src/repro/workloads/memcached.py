"""Memcached family: McRouter (front) and the memcached backend (leaf)."""

from __future__ import annotations

import random
from typing import List

from ..isa.builder import ProgramBuilder
from ..isa.instructions import Segment
from .base import Microservice, Request, pick_api, zipf_key, zipf_size
from .kernels import (
    emit_hash,
    emit_helper_fn,
    emit_locked_update,
    emit_respond,
    emit_table_probe,
    emit_word_scan,
)


class McRouter(Microservice):
    """Routes keys to backend shards: hashing + routing-table lookup."""

    name = "mcrouter"
    apis = ("route",)
    tier = "front"
    footprint_bytes = 512

    def build_program(self):
        b = ProgramBuilder(self.name)
        emit_hash(b, "r10", "r3", rounds=4)
        b.andi("r11", "r10", 7)  # shard id
        b.shli("r12", "r11", 3)
        b.add("r12", "r12", "r6")
        b.ld("r13", "r12", 0, Segment.HEAP, note="routing table")
        emit_word_scan(b, "r2", "r4", "r10")
        b.call("route_helper", frame=64)
        emit_locked_update(b, "r7", "r11")
        emit_respond(b)
        emit_helper_fn(b, "route_helper", spills=4, work_ops=4)
        return b.build()

    def generate_requests(self, n, rng: random.Random, start_rid=0) -> List[Request]:
        return [
            Request(
                rid=start_rid + i,
                service=self.name,
                api="route",
                api_id=0,
                size=zipf_size(rng, 1, 4),
                key=zipf_key(rng),
            )
            for i in range(n)
        ]


class MemcachedBackend(Microservice):
    """The in-DRAM key-value store: get (90%) / set (10%) APIs."""

    name = "memcached"
    apis = ("get", "set")
    tier = "leaf"
    footprint_bytes = 1024

    def build_program(self):
        b = ProgramBuilder(self.name)
        b.bne("r1", "zero", "api_set")

        # --- get: probe the shared table, read the value out ----------
        emit_table_probe(b, "r3", "r6", "r10", mask=0x7FFFF8)
        b.andi("r10", "r10", 0xFFF8)  # value pointer into the hot value log
        b.add("r10", "r10", "r6")
        b.mov("r12", "r2")
        b.mov("r13", "r5")
        b.counted_loop(  # copy value into response buffer (unrolled)
            "r12",
            lambda j: (b.ld("r14", "r10", 8 * j, Segment.HEAP),
                       b.st("r14", "r13", 8 * j, Segment.HEAP)),
            cursors=(("r10", 8), ("r13", 8)),
            unroll=4,
        )
        b.call("stats_helper", frame=48)
        b.jmp("finish")

        # --- set: hash key, write value words into the table ----------
        b.label("api_set")
        emit_hash(b, "r10", "r3", rounds=3)
        # sets recycle slabs in the hot value log (slab allocator reuse)
        b.andi("r10", "r10", 0xFFF8)
        b.add("r10", "r10", "r6")
        b.mov("r12", "r2")
        b.mov("r13", "r4")
        b.counted_loop(  # write the new value into the table (unrolled)
            "r12",
            lambda j: (b.ld("r14", "r13", 8 * j, Segment.HEAP),
                       b.st("r14", "r10", 8 * j, Segment.HEAP)),
            cursors=(("r10", 8), ("r13", 8)),
            unroll=4,
        )
        b.call("stats_helper", frame=48)

        b.label("finish")
        emit_locked_update(b, "r7", "r2")
        emit_respond(b)
        emit_helper_fn(b, "stats_helper", spills=3, work_ops=3, frame=48)
        return b.build()

    def generate_requests(self, n, rng: random.Random, start_rid=0) -> List[Request]:
        out = []
        for i in range(n):
            api = pick_api(rng, (0.9, 0.1))
            out.append(
                Request(
                    rid=start_rid + i,
                    service=self.name,
                    api=self.apis[api],
                    api_id=api,
                    size=zipf_size(rng, 1, 16),
                    key=zipf_key(rng),
                )
            )
        return out
