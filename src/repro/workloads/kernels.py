"""Reusable code kernels shared by the microservice programs.

These emit the recurring code shapes the paper's characterization
identifies: hash computations, string/word compares, hash-table probes,
pointer-chasing walks, SIMD streaming kernels, stack-spill-heavy helper
calls, and lock-protected counter updates.

Hot loops are emitted 4x-unrolled with rotated accumulators, the code
``-O3`` produces for such loops (the paper compiles its services with
-O3).  This matters for fairness across design points: without
unrolling, the loop-counter recurrence would bound every loop at one
iteration per ALU latency, overstating the RPU's 4-cycle ALUs.
``r31`` is reserved by the assembler's ``counted_loop``.
"""

from __future__ import annotations

from ..isa.builder import ProgramBuilder
from ..isa.instructions import Segment, SyscallKind

UNROLL = 4


def emit_hash(b: ProgramBuilder, dst: str, src: str, rounds: int = 3) -> None:
    """A few rounds of integer mixing (inlined hash function)."""
    b.hash(dst, src, src)
    for _ in range(rounds - 1):
        b.hash(dst, dst, src)


def emit_word_scan(b: ProgramBuilder, len_reg: str, ptr_reg: str,
                   acc_reg: str, tmp: str = "r16") -> None:
    """Loop over ``len_reg`` input words, mixing each into ``acc_reg``.

    Models query parsing / string processing whose trip count is the
    request's argument length - the divergence the per-argument-size
    batching policy removes.
    """
    cursor, count, acc2 = "r17", "r18", "r19"
    b.mov(cursor, ptr_reg)
    b.mov(count, len_reg)
    b.mov(acc2, acc_reg)
    accs = (acc_reg, acc2)

    def body(j):
        b.ld(tmp, cursor, 8 * j, Segment.HEAP)
        a = accs[j % 2]
        b.hash(a, a, tmp)

    b.counted_loop(count, body, cursors=((cursor, 8),), unroll=UNROLL)
    b.hash(acc_reg, acc_reg, acc2)


def emit_parallel_mix(b: ProgramBuilder, iters: int, src: str,
                      accs=("r12", "r13", "r14", "r15")) -> None:
    """Unrolled compute kernel with 4 independent accumulator chains.

    Compilers unroll hot scalar loops for ILP; four parallel dependency
    chains keep both the CPU's 1-cycle and the RPU's 4-cycle ALUs
    saturated, so uniform compute costs scale fairly across designs.
    """
    counter = "r11"
    b.li(counter, iters // len(accs))
    with b.loop(counter):
        for acc in accs:
            b.hash(acc, acc, src)


def emit_pointer_chase(b: ProgramBuilder, hops: int, table_reg: str,
                       key_reg: str, out_reg: str,
                       mask: int = 0x7FFFF8) -> None:
    """Dependent pointer chase through a large shared structure.

    Models tree/linked-structure traversal (deserialization, index
    lookup) over service state far bigger than the caches - the
    behaviour behind the paper's data center characterization of low
    IPC with long memory stalls and ineffective prefetchers.
    """
    b.hash(out_reg, key_reg, key_reg)
    for _ in range(hops):
        b.andi("r30", out_reg, mask)
        b.add("r30", "r30", table_reg)
        b.ld(out_reg, "r30", 0, Segment.HEAP, note="chase")


def emit_table_probe(b: ProgramBuilder, key_reg: str, table_reg: str,
                     out_reg: str, mask: int = 0x1FF8,
                     miss_label_rounds: int = 2) -> None:
    """Open-addressing hash-table probe with a data-dependent re-probe.

    ~1/4 of keys take the re-probe path (background-value parity), the
    residual control divergence that keeps optimized SIMT efficiency at
    the paper's ~92% rather than 100%.
    """
    idx, probe, val = "r19", "r20", out_reg
    emit_hash(b, idx, key_reg, rounds=2)
    b.andi(probe, idx, mask)
    b.add(probe, probe, table_reg)
    b.ld(val, probe, 0, Segment.HEAP)
    done = b.fresh("probe_done")
    b.andi("r21", val, 3)
    b.bne("r21", "zero", done)  # 3/4 of entries "hit" immediately
    for _ in range(miss_label_rounds):  # linear re-probe
        b.addi(probe, probe, 8)
        b.ld(val, probe, 0, Segment.HEAP)
        b.hash(val, val, idx)
    b.label(done)


def emit_private_stream(b: ProgramBuilder, words: int, ptr_reg: str,
                        acc_reg: str, write_first: bool = True,
                        stride: int = 8) -> None:
    """Two-pass stream over a private heap array (paper Fig. 16a).

    Pass 1 writes intermediate results, pass 2 reads and reduces.  The
    footprint (``words * stride`` bytes per thread) is what thrashes
    the RPU's shared L1 at large batch sizes (Fig. 15); a cache-line
    ``stride`` touches one word per line, modelling sparse structures.
    """
    cursor, count, tmp = "r22", "r23", "r24"
    acc2 = "r20"
    if write_first:
        b.mov(cursor, ptr_reg)
        b.li(count, words)

        def wbody(j):
            b.hash(tmp, acc_reg, acc_reg)
            b.st(tmp, cursor, stride * j, Segment.HEAP)

        b.counted_loop(count, wbody, cursors=((cursor, stride),),
                       unroll=UNROLL)
    b.mov(cursor, ptr_reg)
    b.li(count, words)
    b.mov(acc2, acc_reg)
    accs = (acc_reg, acc2)

    def rbody(j):
        b.ld(tmp, cursor, stride * j, Segment.HEAP)
        a = accs[j % 2]
        b.add(a, a, tmp)

    b.counted_loop(count, rbody, cursors=((cursor, stride),), unroll=UNROLL)
    b.add(acc_reg, acc_reg, acc2)


def emit_simd_stream(b: ProgramBuilder, vecs_reg: str, ptr_reg: str,
                     acc_vreg: str = "r25") -> None:
    """Streaming SIMD kernel: vld + 2 fused vector ops per 32B vector.

    Models the MKL/FLANN distance and dot-product kernels that make
    HDSearch-leaf and Recommender-leaf backend-dominated (Fig. 10).
    Two rotated vector accumulators keep the SIMD pipes busy.
    """
    cursor, count, vtmp, acc2 = "r26", "r27", "r24", "r28"
    b.mov(cursor, ptr_reg)
    b.mov(count, vecs_reg)
    accs = (acc_vreg, acc2)

    def body(j):
        b.vld(vtmp, cursor, 32 * j, Segment.HEAP)
        a = accs[j % 2]
        b.vop(a, a, vtmp, note="fma")
        b.vop(a, a, vtmp, note="fma")

    b.counted_loop(count, body, cursors=((cursor, 32),), unroll=2)
    b.vop(acc_vreg, acc_vreg, acc2, note="reduce")


def emit_helper_fn(b: ProgramBuilder, label: str, spills: int = 4,
                   work_ops: int = 4, frame: int = 64) -> None:
    """A leaf helper function with prologue/epilogue register spills.

    Emits the function body at ``label``; callers use
    ``b.call(label, frame=frame)``.  The spill/reload pairs produce the
    stack-segment traffic that dominates the Post/User family (up to
    90% of accesses, Fig. 14) and that stack interleaving coalesces.
    """
    b.label(label)
    # slot 0 holds the return address pushed by call; spill above it
    for i in range(spills):
        b.st(f"r{8 + i}", "sp", 8 * (i + 1), Segment.STACK)
    for i in range(work_ops):
        b.hash("r8", "r8", f"r{9 + i % 3}")
    for i in range(spills):
        b.ld(f"r{8 + i}", "sp", 8 * (i + 1), Segment.STACK)
    b.ret()


def emit_locked_update(b: ProgramBuilder, lock_reg: str, delta_reg: str,
                       fine_grained: bool = True) -> None:
    """Lock-free atomic counter bump (fine-grained locking assumption).

    The paper assumes optimized services use fine-grained locks /
    atomics; on the RPU atomics execute at the shared L3.
    """
    b.amoadd("r28", lock_reg, delta_reg, offset=8, note="counter")


def emit_respond(b: ProgramBuilder) -> None:
    """Send the response over the network and finish.

    Reads a few service-config globals first (socket descriptors,
    serialization flags) - identical addresses in every lane, which the
    MCU broadcasts as a single access (paper: "shared inter-request
    data structures ... loaded once for all the threads in a batch").
    """
    for off in (0, 8, 16):
        b.ld("r30", "r6", off, Segment.HEAP, note="service config")
    b.syscall(SyscallKind.NETWORK, note="respond")
    b.halt()
