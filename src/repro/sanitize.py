"""Lightweight runtime invariant checks ("simulation sanitizer").

Enabled by setting ``REPRO_SANITIZE=1`` in the environment.  The hooks
live directly in the hot models - :mod:`repro.engine.lockstep`,
:mod:`repro.batching.driver`, :mod:`repro.memsys.alloc` and
:mod:`repro.system.queueing` - and verify structural invariants that no
ordinary unit assertion sees:

* lockstep: every executed group is an active-mask subset of the alive
  threads of the batch (no halted thread retires, no duplicate lanes),
  all members sit at the scheduled (depth, pc) key, and the final
  ``scalar_instructions`` counter equals the sum of per-thread retire
  deltas;
* RPU driver: ready-queue pops are time-monotonic, ``busy <= makespan``
  and every batch finishes within the makespan;
* allocators: every block stays inside its thread's arena and the
  SIMR-aware allocator really lands on the ``tid % n_banks`` bank;
* queueing simulator: no event is scheduled into the past, stations
  drain completely, every injected job completes exactly once
  (conservation of jobs), and a batched station dispatches each batch
  through exactly one completion-callback object;
* resilience layer (:mod:`repro.system.resilience`): every logical
  request resolves exactly once as completed, shed or
  deadline-violated; every launched attempt - including hedge losers
  and post-resolution stragglers - is accounted exactly once (no job
  leaks across hedge "cancellation", which is really first-wins
  draining); per-request retry/hedge counts stay within their
  configured budgets; completions never predate their arrivals;
* persistent store (:mod:`repro.store`): every freshly written entry
  is immediately read back through the full magic/CRC/unpickle
  validation path (the write path is the one place corruption could be
  *made*), and ``run_chip`` callers vouching for a custom allocator
  via ``allocator_signature`` are checked against the signature the
  factory actually constructs.

The checks are deliberately cheap (a captured local bool per run loop)
so the differential fuzzer (:mod:`repro.fuzz`) and the tier-1 test
suite can both run with the sanitizer on.  Violations raise
:class:`SanitizerError` - a bug in the simulator, never a user error.
"""

from __future__ import annotations

import os


class SanitizerError(AssertionError):
    """An internal simulation invariant was violated (a simulator bug)."""


def sanitizer_enabled() -> bool:
    """True when ``REPRO_SANITIZE=1`` (re-read per call, so tests and
    the fuzz CLI can toggle it without re-importing modules)."""
    return os.environ.get("REPRO_SANITIZE", "") == "1"


def check(cond: bool, msg: str, *args) -> None:
    """Raise :class:`SanitizerError` with ``msg % args`` unless ``cond``."""
    if not cond:
        raise SanitizerError(msg % args if args else msg)
