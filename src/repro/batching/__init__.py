"""SIMR-aware batching server: policies, splitting, batch-size tuning."""

from .driver import (
    BatchTask,
    ComputePhase,
    DriverStats,
    IoPhase,
    RpuDriver,
    make_io_batch,
)
from .policies import (
    POLICIES,
    batch_isolate_outliers,
    batch_naive,
    batch_per_api,
    batch_per_api_size,
    form_batches,
)
from .splitter import (
    SplitDecision,
    memcached_miss_predicate,
    rebatch_orphans,
    split_batch,
)
from .tuning import BatchSizeTuner, TuningResult

__all__ = [
    "BatchTask",
    "ComputePhase",
    "DriverStats",
    "IoPhase",
    "POLICIES",
    "RpuDriver",
    "make_io_batch",
    "BatchSizeTuner",
    "SplitDecision",
    "TuningResult",
    "batch_isolate_outliers",
    "batch_naive",
    "batch_per_api",
    "batch_per_api_size",
    "form_batches",
    "memcached_miss_predicate",
    "rebatch_orphans",
    "split_batch",
]
