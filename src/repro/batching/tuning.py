"""Offline batch-size tuning (paper Section III-B3).

Data center operators tune the batch size per microservice offline; the
paper runs everything at 32 except the data-intensive leaves, which are
throttled to 8 once their L1 MPKI at batch 32 exceeds an acceptable
level.  The tuner reproduces that procedure against any measurement
callable (tests inject synthetic curves; experiments pass the cache
model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence


@dataclass
class TuningResult:
    chosen: int
    mpki_by_batch: Dict[int, float]


class BatchSizeTuner:
    """Offline per-service batch-size tuning by L1 MPKI threshold."""

    def __init__(self, mpki_fn: Callable[[int], float],
                 candidates: Sequence[int] = (32, 16, 8, 4),
                 mpki_threshold: float = 20.0):
        self.mpki_fn = mpki_fn
        self.candidates = sorted(candidates, reverse=True)
        self.mpki_threshold = mpki_threshold

    def tune(self) -> TuningResult:
        """Pick the largest batch size whose MPKI is acceptable.

        Falls back to the smallest candidate if none qualifies.
        """
        curve: Dict[int, float] = {}
        chosen = self.candidates[-1]
        for size in self.candidates:
            curve[size] = self.mpki_fn(size)
        for size in self.candidates:  # largest first
            if curve[size] <= self.mpki_threshold:
                chosen = size
                break
        return TuningResult(chosen=chosen, mpki_by_batch=curve)
