"""RPU driver: batch-granularity context switching and grouped I/O
wakeups (paper Section III-B5, first paragraph).

On the RPU either all threads of a batch run or the whole batch is
switched out.  When the batch blocks on I/O, the driver *groups* the
arriving completion interrupts and wakes the whole batch once, so
lockstep execution resumes with a full active mask.  The ablation
("eager" wakeup, one context switch per interrupt as a per-thread OS
would do) shows why grouping matters: a 32-thread batch would otherwise
pay up to 32 context switches per I/O phase.

The model is a small deterministic scheduler over batches composed of
compute and I/O phases; it reports makespan, context switches and core
utilization, and is exercised by the ``examples/design_space.py``
follow-ups and the unit tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..sanitize import check, sanitizer_enabled
from ..system.scheduler import EventWheel, wheel_enabled


@dataclass(frozen=True)
class ComputePhase:
    """Lockstep execution for ``duration_us`` on the core."""

    duration_us: float


@dataclass(frozen=True)
class IoPhase:
    """Each thread issues an I/O with its own completion latency."""

    latencies_us: Tuple[float, ...]

    @property
    def last_completion(self) -> float:
        return max(self.latencies_us)


Phase = Union[ComputePhase, IoPhase]


@dataclass
class BatchTask:
    """One batch: alternating compute / I/O phases."""

    bid: int
    phases: List[Phase]
    finished_at: float = 0.0


@dataclass
class DriverStats:
    makespan_us: float
    context_switches: int
    busy_us: float
    interrupts: int

    @property
    def utilization(self) -> float:
        return self.busy_us / self.makespan_us if self.makespan_us else 0.0


class RpuDriver:
    """Schedules batches on one RPU core.

    ``wake_policy``:

    * ``"grouped"`` - the paper's policy: the driver holds completion
      interrupts and makes the batch runnable once ALL of its threads'
      I/O has completed (one context switch in, full active mask).
    * ``"eager"`` - ablation: every interrupt wakes the batch to handle
      it (a context switch per interrupt, as with per-thread wakeups).
    """

    def __init__(self, context_switch_us: float = 2.0,
                 interrupt_handling_us: float = 0.5,
                 wake_policy: str = "grouped"):
        if wake_policy not in ("grouped", "eager"):
            raise ValueError(f"unknown wake policy {wake_policy!r}")
        self.context_switch_us = context_switch_us
        self.interrupt_handling_us = interrupt_handling_us
        self.wake_policy = wake_policy

    def run(self, tasks: Sequence[BatchTask]) -> DriverStats:
        now = 0.0
        busy = 0.0
        switches = 0
        interrupts = 0
        san = sanitizer_enabled()
        last_pop = 0.0

        #: batches ready to run: (ready_time, bid, task, phase_index).
        #: ``(ready_time, bid)`` is unique (a batch is queued at most
        #: once), so the keyed event wheel and the raw heap order the
        #: queue identically; ``REPRO_WHEEL=0`` keeps the heap as the
        #: differential witness, as for the simulators.
        entries: List[Tuple[float, int, BatchTask, int]] = \
            [(0.0, t.bid, t, 0) for t in tasks]
        if wheel_enabled():
            wheel = EventWheel(fifo=False)
            for e in entries:
                wheel.push(e)
            push, pop = wheel.push, wheel.pop
        else:
            heapq.heapify(entries)

            def push(entry):
                heapq.heappush(entries, entry)

            def pop():
                return heapq.heappop(entries) if entries else None

        running: Optional[int] = None  # last batch id on the core

        while True:
            nxt = pop()
            if nxt is None:
                break
            ready_time, bid, task, idx = nxt
            if san:
                # wake times are always pushed at or after `now`, so
                # ready-queue pops must be time-monotonic
                check(ready_time >= last_pop,
                      "driver: ready-time regression (%f after %f)",
                      ready_time, last_pop)
                last_pop = ready_time
            now = max(now, ready_time)
            if running != bid:
                now += self.context_switch_us
                switches += 1
                running = bid

            # execute phases until the batch blocks or finishes
            while idx < len(task.phases):
                phase = task.phases[idx]
                if isinstance(phase, ComputePhase):
                    now += phase.duration_us
                    busy += phase.duration_us
                    idx += 1
                    continue
                # I/O phase: block the batch
                interrupts += len(phase.latencies_us)
                if self.wake_policy == "grouped":
                    # one wakeup when the slowest completion arrives,
                    # plus a single batched interrupt-handling slot
                    wake = now + phase.last_completion \
                        + self.interrupt_handling_us
                    push((wake, bid, task, idx + 1))
                else:
                    # eager: the batch is woken per interrupt to handle
                    # it; each wake costs a switch + handling time.
                    # Model the cost as serialized switch-in + handling
                    # at each completion; the batch only proceeds after
                    # the last.
                    wake = now + phase.last_completion
                    extra = (len(phase.latencies_us) - 1)
                    per_wake = self.context_switch_us \
                        + self.interrupt_handling_us
                    push((wake + extra * per_wake, bid, task, idx + 1))
                    switches += extra
                idx = -1  # mark blocked
                break
            if idx >= len(task.phases):
                task.finished_at = now
            running = None if idx == -1 else running

        if san:
            check(busy <= now + 1e-9,
                  "driver: busy %f exceeds makespan %f", busy, now)
            for t in tasks:
                check(t.finished_at <= now + 1e-9,
                      "driver: batch %d finished at %f after makespan %f",
                      t.bid, t.finished_at, now)
        return DriverStats(makespan_us=now, context_switches=switches,
                           busy_us=busy, interrupts=interrupts)


def make_io_batch(bid: int, compute_us: float, io_us: Sequence[float],
                  post_compute_us: float = 0.0) -> BatchTask:
    """Convenience constructor: compute, block on I/O, finish up."""
    phases: List[Phase] = [ComputePhase(compute_us),
                           IoPhase(tuple(io_us))]
    if post_compute_us:
        phases.append(ComputePhase(post_compute_us))
    return BatchTask(bid=bid, phases=phases)
