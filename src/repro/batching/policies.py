"""Request batching policies of the SIMR-aware server (Section III-B1).

* ``naive`` - batch by arrival order only (the Fig. 4 baseline).
* ``per_api`` - group requests calling the same API/RPC so a batch
  executes the same source code.
* ``per_api_size`` - additionally sort by argument/query length so
  loop trip counts match within a batch (the full Fig. 11 policy).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..workloads.base import Request

Batches = List[List[Request]]


def _chunk(requests: Sequence[Request], batch_size: int) -> Batches:
    return [
        list(requests[i:i + batch_size])
        for i in range(0, len(requests), batch_size)
    ]


def batch_naive(requests: Sequence[Request], batch_size: int) -> Batches:
    """Arrival-order batching."""
    return _chunk(list(requests), batch_size)


def batch_per_api(requests: Sequence[Request], batch_size: int) -> Batches:
    """Group by API, keep arrival order within each API."""
    by_api: Dict[int, List[Request]] = {}
    for r in requests:
        by_api.setdefault(r.api_id, []).append(r)
    out: Batches = []
    for api_id in sorted(by_api):
        out.extend(_chunk(by_api[api_id], batch_size))
    return out


def batch_per_api_size(requests: Sequence[Request], batch_size: int) -> Batches:
    """Group by API, then sort by argument size within the API."""
    by_api: Dict[int, List[Request]] = {}
    for r in requests:
        by_api.setdefault(r.api_id, []).append(r)
    out: Batches = []
    for api_id in sorted(by_api):
        group = sorted(by_api[api_id], key=lambda r: (r.size, r.rid))
        out.extend(_chunk(group, batch_size))
    return out


def batch_isolate_outliers(requests: Sequence[Request], batch_size: int,
                           size_limit: int = 24) -> Batches:
    """Security-hardened per-API+size batching (paper Section VI-C).

    A maliciously long query batched with short ones would stretch the
    whole batch's lockstep execution (QoS interference) and could leak
    control-flow information; the server detects oversized requests
    and isolates them in their own (possibly degenerate) batches.
    """
    normal = [r for r in requests if r.size <= size_limit]
    outliers = [r for r in requests if r.size > size_limit]
    batches = batch_per_api_size(normal, batch_size) if normal else []
    for r in outliers:  # isolated: never share a batch with others
        batches.append([r])
    return batches


POLICIES: Dict[str, Callable[[Sequence[Request], int], Batches]] = {
    "naive": batch_naive,
    "per_api": batch_per_api,
    "per_api_size": batch_per_api_size,
    "isolate_outliers": batch_isolate_outliers,
}


def form_batches(requests: Sequence[Request], batch_size: int,
                 policy: str = "per_api_size") -> Batches:
    """Apply a named policy; raises KeyError for unknown policies."""
    try:
        fn = POLICIES[policy]
    except KeyError:
        raise KeyError(
            f"unknown batching policy {policy!r}; "
            f"known: {', '.join(POLICIES)}"
        ) from None
    return fn(requests, batch_size)
