"""System-level batch splitting (paper Section III-B5, Fig. 17b).

When one side of a divergent path blocks on millisecond-scale I/O
(storage, remote DB), forcing the fast side to wait at the
reconvergence point would let the storage latency dominate everyone's
response time.  The splitter divides a batch into a fast sub-batch
that continues past the reconvergence point and a blocked sub-batch
that is context-switched out; orphaned blocked requests can later be
re-batched at the storage service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..workloads.base import Request


@dataclass
class SplitDecision:
    fast: List[Request]
    blocked: List[Request]

    @property
    def did_split(self) -> bool:
        return bool(self.fast) and bool(self.blocked)


def split_batch(batch: Sequence[Request],
                blocks: Callable[[Request], bool]) -> SplitDecision:
    """Partition ``batch`` by the blocking predicate."""
    fast: List[Request] = []
    blocked: List[Request] = []
    for r in batch:
        (blocked if blocks(r) else fast).append(r)
    return SplitDecision(fast=fast, blocked=blocked)


def memcached_miss_predicate(r: Request) -> bool:
    """The Fig. 17 case: requests that miss the cache block on storage."""
    return r.payload.get("mc_hit", 1) == 0


def rebatch_orphans(orphans: Sequence[Request], batch_size: int) -> List[List[Request]]:
    """Form full batches out of blocked requests at the storage tier."""
    out = []
    pending = list(orphans)
    for i in range(0, len(pending), batch_size):
        out.append(pending[i:i + batch_size])
    return out
