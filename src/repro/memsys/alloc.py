"""Heap allocators: default (SIMR-agnostic) and SIMR-aware (paper Fig. 16).

The paper's microservices frequently allocate per-thread temporary
arrays on the heap and stream through them.  With a virtually-indexed,
multi-bank L1, the default allocator tends to hand every thread a block
whose start address maps to the *same* bank, so the lockstep access
``temp[i]`` from all lanes slams one bank (serialized).  The SIMR-aware
allocator staggers each thread's start address by ``tid`` cache lines so
lockstep streaming accesses fan out across all banks conflict-free, at
the cost of a little fragmentation (~896 bytes per 8-thread allocation
round in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..engine.memory import HEAP_BASE, HEAP_SIZE
from ..sanitize import check, sanitizer_enabled


class AllocationError(Exception):
    """Raised when the heap region or a thread arena is exhausted."""


@dataclass
class AllocStats:
    allocations: int = 0
    requested_bytes: int = 0
    padding_bytes: int = 0


class BaseAllocator:
    """Bump allocator over the shared heap segment."""

    def __init__(self, line_size: int = 32, n_banks: int = 8,
                 base: int = HEAP_BASE, capacity: int = HEAP_SIZE):
        self.line_size = line_size
        self.n_banks = n_banks
        self.base = base
        self.capacity = capacity
        self._next = base
        self.stats = AllocStats()
        # captured once per allocator (same pattern as Simulator): the
        # per-allocation env lookup is measurable in alloc-heavy setup
        self._san = sanitizer_enabled()
        # bank period, with a mask for the power-of-two common case so
        # the per-allocation round-up is bit arithmetic, not division
        self._period = line_size * n_banks
        self._pmask = (self._period - 1
                       if self._period & (self._period - 1) == 0
                       else None)

    def _bump(self, start: int, size: int) -> int:
        if start + size > self.base + self.capacity:
            raise AllocationError("heap exhausted")
        self._next = start + size
        return start

    def reset(self) -> None:
        self._next = self.base
        self.stats = AllocStats()

    def alloc(self, size: int, tid: int = 0) -> int:
        raise NotImplementedError

    def free_all(self, tid: int) -> None:
        """Release thread ``tid``'s allocations (request finished).

        Worker threads in real services free request-scoped memory at
        response time, so the next request served by the same worker
        reuses the same addresses - the warm-cache behaviour the paper
        notes for consecutive CPU threads.  Bump allocators model this
        by rewinding the arena cursor.
        """

    def alloc_shared(self, size: int) -> int:
        """Allocation shared by all threads (global tables, constants)."""
        start = _align(self._next, 16)
        self.stats.allocations += 1
        self.stats.requested_bytes += size
        self.stats.padding_bytes += start - self._next
        return self._bump(start, size)

    def bank_of(self, addr: int) -> int:
        return (addr // self.line_size) % self.n_banks


class ArenaAllocator(BaseAllocator):
    """Shared per-thread arena bookkeeping for both heap allocators.

    Every allocation is bounds-checked against its thread's arena: a
    thread whose cumulative allocations exceed ``arena_size`` would
    otherwise silently bleed into its neighbour's arena, corrupting the
    bank-conflict model (and, in a real service, the neighbour's data).
    """

    def __init__(self, arena_size: int = 1 << 20, **kwargs):
        super().__init__(**kwargs)
        self.arena_size = arena_size
        self._arenas: Dict[int, int] = {}  # tid -> next free addr
        self._arena_starts: Dict[int, int] = {}

    def reset(self) -> None:
        super().reset()
        self._arenas = {}
        self._arena_starts = {}

    def _arena_cursor(self, tid: int) -> int:
        if tid not in self._arenas:
            start = _align(self._next, self.arena_size)
            self._bump(start, self.arena_size)
            self._arenas[tid] = start
            self._arena_starts[tid] = start
        return self._arenas[tid]

    def _commit(self, tid: int, start: int, size: int, pad: int) -> int:
        arena_start = self._arena_starts[tid]
        arena_end = arena_start + self.arena_size
        if start + size > arena_end:
            raise AllocationError(
                f"thread {tid} arena overflow: block "
                f"[{start:#x}, {start + size:#x}) exceeds arena "
                f"[{arena_start:#x}, {arena_end:#x})")
        if self._san:
            check(arena_start <= start,
                  "alloc: block %#x below thread %d arena %#x",
                  start, tid, arena_start)
        self._arenas[tid] = start + size
        self.stats.allocations += 1
        self.stats.requested_bytes += size
        self.stats.padding_bytes += pad
        return start

    def free_all(self, tid: int) -> None:
        if tid in self._arena_starts:
            self._arenas[tid] = self._arena_starts[tid]


class DefaultAllocator(ArenaAllocator):
    """SIMR-agnostic allocator modelling per-thread glibc-style arenas.

    Each thread owns an arena carved from the heap; within an arena,
    allocations bump with 16-byte alignment.  Because arena sizes are a
    multiple of the bank period, threads performing the same allocation
    sequence receive blocks whose starts fall in the *same* bank - the
    pathological case of paper Fig. 16b (top).
    """

    def alloc(self, size: int, tid: int = 0) -> int:
        cursor = self._arenas.get(tid)
        if cursor is None:
            cursor = self._arena_cursor(tid)
        start = (cursor + 15) & ~15
        return self._commit(tid, start, size, pad=start - cursor)


class SimrAwareAllocator(ArenaAllocator):
    """The paper's SIMR-aware allocator (Fig. 16b bottom).

    Guarantees that thread ``tid``'s allocation starts ``tid`` cache
    lines into the bank period, so when all lanes of a batch stream
    through their private arrays in lockstep, simultaneous accesses hit
    ``n_banks`` distinct banks.
    """

    def alloc(self, size: int, tid: int = 0) -> int:
        cursor = self._arenas.get(tid)
        if cursor is None:
            cursor = self._arena_cursor(tid)
        period = self._period
        target_off = (tid % self.n_banks) * self.line_size
        if self._pmask is not None:
            start = ((cursor + self._pmask) & ~self._pmask) + target_off
        else:
            start = (cursor + period - 1) // period * period + target_off
        if start < cursor:
            start += period
        if self._san:
            check(self.bank_of(start) == tid % self.n_banks,
                  "alloc: thread %d block %#x lands on bank %d, want %d",
                  tid, start, self.bank_of(start), tid % self.n_banks)
        return self._commit(tid, start, size, pad=start - cursor)


def _align(addr: int, alignment: int) -> int:
    return (addr + alignment - 1) // alignment * alignment
