"""On-chip interconnects: CPU mesh vs RPU core-to-memory crossbar.

The RPU drops core-to-core coherence traffic (weak consistency, atomics
at L3), letting it replace the CPU's mesh with a single-hop crossbar of
higher bisection bandwidth and lower latency (paper Table II and
Section III-A).  Both models expose ``traverse(now) -> arrival`` with
FIFO serialization on aggregate bisection bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class NocStats:
    traversals: int = 0
    total_queue_cycles: float = 0.0

    @property
    def avg_queue_delay(self) -> float:
        return self.total_queue_cycles / self.traversals if self.traversals else 0.0


class Interconnect:
    """Base: fixed hop latency + bisection-bandwidth serialization."""

    def __init__(self, base_latency: float, bytes_per_cycle: float,
                 flit_bytes: int = 32):
        self.base_latency = base_latency
        self.bytes_per_cycle = bytes_per_cycle
        self.flit_bytes = flit_bytes
        self._busy_until = 0.0
        self.stats = NocStats()

    def traverse(self, now: float) -> float:
        serial = self.flit_bytes / self.bytes_per_cycle
        start = max(now, self._busy_until)
        self._busy_until = start + serial
        self.stats.traversals += 1
        self.stats.total_queue_cycles += start - now
        return start + serial + self.base_latency

    def reset(self) -> None:
        self._busy_until = 0.0
        self.stats = NocStats()


class MeshInterconnect(Interconnect):
    """k x k mesh: average hop count ~ 2k/3, a few cycles per hop."""

    def __init__(self, k: int, cycles_per_hop: float = 3.0,
                 bytes_per_cycle: float = 128.0):
        self.k = k
        avg_hops = 2.0 * k / 3.0
        super().__init__(base_latency=avg_hops * cycles_per_hop,
                         bytes_per_cycle=bytes_per_cycle)


class CrossbarInterconnect(Interconnect):
    """Single-hop core-to-memory crossbar (RPU / GPU style)."""

    def __init__(self, ports: int, cycles: float = 4.0,
                 bytes_per_cycle: float = 512.0):
        self.ports = ports
        super().__init__(base_latency=cycles, bytes_per_cycle=bytes_per_cycle)
