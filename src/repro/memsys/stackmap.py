"""Stack segment interleaving (paper Fig. 13).

The RPU driver mmaps the stack segments of a batch contiguously in
virtual space; the hardware detects stack accesses and interleaves the
segments every 4 bytes in *physical* space, so that the ubiquitous
"every thread pushes/pops the same stack offset" pattern becomes a
dense, fully-coalescable physical footprint:

    physical(word w of thread t) = base + (w * batch_size + t) * 4

A 32-thread batch pushing an 8-byte value therefore touches 256
contiguous physical bytes = 8 cache lines (paper's example), instead of
32 scattered lines on a MIMD CPU.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..engine.memory import DEFAULT_STACK_SIZE, STACK_TOP

WORD = 4

#: physical window where interleaved stacks live (value is arbitrary;
#: only line/bank arithmetic matters downstream)
STACK_PHYS_BASE = 0x2_0000_0000


class StackInterleaver:
    """Virtual stack address -> interleaved physical address."""

    def __init__(self, batch_size: int,
                 stack_size: int = DEFAULT_STACK_SIZE):
        self.batch_size = batch_size
        self.stack_size = stack_size

    def owner_tid(self, vaddr: int) -> int:
        """Which thread's segment a virtual stack address belongs to.

        Exploits the contiguous mmap layout: ``tid = (STACK_TOP -
        vaddr - 1) // stack_size``.  This is the TargetTID computation
        the paper uses to permit (permission-checked) inter-thread
        stack accesses.
        """
        return (STACK_TOP - 1 - vaddr) // self.stack_size

    def physical(self, vaddr: int) -> int:
        tid = self.owner_tid(vaddr)
        seg_top = STACK_TOP - tid * self.stack_size
        offset = seg_top - 1 - vaddr  # bytes from segment top, >= 0
        word = offset // WORD
        return STACK_PHYS_BASE + (word * self.batch_size + tid) * WORD

    def physical_words(self, vaddr: int, size: int) -> List[int]:
        """Physical addresses of every 4-byte word of an access."""
        n_words = max(1, size // WORD)
        return [self.physical(vaddr + i * WORD) for i in range(n_words)]

    def lines_touched(self, accesses: Iterable[Tuple[int, int, int]],
                      line_size: int = 32) -> List[int]:
        """Unique physical line addresses for a batch of stack accesses
        given as ``(tid, vaddr, size)`` tuples.

        Inlines :meth:`physical` (same arithmetic, no per-word calls):
        this runs once per batched stack access in the timing model's
        hot loop.
        """
        bs = self.batch_size
        ss = self.stack_size
        top = STACK_TOP
        base = STACK_PHYS_BASE
        lines = set()
        add = lines.add
        for _tid, vaddr, size in accesses:
            for i in range(size >> 2 or 1):
                va = vaddr + i * 4
                tid = (top - 1 - va) // ss
                word = (top - tid * ss - 1 - va) >> 2
                add((base + (word * bs + tid) * 4)
                    // line_size * line_size)
        return sorted(lines)
