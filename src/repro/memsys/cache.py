"""Set-associative LRU caches with optional banking.

Used for the CPU's single-bank 64KB L1 and the RPU's 8-bank 256KB L1
(paper Table IV), as well as L2/L3.  The model tracks hits, misses,
evictions and writebacks; bank-conflict serialization for a batch of
simultaneous accesses is exposed via :meth:`bank_conflicts`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, kilo_instructions: float) -> float:
        return self.misses / kilo_instructions if kilo_instructions else 0.0


class SetAssociativeCache:
    """Write-back, write-allocate, LRU set-associative cache."""

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_size: int = 32, n_banks: int = 1):
        if size_bytes % (assoc * line_size):
            raise ValueError(f"{name}: size not divisible by assoc*line")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_size = line_size
        self.n_banks = n_banks
        self.n_sets = size_bytes // (assoc * line_size)
        # sets are materialized lazily: a large L3 slice has thousands
        # of sets, most never touched in a short run, and every
        # run_chip builds a fresh hierarchy
        self._sets: Dict[int, OrderedDict] = {}
        self.stats = CacheStats()

    def _set_index(self, line: int) -> int:
        return line % self.n_sets

    def bank_of(self, addr: int) -> int:
        return (addr // self.line_size) % self.n_banks

    def access(self, addr: int, write: bool = False) -> bool:
        """Access one address; returns True on hit."""
        line = addr // self.line_size
        idx = line % self.n_sets
        s = self._sets.get(idx)
        if s is None:
            s = self._sets[idx] = OrderedDict()
        self.stats.accesses += 1
        if line in s:
            self.stats.hits += 1
            s.move_to_end(line)
            if write:
                s[line] = True  # dirty
            return True
        self.stats.misses += 1
        if len(s) >= self.assoc:
            _victim, dirty = s.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
        s[line] = write
        return False

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU or stats."""
        line = addr // self.line_size
        s = self._sets.get(line % self.n_sets)
        return s is not None and line in s

    def bank_conflicts(self, addrs: Iterable[int]) -> int:
        """Serialization depth for simultaneous accesses: the maximum
        number of accesses landing on one bank (>=1 if any access)."""
        per_bank: Dict[int, int] = {}
        for a in addrs:
            b = self.bank_of(a)
            per_bank[b] = per_bank.get(b, 0) + 1
        return max(per_bank.values()) if per_bank else 0

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def flush(self) -> None:
        self._sets = {}
