"""Memory Coalescing Unit (paper Fig. 8b).

Sits before the load/store queues and merges the per-lane accesses of
one batch instruction.  To keep hit latency low the RPU only detects
the two common patterns (same word, consecutive words); anything else
issues one access per active lane.  Stack accesses are first remapped
through the driver's stack interleaving (Fig. 13), which turns the
"all lanes touch the same stack offset" pattern into a small set of
dense physical lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..engine.memory import HEAP_BASE, HEAP_SIZE
from ..isa.instructions import Segment
from .stackmap import StackInterleaver


_STACK_MIN = HEAP_BASE + HEAP_SIZE


def _is_stack_addr(addr: int) -> bool:
    return addr >= _STACK_MIN


@dataclass
class CoalescingResult:
    """Outcome of coalescing one batch memory instruction."""

    line_addrs: List[int]  # one entry per memory-system access
    pattern: str  # same_word | consecutive | stack | divergent | scalar

    @property
    def n_accesses(self) -> int:
        return len(self.line_addrs)


class MemoryCoalescingUnit:
    """The RPU's low-latency coalescer for one batch memory op."""

    #: memo bound: patterns per service are few, but cap defensively
    _MEMO_MAX = 32768

    def __init__(self, line_size: int = 32,
                 interleaver: Optional[StackInterleaver] = None):
        self.line_size = line_size
        self.interleaver = interleaver
        # coalescing is a pure function of (segment, accesses) for a
        # fixed configuration, and batch access patterns repeat heavily
        # (every thread pushing the same stack offset, broadcast loads
        # of the same global, ...), so memoize whole results.  Entries
        # are shared: CoalescingResult is treated as immutable.
        self._memo: dict = {}

    def coalesce(
        self,
        segment: Optional[Segment],
        accesses: Sequence[Tuple[int, int, int]],
    ) -> CoalescingResult:
        """``accesses`` is ``(tid, vaddr, size)`` per active lane."""
        ls = self.line_size
        if not accesses:
            return CoalescingResult([], "same_word")
        key = (segment, tuple(accesses))
        memo = self._memo
        res = memo.get(key)
        if res is not None:
            return res
        res = self._coalesce(segment, accesses, ls)
        if len(memo) >= self._MEMO_MAX:
            memo.clear()
        memo[key] = res
        return res

    def _coalesce(
        self,
        segment: Optional[Segment],
        accesses: Sequence[Tuple[int, int, int]],
        ls: int,
    ) -> CoalescingResult:
        if (
            segment is Segment.STACK
            and self.interleaver is not None
            # the hardware detects stack addresses dynamically; a
            # stack-tagged op whose pointer actually targets the heap
            # (e.g. through a spilled pointer) must not be remapped
            and all(a >= _STACK_MIN for _t, a, _s in accesses)
        ):
            lines = self.interleaver.lines_touched(accesses, ls)
            return CoalescingResult(lines, "stack")

        addrs = [a for _t, a, _s in accesses]
        size = accesses[0][2]

        if len(set(addrs)) == 1:
            # broadcast: shared globals, constants, lock words
            lines = sorted({(addrs[0] + o) // ls * ls
                            for o in range(0, size, min(size, ls))})
            return CoalescingResult(lines, "same_word")

        srt = sorted(addrs)
        if all(b - a == size for a, b in zip(srt, srt[1:])):
            lines = sorted({a // ls * ls for a in srt}
                           | {(a + size - 1) // ls * ls for a in srt})
            return CoalescingResult(lines, "consecutive")

        # divergent: one access per active lane, no merging
        return CoalescingResult([a // ls * ls for a in addrs], "divergent")


def scalar_accesses(
    accesses: Sequence[Tuple[int, int, int]], line_size: int = 32
) -> CoalescingResult:
    """MIMD CPU reference: every lane issues its own access."""
    return CoalescingResult(
        [a // line_size * line_size for _t, a, _s in accesses], "scalar"
    )
