"""TLB models, including the RPU's banked TLB with entry duplication.

In the RPU each L1 data bank has its own TLB bank so translation
throughput matches cache throughput (paper Section III-A).  Because
data interleaves across banks at a finer granularity than the page
size, the *same* page translation may be installed in several banks -
duplication that costs effective capacity, which the model exposes via
:meth:`duplication_factor`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List

#: data center services map their heaps with 2MB transparent hugepages
#: (standard practice for memcached/RocksDB-class services); without
#: them TLB reach, not cache capacity, would dominate every design
PAGE_SIZE = 2 * 1024 * 1024


@dataclass
class TlbStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Tlb:
    """Fully-associative LRU TLB (one bank)."""

    def __init__(self, entries: int):
        self.entries = entries
        self._map: OrderedDict = OrderedDict()
        self.stats = TlbStats()

    def access(self, vaddr: int) -> bool:
        page = vaddr // PAGE_SIZE
        self.stats.accesses += 1
        if page in self._map:
            self.stats.hits += 1
            self._map.move_to_end(page)
            return True
        self.stats.misses += 1
        if len(self._map) >= self.entries:
            self._map.popitem(last=False)
        self._map[page] = True
        return False

    def invalidate(self, vaddr: int) -> None:
        self._map.pop(vaddr // PAGE_SIZE, None)

    def resident_pages(self) -> set:
        return set(self._map)


class BankedTlb:
    """Per-L1-bank TLB array with duplicated entries (RPU design)."""

    def __init__(self, entries_total: int, n_banks: int,
                 line_size: int = 32):
        if entries_total % n_banks:
            raise ValueError("entries must divide evenly across banks")
        self.n_banks = n_banks
        self.line_size = line_size
        self.banks: List[Tlb] = [
            Tlb(entries_total // n_banks) for _ in range(n_banks)
        ]

    def bank_of(self, addr: int) -> int:
        return (addr // self.line_size) % self.n_banks

    def access(self, vaddr: int) -> bool:
        return self.banks[self.bank_of(vaddr)].access(vaddr)

    def invalidate(self, vaddr: int) -> None:
        """Per-entry invalidation must check every bank (duplication)."""
        for b in self.banks:
            b.invalidate(vaddr)

    @property
    def stats(self) -> TlbStats:
        agg = TlbStats()
        for b in self.banks:
            agg.accesses += b.stats.accesses
            agg.hits += b.stats.hits
            agg.misses += b.stats.misses
        return agg

    def duplication_factor(self) -> float:
        """Average number of banks holding each resident page (>= 1)."""
        pages: dict = {}
        for b in self.banks:
            for p in b.resident_pages():
                pages[p] = pages.get(p, 0) + 1
        if not pages:
            return 1.0
        return sum(pages.values()) / len(pages)
