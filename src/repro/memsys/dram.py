"""Off-chip DRAM: fixed access latency plus bandwidth queueing.

The paper provisions 200 GB/s (8x DDR5-3200) for the CPU chip and
576 GB/s (10x DDR5-7200) for the SMT/RPU chips (Table IV).  We model a
single aggregate channel with deterministic service: each line transfer
occupies the channel for ``line/bytes_per_cycle`` cycles, and requests
queue FIFO behind it, so the queueing delay individual threads see
falls out of offered traffic - the effect behind the paper's Fig. 21
(4x less traffic -> 1.33x lower average memory latency).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DramStats:
    accesses: int = 0
    bytes_transferred: int = 0
    total_queue_cycles: float = 0.0

    @property
    def avg_queue_delay(self) -> float:
        return self.total_queue_cycles / self.accesses if self.accesses else 0.0


class DramModel:
    """Deterministic DRAM channel: base latency + FIFO bandwidth queue."""

    def __init__(self, bandwidth_gbps: float, base_latency: int,
                 freq_ghz: float, line_size: int = 32):
        self.bandwidth_gbps = bandwidth_gbps
        self.base_latency = base_latency
        self.freq_ghz = freq_ghz
        self.line_size = line_size
        #: bytes the channel moves per core cycle
        self.bytes_per_cycle = bandwidth_gbps / freq_ghz
        self._busy_until = 0.0
        self.stats = DramStats()

    def access(self, now: float) -> float:
        """Issue one line fill at cycle ``now``; returns completion cycle."""
        transfer = self.line_size / self.bytes_per_cycle
        start = max(now, self._busy_until)
        self._busy_until = start + transfer
        queue = start - now
        self.stats.accesses += 1
        self.stats.bytes_transferred += self.line_size
        self.stats.total_queue_cycles += queue
        return start + transfer + self.base_latency

    def reset(self) -> None:
        self._busy_until = 0.0
        self.stats = DramStats()
