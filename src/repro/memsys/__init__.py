"""Memory-system substrates: allocators, caches, TLBs, MCU, DRAM, NoC."""

from .alloc import (
    AllocationError,
    AllocStats,
    BaseAllocator,
    DefaultAllocator,
    SimrAwareAllocator,
)
from .cache import CacheStats, SetAssociativeCache
from .dram import DramModel, DramStats
from .interconnect import (
    CrossbarInterconnect,
    Interconnect,
    MeshInterconnect,
    NocStats,
)
from .mcu import CoalescingResult, MemoryCoalescingUnit, scalar_accesses
from .stackmap import STACK_PHYS_BASE, WORD, StackInterleaver
from .tlb import PAGE_SIZE, BankedTlb, Tlb, TlbStats

__all__ = [
    "AllocationError",
    "AllocStats",
    "BankedTlb",
    "BaseAllocator",
    "CacheStats",
    "CoalescingResult",
    "CrossbarInterconnect",
    "DefaultAllocator",
    "DramModel",
    "DramStats",
    "Interconnect",
    "MemoryCoalescingUnit",
    "MeshInterconnect",
    "NocStats",
    "PAGE_SIZE",
    "STACK_PHYS_BASE",
    "SetAssociativeCache",
    "SimrAwareAllocator",
    "StackInterleaver",
    "Tlb",
    "TlbStats",
    "WORD",
    "scalar_accesses",
]
