"""Section VI-A: could the CPU's SIMD units replace the RPU?

The paper's argument against the SPMD-on-SIMD (ISPC-style) alternative
has three measurable parts, which we reproduce against our own ISA and
workloads:

1. **ISA coverage** - only ~27% of scalar x86 instructions have a 1:1
   vector equivalent (129 AVX vs 463 scalar ops).  We compute the
   dynamic fraction of our microservices' instructions that a vector
   ISA could express directly (dense ALU/SIMD/load/store patterns) vs
   those needing scalar emulation (atomics, syscalls, calls/returns,
   divergent branches turned into predication).
2. **Predication cost** - conditional branches become predicates, so
   the SIMD pipeline executes *both* sides of every divergent region
   and loses the branch predictor: effective utilization equals the
   naive SIMT efficiency without any reconvergence credit.
3. **Scalar-unit waste** - fully vectorized code idles the CPU's 2x
   more numerous scalar units.
"""

from __future__ import annotations

from typing import List

from ..engine.events import InstructionMixSink
from ..core.run import run_solo
from ..workloads import all_services
from .common import Row, format_rows, requests_for, summary_row

#: op classes a vector ISA can express directly
VECTORIZABLE = {"alu", "mul", "simd", "load", "store"}
#: op classes requiring scalar fallback or emulation sequences
SCALAR_ONLY = {"atomic", "syscall", "call", "ret", "fence", "jump"}

PAPER_ISA_COVERAGE = 0.27  # static x86 ISA coverage from the paper

COLUMNS = ["vectorizable", "scalar_only", "predicated_branch"]


def run(scale: float = 0.5) -> List[Row]:
    """Measure the experiment; returns structured rows."""
    rows = []
    for service in all_services():
        requests = requests_for(service, scale)[:32]
        sink = InstructionMixSink()
        run_solo(service, requests, sink=sink)
        total = sink.total_scalar
        vec = sum(v for k, v in sink.scalar_by_class.items()
                  if k in VECTORIZABLE)
        scalar = sum(v for k, v in sink.scalar_by_class.items()
                     if k in SCALAR_ONLY)
        branches = sink.scalar_by_class.get("branch", 0)
        rows.append(Row(label=service.name, values={
            "vectorizable": vec / total if total else 0.0,
            "scalar_only": scalar / total if total else 0.0,
            "predicated_branch": branches / total if total else 0.0,
        }))
    rows.append(summary_row(rows, COLUMNS))
    return rows


TIMING_COLUMNS = ["simd_ee", "simd_lat", "rpu_ee", "rpu_lat"]


def work_units(scale: float = 0.5):
    """Declare the chip simulations ``run_timing(scale)`` will consume
    (the ISA-mix half is architectural-only and has none)."""
    from ..timing import CPU_CONFIG, CPU_SIMD_CONFIG, RPU_CONFIG
    from ..workloads import get_service
    from .common import chip_unit

    n = max(96, int(192 * scale))
    units = []
    for name in ("post", "memcached", "urlshort"):
        svc = get_service(name)
        units.append(chip_unit(svc, CPU_CONFIG, scale, n_requests=n,
                               seed=17))
        units.append(chip_unit(svc, CPU_SIMD_CONFIG, scale, n_requests=n,
                               seed=17, policy="predicated", batch_size=4))
        units.append(chip_unit(svc, RPU_CONFIG, scale, n_requests=n,
                               seed=17))
    return units


def run_timing(scale: float = 1.0,
               services=("post", "memcached", "urlshort")) -> List[Row]:
    """Quantify the SPMD-on-SIMD alternative against the RPU.

    The CPU-SIMD design keeps CPU latencies but runs 4-request batches
    predicated on the AVX units with no MCU, no stack interleaving, no
    branch prediction on predicated branches, and per-lane emulation of
    non-vectorizable instructions.
    """
    import random

    from ..energy import requests_per_joule
    from ..timing import CPU_CONFIG, CPU_SIMD_CONFIG, RPU_CONFIG, run_chip
    from ..workloads import get_service

    rows = []
    for name in services:
        service = get_service(name)
        requests = service.generate_requests(
            max(96, int(192 * scale)), random.Random(17))
        cpu = run_chip(service, requests, CPU_CONFIG)
        simd = run_chip(service, requests, CPU_SIMD_CONFIG,
                        policy="predicated", batch_size=4)
        rpu = run_chip(service, requests, RPU_CONFIG)
        base = requests_per_joule(cpu)
        rows.append(Row(label=name, values={
            "simd_ee": requests_per_joule(simd) / base,
            "simd_lat": simd.avg_latency_cycles
            / max(1e-9, cpu.avg_latency_cycles),
            "rpu_ee": requests_per_joule(rpu) / base,
            "rpu_lat": rpu.avg_latency_cycles
            / max(1e-9, cpu.avg_latency_cycles),
        }))
    rows.append(summary_row(rows, TIMING_COLUMNS))
    return rows


def main(scale: float = 0.5) -> str:
    """Render the experiment as the printable report."""
    rows = run(scale)
    avg = rows[-1]
    out = format_rows(rows, COLUMNS,
                      title="Sec. VI-A: dynamic instruction shares for a "
                            "SPMD-on-SIMD port")
    return out + (
        f"\nEven with {avg['vectorizable']:.0%} of *dynamic* instructions "
        f"expressible as vector ops, {avg['scalar_only']:.0%} need scalar "
        f"emulation and {avg['predicated_branch']:.0%} are branches that "
        "become predicates (losing the branch predictor and executing "
        "both sides).  The paper's static-ISA view is starker: only "
        f"{PAPER_ISA_COVERAGE:.0%} of scalar x86 ops exist in AVX."
    ) + "\n\n" + format_rows(
        run_timing(scale), TIMING_COLUMNS,
        title="SPMD-on-SIMD vs RPU (predicated 4-lane AVX batches; "
              "ratios vs scalar CPU)")


if __name__ == "__main__":  # pragma: no cover
    from .common import experiment_cli

    raise SystemExit(experiment_cli(main, units_fn=work_units))
