"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment exposes ``run(scale=...)`` returning structured rows
plus a ``format_rows`` helper, so the pytest benches, the examples and
the ``python -m repro.experiments.run_all`` CLI all share one code
path.  ``scale`` multiplies the default request counts; the paper uses
2400 requests (75 batches of 32) per service, which corresponds to
``scale ~= 12`` of our default 192.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import sys
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..timing.config import CoreConfig
from ..workloads import Microservice, all_services, get_service

#: default measured population per service (scaled by `scale`)
DEFAULT_REQUESTS = 192

SEED = 7

#: process-wide worker count used when a caller does not pass ``jobs``
#: explicitly; set from the ``--jobs`` CLI flag (or REPRO_JOBS)
_default_jobs: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (``--jobs`` flag)."""
    global _default_jobs
    _default_jobs = jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve an explicit/default/environment worker count to >= 1."""
    if jobs is None:
        jobs = _default_jobs
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "1") or "1"
        try:
            jobs = int(raw)
        except ValueError:
            print(f"ignoring non-integer REPRO_JOBS={raw!r}",
                  file=sys.stderr)
            jobs = 1
    return max(1, int(jobs))


def task_seed(*parts, base: int = SEED) -> int:
    """Deterministic seed for one (service, chip, batch, ...) task.

    Derived from the task identity alone - never from worker id or
    submission order - so a parallel sweep draws exactly the same
    request populations as a serial one.
    """
    h = zlib.crc32(repr(parts).encode("utf-8"))
    return (base * 1_000_003 + h) & 0x7FFF_FFFF


class WorkerTaskError(RuntimeError):
    """A ``parallel_map`` task raised (or timed out) in its worker; the
    message identifies the failing item and embeds the worker traceback."""


def task_timeout_s() -> Optional[float]:
    """Optional seconds-per-task guard from ``REPRO_TASK_TIMEOUT``."""
    raw = os.environ.get("REPRO_TASK_TIMEOUT", "")
    if not raw:
        return None
    try:
        t = float(raw)
    except ValueError:
        print(f"ignoring non-numeric REPRO_TASK_TIMEOUT={raw!r}",
              file=sys.stderr)
        return None
    return t if t > 0 else None


def _invoke_task(payload):
    """Worker entry: run one task, never let an exception escape.

    Returns ``(idx, True, result)`` or ``(idx, False, (item_repr,
    traceback_text))`` so the parent can identify the failing item -
    a bare ``pool.map`` loses both the index and the traceback.
    """
    import signal
    import traceback

    fn, idx, item, timeout = payload
    armed = False
    try:
        if timeout and hasattr(signal, "setitimer"):
            def _alarm(_sig, _frame):
                raise TimeoutError(
                    f"task exceeded REPRO_TASK_TIMEOUT={timeout:g}s")
            signal.signal(signal.SIGALRM, _alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout)
            armed = True
        return idx, True, fn(item)
    except BaseException:
        return idx, False, (repr(item)[:200], traceback.format_exc())
    finally:
        if armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)


def parallel_map(fn: Callable, items: Iterable, jobs: Optional[int] = None,
                 chunksize: int = 1,
                 priority: Optional[Sequence[float]] = None) -> List:
    """``[fn(x) for x in items]``, optionally across worker processes.

    Results keep item order, so parallel and serial runs produce
    identical output.  ``fn`` must be a module-level callable and the
    items picklable.  Falls back to the serial path when only one job
    is requested, when there is at most one item, or inside a worker
    process (daemonic workers cannot spawn nested pools).

    ``priority`` (one float per item, higher = submitted earlier) fixes
    the tail-blocking unfairness of heterogeneous task costs: with
    ``chunksize=1`` a long task submitted last runs alone at the end of
    the sweep while every other worker idles.  Submitting
    longest-estimated-first bounds that tail at the cost of the longest
    single task.  Submission order never affects the *result* order
    (results are re-gathered by item index), and the serial path
    ignores priorities entirely so serial output stays byte-identical.

    Hardening: a task that raises in its worker surfaces as
    :class:`WorkerTaskError` naming the failing item with the worker's
    traceback; if the *pool itself* dies (a worker OOM-killed mid-run),
    the unfinished items are re-executed serially rather than losing
    the whole sweep; ``REPRO_TASK_TIMEOUT`` (seconds, unix-only) guards
    each task against hanging.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if (jobs <= 1 or len(items) <= 1
            or multiprocessing.current_process().daemon):
        return [fn(x) for x in items]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: inherit the default
        ctx = multiprocessing.get_context()
    timeout = task_timeout_s()
    order = list(range(len(items)))
    if priority is not None:
        ranks = list(priority)
        if len(ranks) != len(items):
            raise ValueError(
                f"priority has {len(ranks)} entries for {len(items)} items")
        order.sort(key=lambda i: (-ranks[i], i))
    payloads = [(fn, i, items[i], timeout) for i in order]
    results: dict = {}
    try:
        # ``imap_unordered`` yields as workers finish, so on a pool
        # death ``results`` holds exactly the items that completed
        with ctx.Pool(min(jobs, len(items))) as pool:
            for idx, ok, value in pool.imap_unordered(
                    _invoke_task, payloads, chunksize=chunksize):
                if not ok:
                    item_repr, tb = value
                    raise WorkerTaskError(
                        f"parallel_map task {idx} ({item_repr}) failed "
                        f"in worker:\n{tb}")
                results[idx] = value
    except WorkerTaskError:
        raise
    except Exception as exc:
        # the pool died under us (worker killed, pipe torn down):
        # finish the remaining items serially instead of losing the run
        missing = [i for i in range(len(items)) if i not in results]
        print(f"parallel_map: pool died ({type(exc).__name__}: {exc}); "
              f"re-running {len(missing)} unfinished of {len(items)} "
              "items serially", file=sys.stderr)
        for i in missing:
            results[i] = fn(items[i])
    return [results[i] for i in range(len(items))]


def requests_for(service: Microservice, scale: float = 1.0,
                 seed: int = SEED):
    """Draw the scaled default request population for a service."""
    n = max(2 * service.recommended_batch, int(DEFAULT_REQUESTS * scale))
    return service.generate_requests(n, random.Random(seed))


def default_population(service: Microservice, scale: float) -> int:
    """Request count :func:`requests_for` draws at this scale."""
    return max(2 * service.recommended_batch, int(DEFAULT_REQUESTS * scale))


# ----------------------------------------------------------------------
# deduplicating cross-experiment work-unit scheduler
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WorkUnit:
    """One deduplicatable chip simulation: service x config x policy x
    population.

    Experiments declare the units their ``run()`` will consume via a
    module-level ``work_units(scale)`` hook; ``run_all`` collects the
    declarations, drops duplicates (identical units recur across
    figures: fig14, fig15, fig19-21 and cycle_stacks all time the same
    CPU runs), and executes the unique set once through the parallel
    pool.  The results land in the persistent store
    (:mod:`repro.store`), so the figures themselves render entirely
    from cache hits.  ``cost`` is a scheduling estimate only - it is
    excluded from identity, so two figures estimating the same unit
    differently still dedup.
    """

    service: str
    config: CoreConfig
    policy: str = "minsp_pc"
    batching: str = "per_api_size"
    batch_size: Optional[int] = None
    n_requests: int = DEFAULT_REQUESTS
    seed: int = SEED
    #: bespoke allocator class name from ``repro.memsys.alloc`` (None =
    #: the config's default allocator)
    allocator: Optional[str] = None
    cost: float = field(default=0.0, compare=False)


def chip_unit(service: Microservice, config: CoreConfig, scale: float,
              **kw) -> WorkUnit:
    """A :class:`WorkUnit` for one default-population ``run_chip`` call,
    with a cost estimate proportional to the requests simulated (solo
    designs execute every request individually, so they weigh double a
    lockstep design's shared-frontend batches)."""
    n = kw.pop("n_requests", default_population(service, scale))
    weight = 2.0 if config.batch_size <= 1 else 1.0
    return WorkUnit(service=service.name, config=config, n_requests=n,
                    cost=n * weight, **kw)


@dataclass(frozen=True)
class FleetUnit:
    """One fleet-shard simulation in the cross-experiment dedup pool.

    Wraps a :class:`repro.system.fleet.FleetShardTask` (kept opaque
    here so this module does not import the fleet stack at import
    time).  The task is frozen and fully identifies the simulation, so
    identical shards declared by different sweeps dedup exactly like
    chip :class:`WorkUnit`\\ s; results land in the persistent store
    under the shard's own key.
    """

    task: object
    cost: float = field(default=0.0, compare=False)


def execute_work_unit(unit) -> None:
    """Worker entry: simulate one unit so its results reach the store.

    Accepts either a chip :class:`WorkUnit` or a :class:`FleetUnit`.
    The computed result is deliberately dropped - workers communicate
    through the persistent store, not the pool pipe.
    """
    if isinstance(unit, FleetUnit):
        from ..system.fleet import _run_shard_cached

        _run_shard_cached(unit.task)
        return

    from ..timing.chip import run_chip

    service = get_service(unit.service)
    requests = service.generate_requests(unit.n_requests,
                                         random.Random(unit.seed))
    kwargs = {}
    if unit.allocator is not None:
        from ..memsys import alloc as alloc_mod

        cls = getattr(alloc_mod, unit.allocator)
        n_banks = max(unit.config.l1_banks, 1)
        kwargs["allocator_factory"] = lambda: cls(n_banks=n_banks)
        kwargs["allocator_signature"] = (unit.allocator, n_banks)
    run_chip(service, requests, unit.config, policy=unit.policy,
             batching=unit.batching, batch_size=unit.batch_size, **kwargs)


def dedup_units(units: Iterable[WorkUnit]) -> List[WorkUnit]:
    """Unique units in first-seen order (cost excluded from identity)."""
    seen: Dict[WorkUnit, WorkUnit] = {}
    for u in units:
        seen.setdefault(u, u)
    return list(seen.values())


def schedule_units(units: Sequence[WorkUnit],
                   jobs: Optional[int] = None) -> int:
    """Prewarm the persistent store with the unique units, longest
    estimated first; returns how many unique units were scheduled.

    A no-op (returns 0) when the store is disabled - without it the
    results would die with the workers - or when only one job is
    available, where the experiments themselves fill the store in the
    same total time.
    """
    from .. import store

    jobs = resolve_jobs(jobs)
    unique = dedup_units(units)
    if not unique or jobs <= 1 or store.get_store() is None:
        return 0
    parallel_map(execute_work_unit, unique, jobs=jobs,
                 priority=[u.cost for u in unique])
    return len(unique)


@dataclass
class Row:
    """One row/series point of a reproduced table or figure."""

    label: str
    values: Dict[str, float] = field(default_factory=dict)

    def __getitem__(self, key: str) -> float:
        return self.values[key]


def geomean(xs: Sequence[float]) -> float:
    """Geometric mean over the positive entries of ``xs``."""
    xs = [x for x in xs if x > 0]
    if not xs:
        return 0.0
    p = 1.0
    for x in xs:
        p *= x
    return p ** (1.0 / len(xs))


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    xs = list(xs)
    return sum(xs) / len(xs) if xs else 0.0


def format_rows(rows: Iterable[Row], columns: Sequence[str],
                title: str = "", width: int = 22) -> str:
    """Render rows as a fixed-width text table."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'':{width}s}" + "".join(f"{c:>12s}" for c in columns)
    lines.append(header)
    for row in rows:
        cells = "".join(
            f"{row.values.get(c, float('nan')):12.3f}" for c in columns
        )
        lines.append(f"{row.label:{width}s}" + cells)
    return "\n".join(lines)


def summary_row(rows: Sequence[Row], columns: Sequence[str],
                label: str = "average", use_geomean: bool = False) -> Row:
    """Append-style aggregate row over ``columns``."""
    agg = geomean if use_geomean else mean
    return Row(
        label=label,
        values={c: agg([r.values[c] for r in rows if c in r.values])
                for c in columns},
    )


def experiment_cli(main_fn: Callable[[float], str], argv=None,
                   units_fn: Optional[Callable] = None) -> int:
    """Shared ``__main__`` driver for the per-figure experiment modules.

    Gives every experiment the same flags as ``run_all``: ``--scale``,
    ``--full`` (the paper's ~2400-request populations) and ``--jobs N``
    for the multiprocessing sweep driver.  Experiments that declare
    their work units pass ``units_fn``; with multiple jobs the unique
    units are prewarmed through the pool (longest first) before the
    figure renders from the store.
    """
    import argparse
    import time

    parser = argparse.ArgumentParser(description=main_fn.__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="request-count multiplier (paper scale ~12)")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale populations (same as --scale 12)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for independent simulations")
    args = parser.parse_args(argv)
    if args.jobs is not None:
        set_default_jobs(args.jobs)
    scale = 12.0 if args.full else args.scale
    if units_fn is not None and resolve_jobs(args.jobs) > 1:
        t0 = time.time()
        n = schedule_units(units_fn(scale), jobs=args.jobs)
        if n:
            print(f"[prewarmed {n} work units in {time.time() - t0:.1f}s]",
                  file=sys.stderr)
    print(main_fn(scale))
    return 0
