"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment exposes ``run(scale=...)`` returning structured rows
plus a ``format_rows`` helper, so the pytest benches, the examples and
the ``python -m repro.experiments.run_all`` CLI all share one code
path.  ``scale`` multiplies the default request counts; the paper uses
2400 requests (75 batches of 32) per service, which corresponds to
``scale ~= 12`` of our default 192.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import sys
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..workloads import Microservice, all_services, get_service

#: default measured population per service (scaled by `scale`)
DEFAULT_REQUESTS = 192

SEED = 7

#: process-wide worker count used when a caller does not pass ``jobs``
#: explicitly; set from the ``--jobs`` CLI flag (or REPRO_JOBS)
_default_jobs: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (``--jobs`` flag)."""
    global _default_jobs
    _default_jobs = jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve an explicit/default/environment worker count to >= 1."""
    if jobs is None:
        jobs = _default_jobs
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "1") or "1"
        try:
            jobs = int(raw)
        except ValueError:
            print(f"ignoring non-integer REPRO_JOBS={raw!r}",
                  file=sys.stderr)
            jobs = 1
    return max(1, int(jobs))


def task_seed(*parts, base: int = SEED) -> int:
    """Deterministic seed for one (service, chip, batch, ...) task.

    Derived from the task identity alone - never from worker id or
    submission order - so a parallel sweep draws exactly the same
    request populations as a serial one.
    """
    h = zlib.crc32(repr(parts).encode("utf-8"))
    return (base * 1_000_003 + h) & 0x7FFF_FFFF


class WorkerTaskError(RuntimeError):
    """A ``parallel_map`` task raised (or timed out) in its worker; the
    message identifies the failing item and embeds the worker traceback."""


def task_timeout_s() -> Optional[float]:
    """Optional seconds-per-task guard from ``REPRO_TASK_TIMEOUT``."""
    raw = os.environ.get("REPRO_TASK_TIMEOUT", "")
    if not raw:
        return None
    try:
        t = float(raw)
    except ValueError:
        print(f"ignoring non-numeric REPRO_TASK_TIMEOUT={raw!r}",
              file=sys.stderr)
        return None
    return t if t > 0 else None


def _invoke_task(payload):
    """Worker entry: run one task, never let an exception escape.

    Returns ``(idx, True, result)`` or ``(idx, False, (item_repr,
    traceback_text))`` so the parent can identify the failing item -
    a bare ``pool.map`` loses both the index and the traceback.
    """
    import signal
    import traceback

    fn, idx, item, timeout = payload
    armed = False
    try:
        if timeout and hasattr(signal, "setitimer"):
            def _alarm(_sig, _frame):
                raise TimeoutError(
                    f"task exceeded REPRO_TASK_TIMEOUT={timeout:g}s")
            signal.signal(signal.SIGALRM, _alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout)
            armed = True
        return idx, True, fn(item)
    except BaseException:
        return idx, False, (repr(item)[:200], traceback.format_exc())
    finally:
        if armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)


def parallel_map(fn: Callable, items: Iterable, jobs: Optional[int] = None,
                 chunksize: int = 1) -> List:
    """``[fn(x) for x in items]``, optionally across worker processes.

    Results keep item order, so parallel and serial runs produce
    identical output.  ``fn`` must be a module-level callable and the
    items picklable.  Falls back to the serial path when only one job
    is requested, when there is at most one item, or inside a worker
    process (daemonic workers cannot spawn nested pools).

    Hardening: a task that raises in its worker surfaces as
    :class:`WorkerTaskError` naming the failing item with the worker's
    traceback; if the *pool itself* dies (a worker OOM-killed mid-run),
    the unfinished items are re-executed serially rather than losing
    the whole sweep; ``REPRO_TASK_TIMEOUT`` (seconds, unix-only) guards
    each task against hanging.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if (jobs <= 1 or len(items) <= 1
            or multiprocessing.current_process().daemon):
        return [fn(x) for x in items]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: inherit the default
        ctx = multiprocessing.get_context()
    timeout = task_timeout_s()
    payloads = [(fn, i, item, timeout) for i, item in enumerate(items)]
    results: dict = {}
    try:
        # ``imap_unordered`` yields as workers finish, so on a pool
        # death ``results`` holds exactly the items that completed
        with ctx.Pool(min(jobs, len(items))) as pool:
            for idx, ok, value in pool.imap_unordered(
                    _invoke_task, payloads, chunksize=chunksize):
                if not ok:
                    item_repr, tb = value
                    raise WorkerTaskError(
                        f"parallel_map task {idx} ({item_repr}) failed "
                        f"in worker:\n{tb}")
                results[idx] = value
    except WorkerTaskError:
        raise
    except Exception as exc:
        # the pool died under us (worker killed, pipe torn down):
        # finish the remaining items serially instead of losing the run
        missing = [i for i in range(len(items)) if i not in results]
        print(f"parallel_map: pool died ({type(exc).__name__}: {exc}); "
              f"re-running {len(missing)} unfinished of {len(items)} "
              "items serially", file=sys.stderr)
        for i in missing:
            results[i] = fn(items[i])
    return [results[i] for i in range(len(items))]


def requests_for(service: Microservice, scale: float = 1.0,
                 seed: int = SEED):
    """Draw the scaled default request population for a service."""
    n = max(2 * service.recommended_batch, int(DEFAULT_REQUESTS * scale))
    return service.generate_requests(n, random.Random(seed))


@dataclass
class Row:
    """One row/series point of a reproduced table or figure."""

    label: str
    values: Dict[str, float] = field(default_factory=dict)

    def __getitem__(self, key: str) -> float:
        return self.values[key]


def geomean(xs: Sequence[float]) -> float:
    """Geometric mean over the positive entries of ``xs``."""
    xs = [x for x in xs if x > 0]
    if not xs:
        return 0.0
    p = 1.0
    for x in xs:
        p *= x
    return p ** (1.0 / len(xs))


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    xs = list(xs)
    return sum(xs) / len(xs) if xs else 0.0


def format_rows(rows: Iterable[Row], columns: Sequence[str],
                title: str = "", width: int = 22) -> str:
    """Render rows as a fixed-width text table."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'':{width}s}" + "".join(f"{c:>12s}" for c in columns)
    lines.append(header)
    for row in rows:
        cells = "".join(
            f"{row.values.get(c, float('nan')):12.3f}" for c in columns
        )
        lines.append(f"{row.label:{width}s}" + cells)
    return "\n".join(lines)


def summary_row(rows: Sequence[Row], columns: Sequence[str],
                label: str = "average", use_geomean: bool = False) -> Row:
    """Append-style aggregate row over ``columns``."""
    agg = geomean if use_geomean else mean
    return Row(
        label=label,
        values={c: agg([r.values[c] for r in rows if c in r.values])
                for c in columns},
    )


def experiment_cli(main_fn: Callable[[float], str], argv=None) -> int:
    """Shared ``__main__`` driver for the per-figure experiment modules.

    Gives every experiment the same flags as ``run_all``: ``--scale``,
    ``--full`` (the paper's ~2400-request populations) and ``--jobs N``
    for the multiprocessing sweep driver.
    """
    import argparse

    parser = argparse.ArgumentParser(description=main_fn.__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="request-count multiplier (paper scale ~12)")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale populations (same as --scale 12)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for independent simulations")
    args = parser.parse_args(argv)
    if args.jobs is not None:
        set_default_jobs(args.jobs)
    print(main_fn(12.0 if args.full else args.scale))
    return 0
