"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment exposes ``run(scale=...)`` returning structured rows
plus a ``format_rows`` helper, so the pytest benches, the examples and
the ``python -m repro.experiments.run_all`` CLI all share one code
path.  ``scale`` multiplies the default request counts; the paper uses
2400 requests (75 batches of 32) per service, which corresponds to
``scale ~= 12`` of our default 192.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..workloads import Microservice, all_services, get_service

#: default measured population per service (scaled by `scale`)
DEFAULT_REQUESTS = 192

SEED = 7


def requests_for(service: Microservice, scale: float = 1.0,
                 seed: int = SEED):
    """Draw the scaled default request population for a service."""
    n = max(2 * service.recommended_batch, int(DEFAULT_REQUESTS * scale))
    return service.generate_requests(n, random.Random(seed))


@dataclass
class Row:
    """One row/series point of a reproduced table or figure."""

    label: str
    values: Dict[str, float] = field(default_factory=dict)

    def __getitem__(self, key: str) -> float:
        return self.values[key]


def geomean(xs: Sequence[float]) -> float:
    """Geometric mean over the positive entries of ``xs``."""
    xs = [x for x in xs if x > 0]
    if not xs:
        return 0.0
    p = 1.0
    for x in xs:
        p *= x
    return p ** (1.0 / len(xs))


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    xs = list(xs)
    return sum(xs) / len(xs) if xs else 0.0


def format_rows(rows: Iterable[Row], columns: Sequence[str],
                title: str = "", width: int = 22) -> str:
    """Render rows as a fixed-width text table."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'':{width}s}" + "".join(f"{c:>12s}" for c in columns)
    lines.append(header)
    for row in rows:
        cells = "".join(
            f"{row.values.get(c, float('nan')):12.3f}" for c in columns
        )
        lines.append(f"{row.label:{width}s}" + cells)
    return "\n".join(lines)


def summary_row(rows: Sequence[Row], columns: Sequence[str],
                label: str = "average", use_geomean: bool = False) -> Row:
    """Append-style aggregate row over ``columns``."""
    agg = geomean if use_geomean else mean
    return Row(
        label=label,
        values={c: agg([r.values[c] for r in rows if c in r.values])
                for c in columns},
    )
