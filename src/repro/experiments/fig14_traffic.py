"""Figure 14: RPU L1 accesses normalized to the CPU.

Stack interleaving plus MCU coalescing cut the RPU's L1 traffic ~4x on
average in the paper; the stack-heavy Post family benefits most (up to
90% stack accesses) while the data-intensive leaves with divergent
private heaps (HDSearch-leaf) see little reduction.
"""

from __future__ import annotations

from typing import List

from ..timing import CPU_CONFIG, RPU_CONFIG, run_chip
from ..workloads import all_services
from .common import Row, chip_unit, format_rows, requests_for, summary_row

COLUMNS = ["cpu_l1_per_req", "rpu_l1_per_req", "reduction",
           "rpu_norm", "stack_share"]

PAPER_AVG_REDUCTION = 4.0


def work_units(scale: float = 1.0):
    """Declare the chip simulations ``run(scale)`` will consume."""
    return [chip_unit(s, cfg, scale) for s in all_services()
            for cfg in (CPU_CONFIG, RPU_CONFIG)]


def run(scale: float = 1.0) -> List[Row]:
    """Measure the experiment; returns structured rows."""
    rows = []
    for service in all_services():
        requests = requests_for(service, scale)
        cpu = run_chip(service, requests, CPU_CONFIG)
        rpu = run_chip(service, requests, RPU_CONFIG)
        cpu_rate = cpu.counters["l1_accesses"] / max(1, cpu.n_requests)
        rpu_rate = rpu.counters["l1_accesses"] / max(1, rpu.n_requests)
        stack = cpu.counters["stack_line_accesses"]
        data = cpu.counters["data_line_accesses"]
        rows.append(
            Row(
                label=service.name,
                values={
                    "cpu_l1_per_req": cpu_rate,
                    "rpu_l1_per_req": rpu_rate,
                    "reduction": cpu_rate / rpu_rate if rpu_rate else 0.0,
                    "rpu_norm": rpu_rate / cpu_rate if cpu_rate else 0.0,
                    "stack_share": stack / max(1, stack + data),
                },
            )
        )
    rows.append(summary_row(rows, COLUMNS))
    return rows


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    out = format_rows(run(scale), COLUMNS,
                      title="Fig. 14: RPU L1 accesses vs CPU")
    return out + f"\npaper: ~{PAPER_AVG_REDUCTION:.0f}x fewer accesses on average"


if __name__ == "__main__":  # pragma: no cover
    from .common import experiment_cli

    raise SystemExit(experiment_cli(main, units_fn=work_units))
