"""Figure 16 + Section V-A1: SIMR-aware heap allocation vs default.

The default allocator aligns every thread's private block to the same
L1 bank; lockstep streaming accesses then serialize on one bank.  The
SIMR-aware allocator staggers start addresses by thread id, making the
same accesses conflict-free.  Paper: 1.8x higher L1 throughput for the
divergent heap segments of HDSearch.
"""

from __future__ import annotations

from typing import List

from ..memsys import DefaultAllocator, SimrAwareAllocator
from ..timing import RPU_CONFIG, run_chip
from ..workloads import get_service
from .common import Row, chip_unit, format_rows, requests_for

COLUMNS = ["conflict_cyc_per_req", "latency_cyc", "l1_per_cycle"]

SERVICES = ("hdsearch-leaf", "search-leaf")

PAPER_THROUGHPUT_GAIN = 1.8

ALLOCATORS = (("default", DefaultAllocator), ("simr-aware",
                                              SimrAwareAllocator))


def _run(service, requests, allocator_cls):
    # allocator behaviour is fully determined by (class, n_banks), so
    # vouch for the factory with its signature to stay cacheable
    return run_chip(
        service, requests, RPU_CONFIG,
        allocator_factory=lambda: allocator_cls(
            n_banks=RPU_CONFIG.l1_banks),
        allocator_signature=(allocator_cls.__name__, RPU_CONFIG.l1_banks),
    )


def work_units(scale: float = 1.0):
    """Declare the chip simulations ``run(scale)`` will consume."""
    return [chip_unit(get_service(name), RPU_CONFIG, scale,
                      allocator=cls.__name__)
            for name in SERVICES for _label, cls in ALLOCATORS]


def run(scale: float = 1.0) -> List[Row]:
    """Measure the experiment; returns structured rows."""
    rows = []
    for name in SERVICES:
        service = get_service(name)
        requests = requests_for(service, scale)
        for label, cls in ALLOCATORS:
            res = _run(service, requests, cls)
            rows.append(
                Row(
                    label=f"{name}/{label}",
                    values={
                        "conflict_cyc_per_req":
                            res.counters["l1_bank_conflict_cycles"]
                            / max(1, res.n_requests),
                        "latency_cyc": res.avg_latency_cycles,
                        # effective L1 throughput: the fraction of bank
                        # slots not lost to conflict serialization
                        "l1_per_cycle":
                            res.counters["l1_accesses"]
                            / (res.counters["l1_accesses"]
                               + res.counters["l1_bank_conflict_cycles"])
                            if res.counters["l1_accesses"] else 0.0,
                    },
                )
            )
    return rows


def throughput_gain(rows: List[Row], service: str) -> float:
    """SIMR-aware over default L1 throughput for one service."""
    default = next(r for r in rows if r.label == f"{service}/default")
    aware = next(r for r in rows if r.label == f"{service}/simr-aware")
    if default["l1_per_cycle"] == 0:
        return 0.0
    return aware["l1_per_cycle"] / default["l1_per_cycle"]


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    rows = run(scale)
    out = format_rows(rows, COLUMNS,
                      title="Fig. 16: default vs SIMR-aware heap allocator "
                            "(RPU)", width=28)
    gains = ", ".join(
        f"{s}: {throughput_gain(rows, s):.2f}x" for s in SERVICES
    )
    return out + (f"\nL1 throughput gain {gains} "
                  f"(paper: {PAPER_THROUGHPUT_GAIN}x on HDSearch)")


if __name__ == "__main__":  # pragma: no cover
    from .common import experiment_cli

    raise SystemExit(experiment_cli(main, units_fn=work_units))
