"""Table V: per-component area and peak power at 7nm.

Key derived claims checked against the paper: the RPU core is ~6.3x
larger and draws ~4.5x the peak power of the CPU core while holding
32x the threads; frontend+OoO is ~40%/50% of CPU core area/power;
RPU-only structures are ~11.8% of the RPU core; thread density improves
~5.2x at the chip level.
"""

from __future__ import annotations

from typing import Dict

from ..energy import (
    chip_totals,
    core_totals,
    format_table,
    frontend_ooo_share,
    simt_overhead_share,
)

PAPER = {
    "core_area_ratio": 6.3,
    "core_power_ratio": 4.5,
    "fe_area_share": 0.40,
    "fe_power_share": 0.50,
    "simt_overhead_share": 0.118,
    "thread_density_ratio": 5.2,
}


def run(scale: float = 1.0) -> Dict[str, float]:
    """Measure the experiment; returns structured rows."""
    core = core_totals()
    chip = chip_totals()
    fe_area, fe_power = frontend_ooo_share()
    return {
        "core_area_ratio": core["core_area_ratio"],
        "core_power_ratio": core["core_power_ratio"],
        "fe_area_share": fe_area,
        "fe_power_share": fe_power,
        "simt_overhead_share": simt_overhead_share(),
        "thread_density_ratio": chip["thread_density_ratio"],
        "cpu_chip_area_mm2": chip["cpu_chip_area_mm2"],
        "rpu_chip_area_mm2": chip["rpu_chip_area_mm2"],
        "cpu_chip_power_w": chip["cpu_chip_power_w"],
        "rpu_chip_power_w": chip["rpu_chip_power_w"],
    }


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    metrics = run(scale)
    lines = [format_table(), ""]
    for key, paper_value in PAPER.items():
        lines.append(
            f"{key:24s} measured {metrics[key]:7.2f}   paper {paper_value:7.2f}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())
