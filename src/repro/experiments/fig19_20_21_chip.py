"""Figures 19, 20 and 21: chip-level energy efficiency, service latency
and the latency-composition metrics.

* Fig. 19 - requests/joule of the RPU and CPU-SMT8 relative to the
  single-threaded CPU (paper: RPU 5.7x, SMT8 ~1.05x).
* Fig. 20 - service latency relative to the CPU (paper: RPU 1.44x avg,
  worst 1.7x on HDSearch-midtier; SMT8 ~5x).
* Fig. 21 - why the RPU's latency increase stays small: average memory
  latency drops (paper 1.33x) because traffic drops ~4x.

One sweep produces all three figures; the per-figure ``run_figXX``
helpers slice the shared result set.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..energy import energy_of, requests_per_joule
from ..timing import CPU_CONFIG, RPU_CONFIG, SMT8_CONFIG, run_chip
from ..workloads import all_services, get_service
from .common import (
    Row,
    chip_unit,
    format_rows,
    parallel_map,
    requests_for,
    summary_row,
)

PAPER = {
    "rpu_requests_per_joule": 5.7,
    "smt_requests_per_joule": 1.05,
    "rpu_latency": 1.44,
    "smt_latency": 5.0,
    "mem_latency_reduction": 1.33,
}

EE_COLUMNS = ["rpu_ee", "smt_ee"]
LAT_COLUMNS = ["rpu_lat", "smt_lat"]
METRIC_COLUMNS = ["mem_lat_reduction", "traffic_reduction",
                  "issued_reduction", "ipc_gain", "simt_eff"]

ALL_COLUMNS = EE_COLUMNS + LAT_COLUMNS + METRIC_COLUMNS


def _mem_latency(result) -> float:
    """Average latency of loads that miss the L1 - the component the
    RPU's traffic reduction and crossbar actually shrink (Fig. 21).
    L1-hit latency is reported separately in Table IV (3 vs 8 cycles).
    """
    n = result.counters["miss_count"]
    return result.counters["miss_latency_sum"] / n if n else 0.0


def _measure(service, scale: float) -> Row:
    """Run the three-chip sweep for one service and build its row."""
    requests = requests_for(service, scale)
    cpu = run_chip(service, requests, CPU_CONFIG)
    smt = run_chip(service, requests, SMT8_CONFIG)
    rpu = run_chip(service, requests, RPU_CONFIG)

    ee_cpu = requests_per_joule(cpu)
    cpu_l1 = cpu.counters["l1_accesses"] / max(1, cpu.n_requests)
    rpu_l1 = rpu.counters["l1_accesses"] / max(1, rpu.n_requests)
    cpu_issued = (cpu.counters["batch_instructions"]
                  / max(1, cpu.n_requests))
    rpu_issued = (rpu.counters["batch_instructions"]
                  / max(1, rpu.n_requests))
    rpu_mem = _mem_latency(rpu)
    cpu_mem = _mem_latency(cpu)

    values = {
        "rpu_ee": requests_per_joule(rpu) / ee_cpu,
        "smt_ee": requests_per_joule(smt) / ee_cpu,
        "rpu_lat": rpu.avg_latency_cycles
        / max(1e-9, cpu.avg_latency_cycles),
        "smt_lat": smt.avg_latency_cycles
        / max(1e-9, cpu.avg_latency_cycles),
        "traffic_reduction": cpu_l1 / rpu_l1 if rpu_l1 else 0.0,
        "issued_reduction": cpu_issued / rpu_issued
        if rpu_issued else 0.0,
        "ipc_gain": rpu.ipc / cpu.ipc if cpu.ipc else 0.0,
        "simt_eff": rpu.simt_efficiency,
    }
    # only meaningful when the service misses the L1 at all
    # post-warmup (cache-resident services never exercise the NoC)
    if rpu_mem > 0 and cpu_mem > 0:
        values["mem_lat_reduction"] = cpu_mem / rpu_mem
    return Row(label=service.name, values=values)


def _service_row(item) -> Row:
    """Worker entry point: measure one service by name."""
    name, scale = item
    return _measure(get_service(name), scale)


def work_units(scale: float = 1.0):
    """Declare the chip simulations ``run(scale)`` will consume."""
    return [chip_unit(s, cfg, scale) for s in all_services()
            for cfg in (CPU_CONFIG, SMT8_CONFIG, RPU_CONFIG)]


def run(scale: float = 1.0, services=None) -> List[Row]:
    """Measure the experiment; returns structured rows.

    The per-service sweeps are independent (each builds its own memory
    images from fixed seeds), so the default all-services run fans out
    over the ``--jobs`` worker pool with identical results.
    """
    if services is None:
        names = [s.name for s in all_services()]
        rows = parallel_map(_service_row, [(n, scale) for n in names])
    else:
        rows = [_measure(s, scale) for s in services]
    rows.append(summary_row(rows, ALL_COLUMNS))
    return rows


def run_fig19(scale: float = 1.0) -> List[Row]:
    """Fig. 19 slice: requests/joule columns only."""
    return [Row(r.label, {k: r.values[k] for k in EE_COLUMNS})
            for r in run(scale)]


def run_fig20(scale: float = 1.0) -> List[Row]:
    """Fig. 20 slice: service-latency columns only."""
    return [Row(r.label, {k: r.values[k] for k in LAT_COLUMNS})
            for r in run(scale)]


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    from ..report import bar_chart

    rows = run(scale)
    per_service = rows[:-1]
    out = [
        format_rows(rows, EE_COLUMNS + LAT_COLUMNS,
                    title="Fig. 19 + Fig. 20: requests/joule and service "
                          "latency relative to the CPU"),
        bar_chart([(r.label, r.values["rpu_ee"]) for r in per_service],
                  title="Fig. 19: RPU requests/joule vs CPU "
                        "('|' = paper average)",
                  reference=PAPER["rpu_requests_per_joule"]),
        bar_chart([(r.label, r.values["rpu_lat"]) for r in per_service],
                  title="Fig. 20: RPU service latency vs CPU "
                        "('|' = paper average)",
                  reference=PAPER["rpu_latency"]),
        format_rows(rows, METRIC_COLUMNS,
                    title="Fig. 21: latency-composition metrics"),
        "paper: RPU EE 5.7x @ 1.44x latency; SMT8 EE 1.05x @ ~5x latency; "
        "memory latency reduced 1.33x",
    ]
    return "\n\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    from .common import experiment_cli

    raise SystemExit(experiment_cli(main, units_fn=work_units))
