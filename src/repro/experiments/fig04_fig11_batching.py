"""Figures 4 and 11: SIMT control-flow efficiency vs batching policy.

Fig. 4 is the naive-batching column; Fig. 11 adds per-API and
per-API+argument-size batching under both ideal stack-based IPDOM
reconvergence and the RPU's MinSP-PC heuristic.  Paper results: naive
~68% average, optimized ~92% (ideal) / ~91% (MinSP-PC).
"""

from __future__ import annotations

from typing import List

from ..batching import form_batches
from ..core.run import run_batch
from ..workloads import all_services
from .common import Row, format_rows, mean, requests_for, summary_row

COLUMNS = ["naive", "per_api", "api_size_ipdom", "api_size_minsp"]

PAPER_AVERAGES = {
    "naive": 0.68,
    "api_size_ipdom": 0.92,
    "api_size_minsp": 0.91,
}


def _avg_efficiency(service, requests, policy, executor) -> float:
    batches = form_batches(requests, 32, policy)
    effs = [
        run_batch(service, batch, policy=executor).simt_efficiency
        for batch in batches
    ]
    return mean(effs)


def run(scale: float = 1.0) -> List[Row]:
    """Measure the experiment; returns structured rows."""
    rows = []
    for service in all_services():
        requests = requests_for(service, scale)
        rows.append(
            Row(
                label=service.name,
                values={
                    "naive": _avg_efficiency(service, requests, "naive",
                                             "ipdom"),
                    "per_api": _avg_efficiency(service, requests,
                                               "per_api", "ipdom"),
                    "api_size_ipdom": _avg_efficiency(
                        service, requests, "per_api_size", "ipdom"),
                    "api_size_minsp": _avg_efficiency(
                        service, requests, "per_api_size", "minsp_pc"),
                },
            )
        )
    rows.append(summary_row(rows, COLUMNS))
    return rows


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    from ..report import bar_chart

    rows = run(scale)
    out = format_rows(rows, COLUMNS,
                      title="Fig. 4 + Fig. 11: SIMT efficiency by "
                            "batching policy (batch=32)")
    chart = bar_chart(
        [(r.label, r.values["api_size_minsp"]) for r in rows[:-1]],
        title="Fig. 11 (MinSP-PC, optimized batching; '|' = paper avg)",
        reference=PAPER_AVERAGES["api_size_minsp"],
    )
    paper = "  ".join(f"{k}={v:.2f}" for k, v in PAPER_AVERAGES.items())
    return out + "\n\n" + chart + f"\npaper averages: {paper}"


if __name__ == "__main__":  # pragma: no cover
    print(main())
