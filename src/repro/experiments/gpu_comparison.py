"""Section V-A3: running the microservices on an Ampere-like GPU.

Paper: with the same software optimizations, the GPU reaches ~28x the
CPU's energy efficiency but at ~79x its service latency - unacceptable
for QoS-sensitive services, which is the gap the RPU closes.  The
GPU's 512 resident threads per SM need large request populations to
fill, so this experiment uses a per-service subset by default.
"""

from __future__ import annotations

import random
from typing import List

from ..energy import requests_per_joule
from ..timing import CPU_CONFIG, GPU_CONFIG, RPU_CONFIG, run_chip
from ..workloads import get_service
from .common import Row, chip_unit, format_rows, summary_row

COLUMNS = ["gpu_ee", "gpu_lat", "rpu_ee", "rpu_lat"]

PAPER = {"gpu_ee": 28.0, "gpu_lat": 79.0}

SUBSET = ("post", "uniqueid", "usertag", "mcrouter")


def work_units(scale: float = 1.0):
    """Declare the chip simulations ``run(scale)`` will consume."""
    n = max(2048, int(2048 * scale))
    return [chip_unit(get_service(name), cfg, scale, n_requests=n, seed=11)
            for name in SUBSET
            for cfg in (CPU_CONFIG, GPU_CONFIG, RPU_CONFIG)]


def run(scale: float = 1.0, services=SUBSET) -> List[Row]:
    """Measure the experiment; returns structured rows."""
    rows = []
    n = max(2048, int(2048 * scale))
    for name in services:
        service = get_service(name)
        requests = service.generate_requests(n, random.Random(11))
        cpu = run_chip(service, requests, CPU_CONFIG)
        gpu = run_chip(service, requests, GPU_CONFIG)
        rpu = run_chip(service, requests, RPU_CONFIG)
        ee_cpu = requests_per_joule(cpu)
        cpu_us = cpu.avg_latency_cycles / cpu.freq_ghz
        rows.append(Row(label=name, values={
            "gpu_ee": requests_per_joule(gpu) / ee_cpu,
            "gpu_lat": (gpu.avg_latency_cycles / gpu.freq_ghz) / cpu_us,
            "rpu_ee": requests_per_joule(rpu) / ee_cpu,
            "rpu_lat": (rpu.avg_latency_cycles / rpu.freq_ghz) / cpu_us,
        }))
    rows.append(summary_row(rows, COLUMNS))
    return rows


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    out = format_rows(run(scale), COLUMNS,
                      title="GPU vs RPU vs CPU (latency in wall-clock "
                            "terms; ratios vs CPU)")
    return out + (f"\npaper: GPU ~{PAPER['gpu_ee']:.0f}x EE at "
                  f"~{PAPER['gpu_lat']:.0f}x latency")


if __name__ == "__main__":  # pragma: no cover
    from .common import experiment_cli

    raise SystemExit(experiment_cli(main, units_fn=work_units))
