"""Figure 1: energy-efficiency vs single-thread latency design space.

The paper's conceptual figure places design points on two axes: OoO
MIMD CPUs at low latency / low efficiency, in-order SIMT GPUs at high
efficiency / unacceptable latency, SMT CPUs in between, and the RPU
pushing toward the ideal corner (GPU-class efficiency at CPU-class
latency).  We *measure* those points with the chip models over a
representative service mix.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import List

from ..energy import requests_per_joule
from ..timing import (
    CPU_CONFIG,
    GPU_CONFIG,
    RPU_CONFIG,
    SMT8_CONFIG,
    run_chip,
)
from ..workloads import get_service
from .common import Row, chip_unit, format_rows, geomean

COLUMNS = ["rel_requests_per_joule", "rel_latency"]

#: a mix spanning front/mid/leaf tiers
SERVICE_MIX = ("mcrouter", "post", "user", "uniqueid")

#: an in-order MIMD point (wimpy-core region of the figure)
INORDER_CPU = replace(CPU_CONFIG, name="cpu-inorder", in_order=True,
                      rob_entries=8)

DESIGNS = [CPU_CONFIG, INORDER_CPU, SMT8_CONFIG, RPU_CONFIG, GPU_CONFIG]


def work_units(scale: float = 1.0):
    """Declare the chip simulations ``run(scale)`` will consume."""
    n = max(256, int(512 * scale))
    return [chip_unit(get_service(name), design, scale, n_requests=n,
                      seed=13)
            for name in SERVICE_MIX for design in DESIGNS]


def run(scale: float = 1.0) -> List[Row]:
    """Measure the experiment; returns structured rows."""
    n = max(256, int(512 * scale))
    per_design = {d.name: {"ee": [], "lat": []} for d in DESIGNS}
    for name in SERVICE_MIX:
        service = get_service(name)
        requests = service.generate_requests(n, random.Random(13))
        base = None
        for design in DESIGNS:
            res = run_chip(service, requests, design)
            ee = requests_per_joule(res)
            lat_us = res.avg_latency_cycles / res.freq_ghz
            if design is CPU_CONFIG:
                base = (ee, lat_us)
            per_design[design.name]["ee"].append(ee / base[0])
            per_design[design.name]["lat"].append(lat_us / base[1])
    rows = []
    for design in DESIGNS:
        d = per_design[design.name]
        rows.append(Row(label=design.name, values={
            "rel_requests_per_joule": geomean(d["ee"]),
            "rel_latency": geomean(d["lat"]),
        }))
    return rows


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    rows = run(scale)
    out = format_rows(rows, COLUMNS,
                      title="Fig. 1: design points (geomean over "
                            f"{', '.join(SERVICE_MIX)}; relative to the "
                            "OoO CPU)")
    return out + ("\npaper's conceptual ordering: OoO CPU (1x, 1x) -> "
                  "SMT/in-order (more eff, more latency) -> RPU (high "
                  "eff, near-CPU latency) -> GPU (highest eff, "
                  "unacceptable latency)")


if __name__ == "__main__":  # pragma: no cover
    from .common import experiment_cli

    raise SystemExit(experiment_cli(main, units_fn=work_units))
