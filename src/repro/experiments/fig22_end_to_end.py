"""Figure 22: end-to-end tail and average latency vs offered load.

Paper: the RPU system (5x throughput, 1.2x latency per tier) sustains
4x the CPU system's throughput (60 vs 15 kQPS) at comparable latency;
without batch splitting the RPU's *average* latency inflates (hit
requests wait for their batch's storage misses) while the tail stays
acceptable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..system import (
    EndToEndConfig,
    max_throughput_kqps,
    saturation_sweep,
)
from .common import Row, format_rows

DEFAULT_QPS = (2000, 5000, 10000, 15000, 18000, 20000, 30000,
               45000, 60000, 75000, 90000)

COLUMNS = ["cpu_avg", "cpu_p99", "rpu_avg", "rpu_p99",
           "rpu_split_avg", "rpu_split_p99"]

PAPER = {"cpu_kqps": 15.0, "rpu_kqps": 60.0}


def run(scale: float = 1.0,
        qps_points: Sequence[float] = DEFAULT_QPS) -> Dict:
    """Measure the experiment; returns structured rows."""
    n = max(400, int(2000 * scale))
    systems = {
        "cpu": EndToEndConfig(rpu=False),
        "rpu": EndToEndConfig(rpu=True, batch_split=False),
        "rpu_split": EndToEndConfig(rpu=True, batch_split=True),
    }
    sweeps = {
        name: saturation_sweep(cfg, qps_points, n_requests=n)
        for name, cfg in systems.items()
    }
    rows = []
    for i, qps in enumerate(qps_points):
        rows.append(
            Row(
                label=f"{qps/1000:.0f} kQPS",
                values={
                    "cpu_avg": sweeps["cpu"][i].avg_latency_us,
                    "cpu_p99": sweeps["cpu"][i].p99_us,
                    "rpu_avg": sweeps["rpu"][i].avg_latency_us,
                    "rpu_p99": sweeps["rpu"][i].p99_us,
                    "rpu_split_avg": sweeps["rpu_split"][i].avg_latency_us,
                    "rpu_split_p99": sweeps["rpu_split"][i].p99_us,
                },
            )
        )
    return {
        "rows": rows,
        "max_kqps": {name: max_throughput_kqps(res)
                     for name, res in sweeps.items()},
    }


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    from ..report import series_plot

    data = run(scale)
    points = [
        (float(r.label.split()[0]),
         {"cpu_p99": r.values["cpu_p99"],
          "rpu_p99": r.values["rpu_p99"],
          "rpu_split_avg": r.values["rpu_split_avg"]})
        for r in data["rows"]
    ]
    plot = series_plot(points,
                       series=("cpu_p99", "rpu_p99", "rpu_split_avg"),
                       title="Fig. 22: latency vs offered load (log y)",
                       logy=True)
    out = format_rows(data["rows"], COLUMNS,
                      title="Fig. 22: end-to-end latency (us) vs load",
                      width=12) + "\n\n" + plot
    caps = ", ".join(f"{k}: {v:.0f} kQPS" for k, v in data["max_kqps"].items())
    return out + (f"\nmax throughput at QoS: {caps} "
                  f"(paper: CPU {PAPER['cpu_kqps']:.0f}, "
                  f"RPU {PAPER['rpu_kqps']:.0f})")


if __name__ == "__main__":  # pragma: no cover
    print(main())
