"""Run every reproduced figure/table and print the results.

Usage::

    python -m repro.experiments.run_all [--scale 1.0] [--only fig19]
                                        [--jobs N]

``--scale 12`` approximates the paper's 2400-request populations.
``--jobs N`` fans independent simulations over N worker processes;
the printed output is byte-identical for any ``--jobs`` value (timing
chatter goes to stderr).

Timing experiments declare their simulation work units (service x
config x policy x population); before the parallel fan-out the units
are deduplicated *across figures* and executed once each,
longest-estimated-first, so the persistent store
(:mod:`repro.store`) serves every figure's render from cache hits.
A warm store (second invocation with identical source and config)
skips simulation entirely.  ``REPRO_CACHE=0`` disables the store,
``REPRO_CACHE_DIR`` relocates it; either way stdout stays
byte-identical.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from . import (
    cycle_stacks,
    eq1_analytical,
    fig01_design_points,
    sec6a_simd_alternative,
    fig04_fig11_batching,
    fig05_bandwidth,
    fig07_minpc,
    fig10_energy_breakdown,
    fig13_stack_interleaving,
    fig14_traffic,
    fig15_mpki,
    fig16_allocator,
    fig19_20_21_chip,
    fig22_end_to_end,
    fleet_sweep,
    gpu_comparison,
    resilience_sweep,
    sensitivity,
    table04_config,
    table05_area_power,
    workload_table,
    zone_failover,
)

EXPERIMENTS: Dict[str, Callable[[float], str]] = {
    "fig01": fig01_design_points.main,
    "fig04_fig11": fig04_fig11_batching.main,
    "fig05": fig05_bandwidth.main,
    "fig07": fig07_minpc.main,
    "fig10": fig10_energy_breakdown.main,
    "fig13": fig13_stack_interleaving.main,
    "fig14": fig14_traffic.main,
    "fig15": fig15_mpki.main,
    "fig16": fig16_allocator.main,
    "fig19_20_21": fig19_20_21_chip.main,
    "fig22": fig22_end_to_end.main,
    "resilience": resilience_sweep.main,
    "fleet": fleet_sweep.main,
    "zones": zone_failover.main,
    "table04": table04_config.main,
    "table05": table05_area_power.main,
    "sensitivity": sensitivity.main,
    "gpu": gpu_comparison.main,
    "eq1": eq1_analytical.main,
    "sec6a": sec6a_simd_alternative.main,
    "workloads": workload_table.main,
    "cycle_stacks": cycle_stacks.main,
}


def _jsonable(value):
    """Convert experiment run() outputs to plain JSON-able data."""
    import dataclasses

    from .common import Row

    if isinstance(value, Row):
        return {"label": value.label, **value.values}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


#: experiments whose ``run()`` output is exported by ``--json``
EXPORTABLE = {
    "fig01": fig01_design_points.run,
    "fig04_fig11": fig04_fig11_batching.run,
    "fig05": fig05_bandwidth.run,
    "fig10": fig10_energy_breakdown.run,
    "fig13": fig13_stack_interleaving.run,
    "fig14": fig14_traffic.run,
    "fig15": fig15_mpki.run,
    "fig16": fig16_allocator.run,
    "fig19_20_21": fig19_20_21_chip.run,
    "fig22": fig22_end_to_end.run,
    "resilience": resilience_sweep.run,
    "fleet": fleet_sweep.run,
    "zones": zone_failover.run,
    "table05": table05_area_power.run,
    "sensitivity": sensitivity.run,
    "gpu": gpu_comparison.run,
    "eq1": eq1_analytical.run,
    "sec6a": sec6a_simd_alternative.run,
    "workloads": workload_table.run,
    "cycle_stacks": cycle_stacks.run,
}


def export_json(path: str, names, scale: float) -> None:
    """Run the named experiments and dump their rows as JSON."""
    import json

    out = {}
    for name in names:
        if name in EXPORTABLE:
            out[name] = _jsonable(EXPORTABLE[name](scale))
    with open(path, "w") as fh:
        json.dump({"scale": scale, "experiments": out}, fh, indent=1)


#: modules declaring their chip work units for cross-figure dedup
WORK_UNITS: Dict[str, Callable[[float], List]] = {
    "fig01": fig01_design_points.work_units,
    "fig10": fig10_energy_breakdown.work_units,
    "fig14": fig14_traffic.work_units,
    "fig15": fig15_mpki.work_units,
    "fig16": fig16_allocator.work_units,
    "fig19_20_21": fig19_20_21_chip.work_units,
    "sensitivity": sensitivity.work_units,
    "fleet": fleet_sweep.work_units,
    "zones": zone_failover.work_units,
    "gpu": gpu_comparison.work_units,
    "sec6a": sec6a_simd_alternative.work_units,
    "cycle_stacks": cycle_stacks.work_units,
}

#: measured serial seconds per experiment at scale=1 (relative weights
#: for longest-first submission; an unknown name sorts last)
COSTS = {
    "fleet": 40.0, "zones": 1.5,
    "fig15": 23.0, "fig19_20_21": 23.0, "fig10": 10.0, "fig14": 8.5,
    "fig16": 5.0, "gpu": 4.2, "fig04_fig11": 2.5, "fig01": 2.3,
    "sensitivity": 2.1, "resilience": 1.7, "sec6a": 0.9,
    "cycle_stacks": 0.6, "workloads": 0.5, "fig22": 0.5,
}


def collect_units(names, scale: float) -> List:
    """Every work unit the named experiments declare (duplicates kept;
    ``schedule_units`` dedups)."""
    units: List = []
    for name in names:
        declare = WORK_UNITS.get(name)
        if declare is not None:
            units.extend(declare(scale))
    return units


def _run_named(item):
    """Worker entry point: render one named experiment; returns the
    text plus this worker's cache stats (the parent aggregates them)."""
    from ..timing import trace_cache

    name, scale = item
    before = trace_cache.stats()
    text = EXPERIMENTS[name](scale)
    after = trace_cache.stats()
    return text, {k: after[k] - before.get(k, 0) for k in after}


def _print_cache_stats(extra=None) -> None:
    """Aggregate cache diagnostics on stderr (stdout stays pinned)."""
    from ..report import stats_line
    from ..timing import trace_cache

    merged = dict(trace_cache.stats())
    for delta in extra or []:
        for k, v in delta.items():
            merged[k] = merged.get(k, 0) + v
    print(stats_line("cache", merged), file=sys.stderr)


def main(argv=None) -> int:
    """CLI entry point: run the selected experiments and print them."""
    from .common import (parallel_map, resolve_jobs, schedule_units,
                         set_default_jobs)

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="request-count multiplier (paper scale ~12)")
    parser.add_argument("--only", action="append", default=None,
                        help="run only the named experiment(s)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also export the structured rows as JSON")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for independent simulations")
    args = parser.parse_args(argv)

    names = args.only or list(EXPERIMENTS)
    for name in names:
        if name not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
            )
    if args.jobs is not None:
        set_default_jobs(args.jobs)
    jobs = resolve_jobs(args.jobs)

    if jobs > 1:
        # phase 1: dedup the declared work units across figures and
        # simulate each exactly once, longest first, filling the store
        t0 = time.time()
        units = collect_units(names, args.scale)
        n_unique = schedule_units(units, jobs=jobs)
        if n_unique:
            print(f"[prewarmed {n_unique} unique work units "
                  f"({len(units)} declared) in {time.time() - t0:.1f}s "
                  f"on {jobs} workers]", file=sys.stderr)

    if jobs > 1 and len(names) > 1:
        t0 = time.time()
        # phase 2: one worker per experiment, costliest submitted
        # first; stdout stays in `names` order and is byte-identical
        # to the serial path (timing is stderr-only)
        results = parallel_map(_run_named, [(n, args.scale) for n in names],
                               jobs=jobs,
                               priority=[COSTS.get(n, 0.1) for n in names])
        for name, (text, _stats) in zip(names, results):
            print("=" * 72)
            print(text)
        print(f"[{len(names)} experiments took {time.time() - t0:.1f}s "
              f"on {jobs} workers]", file=sys.stderr)
        _print_cache_stats(extra=[s for _t, s in results])
    else:
        for name in names:
            t0 = time.time()
            print("=" * 72)
            print(EXPERIMENTS[name](args.scale))
            print(f"[{name} took {time.time() - t0:.1f}s]", file=sys.stderr)
        _print_cache_stats()
    if args.json:
        export_json(args.json, names, args.scale)
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
