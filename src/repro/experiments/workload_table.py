"""Workload characterization table (paper Section IV).

One row per microservice: static/dynamic instruction counts, dynamic
instruction mix, stack-traffic share, API count and the tuned batch
size - the information the paper gives in prose and its workload table,
measured from our implementations.
"""

from __future__ import annotations

from typing import List

from ..engine.events import StepSink
from ..core.run import run_solo
from ..isa.instructions import OpClass, Segment
from ..workloads import all_services
from .common import Row, format_rows, requests_for, summary_row

COLUMNS = ["static_insts", "dyn_insts_req", "pct_mem", "pct_branch",
           "pct_simd", "stack_share", "apis", "batch"]


class _MixSink(StepSink):
    def __init__(self):
        self.total = 0
        self.mem = 0
        self.branch = 0
        self.simd = 0
        self.stack_accesses = 0
        self.data_accesses = 0

    def on_step(self, pc, inst, active, addrs, outcomes):
        self.total += active
        cls = inst.cls
        if cls in (OpClass.LOAD, OpClass.STORE, OpClass.ATOMIC,
                   OpClass.CALL, OpClass.RET):
            self.mem += active
            if inst.segment is Segment.STACK:
                self.stack_accesses += len(addrs)
            else:
                self.data_accesses += len(addrs)
        elif cls is OpClass.BRANCH:
            self.branch += active
        elif cls is OpClass.SIMD:
            self.simd += active

    def on_done(self):
        pass


def run(scale: float = 0.5) -> List[Row]:
    """Measure the experiment; returns structured rows."""
    rows = []
    for service in all_services():
        requests = requests_for(service, scale)[:24]
        sink = _MixSink()
        run_solo(service, requests, sink=sink)
        n = len(requests)
        accesses = sink.stack_accesses + sink.data_accesses
        rows.append(Row(label=service.name, values={
            "static_insts": float(len(service.program)),
            "dyn_insts_req": sink.total / n,
            "pct_mem": sink.mem / sink.total,
            "pct_branch": sink.branch / sink.total,
            "pct_simd": sink.simd / sink.total,
            "stack_share": sink.stack_accesses / accesses if accesses else 0.0,
            "apis": float(len(service.apis)),
            "batch": float(service.recommended_batch),
        }))
    rows.append(summary_row(rows, COLUMNS))
    return rows


def main(scale: float = 0.5) -> str:
    """Render the experiment as the printable report."""
    out = format_rows(run(scale), COLUMNS,
                      title="Workload characterization (Section IV)")
    return out + ("\nThe Post/User family is stack-dominated (paper: up "
                  "to 90% stack accesses);\nHDSearch/Recommender leaves "
                  "are the SIMD-dense, batch-8-tuned services.")


if __name__ == "__main__":  # pragma: no cover
    print(main())
