"""Pipeline cycle stacks: where do the cycles go on each design?

The data center characterization the paper builds on (Kanev et al.,
SoftSKU) finds CPUs retire in only ~20-30% of cycles, the rest lost to
frontend and memory stalls.  This experiment decomposes each design's
run into issue/fetch time, dependency-wait time and memory service
time, normalized per request, and shows how the RPU's amortized
frontend shifts the balance.
"""

from __future__ import annotations

from typing import List

from ..timing import CPU_CONFIG, RPU_CONFIG, SMT8_CONFIG, run_chip
from ..workloads import get_service
from .common import Row, chip_unit, format_rows, requests_for

COLUMNS = ["dep_wait", "mem_service", "exec_service", "icache_stalls",
           "retire_share"]

SERVICES = ("memcached", "post", "search-midtier", "socialgraph")


def work_units(scale: float = 1.0):
    """Declare the chip simulations ``run(scale)`` will consume."""
    return [chip_unit(get_service(name), cfg, scale)
            for name in SERVICES
            for cfg in (CPU_CONFIG, SMT8_CONFIG, RPU_CONFIG)]


def run(scale: float = 1.0, services=SERVICES) -> List[Row]:
    """Measure the experiment; returns structured rows."""
    rows = []
    for name in services:
        service = get_service(name)
        requests = requests_for(service, scale)
        for cfg in (CPU_CONFIG, SMT8_CONFIG, RPU_CONFIG):
            res = run_chip(service, requests, cfg)
            c = res.counters
            n = max(1, res.n_requests)
            total_service = (c["stack_mem_service"]
                             + c["stack_exec_service"])
            busy_share = (total_service
                          / max(1e-9, total_service + c["stack_dep_wait"]))
            rows.append(Row(label=f"{name}/{cfg.name}", values={
                "dep_wait": c["stack_dep_wait"] / n,
                "mem_service": c["stack_mem_service"] / n,
                "exec_service": c["stack_exec_service"] / n,
                "icache_stalls": c["icache_stalls"] / n,
                "retire_share": busy_share,
            }))
    return rows


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    out = format_rows(run(scale), COLUMNS,
                      title="Cycle stacks per request (cycles; "
                            "retire_share = service/(service+waits))",
                      width=30)
    return out + ("\npaper context: data center CPUs spend most cycles "
                  "stalled; the RPU pays\nits stalls once per batch "
                  "instead of once per request.")


if __name__ == "__main__":  # pragma: no cover
    from .common import experiment_cli

    raise SystemExit(experiment_cli(main, units_fn=work_units))
