"""Table IV: the simulated CPU / CPU-SMT8 / RPU configurations."""

from __future__ import annotations

from typing import List, Tuple

from ..timing import CPU_CONFIG, GPU_CONFIG, RPU_CONFIG, SMT8_CONFIG
from ..timing.config import CoreConfig

FIELDS: List[Tuple[str, str]] = [
    ("issue_width", "Core width"),
    ("rob_entries", "OoO entries/ctx"),
    ("freq_ghz", "Freq (GHz)"),
    ("n_cores", "#Cores"),
    ("threads_per_core", "Threads/core"),
    ("lanes", "#Lanes"),
    ("alu_latency", "ALU/Bra lat"),
    ("l1_size", "L1 size (B)"),
    ("l1_banks", "L1 banks"),
    ("l1_latency", "L1 lat"),
    ("l2_size", "L2 size (B)"),
    ("l2_latency", "L2 lat"),
    ("tlb_entries", "TLB entries"),
    ("dram_bw_chip_gbps", "DRAM BW (GB/s)"),
    ("interconnect", "Interconnect"),
]

#: derived per-thread rows at the bottom of Table IV
DERIVED = ["l1_per_thread_kb", "tlb_per_thread", "membw_per_thread_gbs"]


def derived_metrics(cfg: CoreConfig) -> dict:
    """Per-thread resource rows at the bottom of Table IV."""
    threads = cfg.threads_per_core
    return {
        "l1_per_thread_kb": cfg.l1_size / 1024 / threads,
        "tlb_per_thread": cfg.tlb_entries / threads,
        "membw_per_thread_gbs": cfg.dram_bw_chip_gbps / cfg.total_threads,
        "total_threads": cfg.total_threads,
    }


def run(scale: float = 1.0):
    """The four simulated design points of Table IV."""
    return [CPU_CONFIG, SMT8_CONFIG, RPU_CONFIG, GPU_CONFIG]


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    configs = run(scale)
    lines = ["Table IV: simulated configurations"]
    header = f"{'metric':22s}" + "".join(f"{c.name:>14s}" for c in configs)
    lines.append(header)
    for attr, label in FIELDS:
        row = f"{label:22s}"
        for c in configs:
            row += f"{str(getattr(c, attr)):>14s}"
        lines.append(row)
    for key in DERIVED + ["total_threads"]:
        row = f"{key:22s}"
        for c in configs:
            row += f"{derived_metrics(c)[key]:>14.2f}"
        lines.append(row)
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())
