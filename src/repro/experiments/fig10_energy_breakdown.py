"""Figure 10: CPU dynamic-energy breakdown per pipeline stage.

Paper: frontend+OoO consumes ~73% of core dynamic energy on average,
with the SIMD-vectorized leaves much lower (HDSearch-leaf 39%,
Recommender-leaf 60%); the memory subsystem averages ~20%.
"""

from __future__ import annotations

from typing import List

from ..energy import energy_of
from ..timing import CPU_CONFIG, run_chip
from ..workloads import all_services
from .common import Row, chip_unit, format_rows, requests_for, summary_row

COLUMNS = ["frontend_ooo", "execution", "memory"]

PAPER = {"frontend_ooo": 0.73, "memory": 0.20}


def work_units(scale: float = 1.0):
    """Declare the chip simulations ``run(scale)`` will consume."""
    return [chip_unit(s, CPU_CONFIG, scale) for s in all_services()]


def run(scale: float = 1.0) -> List[Row]:
    """Measure the experiment; returns structured rows."""
    rows = []
    for service in all_services():
        requests = requests_for(service, scale)
        result = run_chip(service, requests, CPU_CONFIG)
        bd = energy_of(result)
        rows.append(
            Row(
                label=service.name,
                values={part: bd.share(part) for part in COLUMNS},
            )
        )
    rows.append(summary_row(rows, COLUMNS))
    return rows


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    out = format_rows(run(scale), COLUMNS,
                      title="Fig. 10: CPU dynamic energy shares per stage")
    return out + (f"\npaper: frontend+OoO ~{PAPER['frontend_ooo']:.0%} avg, "
                  f"memory ~{PAPER['memory']:.0%}")


if __name__ == "__main__":  # pragma: no cover
    from .common import experiment_cli

    raise SystemExit(experiment_cli(main, units_fn=work_units))
