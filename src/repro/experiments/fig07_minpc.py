"""Figure 7: stack-less MinPC reconvergence walkthrough.

Reproduces the paper's step table for the if/else diamond: four
threads, two taking each side, scheduled by the MinSP-PC policy.  The
schedule serializes the divergent sides and reconverges everyone at
the join block.
"""

from __future__ import annotations

from typing import List, Tuple

from ..engine import MemoryImage, MinSpPcExecutor, StepSink, ThreadState
from ..isa import ProgramBuilder


def diamond_program():
    """Build the paper's Fig. 7 if/else diamond example program."""
    b = ProgramBuilder("fig7-diamond")
    b.addi("r2", "r1", 0)          # BBA
    b.ble("r1", "zero", "else_")   # if (x > 0)
    b.addi("r3", "r2", 100)        # BBB
    b.jmp("join")
    b.label("else_")
    b.addi("r3", "r2", 200)        # BBC
    b.label("join")
    b.addi("r4", "r3", 1)          # BBD
    b.halt()
    return b.build()


def run(scale: float = 1.0):
    """Returns the (pc, op, active_count) schedule of the walkthrough."""
    program = diamond_program()
    mem = MemoryImage()
    threads = []
    for tid, x in enumerate([5, 5, -1, -1]):
        t = ThreadState(tid)
        t.regs[1] = x
        threads.append(t)

    schedule: List[Tuple[int, str, int]] = []

    class Sink(StepSink):
        def on_step(self, pc, inst, active, addrs, outcomes):
            schedule.append((pc, inst.op, active))

        def on_done(self):
            pass

    result = MinSpPcExecutor(program, sink=Sink()).run(threads, mem)
    return program, schedule, result, threads


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    program, schedule, result, threads = run(scale)
    lines = ["Fig. 7: MinPC schedule for the diamond "
             "(threads x = [5, 5, -1, -1])"]
    lines.append(f"{'step':>4s} {'pc':>4s} {'op':8s} {'active':>6s}")
    for i, (pc, op, active) in enumerate(schedule):
        lines.append(f"{i:4d} {pc:4d} {op:8s} {active:6d}/4")
    lines.append(
        f"divergent branches: {result.divergent_branches}, "
        f"SIMT efficiency: {result.simt_efficiency:.2f}"
    )
    lines.append("results r4: " + ", ".join(str(t.regs[4]) for t in threads))
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(main())
