"""Zone failover sweep: one-zone loss, brownouts, and health-checked
cross-zone failover.

The fleet sweep prices balancers under rack-scoped noise; this sweep
stages the *correlated* failure real capacity plans are written
against: an availability zone (2 of 6 replicas per tier) going dark
mid-run.  Cells compare

* a clean baseline (same topology, no faults);
* the zone kill with retries but **no failover** - the balancers keep
  routing into the dead zone, so every third affinity pick burns a
  detection round-trip and retries pile onto the deadline;
* the same kill with **health-checked failover** - replicas are
  ejected from the routable set after consecutive failures and traffic
  re-spreads over the surviving zones (capacity headroom absorbs it);
* the adaptive balancer under the same kill - its re-learned affinity
  map keeps batches pure while the routable set shrinks and recovers;
* a zone **brownout** (service times x8 inside the window, nothing
  fails) against fixed provisioning vs tail-latency (p99) autoscaling
  - the elastic fleet runs lean off-window and grows the active set
  when the windowed p99 crosses target, landing better requests/joule
  than fixed full provisioning at the same availability.

Expected shape: failover holds availability >= 99% of offered load
through the zone loss with bounded p99, while the no-failover baseline
demonstrably sheds more; the brownout pair shows p99-signal scale-ups
the queue signal cannot produce.

Zone overhead watts price the zone level itself (spine + zone cooling)
so the energy roll-up reflects the topology the failover relies on.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..energy.cluster import ClusterPowerModel
from ..system import (
    FleetConfig,
    FleetShardTask,
    ResilienceConfig,
    TrafficShape,
    ZoneConfig,
    run_fleet,
)
from .common import FleetUnit, Row, format_rows, parallel_map

GRAPH = "fleet_rpu"
SHARDS = 2
#: offered load summed over the shards; ~50% utilization at 6 replicas,
#: so two of three zones can absorb a full zone loss
BASE_QPS = 60_000.0
SEED = 21

#: 6 replicas/tier in 3 racks of 2; one rack per zone -> 3 zones
REPLICAS = 6
RACK_SIZE = 2

#: retry/deadline policy armed on every faulty cell
RETRY_POLICY = ResilienceConfig(deadline_us=60_000.0, max_retries=3)

#: per-zone fixed overhead (spine switches, zone cooling)
POWER = ClusterPowerModel(zone_overhead_w=60.0)

COLUMNS = ["avail", "violated", "fault_fail", "ejections", "p99",
           "req_per_j", "watts", "scale_events"]


def _horizon(scale: float) -> float:
    return max(50_000.0, 100_000.0 * scale)


def _fleet(balancer: str = "batch_aware", failover: bool = False,
           autoscale_signal: str = "", replicas: int = REPLICAS
           ) -> FleetConfig:
    kw = dict(replicas=replicas, rack_size=RACK_SIZE, balancer=balancer)
    if failover:
        kw.update(health_check=True, unhealthy_after=2,
                  health_probe_us=2_000.0)
    if autoscale_signal:
        kw.update(autoscale=True, autoscale_signal=autoscale_signal,
                  autoscale_interval_us=2_000.0, min_active=4,
                  p99_target_us=2_500.0)
    return FleetConfig(**kw)


def _zones(horizon: float, kill: bool = False,
           brownout: bool = False) -> ZoneConfig:
    """Zone topology: one rack per zone; optionally a planned kill of
    zone 0 (or an 8x brownout of zone 1) across the middle of the run."""
    return ZoneConfig(
        racks_per_zone=1,
        seed=SEED,
        planned=(((0, 0.3 * horizon, 0.6 * horizon),) if kill else ()),
        planned_brownout=(((1, 0.3 * horizon, 0.6 * horizon),)
                          if brownout else ()),
        brownout_mult=8.0,
        horizon_us=horizon,
    )


def _cells(scale: float) -> List[tuple]:
    """(label, shape, fleet, zones, resilience, horizon) cells."""
    horizon = _horizon(scale)
    shape = TrafficShape(base_qps=BASE_QPS)
    kill = _zones(horizon, kill=True)
    brown = _zones(horizon, brownout=True)
    return [
        ("clean/static", shape, _fleet(), _zones(horizon), None, horizon),
        ("zonekill/nofailover", shape, _fleet(), kill,
         RETRY_POLICY, horizon),
        ("zonekill/failover", shape, _fleet(failover=True), kill,
         RETRY_POLICY, horizon),
        ("zonekill/adaptive", shape, _fleet("adaptive", failover=True),
         kill, RETRY_POLICY, horizon),
        ("brownout/fixed", shape, _fleet(), brown, RETRY_POLICY, horizon),
        ("brownout/p99scale", shape, _fleet(autoscale_signal="p99"),
         brown, RETRY_POLICY, horizon),
    ]


def _cell_tasks(cell: tuple) -> List[FleetShardTask]:
    _label, shape, fleet, zones, resilience, horizon = cell
    return [FleetShardTask(graph=GRAPH, fleet=fleet, shape=shape,
                           horizon_us=horizon, shard=s, n_shards=SHARDS,
                           seed=SEED, faults=None, resilience=resilience,
                           zones=zones)
            for s in range(SHARDS)]


def work_units(scale: float = 1.0) -> List[FleetUnit]:
    """Declare every shard for ``run_all``'s cross-experiment dedup."""
    units: List[FleetUnit] = []
    for cell in _cells(scale):
        shape, horizon = cell[1], cell[5]
        cost = shape.mean_qps(horizon) * horizon * 1e-6 / SHARDS
        units.extend(FleetUnit(task=t, cost=cost)
                     for t in _cell_tasks(cell))
    return units


def _run_cell(cell: tuple) -> Tuple[str, dict]:
    label, shape, fleet, zones, resilience, horizon = cell
    r = run_fleet(shape, horizon, fleet=fleet, graph=GRAPH,
                  shards=SHARDS, seed=SEED, zones=zones,
                  resilience=resilience, power=POWER)
    return label, {
        "avail": r.goodput_frac,
        "violated": float(r.violated),
        "fault_fail": float(r.fault_failures),
        "ejections": float(r.ejections),
        "p99": r.p99_us,
        "req_per_j": r.requests_per_joule,
        "watts": r.avg_watts,
        "scale_events": float(r.scale_ups + r.scale_downs),
        "n_zones": float(r.n_zones),
        "offered_qps": r.offered_qps,
        "n_requests": float(r.n_requests),
    }


def run(scale: float = 1.0) -> Dict:
    cells = _cells(scale)
    results = parallel_map(_run_cell, cells)
    rows = [Row(label=label, values=values) for label, values in results]
    return {"rows": rows, "horizon_us": _horizon(scale),
            "shards": SHARDS, "base_qps": BASE_QPS}


def main(scale: float = 1.0) -> str:
    from ..report import fmt_si

    data = run(scale)
    by_label = {r.label: r for r in data["rows"]}
    horizon = data["horizon_us"]
    out = [f"Zone failover: {REPLICAS} replicas/tier in 3 zones "
           f"({fmt_si(data['base_qps'], 'QPS')} offered over "
           f"{data['shards']} shards, {horizon / 1000:g}ms horizon, "
           f"zone 0 dark {0.3 * horizon / 1000:g}-"
           f"{0.6 * horizon / 1000:g}ms)"]
    out.append("")
    out.append("one-zone loss (retry x3, 60ms deadline):")
    for label in ("clean/static", "zonekill/nofailover",
                  "zonekill/failover", "zonekill/adaptive"):
        row = by_label[label]
        out.append(f"  {label:20s} avail {row['avail']:7.3%} "
                   f"violated {row['violated']:4.0f} "
                   f"killed {row['fault_fail']:4.0f} "
                   f"ejected {row['ejections']:3.0f} "
                   f"p99 {row['p99']:6.0f}us "
                   f"r/J {row['req_per_j']:6.2f}")
    out.append("")
    out.append("zone brownout (service x8 in window), fixed vs "
               "p99-signal autoscaling:")
    for label in ("brownout/fixed", "brownout/p99scale"):
        row = by_label[label]
        out.append(f"  {label:20s} avail {row['avail']:7.3%} "
                   f"p99 {row['p99']:6.0f}us "
                   f"scale-events {row['scale_events']:3.0f} "
                   f"{fmt_si(row['watts'], 'W'):>8s} "
                   f"r/J {row['req_per_j']:6.2f}")
    out.append("")
    out.append(format_rows(data["rows"], COLUMNS,
                           title="per-cell detail (latencies in us)",
                           width=22))
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    from .common import experiment_cli

    raise SystemExit(experiment_cli(main, units_fn=work_units))
