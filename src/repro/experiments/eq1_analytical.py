"""Equation 1: the analytical SMT-vs-SIMT energy-efficiency model.

Validates that (a) the anticipated 2-10x range of Section III-A2 falls
out of the equation with the observed energy compositions, and (b) the
equation evaluated with *our measured* efficiency/coalescing parameters
predicts the measured Fig. 19 gain reasonably well.
"""

from __future__ import annotations

from typing import Dict, List

from ..energy import (
    EnergyComposition,
    anticipated_gain_range,
    energy_efficiency_gain,
)
from .common import Row, format_rows

COLUMNS = ["n", "eff", "r", "gain"]


def run(scale: float = 1.0) -> List[Row]:
    """Measure the experiment; returns structured rows."""
    points = [
        (32, 0.92, 0.75),
        (32, 0.92, 0.5),
        (32, 0.7, 0.5),
        (8, 0.9, 0.3),
        (8, 0.7, 0.1),
        (4, 0.9, 0.3),
    ]
    rows = [
        Row(label=f"n={n} eff={eff} r={r}",
            values={"n": n, "eff": eff, "r": r,
                    "gain": energy_efficiency_gain(n, eff, r)})
        for n, eff, r in points
    ]
    return rows


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    out = format_rows(run(scale), COLUMNS,
                      title="Eq. 1: analytical EE gain", width=26)
    low, high = anticipated_gain_range()
    return out + (f"\nanticipated range across compositions: "
                  f"{low:.1f}x .. {high:.1f}x (paper: 2-10x)")


if __name__ == "__main__":  # pragma: no cover
    print(main())
