"""Section V-A1 sensitivity studies.

* Sub-batch interleaving: 8 SIMT lanes vs full-width 32 lanes costs
  only ~4% performance on average (up to 10% on UniqueID).
* Atomics at L3: no measurable slowdown (few atomics per instruction).
* Majority voting: improves batch prediction accuracy / energy over
  leader-based prediction, with little performance impact.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from ..timing import (RPU_CONFIG, run_chip, rpu_with_batches,
                      rpu_with_lanes, rpu_without)
from ..workloads import all_services, get_service
from .common import (Row, chip_unit, format_rows, mean, requests_for,
                     summary_row)

LANE_COLUMNS = ["lat_8lanes", "lat_32lanes", "loss"]
ATOMIC_COLUMNS = ["lat_atomics_l3", "lat_atomics_l1", "slowdown"]
VOTE_COLUMNS = ["vote_accuracy", "leader_accuracy", "flushes_per_kinst"]

PAPER = {"sub_batch_loss": 0.04, "sub_batch_worst": 0.10}

SUBSET = ("mcrouter", "memcached", "post", "uniqueid", "search-midtier",
          "hdsearch-leaf")


def run_lanes(scale: float = 1.0, services=SUBSET) -> List[Row]:
    """Sub-batch interleaving: 8-lane RPU vs full 32-lane datapath."""
    rows = []
    wide = rpu_with_lanes(32)
    for name in services:
        service = get_service(name)
        requests = requests_for(service, scale)
        narrow = run_chip(service, requests, RPU_CONFIG)
        full = run_chip(service, requests, wide)
        loss = (narrow.avg_latency_cycles - full.avg_latency_cycles) \
            / max(1e-9, full.avg_latency_cycles)
        rows.append(Row(label=name, values={
            "lat_8lanes": narrow.avg_latency_cycles,
            "lat_32lanes": full.avg_latency_cycles,
            "loss": loss,
        }))
    rows.append(summary_row(rows, LANE_COLUMNS))
    return rows


def run_atomics(scale: float = 1.0, services=("socialgraph", "uniqueid",
                                              "memcached")) -> List[Row]:
    """Atomics executed at the shared L3 vs in the private L1."""
    rows = []
    no_l3 = rpu_without("atomics_at_l3")
    for name in services:
        service = get_service(name)
        requests = requests_for(service, scale)
        at_l3 = run_chip(service, requests, RPU_CONFIG)
        at_l1 = run_chip(service, requests, no_l3)
        rows.append(Row(label=name, values={
            "lat_atomics_l3": at_l3.avg_latency_cycles,
            "lat_atomics_l1": at_l1.avg_latency_cycles,
            "slowdown": at_l3.avg_latency_cycles
            / max(1e-9, at_l1.avg_latency_cycles),
        }))
    rows.append(summary_row(rows, ATOMIC_COLUMNS))
    return rows


def run_majority_vote(scale: float = 1.0,
                      services=("memcached", "post", "user")) -> List[Row]:
    """Majority-vote batch prediction vs leader-thread prediction."""
    rows = []
    no_vote = rpu_without("majority_vote")
    for name in services:
        service = get_service(name)
        requests = requests_for(service, scale)
        vote = run_chip(service, requests, RPU_CONFIG)
        leader = run_chip(service, requests, no_vote)

        def acc(res):
            lk = res.counters["bp_lookups"]
            return 1.0 - res.counters["bp_mispredicts"] / lk if lk else 1.0

        rows.append(Row(label=name, values={
            "vote_accuracy": acc(vote),
            "leader_accuracy": acc(leader),
            "flushes_per_kinst": vote.counters["bp_minority_flushes"]
            / max(1, vote.scalar_instructions) * 1000,
        }))
    rows.append(summary_row(rows, VOTE_COLUMNS))
    return rows


MULTI_BATCH_COLUMNS = ["thr_1batch", "thr_2batch", "gain", "lat_cost"]


def run_multi_batch(scale: float = 1.0,
                    services=("memcached", "socialgraph",
                              "user")) -> List[Row]:
    """Extension: two resident batches per core hide memory latency.

    The paper defers multi-batch scheduling to future work; here we
    measure what the mechanism buys on the miss-heavy services it
    targets: throughput per core rises while per-batch latency grows.
    """
    rows = []
    two = rpu_with_batches(2)
    for name in services:
        service = get_service(name)
        requests = requests_for(service, scale)
        one_r = run_chip(service, requests, RPU_CONFIG)
        two_r = run_chip(service, requests, two)
        thr1 = one_r.n_requests / max(1e-9, one_r.core_cycles)
        thr2 = two_r.n_requests / max(1e-9, two_r.core_cycles)
        rows.append(Row(label=name, values={
            "thr_1batch": thr1,
            "thr_2batch": thr2,
            "gain": thr2 / thr1 if thr1 else 0.0,
            "lat_cost": two_r.avg_latency_cycles
            / max(1e-9, one_r.avg_latency_cycles),
        }))
    rows.append(summary_row(rows, MULTI_BATCH_COLUMNS))
    return rows


SPEC_COLUMNS = ["eff_default", "eff_speculative"]


def run_speculative_reconvergence(scale: float = 1.0) -> List[Row]:
    """Section III-B1: speculative reconvergence on HDSearch-midtier.

    Moving the IPDOM sync point to the head of the expensive side lets
    cheap-path threads wait there instead of executing past it.
    """
    import random

    from ..batching import form_batches
    from ..core.run import run_batch

    service = get_service("hdsearch-midtier")
    requests = requests_for(service, scale)
    override = service.speculative_reconvergence_override()
    rows = []
    default_effs, spec_effs = [], []
    for batch in form_batches(requests, 32, "per_api_size"):
        default_effs.append(
            run_batch(service, batch, policy="ipdom").simt_efficiency)
        spec_effs.append(
            run_batch(service, batch, policy="ipdom",
                      reconv_override=override).simt_efficiency)
    rows.append(Row(label="hdsearch-midtier", values={
        "eff_default": mean(default_effs),
        "eff_speculative": mean(spec_effs),
    }))
    return rows


def work_units(scale: float = 1.0):
    """Declare the chip simulations the timed studies will consume
    (speculative reconvergence is architectural-only and has none)."""
    units = []
    for name in SUBSET:
        svc = get_service(name)
        units.append(chip_unit(svc, RPU_CONFIG, scale))
        units.append(chip_unit(svc, rpu_with_lanes(32), scale))
    for name in ("socialgraph", "uniqueid", "memcached"):
        svc = get_service(name)
        units.append(chip_unit(svc, RPU_CONFIG, scale))
        units.append(chip_unit(svc, rpu_without("atomics_at_l3"), scale))
    for name in ("memcached", "post", "user"):
        svc = get_service(name)
        units.append(chip_unit(svc, RPU_CONFIG, scale))
        units.append(chip_unit(svc, rpu_without("majority_vote"), scale))
    for name in ("memcached", "socialgraph", "user"):
        svc = get_service(name)
        units.append(chip_unit(svc, RPU_CONFIG, scale))
        units.append(chip_unit(svc, rpu_with_batches(2), scale))
    return units


def run(scale: float = 1.0) -> Dict[str, List[Row]]:
    """All Section V-A1 sensitivity studies, keyed by name."""
    return {
        "sub_batch": run_lanes(scale),
        "atomics": run_atomics(scale),
        "majority_vote": run_majority_vote(scale),
        "speculative_reconvergence": run_speculative_reconvergence(scale),
        "multi_batch": run_multi_batch(scale),
    }


def main(scale: float = 1.0) -> str:
    """Render every sensitivity table as one printable report."""
    data = run(scale)
    return "\n\n".join([
        format_rows(data["sub_batch"], LANE_COLUMNS,
                    title="Sub-batch interleaving: 8 vs 32 lanes "
                          "(paper: ~4% avg loss, 10% worst)"),
        format_rows(data["atomics"], ATOMIC_COLUMNS,
                    title="Atomics at L3 vs in-L1 (paper: no slowdown)"),
        format_rows(data["majority_vote"], VOTE_COLUMNS,
                    title="Majority voting vs leader-based prediction"),
        format_rows(data["speculative_reconvergence"], SPEC_COLUMNS,
                    title="Speculative reconvergence (Section III-B1)"),
        format_rows(data["multi_batch"], MULTI_BATCH_COLUMNS,
                    title="Multi-batch interleaving extension "
                          "(2 resident batches)"),
    ])


if __name__ == "__main__":  # pragma: no cover
    from .common import experiment_cli

    raise SystemExit(experiment_cli(main, units_fn=work_units))
