"""Figure 13: stack-segment interleaving address mapping.

Prints the virtual -> physical mapping for the first words of each
thread's stack (4-byte interleaving across the batch) and the worked
example from Section III-B2: a 32-thread batch pushing an 8-byte value
touches 8 cache lines instead of the CPU's 32 accesses.
"""

from __future__ import annotations

from typing import List

from ..engine.memory import stack_base
from ..isa import Segment
from ..memsys import MemoryCoalescingUnit, StackInterleaver, scalar_accesses
from .common import Row, format_rows

COLUMNS = ["batch", "cpu_accesses", "rpu_lines", "reduction"]


def run(scale: float = 1.0) -> List[Row]:
    """Measure the push example at several batch sizes."""
    rows = []
    for batch in (4, 8, 16, 32):
        interleaver = StackInterleaver(batch)
        mcu = MemoryCoalescingUnit(interleaver=interleaver)
        accesses = [(t, stack_base(t) - 128, 8) for t in range(batch)]
        res = mcu.coalesce(Segment.STACK, accesses)
        cpu = scalar_accesses(accesses).n_accesses
        rows.append(Row(label=f"batch {batch}", values={
            "batch": float(batch),
            "cpu_accesses": float(cpu),
            "rpu_lines": float(res.n_accesses),
            "reduction": cpu / res.n_accesses,
        }))
    return rows


def mapping_table(batch: int = 4, words: int = 4) -> str:
    """Render the per-word virtual -> physical mapping (Fig. 13c)."""
    interleaver = StackInterleaver(batch)
    lines = [f"{'thread':>7s} {'word':>5s} {'virtual':>12s} {'physical':>12s}"]
    for tid in range(batch):
        for w in range(words):
            va = stack_base(tid) - 128 - 4 * w
            pa = interleaver.physical(va)
            lines.append(f"{tid:7d} {w:5d} {va:#12x} {pa:#12x}")
    return "\n".join(lines)


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    out = format_rows(run(scale), COLUMNS,
                      title="Fig. 13: stack push coalescing "
                            "(8B push per thread)")
    return (out + "\npaper example: 32 threads x 8B -> 8 line accesses "
            "(vs 32 on the CPU)\n\nvirtual->physical interleaving "
            "(batch=4, first 4 words):\n" + mapping_table())


if __name__ == "__main__":  # pragma: no cover
    print(main())
