"""Figure 15: L1 MPKI - CPU (64KB/thread) vs RPU batch sizes 32/16/8/4.

The paper's observation: most microservices fit 8KB/thread, so the
RPU's 256KB L1 at batch 32 *improves* MPKI vs the CPU (coalescing
removes accesses and misses); the data-intensive leaves thrash at
batch 32 and need throttling to batch 8 (batch-size tuning).
"""

from __future__ import annotations

from typing import List

from ..timing import CPU_CONFIG, RPU_CONFIG, run_chip
from ..workloads import all_services
from .common import Row, chip_unit, format_rows, requests_for, summary_row

BATCHES = (32, 16, 8, 4)
COLUMNS = ["cpu"] + [f"rpu_b{b}" for b in BATCHES]


def work_units(scale: float = 1.0):
    """Declare the chip simulations ``run(scale)`` will consume."""
    units = []
    for service in all_services():
        units.append(chip_unit(service, CPU_CONFIG, scale))
        units.extend(chip_unit(service, RPU_CONFIG, scale, batch_size=b)
                     for b in BATCHES)
    return units


def _mpki(result) -> float:
    kinst = result.scalar_instructions / 1000.0
    return result.counters["l1_misses"] / kinst if kinst else 0.0


def run(scale: float = 1.0, services=None) -> List[Row]:
    """Measure the experiment; returns structured rows."""
    rows = []
    for service in services or all_services():
        requests = requests_for(service, scale)
        values = {"cpu": _mpki(run_chip(service, requests, CPU_CONFIG))}
        for b in BATCHES:
            res = run_chip(service, requests, RPU_CONFIG, batch_size=b)
            values[f"rpu_b{b}"] = _mpki(res)
        rows.append(Row(label=service.name, values=values))
    rows.append(summary_row(rows, COLUMNS))
    return rows


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    return format_rows(run(scale), COLUMNS,
                       title="Fig. 15: L1 MPKI, CPU 64KB vs RPU 256KB "
                             "at batch sizes 32/16/8/4")


if __name__ == "__main__":  # pragma: no cover
    from .common import experiment_cli

    raise SystemExit(experiment_cli(main, units_fn=work_units))
