"""Fleet sweep: replicas x load balancer x traffic shape.

SIMR quotes requests/joule on one chip; this sweep asks what survives
at the *cluster* level, where a load balancer decides which replica's
batch a request lands in.  An RPU tier's efficiency comes from
batching same-API requests, so a class-blind balancer (round-robin,
least-loaded) dilutes every batch with divergent work while the
batch-aware policy keeps replica batches single-class
(:mod:`repro.system.fleet`).  Expected shape:

* at equal offered load, ``batch_aware`` beats ``round_robin`` on
  requests/joule and p99 (no divergence multiplier at the web tier);
* ``least_loaded`` tracks round-robin - balancing backlog does not
  help when the cost is *inside* the batches;
* more replicas cost static+rack watts: requests/joule falls with
  over-provisioning, which is the autoscaling motivation;
* on the diurnal shape, autoscaling sheds idle replicas off-peak and
  claws static energy back at a small p99 cost;
* rack-scoped outages kill in-flight work across a whole rack; the
  retry policy recovers goodput at extra-attempt energy cost.

Every cell is ``SHARDS`` independent fleet cells (sharded by keyed
arrival streams), so serial and ``--jobs`` runs are bit-identical and
each shard is one persistent-store unit (``work_units`` declares them
for ``run_all``'s cross-experiment prewarm).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..system import (
    FaultConfig,
    FleetConfig,
    FleetShardTask,
    ResilienceConfig,
    TrafficShape,
    run_fleet,
)
from .common import FleetUnit, Row, format_rows, parallel_map

#: the balancers this sweep grids over - pinned to the original three
#: so the reference stdout stays byte-identical as new balancers join
#: ``repro.system.BALANCERS`` (the zone_failover sweep covers those)
SWEEP_BALANCERS = ("round_robin", "least_loaded", "batch_aware")

GRAPH = "fleet_rpu"
#: independent fleet cells per configuration (arrival stream split)
SHARDS = 2
#: offered load summed over the shards (QPS)
BASE_QPS = 120_000.0
SEED = 9

#: provisioned replicas per tier (the main grid's first axis)
REPLICAS = (2, 3)

#: rack-scoped outage mix for the fault cells: replica ``r`` lives in
#: rack ``r // rack_size``, so one outage downs a whole rack's tiers
RACK_FAULTS = FaultConfig(
    seed=13,
    outage_rate_per_s=4.0,
    outage_min_us=3_000.0,
    outage_max_us=9_000.0,
    drop_prob=0.01,
)

#: retry/deadline policy armed on the fault cells
RETRY_POLICY = ResilienceConfig(deadline_us=60_000.0, max_retries=2)

COLUMNS = ["req_per_j", "watts", "p50", "p99", "goodput", "mixed",
           "classes", "violated", "fault_fail", "scale_events"]


def _horizon(scale: float) -> float:
    """Simulated wall-clock per cell (us); scales the request count."""
    return max(50_000.0, 100_000.0 * scale)


def _shapes(horizon: float) -> Dict[str, TrafficShape]:
    """The three traffic shapes, with windows placed inside ``horizon``
    so every scale exercises the diurnal trough and the flash spike."""
    return {
        "steady": TrafficShape(base_qps=BASE_QPS),
        "diurnal": TrafficShape(base_qps=BASE_QPS,
                                diurnal_amplitude=0.35,
                                diurnal_period_us=horizon / 2.0),
        "flash": TrafficShape(base_qps=0.8 * BASE_QPS,
                              flash_at_us=0.4 * horizon,
                              flash_duration_us=0.2 * horizon,
                              flash_mult=2.0),
    }


def _cells(scale: float) -> List[tuple]:
    """Every (label, shape, fleet, faults, resilience, horizon) cell."""
    horizon = _horizon(scale)
    shapes = _shapes(horizon)
    cells: List[tuple] = []
    for r in REPLICAS:
        for bal in SWEEP_BALANCERS:
            for sname, shape in shapes.items():
                cells.append((f"r{r}/{bal}/{sname}", shape,
                              FleetConfig(replicas=r, balancer=bal),
                              None, None, horizon))
    # autoscaling pair: same diurnal offered load, fixed vs elastic
    for suffix, auto in (("fixed", False), ("autoscale", True)):
        cells.append((f"r4/diurnal/{suffix}", shapes["diurnal"],
                      FleetConfig(replicas=4, balancer="batch_aware",
                                  autoscale=auto),
                      None, None, horizon))
    # rack-outage pair: same policy and load, without/with outages
    for suffix, faults in (("clean", None), ("outages", RACK_FAULTS)):
        cells.append((f"r4/steady/{suffix}", shapes["steady"],
                      FleetConfig(replicas=4, balancer="batch_aware"),
                      faults, RETRY_POLICY, horizon))
    return cells


def _cell_tasks(cell: tuple) -> List[FleetShardTask]:
    """The shard tasks one cell's :func:`run_fleet` call will execute
    (constructed identically, so declared units dedup against it)."""
    _label, shape, fleet, faults, resilience, horizon = cell
    return [FleetShardTask(graph=GRAPH, fleet=fleet, shape=shape,
                           horizon_us=horizon, shard=s, n_shards=SHARDS,
                           seed=SEED, faults=faults,
                           resilience=resilience)
            for s in range(SHARDS)]


def work_units(scale: float = 1.0) -> List[FleetUnit]:
    """Declare every shard for ``run_all``'s cross-experiment dedup."""
    units: List[FleetUnit] = []
    for cell in _cells(scale):
        shape, horizon = cell[1], cell[5]
        cost = shape.mean_qps(horizon) * horizon * 1e-6 / SHARDS
        units.extend(FleetUnit(task=t, cost=cost)
                     for t in _cell_tasks(cell))
    return units


def _run_cell(cell: tuple) -> Tuple[str, dict]:
    """Worker entry point: one fleet configuration (all its shards)."""
    label, shape, fleet, faults, resilience, horizon = cell
    r = run_fleet(shape, horizon, fleet=fleet, graph=GRAPH,
                  shards=SHARDS, seed=SEED, faults=faults,
                  resilience=resilience)
    return label, {
        "req_per_j": r.requests_per_joule,
        "watts": r.avg_watts,
        "p50": r.p50_us,
        "p99": r.p99_us,
        "goodput": r.goodput_frac,
        "mixed": r.mixed_batch_frac,
        "classes": r.mean_classes,
        "violated": float(r.violated),
        "fault_fail": float(r.fault_failures),
        "scale_events": float(r.scale_ups + r.scale_downs),
        "carbon_g": r.carbon_g,
        "offered_qps": r.offered_qps,
        "n_requests": float(r.n_requests),
    }


def run(scale: float = 1.0) -> Dict:
    """Measure the sweep; returns structured rows."""
    cells = _cells(scale)
    results = parallel_map(_run_cell, cells)
    rows = [Row(label=label, values=values) for label, values in results]
    return {"rows": rows, "horizon_us": _horizon(scale),
            "shards": SHARDS, "base_qps": BASE_QPS}


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    from ..report import fmt_si, grid_table

    data = run(scale)
    by_label = {r.label: r for r in data["rows"]}
    shape_names = list(_shapes(data["horizon_us"]))
    out = [f"Fleet sweep: replicas x balancer x traffic "
           f"({fmt_si(data['base_qps'], 'QPS')} offered over "
           f"{data['shards']} shards, "
           f"{data['horizon_us'] / 1000:g}ms horizon)"]
    for r in REPLICAS:
        cells = {}
        for bal in SWEEP_BALANCERS:
            for sname in shape_names:
                row = by_label[f"r{r}/{bal}/{sname}"]
                cells[(bal, sname)] = (
                    f"r/J {row['req_per_j']:6.2f} "
                    f"p99 {row['p99']:6.0f}us "
                    f"mix {row['mixed']:4.0%}")
        out.append("")
        out.append(grid_table(
            list(SWEEP_BALANCERS), shape_names, cells,
            title=f"[{r} replicas/tier] cluster "
                  + fmt_si(by_label[f"r{r}/round_robin/steady"]["watts"],
                           "W")))
    out.append("")
    out.append("autoscaling on the diurnal shape (4 replicas, "
               "batch-aware):")
    for suffix in ("fixed", "autoscale"):
        row = by_label[f"r4/diurnal/{suffix}"]
        out.append(f"  {suffix:9s} {fmt_si(row['watts'], 'W'):>8s} "
                   f"r/J {row['req_per_j']:6.2f} "
                   f"p99 {row['p99']:6.0f}us "
                   f"scale-events {row['scale_events']:3.0f} "
                   f"carbon {row['carbon_g']:.2f}g")
    out.append("")
    out.append("rack-scoped outages (4 replicas, 2 racks/shard, "
               "retry x2):")
    for suffix in ("clean", "outages"):
        row = by_label[f"r4/steady/{suffix}"]
        out.append(f"  {suffix:9s} goodput {row['goodput']:6.2%} "
                   f"violated {row['violated']:4.0f} "
                   f"killed {row['fault_fail']:4.0f} "
                   f"p99 {row['p99']:6.0f}us "
                   f"r/J {row['req_per_j']:6.2f}")
    out.append("")
    out.append(format_rows(data["rows"], COLUMNS,
                           title="per-cell detail (latencies in us)",
                           width=26))
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    from .common import experiment_cli

    raise SystemExit(experiment_cli(main, units_fn=work_units))
