"""Figure 5: off-chip DRAM bandwidth and thread-count scaling.

CPU vendors provision ~2 GB/s of DRAM bandwidth per thread; as DDR
generations raise per-socket bandwidth, the threads needed to utilize
it grow toward 256 (DDR5) and 512 (DDR6/HBM) - the motivation for
scaling on-chip thread count (Key Observation #5).
"""

from __future__ import annotations

from typing import List

from .common import Row, format_rows

GB_PER_THREAD = 2.0

#: per-socket bandwidth by memory generation (GB/s)
GENERATIONS = [
    ("DDR3-1600 (4ch)", 51),
    ("DDR4-3200 (8ch)", 205),
    ("DDR5-4800 (8ch)", 307),
    ("DDR5-7200 (10ch)", 576),
    ("DDR6 (proj.)", 1024),
    ("HBM2e", 1640),
]

COLUMNS = ["bw_gbps", "threads_per_socket"]


def threads_to_saturate(bw_gbps: float,
                        gb_per_thread: float = GB_PER_THREAD) -> int:
    """Threads needed to consume a socket's bandwidth at 2 GB/s each."""
    return int(bw_gbps / gb_per_thread)


def run(scale: float = 1.0) -> List[Row]:
    """Measure the experiment; returns structured rows."""
    return [
        Row(label=name,
            values={"bw_gbps": bw,
                    "threads_per_socket": threads_to_saturate(bw)})
        for name, bw in GENERATIONS
    ]


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    return format_rows(run(scale), COLUMNS,
                       title="Fig. 5: off-chip BW and thread scaling "
                             "(2 GB/s per thread)")


if __name__ == "__main__":  # pragma: no cover
    print(main())
