"""Resilience sweep: fault rate x policy on the end-to-end systems.

The paper evaluates batch splitting (Section V-B, Fig. 22) on an ideal
cluster.  This sweep asks the question real deployments would: *does
SIMR-style batching amplify tail latency under faults, and do standard
resilience policies recover goodput - at what requests/joule cost?*

For the CPU and RPU (batch-split) end-to-end configurations it sweeps
fault intensity x resilience policy and reports p50/p99/p99.9 latency,
goodput, shed/violated counts and requests/joule.  Expected shape:

* p99/p99.9 grow with fault intensity for every policy;
* with no policy, goodput falls roughly linearly in the fault rate;
* retry/hedging recover goodput (completion fraction back near 1.0)
  while spending extra attempts - visible as a requests/joule drop;
* the full policy stack (shed + breaker + degrade) trades a little
  goodput and quality for a flatter tail.

Faults perturb batch formation on the RPU: retries and hedges re-enter
the batch queues mid-stream, so the batching layer is exercised under
exactly the churn the paper's ideal-cluster evaluation leaves out.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..system import (
    EndToEndConfig,
    FaultConfig,
    ResilienceConfig,
    run_resilient,
)
from .common import Row, format_rows, parallel_map

#: fault intensity multipliers (x axis); BASE_FAULTS is intensity 1.0
INTENSITIES = (0.0, 0.5, 1.0, 2.0)

BASE_FAULTS = FaultConfig(
    seed=11,
    outage_rate_per_s=3.0,
    outage_min_us=2_000.0,
    outage_max_us=8_000.0,
    straggler_prob=0.02,
    straggler_mult=6.0,
    spike_prob=0.02,
    spike_us=600.0,
    drop_prob=0.015,
)

POLICIES: Dict[str, ResilienceConfig] = {
    "none": ResilienceConfig(deadline_us=60_000.0),
    "retry": ResilienceConfig(deadline_us=60_000.0, max_retries=3),
    "hedge": ResilienceConfig(deadline_us=60_000.0, max_retries=2,
                              hedge_after_us=2_500.0),
    "full": ResilienceConfig(deadline_us=60_000.0, max_retries=2,
                             hedge_after_us=2_500.0,
                             shed_backlog_us=2_500.0,
                             breaker_threshold=5,
                             breaker_cooldown_us=4_000.0,
                             degrade_storage=True),
}

#: offered load per system: comfortably below the fault-free knee, so
#: the sweep measures fault response rather than saturation
SYSTEMS: Dict[str, Tuple[EndToEndConfig, float]] = {
    "cpu": (EndToEndConfig(rpu=False), 8_000.0),
    "rpu": (EndToEndConfig(rpu=True, batch_split=True), 40_000.0),
}

COLUMNS = ["p50", "p99", "p999", "goodput_kqps", "shed", "violated",
           "degraded", "retries", "hedges", "req_per_j", "quality"]

SEED = 5


def _run_cell(task) -> Tuple[str, str, float, dict]:
    """Worker entry point: one (system, policy, intensity) cell."""
    sys_name, pol_name, intensity, n = task
    cfg, qps = SYSTEMS[sys_name]
    faults = BASE_FAULTS.scaled(intensity) if intensity > 0 else None
    r = run_resilient(cfg, POLICIES[pol_name], faults, qps=qps,
                      n_requests=n, seed=SEED,
                      max_events=max(200_000, 400 * n))
    return sys_name, pol_name, intensity, {
        "p50": r.p50_us,
        "p99": r.p99_us,
        "p999": r.p999_us,
        "goodput_kqps": r.goodput_kqps,
        "goodput_frac": r.goodput_frac,
        "shed": float(r.shed),
        "violated": float(r.violated),
        "degraded": float(r.degraded),
        "retries": float(r.retries),
        "hedges": float(r.hedges),
        "req_per_j": r.requests_per_joule,
        "quality": r.quality,
    }


def run(scale: float = 1.0) -> Dict:
    """Measure the sweep; returns structured rows."""
    n = max(400, int(1600 * scale))
    tasks = [(s, p, i, n) for s in SYSTEMS for p in POLICIES
             for i in INTENSITIES]
    results = parallel_map(_run_cell, tasks)
    rows: List[Row] = []
    for sys_name, pol_name, intensity, values in results:
        rows.append(Row(label=f"{sys_name}/{pol_name}@f={intensity:g}",
                        values=values))
    return {"rows": rows, "n_requests": n}


def main(scale: float = 1.0) -> str:
    """Render the experiment as the printable report."""
    from ..report import grid_table

    data = run(scale)
    by_label = {r.label: r for r in data["rows"]}
    out = ["Resilience sweep: fault intensity x policy "
           f"({data['n_requests']} requests per cell)"]
    for sys_name in SYSTEMS:
        cells = {}
        for pol_name in POLICIES:
            for i in INTENSITIES:
                r = by_label[f"{sys_name}/{pol_name}@f={i:g}"]
                cells[(pol_name, f"f={i:g}")] = (
                    f"p99 {r['p99']:7.0f}us "
                    f"good {r['goodput_frac']:4.0%} "
                    f"r/J {r['req_per_j']:5.1f}")
        out.append("")
        out.append(grid_table(
            list(POLICIES), [f"f={i:g}" for i in INTENSITIES], cells,
            title=f"[{sys_name}] offered {SYSTEMS[sys_name][1]/1000:g} "
                  "kQPS"))
    out.append("")
    out.append(format_rows(
        data["rows"], COLUMNS,
        title="per-cell detail (latencies in us)", width=22))
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    from .common import experiment_cli

    raise SystemExit(experiment_cli(main))
