"""Persistent content-addressed simulation result store.

The in-process trace cache (:mod:`repro.timing.trace_cache`) dies with
the process, so every ``run_all`` invocation — and every fork worker —
re-executes work units other figures already simulated.  This module
gives those results a content-addressed home on disk:

* entries live under ``REPRO_CACHE_DIR`` (default ``.repro_cache/`` in
  the current directory), one file per entry, named by a SHA-256
  *address* over (entry kind, source fingerprint of every module that
  produces the result, and the full logical key — service name, request
  population fingerprint, policy, allocator signature, reconvergence
  override, salt/step budgets, and the timing-config digest for timed
  entries).  Any code or configuration change produces a different
  address, so a stale hit is structurally impossible;
* writes are atomic (temp file in the same directory + ``os.replace``)
  and therefore safe under concurrent fork workers racing to publish
  the same or different entries — last writer wins with identical
  bytes, readers never observe a torn file;
* reads are corruption-tolerant: a missing file, bad magic/version,
  CRC mismatch or unpicklable body counts as a miss (the damaged entry
  is unlinked so it cannot fail again);
* the store holds at most ``REPRO_CACHE_MAX_BYTES`` (default 2 GiB);
  beyond that, entries are evicted oldest-mtime-first, and every hit
  refreshes its entry's mtime, making eviction LRU;
* ``REPRO_CACHE=0`` bypasses the store entirely;
  ``REPRO_CACHE_VERIFY=1`` makes callers (see ``run_chip``) recompute
  on every hit and compare against the stored result, raising
  :class:`CacheVerifyError` on any divergence — the cache analogue of
  the differential fuzz oracle.

Fingerprints hash the source text of whole packages, not import-time
state: :func:`trace_fingerprint` covers everything that *produces* an
executor trace (ISA, engine, memory system, workloads, batching, the
core executors and the streaming recorder), while
:func:`timed_fingerprint` additionally covers the whole timing package
so timed entries miss when any timing model changes but raw traces
survive timing-only edits (the cross-config reuse that motivates the
cache).
"""

from __future__ import annotations

import hashlib
import importlib
import os
import pickle
import struct
import tempfile
import zlib
from typing import Dict, Optional, Sequence, Tuple

from . import sanitize

#: file format magic; bump the trailing digits to invalidate all
#: entries written by earlier layouts (version mismatch == miss)
MAGIC = b"SIMRST01"

DEFAULT_DIR = ".repro_cache"
DEFAULT_MAX_BYTES = 2 * 1024 ** 3

#: sentinel distinguishing "no entry" from any legitimately stored value
MISS = object()


class CacheVerifyError(RuntimeError):
    """``REPRO_CACHE_VERIFY=1`` recompute disagreed with a stored entry
    (either a store bug or nondeterministic simulation — both fatal)."""


def enabled() -> bool:
    """Persistent caching is on unless ``REPRO_CACHE=0`` (re-read per
    call, so tests and CLIs can toggle it without re-importing)."""
    return os.environ.get("REPRO_CACHE", "1") != "0"


def verify_enabled() -> bool:
    """True when ``REPRO_CACHE_VERIFY=1``: recompute on hit and compare."""
    return os.environ.get("REPRO_CACHE_VERIFY", "") == "1"


def cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", "") or DEFAULT_DIR


def max_bytes() -> int:
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES", "")
    if not raw:
        return DEFAULT_MAX_BYTES
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_MAX_BYTES


# ----------------------------------------------------------------------
# source fingerprints
# ----------------------------------------------------------------------

def fingerprint_paths(paths: Sequence[str]) -> str:
    """SHA-256 over the contents of every ``.py`` file under ``paths``.

    Directories are walked in sorted order and files are keyed by their
    path relative to the given root, so the digest is stable across
    machines and checkouts but changes on any source edit, file
    addition, removal or rename.
    """
    h = hashlib.sha256()
    for root in paths:
        if os.path.isdir(root):
            files = []
            for dirpath, dirnames, filenames in os.walk(root):
                dirnames.sort()
                files.extend(os.path.join(dirpath, f)
                             for f in sorted(filenames)
                             if f.endswith(".py"))
            for f in files:
                h.update(os.path.relpath(f, root).encode("utf-8"))
                h.update(b"\x00")
                with open(f, "rb") as fh:
                    h.update(fh.read())
                h.update(b"\x00")
        else:
            h.update(os.path.basename(root).encode("utf-8"))
            h.update(b"\x00")
            with open(root, "rb") as fh:
                h.update(fh.read())
            h.update(b"\x00")
    return h.hexdigest()


#: modules whose source determines an executor *trace*
TRACE_MODULES = ("repro.isa", "repro.engine", "repro.memsys", "repro.core",
                 "repro.batching", "repro.workloads", "repro.timing.streams")

#: modules whose source determines a *timed* result (trace + timing)
TIMED_MODULES = TRACE_MODULES + ("repro.timing",)

_fp_cache: Dict[Tuple[str, ...], str] = {}


def source_fingerprint(module_names: Tuple[str, ...]) -> str:
    """Fingerprint the source of the named modules/packages (cached per
    process — source files do not change under a running simulation)."""
    fp = _fp_cache.get(module_names)
    if fp is None:
        paths = []
        for name in module_names:
            mod = importlib.import_module(name)
            path = getattr(mod, "__file__", None) or name
            if os.path.basename(path) == "__init__.py":
                path = os.path.dirname(path)
            paths.append(path)
        fp = fingerprint_paths(paths)
        _fp_cache[module_names] = fp
    return fp


def trace_fingerprint() -> str:
    return source_fingerprint(TRACE_MODULES)


def timed_fingerprint() -> str:
    return source_fingerprint(TIMED_MODULES)


def address(kind: str, fingerprint: str, key: tuple) -> str:
    """Content address of one entry: SHA-256 over kind, source
    fingerprint and the ``repr`` of the logical key tuple."""
    h = hashlib.sha256()
    h.update(kind.encode("utf-8"))
    h.update(b"\x00")
    h.update(fingerprint.encode("utf-8"))
    h.update(b"\x00")
    h.update(repr(key).encode("utf-8"))
    return h.hexdigest()


# ----------------------------------------------------------------------
# the on-disk store
# ----------------------------------------------------------------------

class ResultStore:
    """One directory of content-addressed pickle entries.

    File layout: ``MAGIC (8 bytes) | crc32(body) (4 bytes, big endian)
    | body (pickle)``.  The CRC is checked on every read, so truncated
    or bit-flipped entries are silently demoted to misses.
    """

    def __init__(self, root: str, limit: int = DEFAULT_MAX_BYTES):
        self.root = root
        self.limit = limit
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.evictions = 0
        self.errors = 0

    def _path(self, kind: str, digest: str) -> str:
        return os.path.join(self.root, f"{kind}-{digest}.pkl")

    def get(self, kind: str, digest: str):
        """The stored object, or :data:`MISS`."""
        path = self._path(kind, digest)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            self.misses += 1
            return MISS
        try:
            if blob[:8] != MAGIC:
                raise ValueError("bad magic/version")
            (crc,) = struct.unpack(">I", blob[8:12])
            body = blob[12:]
            if zlib.crc32(body) & 0xFFFFFFFF != crc:
                raise ValueError("crc mismatch")
            obj = pickle.loads(body)
        except Exception:
            # corrupt or version-mismatched entry: drop it and miss
            self.errors += 1
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return MISS
        try:
            os.utime(path)  # LRU touch
        except OSError:
            pass
        self.hits += 1
        self.bytes_read += len(blob)
        return obj

    def put(self, kind: str, digest: str, obj) -> None:
        """Atomically publish ``obj``; a no-op if the entry exists
        (content-addressed: same address implies same bytes)."""
        path = self._path(kind, digest)
        if os.path.exists(path):
            return
        body = pickle.dumps(obj, protocol=4)
        blob = MAGIC + struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF) + body
        try:
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # a read-only or full cache directory degrades to no caching
            self.errors += 1
            return
        self.stores += 1
        self.bytes_written += len(blob)
        if sanitize.sanitizer_enabled():
            # the write path is the one place corruption could be *made*;
            # under the sanitizer, read our own entry back through the
            # full validation path
            sanitize.check(self.get(kind, digest) is not MISS,
                           "store: freshly written entry %s-%s failed "
                           "readback validation", kind, digest[:12])
            self.hits -= 1  # the readback is bookkeeping, not a real hit
        self._evict()

    def _evict(self) -> None:
        """Delete oldest-mtime entries until the store fits the budget."""
        if self.limit <= 0:
            return
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        entries = []
        total = 0
        for name in names:
            if not name.endswith(".pkl"):
                continue
            p = os.path.join(self.root, name)
            try:
                st = os.stat(p)
            except OSError:
                continue  # lost a race with another worker's eviction
            entries.append((st.st_mtime, st.st_size, p))
            total += st.st_size
        if total <= self.limit:
            return
        entries.sort()
        for _mtime, size, p in entries:
            if total <= self.limit:
                break
            try:
                os.unlink(p)
            except OSError:
                continue
            total -= size
            self.evictions += 1

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "evictions": self.evictions,
            "errors": self.errors,
        }


#: per-directory store instances (stats survive env flips in-process)
_instances: Dict[str, ResultStore] = {}


def get_store() -> Optional[ResultStore]:
    """The store for the current ``REPRO_CACHE_DIR``, or ``None`` when
    disabled by ``REPRO_CACHE=0``."""
    if not enabled():
        return None
    root = os.path.abspath(cache_dir())
    inst = _instances.get(root)
    if inst is None:
        inst = _instances[root] = ResultStore(root, max_bytes())
    else:
        inst.limit = max_bytes()
    return inst


def stats() -> Dict[str, int]:
    """Aggregate hit/miss/bytes stats over every store this process has
    touched (mirrors ``trace_cache.stats()``)."""
    out = {"hits": 0, "misses": 0, "stores": 0, "bytes_read": 0,
           "bytes_written": 0, "evictions": 0, "errors": 0}
    for inst in _instances.values():
        for k, v in inst.stats().items():
            out[k] += v
    return out


def lookup(kind: str, fingerprint: str, key: tuple):
    """Fetch the entry for (kind, fingerprint, key), or :data:`MISS`."""
    store = get_store()
    if store is None:
        return MISS
    return store.get(kind, address(kind, fingerprint, key))


def record(kind: str, fingerprint: str, key: tuple, value) -> None:
    """Publish ``value`` under (kind, fingerprint, key) if enabled."""
    store = get_store()
    if store is not None:
        store.put(kind, address(kind, fingerprint, key), value)
