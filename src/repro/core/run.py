"""Batch/solo execution harness used by experiments, tests and timing.

``run_batch`` stands in for "the server launched a batch on one RPU
core"; ``run_solo`` is the MIMD CPU reference execution of the same
requests.  Both build a fresh shared memory image per batch (each batch
is an independent set of requests against the same service state).

``run_batch_tasks`` is the multiprocessing sweep driver: it fans a list
of self-describing :class:`BatchTask` items across worker processes.
Tasks carry their own seeds, so a parallel sweep is bit-identical to a
serial one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..engine.events import LockstepResult, StepSink
from ..engine.lockstep import (
    IpdomExecutor,
    MinSpPcExecutor,
    PredicatedExecutor,
    SoloExecutor,
)
from ..engine.memory import MemoryImage
from ..engine.thread import ThreadState
from ..memsys.alloc import BaseAllocator, SimrAwareAllocator
from ..workloads.base import Microservice, Request


def prepare_threads(
    service: Microservice,
    requests: Sequence[Request],
    mem: MemoryImage,
    allocator: BaseAllocator,
) -> List[ThreadState]:
    """Create and initialize one thread per request (lane order)."""
    shared = service.shared_setup(mem, allocator)
    threads = []
    for lane, req in enumerate(requests):
        t = ThreadState(lane)
        service.setup_thread(t, req, mem, allocator, shared)
        threads.append(t)
    return threads


def run_batch(
    service: Microservice,
    requests: Sequence[Request],
    policy: str = "minsp_pc",
    sink: Optional[StepSink] = None,
    allocator: Optional[BaseAllocator] = None,
    reconv_override: Optional[Dict[int, int]] = None,
    salt: int = 0,
    max_steps: int = 4_000_000,
    fastpath: bool = True,
) -> LockstepResult:
    """Execute one batch of requests in lockstep on one RPU core."""
    mem = MemoryImage(salt=salt)
    allocator = allocator if allocator is not None else SimrAwareAllocator()
    threads = prepare_threads(service, requests, mem, allocator)
    program = service.program
    if policy == "ipdom":
        ex = IpdomExecutor(program, sink=sink, max_steps=max_steps,
                           reconv_override=reconv_override,
                           fastpath=fastpath)
    elif policy == "minsp_pc":
        ex = MinSpPcExecutor(program, sink=sink, max_steps=max_steps,
                             fastpath=fastpath)
    elif policy == "predicated":
        ex = PredicatedExecutor(program, sink=sink, max_steps=max_steps,
                                reconv_override=reconv_override,
                                fastpath=fastpath)
    else:
        raise ValueError(f"unknown lockstep policy {policy!r}")
    return ex.run(threads, mem)


def run_solo(
    service: Microservice,
    requests: Sequence[Request],
    sink: Optional[StepSink] = None,
    allocator: Optional[BaseAllocator] = None,
    salt: int = 0,
    max_steps: int = 2_000_000,
    fastpath: bool = True,
) -> List[int]:
    """Run each request alone (MIMD CPU reference); returns step counts.

    All requests share one memory image and allocator, mirroring the
    multi-threaded service process on a CPU node.
    """
    mem = MemoryImage(salt=salt)
    allocator = allocator if allocator is not None else SimrAwareAllocator()
    threads = prepare_threads(service, requests, mem, allocator)
    ex = SoloExecutor(service.program, sink=sink, max_steps=max_steps,
                      fastpath=fastpath)
    return [ex.run(t, mem) for t in threads]


@dataclass(frozen=True)
class BatchTask:
    """One independent (service, batch) simulation of a parallel sweep.

    Carries the service *name* (cheap to pickle; the worker re-resolves
    it) and its own request seed, so results do not depend on which
    worker runs the task or in what order.
    """

    service: str
    n_requests: int
    seed: int
    policy: str = "minsp_pc"
    salt: int = 0
    max_steps: int = 4_000_000


def run_batch_task(task: BatchTask) -> LockstepResult:
    """Worker entry point: materialize and run one :class:`BatchTask`."""
    from ..workloads import get_service

    service = get_service(task.service)
    requests = service.generate_requests(
        task.n_requests, random.Random(task.seed))
    return run_batch(service, requests, policy=task.policy,
                     salt=task.salt, max_steps=task.max_steps)


def run_batch_tasks(tasks: Sequence[BatchTask],
                    jobs: Optional[int] = None) -> List[LockstepResult]:
    """Run independent batch simulations, optionally across processes.

    Results are returned in task order and are bit-identical for any
    ``jobs`` value (each task owns a deterministic seed and a private
    memory image).
    """
    from ..experiments.common import parallel_map

    return parallel_map(run_batch_task, list(tasks), jobs=jobs)
