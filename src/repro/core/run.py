"""Batch/solo execution harness used by experiments, tests and timing.

``run_batch`` stands in for "the server launched a batch on one RPU
core"; ``run_solo`` is the MIMD CPU reference execution of the same
requests.  Both build a fresh shared memory image per batch (each batch
is an independent set of requests against the same service state).

``run_batch_tasks`` is the multiprocessing sweep driver: it fans a list
of self-describing :class:`BatchTask` items across worker processes.
Tasks carry their own seeds, so a parallel sweep is bit-identical to a
serial one.
"""

from __future__ import annotations

import os
import random
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.events import LockstepResult, StepSink
from ..engine.lockstep import (
    IpdomExecutor,
    MinSpPcExecutor,
    PredicatedExecutor,
    SoloExecutor,
)
from ..engine.memory import MemoryImage
from ..engine.thread import ThreadState
from ..memsys.alloc import BaseAllocator, SimrAwareAllocator
from ..sanitize import check, sanitizer_enabled
from ..workloads.base import Microservice, Request


def prepare_threads(
    service: Microservice,
    requests: Sequence[Request],
    mem: MemoryImage,
    allocator: BaseAllocator,
) -> List[ThreadState]:
    """Create and initialize one thread per request (lane order)."""
    shared = service.shared_setup(mem, allocator)
    threads = []
    for lane, req in enumerate(requests):
        t = ThreadState(lane)
        service.setup_thread(t, req, mem, allocator, shared)
        threads.append(t)
    return threads


# ----------------------------------------------------------------------
# batch-setup template cache
#
# Workload setup is pure in (service, request contents, salt): the same
# batch rebuilds the same thread registers and memory image every call.
# run_batch/run_solo construct their memory image and (default)
# allocator locally and never return them, so when the caller did not
# supply an allocator the prepared state can be template-copied from an
# earlier identical call - observationally identical, ~4x cheaper than
# re-running setup.  Keyed per service *instance* (WeakKeyDictionary, so
# a dropped service frees its templates) by (salt, request contents).
# ``REPRO_SETUP_CACHE=0`` disables it (witness); under REPRO_SANITIZE=1
# every template copy is cross-checked against a fresh rebuild.

_SETUP_TEMPLATES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_SETUP_PER_SERVICE_MAX = 64


def setup_cache_enabled() -> bool:
    """True unless ``REPRO_SETUP_CACHE=0`` (re-read per call)."""
    return os.environ.get("REPRO_SETUP_CACHE", "1") != "0"


def _request_fp(requests: Sequence[Request]) -> tuple:
    return tuple(
        (r.rid, r.service, r.api, r.api_id, r.size, r.key, r.arrival_us,
         tuple(sorted(r.payload.items())))
        for r in requests)


def _threads_from_template(tpl, requests) -> List[ThreadState]:
    threads = []
    for row, req in zip(tpl, requests):
        t = ThreadState.__new__(ThreadState)
        (t.tid, regs, t.pc, t.halted, t.retired, t.stack_size,
         t.stack_top) = row
        t.regs = list(regs)
        t.call_stack = []
        t.syscall_trace = []
        t.request = req
        threads.append(t)
    return threads


def _prepare_batch(
    service: Microservice,
    requests: Sequence[Request],
    salt: int,
) -> Tuple[List[ThreadState], MemoryImage]:
    """Prepared (threads, mem) for a batch, template-copied when this
    process already built an identical setup."""
    mem = MemoryImage(salt=salt)
    if not setup_cache_enabled():
        return prepare_threads(service, requests, mem,
                               SimrAwareAllocator()), mem
    per_service = _SETUP_TEMPLATES.get(service)
    if per_service is None:
        per_service = _SETUP_TEMPLATES[service] = {}
    key = (salt, _request_fp(requests))
    tpl = per_service.get(key)
    if tpl is not None:
        store, rows = tpl
        mem._store = dict(store)
        threads = _threads_from_template(rows, requests)
        if sanitizer_enabled():
            fresh_mem = MemoryImage(salt=salt)
            fresh = prepare_threads(service, requests, fresh_mem,
                                    SimrAwareAllocator())
            check(fresh_mem._store == mem._store,
                  "setup cache: memory image diverged for %s",
                  getattr(service, "name", type(service).__name__))
            for t, f in zip(threads, fresh):
                check(t.regs == f.regs and t.pc == f.pc
                      and t.halted == f.halted
                      and t.retired == f.retired
                      and t.stack_top == f.stack_top
                      and t.request is f.request,
                      "setup cache: thread %d state diverged", t.tid)
        return threads, mem
    threads = prepare_threads(service, requests, mem,
                              SimrAwareAllocator())
    if len(per_service) < _SETUP_PER_SERVICE_MAX:
        rows = tuple(
            (t.tid, tuple(t.regs), t.pc, t.halted, t.retired,
             t.stack_size, t.stack_top)
            for t in threads)
        per_service[key] = (dict(mem._store), rows)
    return threads, mem


def run_batch(
    service: Microservice,
    requests: Sequence[Request],
    policy: str = "minsp_pc",
    sink: Optional[StepSink] = None,
    allocator: Optional[BaseAllocator] = None,
    reconv_override: Optional[Dict[int, int]] = None,
    salt: int = 0,
    max_steps: int = 4_000_000,
    fastpath: bool = True,
) -> LockstepResult:
    """Execute one batch of requests in lockstep on one RPU core."""
    if allocator is None:
        # default-allocator path: the allocator is unobservable, so the
        # prepared state may come from the setup template cache
        threads, mem = _prepare_batch(service, requests, salt)
    else:
        mem = MemoryImage(salt=salt)
        threads = prepare_threads(service, requests, mem, allocator)
    program = service.program
    if policy == "ipdom":
        ex = IpdomExecutor(program, sink=sink, max_steps=max_steps,
                           reconv_override=reconv_override,
                           fastpath=fastpath)
    elif policy == "minsp_pc":
        ex = MinSpPcExecutor(program, sink=sink, max_steps=max_steps,
                             fastpath=fastpath)
    elif policy == "predicated":
        ex = PredicatedExecutor(program, sink=sink, max_steps=max_steps,
                                reconv_override=reconv_override,
                                fastpath=fastpath)
    else:
        raise ValueError(f"unknown lockstep policy {policy!r}")
    return ex.run(threads, mem)


def run_solo(
    service: Microservice,
    requests: Sequence[Request],
    sink: Optional[StepSink] = None,
    allocator: Optional[BaseAllocator] = None,
    salt: int = 0,
    max_steps: int = 2_000_000,
    fastpath: bool = True,
) -> List[int]:
    """Run each request alone (MIMD CPU reference); returns step counts.

    All requests share one memory image and allocator, mirroring the
    multi-threaded service process on a CPU node.
    """
    if allocator is None:
        threads, mem = _prepare_batch(service, requests, salt)
    else:
        mem = MemoryImage(salt=salt)
        threads = prepare_threads(service, requests, mem, allocator)
    ex = SoloExecutor(service.program, sink=sink, max_steps=max_steps,
                      fastpath=fastpath)
    return [ex.run(t, mem) for t in threads]


@dataclass(frozen=True)
class BatchTask:
    """One independent (service, batch) simulation of a parallel sweep.

    Carries the service *name* (cheap to pickle; the worker re-resolves
    it) and its own request seed, so results do not depend on which
    worker runs the task or in what order.
    """

    service: str
    n_requests: int
    seed: int
    policy: str = "minsp_pc"
    salt: int = 0
    max_steps: int = 4_000_000


def run_batch_task(task: BatchTask) -> LockstepResult:
    """Worker entry point: materialize and run one :class:`BatchTask`."""
    from ..workloads import get_service

    service = get_service(task.service)
    requests = service.generate_requests(
        task.n_requests, random.Random(task.seed))
    return run_batch(service, requests, policy=task.policy,
                     salt=task.salt, max_steps=task.max_steps)


def run_batch_tasks(tasks: Sequence[BatchTask],
                    jobs: Optional[int] = None) -> List[LockstepResult]:
    """Run independent batch simulations, optionally across processes.

    Results are returned in task order and are bit-identical for any
    ``jobs`` value (each task owns a deterministic seed and a private
    memory image).
    """
    from ..experiments.common import parallel_map

    return parallel_map(run_batch_task, list(tasks), jobs=jobs)
