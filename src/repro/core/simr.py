"""Top-level facade: the SIMR system of paper Fig. 2.

``SimrSystem`` wires together the SIMR-aware server (request batching),
the RPU driver behaviour (batch-size tuning, SIMR-aware allocation,
reconvergence policy) and the RPU hardware model, and reports the
metrics the paper evaluates: SIMT efficiency, service latency,
requests/joule and chip throughput.

    >>> from repro import SimrSystem
    >>> system = SimrSystem("memcached")
    >>> report = system.serve(system.sample_requests(128))
    >>> report.simt_efficiency > 0.5
    True
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..energy import EnergyBreakdown, energy_of, requests_per_joule
from ..timing import (
    CPU_CONFIG,
    GPU_CONFIG,
    RPU_CONFIG,
    SMT8_CONFIG,
    ChipResult,
    CoreConfig,
    run_chip,
)
from ..workloads import Microservice, Request, get_service

_CONFIGS: Dict[str, CoreConfig] = {
    "cpu": CPU_CONFIG,
    "cpu-smt8": SMT8_CONFIG,
    "rpu": RPU_CONFIG,
    "gpu": GPU_CONFIG,
}


@dataclass
class ServeReport:
    """User-facing summary of one population served on one design."""

    config_name: str
    service: str
    n_requests: int
    simt_efficiency: float
    avg_latency_us: float
    chip_throughput_rps: float
    requests_per_joule: float
    energy: EnergyBreakdown
    chip_result: ChipResult = field(repr=False, default=None)

    @classmethod
    def from_chip(cls, result: ChipResult) -> "ServeReport":
        return cls(
            config_name=result.config_name,
            service=result.service,
            n_requests=result.n_requests,
            simt_efficiency=result.simt_efficiency,
            avg_latency_us=result.avg_latency_us,
            chip_throughput_rps=result.chip_throughput_rps,
            requests_per_joule=requests_per_joule(result),
            energy=energy_of(result),
            chip_result=result,
        )


def _serve_task(item) -> ServeReport:
    """Worker entry point for :meth:`SimrSystem.compare` fan-out."""
    service, requests, cfg, opts = item
    return ServeReport.from_chip(run_chip(service, requests, cfg, **opts))


class SimrSystem:
    """The SIMR-aware server + RPU pairing for one microservice."""

    def __init__(
        self,
        service: Union[str, Microservice],
        config: CoreConfig = RPU_CONFIG,
        batching: str = "per_api_size",
        policy: str = "minsp_pc",
        batch_size: Optional[int] = None,
        seed: int = 7,
    ):
        self.service = (get_service(service)
                        if isinstance(service, str) else service)
        self.config = config
        self.batching = batching
        self.policy = policy
        self.batch_size = batch_size
        self._rng = random.Random(seed)

    def sample_requests(self, n: int) -> List[Request]:
        """Draw requests from the service's arrival distribution."""
        return self.service.generate_requests(n, self._rng)

    def serve(self, requests: Sequence[Request],
              warmup_frac: float = 0.2) -> ServeReport:
        """Batch and execute ``requests`` on this system's hardware."""
        result = run_chip(
            self.service,
            requests,
            self.config,
            policy=self.policy,
            batching=self.batching,
            batch_size=self.batch_size,
            warmup_frac=warmup_frac,
        )
        return ServeReport.from_chip(result)

    def compare(
        self,
        requests: Sequence[Request],
        baselines: Sequence[str] = ("cpu", "cpu-smt8"),
        jobs: Optional[int] = None,
    ) -> Dict[str, ServeReport]:
        """Serve on this system and on the named baseline designs.

        The designs are independent simulations over the same request
        population, so with ``jobs > 1`` they run in parallel worker
        processes with identical results.
        """
        from ..experiments.common import parallel_map

        cfgs = []
        for name in baselines:
            try:
                cfgs.append(_CONFIGS[name])
            except KeyError:
                raise KeyError(
                    f"unknown design {name!r}; known: {', '.join(_CONFIGS)}"
                ) from None
        tasks = [(
            self.service, requests, self.config,
            {"policy": self.policy, "batching": self.batching,
             "batch_size": self.batch_size, "warmup_frac": 0.2},
        )]
        tasks += [(self.service, requests, cfg, {}) for cfg in cfgs]
        reports = parallel_map(_serve_task, tasks, jobs=jobs)
        out = {self.config.name: reports[0]}
        for name, report in zip(baselines, reports[1:]):
            out[name] = report
        return out


def speedup_summary(reports: Dict[str, ServeReport],
                    baseline: str = "cpu") -> Dict[str, Dict[str, float]]:
    """Relative EE/latency of every design vs ``baseline``."""
    base = reports[baseline]
    out = {}
    for name, rep in reports.items():
        out[name] = {
            "requests_per_joule": rep.requests_per_joule
            / max(1e-12, base.requests_per_joule),
            "latency": rep.avg_latency_us / max(1e-12, base.avg_latency_us),
            "throughput": rep.chip_throughput_rps
            / max(1e-12, base.chip_throughput_rps),
        }
    return out
