"""The paper's qualitative comparison tables (I, II, III, VI, VII).

Encoded as structured data so tests can assert their content and the
benches can render them alongside the quantitative results.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Table I - CPU vs RPU vs GPU key metrics.
TABLE_I: List[Tuple[str, str, str, str]] = [
    # (metric, CPU, GPU, RPU)
    ("Thread/Execution Model", "SMT", "SIMT", "SIMT"),
    ("General Purpose Programming", "yes", "no", "yes"),
    ("System Calls Support", "yes", "no", "yes"),
    ("Service Latency", "low", "high", "low"),
    ("Energy Efficiency (Requests/Joule)", "low", "high", "high"),
]

#: Table II - architecture differences.
TABLE_II: List[Tuple[str, str, str, str]] = [
    ("Core model", "OoO", "In-Order", "OoO"),
    ("Freq", "High", "Moderate", "High"),
    ("ISA", "ARM/x86", "HSAIL/PTX", "ARM/x86"),
    ("Programming", "General-Purpose", "CUDA/OpenCL", "General-Purpose"),
    ("System Calls", "Yes", "No", "Yes"),
    ("Thread grain", "Coarse grain", "Fine grain", "Coarse grain"),
    ("TLP per core", "Low (1-8)", "Massive (2K)", "Moderate (8-32)"),
    ("Thread model", "SMT", "SIMT", "SIMT"),
    ("Consistency", "Variant", "Weak+NMCA", "Weak+NMCA"),
    ("Coherence", "Complex", "Relaxed Simple", "Relaxed Simple"),
    ("Interconnect", "Mesh", "Crossbar", "Crossbar"),
]

#: Table III - data center CPU inefficiencies and the RPU mitigation.
TABLE_III: List[Tuple[str, str]] = [
    ("Request similarity & high frontend power",
     "SIMT execution to amortize frontend overhead"),
    ("Inter-request data sharing",
     "Memory coalescing; more threads share private caches"),
    ("Low coherence/locks and eventual consistency",
     "Weak ordering, relaxed coherence (NMCA), "
     "higher-bandwidth core-to-memory interconnect"),
    ("Low IPC from frontend stalls and memory latency",
     "Multi-thread/sub-batch interleaving"),
    ("Underutilized DRAM & L3 bandwidth, ineffective prefetchers",
     "High TLP to utilize bandwidth"),
    ("Small per-service cache footprint",
     "High TLP and less L1/L2 capacity per thread"),
]

#: Table VI - GPU vs RPU terminology.
TABLE_VI: List[Tuple[str, str]] = [
    ("Grid/Thread Block (1/2/3-dim)", "SW Batch (1-dim)"),
    ("Warp", "HW Batch"),
    ("Thread", "Thread/Request"),
    ("Kernel", "Service"),
    ("GPU Core / Streaming MultiProcessor",
     "RPU Core / Streaming MultiRequest"),
    ("SIMT", "SIMR"),
    ("CUDA Core", "Execution Lane"),
]

#: Table VII - SIMR vs prior SIMT work.
TABLE_VII: List[Dict[str, str]] = [
    {"system": "GPUs", "ooo": "no", "cpu_isa": "no", "grain": "Fine",
     "workloads": "Data-parallel"},
    {"system": "VT", "ooo": "no", "cpu_isa": "yes", "grain": "Fine",
     "workloads": "Data-parallel"},
    {"system": "GPU+OoO", "ooo": "partial", "cpu_isa": "no",
     "grain": "Fine", "workloads": "Data-parallel"},
    {"system": "Simty", "ooo": "no", "cpu_isa": "yes", "grain": "Fine",
     "workloads": "Data-parallel"},
    {"system": "Vortex", "ooo": "no", "cpu_isa": "yes", "grain": "Fine",
     "workloads": "Data-parallel"},
    {"system": "DITVA", "ooo": "no", "cpu_isa": "yes", "grain": "Fine",
     "workloads": "Data-parallel"},
    {"system": "MSPS", "ooo": "no", "cpu_isa": "yes", "grain": "N/A",
     "workloads": "Web server"},
    {"system": "SIMT-X", "ooo": "yes", "cpu_isa": "yes", "grain": "Fine",
     "workloads": "Data-parallel"},
    {"system": "SIMR", "ooo": "yes", "cpu_isa": "yes", "grain": "Coarse",
     "workloads": "Data-parallel & request-parallel microservices"},
]


def gpu_terminology(term: str) -> str:
    """Translate an NVIDIA GPU term to the paper's RPU terminology."""
    mapping = {g.lower(): r for g, r in TABLE_VI}
    try:
        return mapping[term.lower()]
    except KeyError:
        raise KeyError(f"unknown GPU term {term!r}") from None


def render(table, headers=()) -> str:
    """Plain-text rendering for any of the tables above."""
    lines = []
    if headers:
        lines.append(" | ".join(headers))
    for row in table:
        if isinstance(row, dict):
            lines.append(" | ".join(str(v) for v in row.values()))
        else:
            lines.append(" | ".join(str(v) for v in row))
    return "\n".join(lines)
