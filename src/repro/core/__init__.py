"""Top-level SIMR facade and shared run helpers."""

from .run import prepare_threads, run_batch, run_solo
from .simr import ServeReport, SimrSystem, speedup_summary
from . import tables

__all__ = [
    "ServeReport",
    "SimrSystem",
    "prepare_threads",
    "run_batch",
    "run_solo",
    "speedup_summary",
    "tables",
]
