"""SIMR: Single Instruction Multiple Request processing - reproduction.

A full-system model of the MICRO 2022 paper: the Request Processing
Unit (an out-of-order CPU with GPU-style SIMT thread aggregation), its
SIMR-aware software stack (control-flow-aware request batching, batch
splitting, SIMR-aware memory allocation, stack interleaving), 15
synthetic microservice workloads, approximate cycle/energy models for
CPU / CPU-SMT8 / RPU / GPU chips, and a system-level microservice-graph
queueing simulator.

Quick start::

    from repro import SimrSystem

    system = SimrSystem("memcached")
    reports = system.compare(system.sample_requests(192))
    for name, rep in reports.items():
        print(name, rep.requests_per_joule, rep.avg_latency_us)
"""

from .core import ServeReport, SimrSystem, run_batch, run_solo, speedup_summary
from .batching import form_batches, split_batch
from .engine import IpdomExecutor, MinSpPcExecutor, SoloExecutor, ThreadState
from .isa import Program, ProgramBuilder
from .timing import (
    CPU_CONFIG,
    GPU_CONFIG,
    RPU_CONFIG,
    SMT8_CONFIG,
    CoreConfig,
    run_chip,
)
from .workloads import Microservice, Request, all_services, get_service

__version__ = "1.0.0"

__all__ = [
    "CPU_CONFIG",
    "CoreConfig",
    "GPU_CONFIG",
    "IpdomExecutor",
    "Microservice",
    "MinSpPcExecutor",
    "Program",
    "ProgramBuilder",
    "RPU_CONFIG",
    "Request",
    "SMT8_CONFIG",
    "ServeReport",
    "SimrSystem",
    "SoloExecutor",
    "ThreadState",
    "all_services",
    "form_batches",
    "get_service",
    "run_batch",
    "run_chip",
    "run_solo",
    "speedup_summary",
    "split_batch",
]
