"""Batch (structure-of-arrays) code generation for the vector engine.

Where :mod:`repro.engine.decode` compiles each instruction into a
per-*thread* handler, this module compiles each instruction — and each
whole basic block — into a per-*group* function that executes one
instruction stream across all lanes of a lane-index list in a single
call.  The vector executors (:mod:`repro.engine.vector`) then pay
Python dispatch cost once per group-step instead of once per lane.

Generated calling convention (shared by all three tables)::

    fn(idx, R, cs, sys, pcv, hv, store, salt)

where ``idx`` is the lane-index list of the scheduled group (tid
order), ``R`` the register columns (``R[r][i]`` = register ``r`` of
lane ``i``, Python ints), ``cs``/``sys`` the per-lane call-stack and
syscall-trace lists (aliases of the threads' own lists), ``pcv``/``hv``
the pc/halted vectors and ``store``/``salt`` the hoisted internals of
:class:`repro.engine.memory.MemoryImage` (its dict and background-hash
salt — the read/write/background logic is inlined into the generated
source and must stay in lock-step with ``memory.py``).

Three tables are produced per program:

* ``ghandlers[pc]`` — one batch step of the op at ``pc``.  Branches
  return the ``(taken, fell)`` lane partition, rets return
  ``{return_pc: lanes}`` buckets, everything else returns ``None``;
* ``blocks[pc]`` — at each basic-block leader, the whole block
  (terminator included) as one function.  Interior instructions are
  *segment-fused*: maximal runs of register-only ops and loads become a
  single lane-major loop with registers chained through locals, while
  every store/atomic gets its own instruction-major lane loop.  The
  split preserves the reference engine's cross-lane memory order: lane
  ``j``'s load may legally be hoisted past lane ``k``'s earlier load
  (reads commute) but never past any lane's store or atomic;
* ``runs[pc]`` — the pure-ALU superblock runs of the scalar engine
  (suffix entries included) in batch form, for mid-block group entries
  where whole-block fusion does not apply;
* ``chains[pc]`` — at leaders where the chain extends past one block:
  a *superblock chain* following the statically known fallthrough,
  jump and call edges until a branch, ret, halt, revisited leader or
  the size cap.  Jumps chain silently (a re-key only), calls chain
  with their stack push and SP update fused into the surrounding
  lane-major segment (the return-address store keeps its own
  instruction-major loop — it is a memory write later chained code may
  observe), and lane-major segments merge *across* block boundaries,
  so a fall-jump-fall path executes as one loop over the lanes.

The emitted source is cached in the persistent result store
(:mod:`repro.store`) under the engine+ISA source fingerprint, a digest
of the program and the interpreter's ``cache_tag`` — any code edit,
program change or interpreter switch misses structurally.  Under
``REPRO_SANITIZE=1`` every cache hit is regenerated and compared.
"""

from __future__ import annotations

import hashlib
import sys
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .. import sanitize, store
from ..isa.instructions import SP, OpClass
from .decode import (
    RK_CALL,
    RK_FALL,
    RK_JUMP,
    _alu_runs,
    _BIN_OPS,
    _CMP_OPS,
    _rekey_entry,
)
from .lanes import BoundedTape

#: classes that end a basic block with an explicit control transfer
_CONTROL = (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RET,
            OpClass.HALT)

#: classes fusable into one lane-major loop: register-only ops, loads
#: (pure reads commute across lanes) and per-lane trace appends.  A
#: store or atomic is a cross-lane ordering point and never joins.
_LANE_MAJOR = (OpClass.ALU, OpClass.MUL, OpClass.LOAD, OpClass.SYSCALL,
               OpClass.FENCE, OpClass.NOP, OpClass.SIMD)

#: memory background-hash constants, inlined as literals; must equal
#: repro.engine.memory._MIX / _MASK64 (see the contract note there)
_MEM_MIX = 0x9E3779B97F4A7C15
_MEM_MASK64 = 0xFFFFFFFFFFFFFFFF

#: modules whose source invalidates cached generated code
_CODEGEN_MODULES = ("repro.engine", "repro.isa")


@dataclass(frozen=True)
class VectorProgram:
    """Per-pc batch dispatch tables (see module docstring).

    ``blocks[pc]`` is ``None`` off block leaders, else
    ``(k, fn, rk_code, rk_target, has_atomic, last_atomic_off, meta,
    tape)`` where ``k`` counts the block's instructions (terminator
    included) and ``last_atomic_off`` is the 0-based offset of the last
    atomic, -1 when none.  ``runs[pc]`` is ``None`` or ``(k, fn, meta,
    tape)``.

    The trailing ``meta`` slots are :class:`GrainMeta` replay metadata
    for :mod:`repro.engine.memo` (``None`` when the grain is not
    memoizable) and the ``tape`` slots are
    :class:`repro.engine.lanes.BoundedTape` int64 column programs
    (``None`` when the grain is not provably boundable).  ``digest``
    is the program content digest keying the grain-memo table and the
    persistent caches.

    ``chains[pc]`` is ``None`` unless a multi-block chain starts at
    ``pc``, else a longest-first tuple of candidates — the full chain
    followed by its entry-depth prefix cuts, so the executors take the
    longest candidate whose scheduling guard holds.  Each candidate is
    ``(k, fn, rk_code, rk_target, fall, bpc, has_atomic,
    last_atomic_off, call_delta, d0_maxpc, bounds, joints, meta)``: ``k``
    executed instructions over every covered block, the final
    terminator's re-key with its *explicit* fallthrough pc ``fall`` and
    terminator pc ``bpc`` (covered pcs are not contiguous, so the
    single-block ``pc + k`` arithmetic does not apply), ``call_delta``
    chained-through calls (each deepens the group's call depth by one),
    ``d0_maxpc`` the highest pc executed while still at the *entry*
    depth (the MinSP same-depth preemption guard), ``bounds`` the
    ``(start, end + 1)`` range of every covered block and ``joints``
    the entry pcs of the second and later blocks (the IPDOM
    reconvergence guards).
    """

    ghandlers: Tuple
    blocks: Tuple
    runs: Tuple
    chains: Tuple
    rekey: Tuple
    is_atomic: Tuple[bool, ...]
    digest: str


def _alu_stmts(inst, a: str, b: str, dst: str) -> List[str]:
    """Statements computing one ALU/MUL op into local ``dst``; operand
    selection and expression shapes mirror ``decode._alu_expr``."""
    op = inst.op
    if op == "hash":
        # inlined interpreter._hash_mix (bit-identical by construction)
        return [
            f"_x = ({a} * 0x9E3779B1 + {b} * 0x85EBCA77) & 0xFFFFFFFF",
            f"{dst} = ((_x ^ (_x >> 13)) * 0xC2B2AE3D) & 0x7FFFFFFF",
        ]
    if op in _BIN_OPS:
        expr = f"{a} {_BIN_OPS[op]} {b}"
    elif op in ("shl", "shli"):
        expr = f"({a} << ({b} & 63)) & {_MEM_MASK64}"
    elif op in ("shr", "shri"):
        expr = f"{a} >> ({b} & 63)"
    elif op in ("min", "max"):
        expr = f"{op}({a}, {b})"
    elif op in ("slt", "slti"):
        expr = f"(1 if {a} < {b} else 0)"
    elif op == "li":
        expr = b
    elif op == "mov":
        expr = a
    elif op == "div":
        expr = f"({a} // {b} if {b} else 0)"
    elif op == "rem":
        expr = f"({a} % {b} if {b} else 0)"
    else:
        raise ValueError(f"unknown ALU/MUL mnemonic: {inst.op!r}")
    return [f"{dst} = {expr}"]


def _background_stmts(val: str, addr: str) -> List[str]:
    """``val = background(addr)`` when ``val`` is None after a store
    miss — the inlined tail of ``MemoryImage.read``."""
    return [
        f"if {val} is None:",
        f"    _x = ({addr} * {_MEM_MIX:#x} + salt) & {_MEM_MASK64:#x}",
        "    _x ^= _x >> 29",
        f"    {val} = (_x >> 17) & 0xFFFFFFFF",
    ]


def _batch_fn_source(name: str, ops: List[Tuple[str, int]],
                     term_pc: Optional[int], insts, targets) -> List[str]:
    """Source of one batch function over an ordered op stream plus an
    optional folded final terminator (branch/call/ret/halt; jumps and
    fallthroughs are the engine's static re-key and emit nothing).

    ``ops`` items are ``("pc", pc)`` for interior instructions,
    ``("call", pc)`` for a call *chained through* mid-function (its
    stack-push and SP update join the surrounding lane-major segment,
    but the return-address store gets its own instruction-major loop —
    it is a memory write later chained code may observe), and
    ``("sret", frame)`` for a ret whose matching call sits earlier in
    the same chain: the pushed frame is statically known, so the
    push/pop pair is elided entirely and only the SP restore (by the
    constant frame size) remains."""
    # peephole: an sret's SP restore folds into an immediately
    # following call's SP reserve (one net adjustment; a zero net emits
    # nothing, and the return-address store reads the *post*-adjust SP
    # either way), and back-to-back sret restores merge
    folded: List[tuple] = []
    for op in ops:
        if folded and folded[-1][0] == "sret":
            if op[0] == "sret":
                folded[-1] = ("sret", folded[-1][1] + op[1])
                continue
            if op[0] in ("call", "scall"):
                prev = folded.pop()[1]
                folded.append((op[0], op[1], prev))
                continue
        folded.append(op)
    ops = folded
    cols = {}

    def col(r: int) -> str:
        v = cols.get(r)
        if v is None:
            v = cols[r] = f"_R{r}"
        return v

    # split the stream into lane-major segments and lone store/atomic
    # instruction-major items, in program order
    items: List[Tuple[str, list]] = []

    def lane_item(op):
        if items and items[-1][0] == "seg":
            items[-1][1].append(op)
        else:
            items.append(("seg", [op]))

    for op in ops:
        kind, pc = op[0], op[1]
        if kind == "call" or kind == "scall":
            lane_item(op)
            items.append(("memra", [pc]))
        elif kind == "sret" or insts[pc].cls in _LANE_MAJOR:
            lane_item(op)
        else:  # STORE / ATOMIC
            items.append(("mem", [pc]))
    term = insts[term_pc] if term_pc is not None else None
    if term is not None and term.cls is not OpClass.JUMP:
        if not items or items[-1][0] != "seg":
            items.append(("seg", []))

    body: List[str] = []
    tail: List[str] = []
    for kind, pcs in items:
        if kind == "mem":
            body += _mem_loop(pcs[0], insts[pcs[0]], col)
        elif kind == "memra":
            # all lanes push the return address before any lane runs the
            # callee (cross-lane store order); SP column already updated
            body += ["    for i in idx:",
                     f"        store[{col(SP)}[i] & -8] = {pcs[0] + 1}"]
        else:
            is_last = pcs is items[-1][1]
            seg_term = term_pc if (is_last and term is not None
                                   and term.cls is not OpClass.JUMP) else None
            seg_body, seg_tail = _seg_loop(pcs, seg_term, insts, col)
            body += seg_body
            tail += seg_tail

    out = [f"def {name}(idx, R, cs, sys, pcv, hv, store, salt):"]
    out += [f"    {v} = R[{r}]" for r, v in sorted(cols.items())]
    if any("store.get(" in ln for ln in body):
        # bound-method hoist: loads/atomics resolve store.get once per
        # call instead of once per lane per access
        out.append("    _get = store.get")
        body = [ln.replace("store.get(", "_get(") for ln in body]
    out += body + tail
    if len(out) == 1:
        out.append("    pass")  # e.g. a lone jump: purely a re-key
    return out


def _mem_loop(pc: int, inst, col) -> List[str]:
    """Instruction-major lane loop for one store/atomic (its own loop:
    cross-lane program order against every other memory op matters)."""
    base = col(inst.srcs[0])
    addr = (f"({base}[i] + ({inst.imm})) & -8" if inst.imm
            else f"{base}[i] & -8")
    out = ["    for i in idx:"]
    if inst.cls is OpClass.STORE:
        out.append(f"        store[{addr}] = {col(inst.srcs[1])}[i]")
        return out
    # ATOMIC: read-modify-write with background fill on miss
    src = col(inst.srcs[1])
    new = f"_o + {src}[i]" if inst.op == "amoadd" else f"{src}[i]"
    out += [f"        _a = {addr}",
            "        _o = store.get(_a)"]
    out += ["        " + ln for ln in _background_stmts("_o", "_a")]
    out.append(f"        store[_a] = {new}")
    if inst.dst:
        out.append(f"        {col(inst.dst)}[i] = _o")
    return out


def _seg_loop(ops: List[Tuple[str, int]], term_pc: Optional[int], insts,
              col) -> Tuple[List[str], List[str]]:
    """One lane-major loop: the segment's ops with registers chained
    through per-lane locals, the terminator (if any) folded in, and
    dirty columns written back once at the end of each lane.  A
    ``("call", pc)`` op is a chained-through call's stack push and SP
    update (always the segment's last op; the return-address store
    follows as its own loop)."""
    pre: List[str] = []
    loop: List[str] = []
    post: List[str] = []   # after register write-back, still per-lane
    tail: List[str] = []
    loaded = {}
    dirty: List[int] = []

    def ensure(r: int) -> str:
        v = loaded.get(r)
        if v is None:
            v = loaded[r] = f"v{r}"
            loop.append(f"        v{r} = {col(r)}[i]")
        return v

    def define(r: int) -> str:
        loaded[r] = f"v{r}"
        if r not in dirty:
            dirty.append(r)
        return f"v{r}"

    for op in ops:
        kind, pc = op[0], op[1]
        if kind == "sret":  # pc is the statically matched frame size
            sp = ensure(SP)
            loop.append(f"        {define(SP)} = {sp} + ({pc})")
            continue
        inst = insts[pc]
        if kind == "call" or kind == "scall":
            # op[2], when present, is a folded-in preceding sret's frame
            # restore; the net SP adjustment may be zero
            ra, frame = pc + 1, inst.imm
            net = frame - (op[2] if len(op) > 2 else 0)
            if kind == "call":  # "scall": matched push/pop elided
                loop.append(f"        cs[i].append(({ra}, {frame}))")
            if net:
                sp = ensure(SP)
                loop.append(f"        {define(SP)} = {sp} - ({net})")
            continue
        cls = inst.cls
        if cls is OpClass.ALU or cls is OpClass.MUL:
            if not inst.dst:  # r0 writes dropped, ALU not evaluated
                continue
            srcs = inst.srcs
            a = ensure(srcs[0]) if srcs else "0"
            b = ensure(srcs[1]) if len(srcs) > 1 else f"({inst.imm})"
            stmts = _alu_stmts(inst, a, b, define(inst.dst))
            loop += ["        " + ln for ln in stmts]
        elif cls is OpClass.LOAD:
            if not inst.dst:
                continue  # no architectural effect (mirrors decode)
            a = ensure(inst.srcs[0])
            addr = f"({a} + ({inst.imm})) & -8" if inst.imm else f"{a} & -8"
            d = define(inst.dst)
            loop.append(f"        _a = {addr}")
            loop.append(f"        {d} = store.get(_a)")
            loop += ["        " + ln for ln in _background_stmts(d, "_a")]
        elif cls is OpClass.SYSCALL:
            loop.append(f"        sys[i].append(({pc}, "
                        f"{inst.syscall.value!r}))")
        # FENCE / NOP / SIMD: architecturally empty

    if term_pc is not None:
        term = insts[term_pc]
        cls = term.cls
        if cls is OpClass.BRANCH:
            a = ensure(term.srcs[0])
            b = ensure(term.srcs[1])
            pre += ["    _t = []", "    _f = []",
                    "    _ta = _t.append", "    _fa = _f.append"]
            post += [f"        if {a} {_CMP_OPS[term.op]} {b}:",
                     "            _ta(i)",
                     "        else:",
                     "            _fa(i)"]
            tail.append("    return _t, _f")
        elif cls is OpClass.RET:
            sp = ensure(SP)
            pre.append("    _ret = {}")
            loop += ["        _rp, _fr = cs[i].pop()",
                     f"        {define(SP)} = {sp} + _fr"]
            post += ["        _b = _ret.get(_rp)",
                     "        if _b is None:",
                     "            _ret[_rp] = [i]",
                     "        else:",
                     "            _b.append(i)"]
            tail.append("    return _ret")
        elif cls is OpClass.CALL:
            ra, frame = term_pc + 1, term.imm
            sp = ensure(SP)
            loop += [f"        cs[i].append(({ra}, {frame}))",
                     f"        {define(SP)} = {sp} - ({frame})",
                     f"        store[v{SP} & -8] = {ra}"]
        elif cls is OpClass.HALT:
            loop += ["        hv[i] = 1", f"        pcv[i] = {term_pc}"]

    if not loop and not post:
        return [], []  # nothing per-lane (a tail implies loop or post)
    writeback = [f"        {col(r)}[i] = v{r}" for r in dirty]
    return pre + ["    for i in idx:"] + loop + writeback + post, tail


#: chain size cap (executed instructions); bounds generated-code size
#: and keeps any one grain's guard scan cheap
_CHAIN_CAP = 96


def _chain_plan(insts, targets, leaders, start) -> List[tuple]:
    """Plan the maximal superblock chain from leader ``start`` through
    static fallthrough/jump/call edges, stopping at a branch, halt,
    unmatched ret, revisited leader or :data:`_CHAIN_CAP` — plus a
    *prefix* chain cut at every entry-depth boundary, so the executors
    can fall back to the longest prefix whose scheduling guard holds
    (a waiting same-depth group keyed low preempts a long chain but
    not a short one).  Returns a possibly-empty list, longest first,
    of::

        (ops, term_pc, k, rkc, tgt, fall, bpc,
         has_at, lat, call_delta, d0_maxpc, bounds, joints)

    excluding single-block entries (the ``blocks`` table covers those
    under an equivalent guard), deterministically (the planner runs
    both at source-generation and at table-build time and must agree
    with itself)."""
    ops: List[tuple] = []
    cuts: List[tuple] = []
    seq = 0          # executed instructions before the current block
    has_at = False
    lat = -1         # executed-order offset of the last atomic
    calls = 0        # net call-depth delta (matched pairs cancel)
    d0_max = -1      # highest pc executed at the entry call depth
    bounds: List[Tuple[int, int]] = []
    joints: List[int] = []
    # statically pushed frames: (ra, frame size, index of the call op).
    # A ret reached while this is non-empty pops the chain's *own*
    # frame — ra and frame are compile-time constants, so the push/pop
    # pair is elided (the call op becomes "scall": SP update and
    # return-address store only) and the chain continues at ra.
    stk: List[Tuple[int, int, int]] = []
    visited = set()
    pc = start
    while True:
        visited.add(pc)
        b0, b1 = leaders[pc]
        term = insts[b1]
        tcls = term.cls
        hi = b1 - 1 if tcls in _CONTROL else b1
        for p in range(b0, hi + 1):
            if insts[p].cls is OpClass.ATOMIC:
                has_at = True
                lat = seq + (p - b0)
            ops.append(("pc", p))
        bounds.append((b0, b1 + 1))
        if calls == 0 and b1 > d0_max:
            d0_max = b1
        seq += b1 - b0 + 1
        if tcls in (OpClass.BRANCH, OpClass.HALT) or (
                tcls is OpClass.RET and not stk):
            rkc, tgt = _rekey_entry(term, targets[b1])
            term_pc: Optional[int] = b1
            break
        if tcls is OpClass.RET:
            ra, frame, ci = stk.pop()
            ops[ci] = ("scall", ops[ci][1])
            ops.append(("sret", frame))
            calls -= 1
            edge, nxt, term_stop = (RK_JUMP, ra, None)
        elif tcls is OpClass.JUMP:
            edge, nxt, term_stop = (RK_JUMP, targets[b1], None)
        elif tcls is OpClass.CALL:
            edge, nxt, term_stop = (RK_CALL, targets[b1], b1)
        else:  # plain fallthrough into the next leader
            edge, nxt, term_stop = (RK_FALL, b1 + 1, None)
        nb = leaders.get(nxt)
        if (nb is None or nxt in visited
                or seq + (nb[1] - nb[0] + 1) > _CHAIN_CAP):
            # stop on this edge: the terminator executes as the chain's
            # last instruction but the edge becomes the engine re-key
            rkc, tgt = edge, nxt
            term_pc = term_stop
            break
        if tcls is OpClass.CALL:
            ops.append(("call", b1))
            calls += 1
            stk.append((b1 + 1, term.imm, len(ops) - 1))
        elif calls == 0 and len(bounds) > 1:
            # prefix cut: the chain so far, stopping at this entry-depth
            # boundary as a plain jump re-key.  The op list is copied
            # because a later matched ret patches a "call" op in place.
            cuts.append((list(ops), None, seq, RK_JUMP, nxt, nxt, nxt,
                         has_at, lat, 0, d0_max, tuple(bounds),
                         tuple(joints)))
        joints.append(nxt)
        pc = nxt
    if len(bounds) == 1:
        return []
    cuts.reverse()
    return [(ops, term_pc, seq, rkc, tgt, b1 + 1, b1, has_at, lat,
             calls, d0_max, tuple(bounds), tuple(joints))] + cuts


class GrainMeta:
    """Replay metadata for one memoizable grain (see ``engine/memo``).

    ``key_regs`` is the grain's *exact* live-in register set — a
    syntactic read-before-write scan over the op stream, terminator
    included (for whole-block grains this equals the CFG's
    ``reg_use`` set, cross-checked under the sanitizer).  ``out_regs``
    are the registers the grain may write, ``pushes`` the statically
    known call-stack pushes in op order, ``pops_ret`` whether the
    terminator pops the caller's frame (which also puts each lane's
    stack top into the memo key), ``res_kind`` the return-value shape
    (``None``/``"branch"``/``"ret"``) and ``halt_pc`` the halt
    terminator's pc, if any.  ``has_mem`` gates the recording-store
    proxy: grains without memory traffic skip it entirely."""

    __slots__ = ("name", "k", "key_regs", "out_regs", "has_mem",
                 "pushes", "pops_ret", "res_kind", "halt_pc")

    def __init__(self, name, k, key_regs, out_regs, has_mem, pushes,
                 pops_ret, res_kind, halt_pc):
        self.name = name
        self.k = k
        self.key_regs = key_regs
        self.out_regs = out_regs
        self.has_mem = has_mem
        self.pushes = pushes
        self.pops_ret = pops_ret
        self.res_kind = res_kind
        self.halt_pc = halt_pc


def _grain_meta(name: str, ops, term_pc: Optional[int], insts,
                k: int) -> Optional[GrainMeta]:
    """:class:`GrainMeta` for one grain's op stream, or ``None`` when
    the grain is not memoizable: atomics are cross-batch ordering
    points and syscalls are side effects the timing model consumes in
    order, so both are excluded outright."""
    rd: List[int] = []
    rds = set()
    dfn = set()
    outs: List[int] = []
    pushes: List[Tuple[int, int]] = []
    has_mem = False
    pops_ret = False
    res_kind = None
    halt_pc = None

    def use(r: int) -> None:
        if r not in dfn and r not in rds:
            rds.add(r)
            rd.append(r)

    def define(r: int) -> None:
        if r not in dfn:
            dfn.add(r)
            outs.append(r)

    for op in ops:
        kind, p = op[0], op[1]
        if kind == "sret":  # p is the statically matched frame size
            use(SP)
            define(SP)
            continue
        if kind == "call" or kind == "scall":
            use(SP)
            define(SP)
            if kind == "call":
                pushes.append((p + 1, insts[p].imm))
            has_mem = True  # the return-address store
            continue
        inst = insts[p]
        cls = inst.cls
        if cls is OpClass.ALU or cls is OpClass.MUL:
            if not inst.dst:  # r0 writes dropped, ALU not evaluated
                continue
            srcs = inst.srcs
            if srcs:
                use(srcs[0])
            if len(srcs) > 1:
                use(srcs[1])
            define(inst.dst)
        elif cls is OpClass.LOAD:
            if not inst.dst:
                continue  # no architectural effect (mirrors decode)
            use(inst.srcs[0])
            define(inst.dst)
            has_mem = True
        elif cls is OpClass.STORE:
            use(inst.srcs[0])
            use(inst.srcs[1])
            has_mem = True
        elif cls is OpClass.ATOMIC or cls is OpClass.SYSCALL:
            return None
        # FENCE / NOP / SIMD: architecturally empty

    if term_pc is not None:
        term = insts[term_pc]
        cls = term.cls
        if cls is OpClass.BRANCH:
            use(term.srcs[0])
            use(term.srcs[1])
            res_kind = "branch"
        elif cls is OpClass.RET:
            use(SP)
            define(SP)
            pops_ret = True
            res_kind = "ret"
        elif cls is OpClass.CALL:
            use(SP)
            define(SP)
            pushes.append((term_pc + 1, term.imm))
            has_mem = True
        elif cls is OpClass.HALT:
            halt_pc = term_pc
        # JUMP terminators emit nothing (purely a re-key)

    return GrainMeta(name, k, tuple(rd), tuple(outs), has_mem,
                     tuple(pushes), pops_ret, res_kind, halt_pc)


# -- bounded-int tape emission -----------------------------------------

#: ALU mnemonics with an exact int64 column form.  shl is excluded (its
#: explicit 64-bit mask can exceed int64), div/rem are excluded (the
#: per-lane zero guard has no cheap column form).
_TAPE_OPS = {
    "add": "add", "addi": "add", "sub": "sub",
    "and": "and", "andi": "and", "or": "or", "ori": "or",
    "xor": "xor", "xori": "xor", "mul": "mul", "muli": "mul",
    "min": "min", "max": "max", "slt": "slt", "slti": "slt",
    "shr": "shr", "shri": "shr", "li": "li", "mov": "mov",
    "hash": "hash",
}

#: candidate live-in bounds, largest first — the gate admits more lanes
#: under a larger bound, so the emitter takes the largest that verifies
_BOUND_LADDER = (1 << 45, 1 << 31, 1 << 23, 1 << 15)

_I64_LO, _I64_HI = -(1 << 63), (1 << 63) - 1


def _sbits(lo: int, hi: int) -> int:
    """Smallest signed two's-complement width holding ``[lo, hi]``."""
    w = 1
    if hi > 0:
        w = hi.bit_length() + 1
    if lo < 0:
        w = max(w, (-lo - 1).bit_length() + 1)
    return w


def _tape_fits(steps, term, in_regs, bound: int) -> bool:
    """Interval analysis: with every live-in register in
    ``[-bound, bound]``, does every intermediate stay inside int64?
    ``hash`` is exempt by construction (its products wrap int64 but the
    wrapped bits are masked away identically to the unbounded source),
    and bitwise results of B-bit signed operands fit in B signed bits.
    """
    rng = {r: (-bound, bound) for r in in_regs}

    def val(o):
        if o[0] == "r":
            return rng[o[1]]
        return (o[1], o[1])

    for opc, dst, a, b in steps:
        for o in (a, b):
            if o[0] == "i" and not (_I64_LO <= o[1] <= _I64_HI):
                return False
        la, ha = val(a)
        lb, hb = val(b)
        if opc == "add":
            lo, hi = la + lb, ha + hb
        elif opc == "sub":
            lo, hi = la - hb, ha - lb
        elif opc == "mul":
            corners = (la * lb, la * hb, ha * lb, ha * hb)
            lo, hi = min(corners), max(corners)
        elif opc in ("and", "or", "xor"):
            w = max(_sbits(la, ha), _sbits(lb, hb))
            lo, hi = -(1 << (w - 1)), (1 << (w - 1)) - 1
        elif opc == "min":
            lo, hi = min(la, lb), min(ha, hb)
        elif opc == "max":
            lo, hi = max(la, lb), max(ha, hb)
        elif opc == "slt":
            lo, hi = 0, 1
        elif opc == "shr":  # shift by 0 keeps the value; shifting only
            lo = la if la < 0 else 0  # moves it toward 0 / -1
            hi = ha if ha > 0 else 0
        elif opc == "li":
            lo, hi = lb, hb
        elif opc == "mov":
            lo, hi = la, ha
        else:  # hash
            lo, hi = 0, 0x7FFFFFFF
        if lo < _I64_LO or hi > _I64_HI:
            return False
        rng[dst] = (lo, hi)
    return True


def _bounded_tape(ops, term_pc: Optional[int], insts):
    """:class:`BoundedTape` for a pure-ALU grain, or ``None`` when any
    op lacks an exact int64 form or no ladder bound verifies."""
    steps: List[tuple] = []
    rd: List[int] = []
    rds = set()
    dfn = set()
    outs: List[int] = []

    def use(r: int):
        if r not in dfn and r not in rds:
            rds.add(r)
            rd.append(r)
        return ("r", r)

    for op in ops:
        if op[0] != "pc":
            return None  # chained call / sret: stack effects
        inst = insts[op[1]]
        cls = inst.cls
        if cls in (OpClass.FENCE, OpClass.NOP, OpClass.SIMD):
            continue
        if cls is not OpClass.ALU and cls is not OpClass.MUL:
            return None
        if not inst.dst:
            continue
        opc = _TAPE_OPS.get(inst.op)
        if opc is None:
            return None
        srcs = inst.srcs
        a = use(srcs[0]) if srcs else ("i", 0)
        b = use(srcs[1]) if len(srcs) > 1 else ("i", inst.imm)
        if opc != "li" and a[0] == "i" and b[0] == "i":
            return None  # no column operand to broadcast against
        steps.append((opc, inst.dst, a, b))
        dfn.add(inst.dst)
        if inst.dst not in outs:
            outs.append(inst.dst)

    term = None
    if term_pc is not None:
        t = insts[term_pc]
        if t.cls is OpClass.BRANCH:
            term = ("branch", _CMP_OPS[t.op], use(t.srcs[0]),
                    use(t.srcs[1]))
        elif t.cls is OpClass.HALT:
            term = ("halt", term_pc)
        elif t.cls is not OpClass.JUMP:
            return None  # CALL/RET: stack and memory effects

    if not steps and term is None:
        return None
    # hash steps force unbounded python onto multi-hundred-bit ints, so
    # int64 columns pay off at modest widths; short pure-arithmetic
    # tapes only beat the gather/scatter on wide groups (lanes.py gate)
    hot = len(steps) >= 8 or any(s[0] == "hash" for s in steps)
    for bound in _BOUND_LADDER:
        if _tape_fits(steps, term, rd, bound):
            return BoundedTape(tuple(rd), tuple(outs), bound,
                               tuple(steps), term, hot)
    return None


def _program_digest(program) -> str:
    """Content digest of the resolved program (instruction fields and
    resolved targets — label names don't affect semantics but the name
    does reach error messages, so it is included)."""
    h = hashlib.sha256()
    h.update(program.name.encode("utf-8"))
    for pc, inst in enumerate(program.instructions):
        h.update(repr((inst.op, inst.cls.name, inst.dst, tuple(inst.srcs),
                       inst.imm, inst.size,
                       inst.syscall.value if inst.syscall else None,
                       program.targets[pc])).encode("utf-8"))
    return h.hexdigest()


def generate_source(program, cfg=None) -> str:
    """The full generated module for ``program`` (deterministic, so it
    can be cached by content address and diffed under the sanitizer)."""
    if cfg is None:
        from ..isa.cfg import ControlFlowGraph
        cfg = ControlFlowGraph(program)
    insts = program.instructions
    targets = program.targets
    lines: List[str] = []
    for pc in range(len(insts)):
        if insts[pc].cls in _CONTROL:
            ops, term = [], pc
        else:
            ops, term = [("pc", pc)], None
        lines += _batch_fn_source(f"_g{pc}", ops, term, insts, targets)
    leaders = {b.start: (b.start, b.end) for b in cfg.blocks}
    for block in cfg.blocks:
        if insts[block.end].cls in _CONTROL:
            hi, term = block.end - 1, block.end
        else:
            hi, term = block.end, None
        ops = [("pc", p) for p in range(block.start, hi + 1)]
        lines += _batch_fn_source(f"_B{block.start}", ops, term,
                                  insts, targets)
        for ci, plan in enumerate(_chain_plan(insts, targets, leaders,
                                              block.start)):
            name = (f"_C{block.start}" if ci == 0
                    else f"_C{block.start}_{ci}")
            lines += _batch_fn_source(name, plan[0], plan[1],
                                      insts, targets)
    for first, last in _alu_runs(program, cfg):
        for p in range(first, last):  # suffix entry per interior pc
            ops = [("pc", q) for q in range(p, last + 1)]
            lines += _batch_fn_source(f"_r{p}", ops, None, insts, targets)
    return "\n".join(lines)


def _cached_source(program, cfg) -> str:
    """Generated source via the persistent store; any load anomaly or
    content mismatch falls back to (and republishes) a fresh build."""
    fp = store.source_fingerprint(_CODEGEN_MODULES)
    key = (_program_digest(program), sys.implementation.cache_tag)
    cached = store.lookup("vcode", fp, key)
    if isinstance(cached, str):
        if not sanitize.sanitizer_enabled():
            return cached
        fresh = generate_source(program, cfg)
        sanitize.check(fresh == cached,
                       "vcodegen: cached source for %s (key %s...) does "
                       "not match regeneration — cache key unsound",
                       program.name, key[0][:12])
        return cached
    src = generate_source(program, cfg)
    store.record("vcode", fp, key, src)
    return src


#: below this executed-instruction count a memo key costs more to build
#: and probe than re-executing the grain
_MEMO_MIN_K = 4


def compile_vector(program) -> VectorProgram:
    """Compile ``program`` into batch dispatch tables (one ``exec``)."""
    from ..isa.cfg import ControlFlowGraph

    cfg = ControlFlowGraph(program)
    insts = program.instructions
    targets = program.targets
    n = len(insts)
    src = _cached_source(program, cfg)
    namespace = {"min": min, "max": max, "__builtins__": {}}
    exec(compile(src, f"<vdecoded:{program.name}>", "exec"), namespace)
    san = sanitize.sanitizer_enabled()

    blocks: List[Optional[tuple]] = [None] * n
    chains: List[Optional[tuple]] = [None] * n
    leaders = {b.start: (b.start, b.end) for b in cfg.blocks}
    for block in cfg.blocks:
        k = block.end - block.start + 1
        rk, tgt = _rekey_entry(insts[block.end], targets[block.end])
        lat_off = -1
        for off in range(k):
            if insts[block.start + off].cls is OpClass.ATOMIC:
                lat_off = off
        if insts[block.end].cls in _CONTROL:
            bhi, bterm = block.end - 1, block.end
        else:
            bhi, bterm = block.end, None
        bops = [("pc", p) for p in range(block.start, bhi + 1)]
        meta = _grain_meta(f"_B{block.start}", bops, bterm, insts, k)
        if san and meta is not None:
            # the syntactic read-before-write scan over a whole block
            # must agree with the CFG liveness computation's use set
            sanitize.check(
                frozenset(meta.key_regs) == cfg.reg_use(block.index),
                "vcodegen: %s block %d grain key regs %r != CFG use %r",
                program.name, block.index, sorted(meta.key_regs),
                sorted(cfg.reg_use(block.index)))
        if meta is not None and k < _MEMO_MIN_K:
            meta = None
        tape = _bounded_tape(bops, bterm, insts)
        blocks[block.start] = (k, namespace[f"_B{block.start}"], rk, tgt,
                               lat_off >= 0, lat_off, meta, tape)
        entries = []
        for ci, plan in enumerate(_chain_plan(insts, targets, leaders,
                                              block.start)):
            (cops, cterm, ck, crk, ctgt, fall, bpc, has_at, lat,
             calls, d0_max, bounds, joints) = plan
            name = (f"_C{block.start}" if ci == 0
                    else f"_C{block.start}_{ci}")
            cmeta = _grain_meta(name, cops, cterm, insts, ck)
            if cmeta is not None and ck < _MEMO_MIN_K:
                cmeta = None
            entries.append((ck, namespace[name], crk, ctgt, fall, bpc,
                            has_at, lat, calls, d0_max, bounds, joints,
                            cmeta))
        if entries:
            chains[block.start] = tuple(entries)
    runs: List[Optional[tuple]] = [None] * n
    for first, last in _alu_runs(program, cfg):
        for p in range(first, last):
            rops = [("pc", q) for q in range(p, last + 1)]
            rk_ = last - p + 1
            rmeta = _grain_meta(f"_r{p}", rops, None, insts, rk_)
            if rmeta is not None and rk_ < _MEMO_MIN_K:
                rmeta = None
            runs[p] = (rk_, namespace[f"_r{p}"], rmeta,
                       _bounded_tape(rops, None, insts))
    return VectorProgram(
        ghandlers=tuple(namespace[f"_g{pc}"] for pc in range(n)),
        blocks=tuple(blocks),
        runs=tuple(runs),
        chains=tuple(chains),
        rekey=tuple(_rekey_entry(insts[pc], targets[pc])
                    for pc in range(n)),
        is_atomic=tuple(i.cls is OpClass.ATOMIC for i in insts),
        digest=_program_digest(program),
    )
