"""Trace-level grain memoization for the vectorized lockstep engine.

SIMR's premise is that concurrent microservice requests execute the
same instructions over near-identical state — which makes whole-grain
re-execution mostly redundant.  This module caches, per compiled grain
invocation, the grain's *state delta* and replays it on a hit instead
of re-interpreting the grain.

**Keying.**  A grain (a generated block/chain/run function from
:mod:`repro.engine.vcodegen`) is a straight line of code, so its entire
behaviour is a function of: the program (content digest — the table is
per-program), the grain identity (generated-function name, which
encodes entry pc and prefix cut), the memory-hash ``salt``, the lane
count, the per-lane values of the grain's live-in registers
(``GrainMeta.key_regs``, the exact read-before-write set derived
alongside the CFG liveness analysis in ``isa/cfg.py``), the per-lane
call-stack tops for RET-terminated grains, and the values of every
memory address it reads.  The first group is the dictionary key; memory
reads are validated per hit against the recorded read set (``checks``
below), because the addresses themselves derive from key registers but
their contents can change between invocations.  The *active-lane mask*
is deliberately not part of the key: deltas are recorded positionally
per lane, so any lane-index list with the same width and the same
live-in values replays identically — this widens hits across batches
without weakening soundness.

**Recording.**  A miss executes the grain live behind a
``_RecordingStore`` proxy (grains only call ``store.get`` and item
assignment), then prunes the log into ``checks`` — the first read of
each address not previously written by the grain, raw (``None`` means
"background fill", whose value is pure ``(addr, salt)``) — and
``writes`` — the final value per written address.  Register deltas are
snapshots of the grain's ``out_regs`` columns; call-stack effects
(statically known pushes, the RET pop) and the return-value shape
(branch partition mask / ret buckets in first-seen order) complete the
entry.  Atomics and syscalls are never memoized
(``vcodegen._grain_meta`` refuses them).

**Replay.**  A hit validates ``checks`` against the live store, then
applies ``writes``, scatters the register columns, replays stack
effects and halt flags, and reconstructs the return value.  Under
``REPRO_SANITIZE=1`` (or ``REPRO_CACHE_VERIFY=1``) every hit instead
re-executes the grain live and compares the fresh delta against the
cached entry field-by-field, raising
:class:`repro.store.CacheVerifyError` on any divergence — this is the
recompute-and-compare witness that also catches a tampered persisted
table.

**Persistence.**  Hot tables are published to the content-addressed
store (:mod:`repro.store`) under kind ``"vmemo"``, fingerprinted by
the engine+ISA sources and keyed by the program digest, so later
processes start warm.  The store's ``put`` is first-write-wins per
address, so the first snapshot (after :data:`_FLUSH_DELTA` fresh
entries) seeds future processes; in-process entries keep accumulating
regardless.

``REPRO_MEMO=0`` disables the whole path (the bit-identity witness);
the toggle is re-read per run so tests and the fuzz oracle can flip it
without re-importing.
"""

from __future__ import annotations

import os
from operator import itemgetter
from typing import Dict, Optional

from .. import sanitize, store
from ..store import CacheVerifyError
from .lanes import bounded_call

__all__ = ["memo_enabled", "table_for", "MemoTable", "CacheVerifyError"]


def memo_enabled() -> bool:
    """True unless ``REPRO_MEMO=0`` (re-read per call)."""
    return os.environ.get("REPRO_MEMO", "1") != "0"


#: per-table entry cap (a runaway generator-built program cannot grow
#: the table without bound; hits keep working once full)
_MEMO_CAP = 8192

#: memory-op log cap per entry: grains touching more traffic than this
#: are executed live every time (the entry would cost more to validate
#: than to recompute)
_MEMO_MAX_OPS = 8192

#: per-key entry-bucket cap (distinct memory contexts per live-in key)
_BUCKET_CAP = 4

#: fresh entries between persistent-store snapshots
_FLUSH_DELTA = 64

#: in-process table registry, keyed by program content digest
_TABLES: Dict[str, "MemoTable"] = {}


def table_for(vdec) -> "MemoTable":
    """The (process-wide) memo table for a compiled program, created on
    first use and seeded from the persistent store when available."""
    t = _TABLES.get(vdec.digest)
    if t is None:
        t = _TABLES[vdec.digest] = MemoTable(vdec.digest)
        t.load()
    # recompute-and-compare on hits whenever either sanitizer is armed;
    # resolved once per run (table_for is called at run entry)
    t.verify = sanitize.sanitizer_enabled() or store.verify_enabled()
    return t


def _fingerprint() -> str:
    from .vcodegen import _CODEGEN_MODULES

    return store.source_fingerprint(_CODEGEN_MODULES)


class _RecordingStore:
    """Dict-shaped proxy logging one grain execution's memory traffic.

    Generated code only uses ``store.get(addr)`` (or the hoisted bound
    method) and ``store[addr] = value``; both are intercepted.  Log
    entries are ``(is_write, addr, value)`` with raw read values
    (``None`` = background fill, which is pure in ``(addr, salt)``)."""

    __slots__ = ("base", "log")

    def __init__(self, base):
        self.base = base
        self.log = []

    def get(self, a, default=None):
        v = self.base.get(a, default)
        self.log.append((False, a, v))
        return v

    def __setitem__(self, a, v):
        self.base[a] = v
        self.log.append((True, a, v))


class MemoTable:
    """Grain-delta cache for one program (see module docstring).

    ``entries[key]`` is a small bucket (list) of candidate entries —
    the same live-in key can recur under different memory contents —
    each ``(checks, writes, regs_out, res_rec)``:

    * ``checks``: ``(addrs, raw_values)`` parallel tuples — the grain's
      read set before its own writes, validated on every hit;
    * ``writes``: tuple of ``(addr, value)`` final memory writes;
    * ``regs_out``: tuple of ``(reg, per-lane value tuple)`` — a
      lane-uniform column is stored as its single value;
    * ``res_rec``: ``None``, ``("b", outcome_bytes)`` for a branch
      partition, or ``("r", ((ret_pc, position tuple), ...))`` for ret
      buckets in first-seen lane order.
    """

    __slots__ = ("digest", "entries", "persisted", "hits", "misses",
                 "verify")

    def __init__(self, digest: str):
        self.digest = digest
        self.entries: Dict[tuple, tuple] = {}
        self.persisted = 0
        self.hits = 0
        self.misses = 0
        self.verify = False

    # -- persistence ---------------------------------------------------
    def load(self) -> None:
        cached = store.lookup("vmemo", _fingerprint(), (self.digest,))
        if isinstance(cached, dict):
            self.entries.update(cached)
            self.persisted = len(self.entries)

    def flush(self) -> None:
        """Publish the current entries to the persistent store."""
        if not self.entries:
            return
        store.record("vmemo", _fingerprint(), (self.digest,),
                     dict(self.entries))
        self.persisted = len(self.entries)

    def maybe_flush(self) -> None:
        """Called at the end of each vector run: snapshot the table
        once enough fresh entries accumulated."""
        if len(self.entries) - self.persisted >= _FLUSH_DELTA:
            self.flush()

    # -- the hot path --------------------------------------------------
    def invoke(self, meta, fn, bt, idx, R, cs, sy, pcv, hv, store_,
               salt):
        """Replay ``meta``'s grain for lanes ``idx`` from the cache, or
        execute it live (through the recording proxy) and memoize."""
        if meta.pops_ret:
            try:
                cstop = tuple(cs[i][-1] for i in idx)
            except IndexError:
                # underflow: let live execution raise exactly as before
                return fn(idx, R, cs, sy, pcv, hv, store_, salt)
        else:
            cstop = None
        n = len(idx)
        if n > 1:
            # itemgetter gathers one register column at C speed; a
            # lane-uniform column (pointers, shared table bases - the
            # common case) collapses to its single value, which hashes
            # ~n times cheaper and cannot collide with a non-uniform
            # gather (int != tuple) or another width (n is in the key)
            ig = itemgetter(*idx)
            cols = []
            for r in meta.key_regs:
                v = ig(R[r])
                v0 = v[0]
                cols.append(v0 if v.count(v0) == n else v)
            key = (meta.name, n, salt, tuple(cols), cstop)
        else:
            i0 = idx[0]
            key = (meta.name, 1, salt,
                   tuple(R[r][i0] for r in meta.key_regs), cstop)
        bucket = self.entries.get(key)
        if bucket is not None:
            g = store_.get
            # one key can map to several entries: the same grain with
            # the same live-in registers can observe different memory
            # (e.g. first vs second visit in one batch), so each
            # candidate's recorded read set is validated in turn (one
            # C-level gather-and-compare per candidate)
            for entry in bucket:
                addrs, vals = entry[0]
                if tuple(map(g, addrs)) == vals:
                    self.hits += 1
                    if self.verify:
                        return self._verify_hit(entry, meta, fn, bt,
                                                idx, R, cs, sy, pcv,
                                                hv, store_, salt)
                    return self._apply(entry, meta, idx, R, cs, pcv,
                                       hv, store_)
        self.misses += 1
        res, fresh = self._execute(meta, fn, bt, idx, R, cs, sy, pcv,
                                   hv, store_, salt)
        if fresh is not None:
            if bucket is not None:
                if len(bucket) < _BUCKET_CAP:
                    bucket.append(fresh)
            elif len(self.entries) < _MEMO_CAP:
                self.entries[key] = [fresh]
        return res

    def _execute(self, meta, fn, bt, idx, R, cs, sy, pcv, hv, store_,
                 salt):
        """Run the grain live and build its delta entry (or ``None``
        when the memory log exceeds the per-entry cap)."""
        if meta.has_mem:
            rec = _RecordingStore(store_)
            res = fn(idx, R, cs, sy, pcv, hv, rec, salt)
            log = rec.log
            if len(log) > _MEMO_MAX_OPS:
                return res, None
        else:
            if bt is not None:
                res = bounded_call(bt, fn, idx, R, cs, sy, pcv, hv,
                                   store_, salt)
            else:
                res = fn(idx, R, cs, sy, pcv, hv, store_, salt)
            log = ()
        written = set()
        seen = set()
        caddrs = []
        cvals = []
        writes = {}
        for w, a, v in log:
            if w:
                written.add(a)
                writes[a] = v
            elif a not in written and a not in seen:
                seen.add(a)
                caddrs.append(a)
                cvals.append(v)
        n = len(idx)
        if n > 1:
            # lane-uniform output columns compress to their value, as
            # in the key (int vs tuple keeps the shape unambiguous)
            ig = itemgetter(*idx)
            regs_out = []
            for r in meta.out_regs:
                v = ig(R[r])
                v0 = v[0]
                regs_out.append((r, v0 if v.count(v0) == n else v))
            regs_out = tuple(regs_out)
        else:
            i0 = idx[0]
            regs_out = tuple((r, (R[r][i0],)) for r in meta.out_regs)
        if meta.res_kind == "branch":
            tset = set(res[0])
            res_rec = ("b", bytes(1 if i in tset else 0 for i in idx))
        elif meta.res_kind == "ret":
            posmap = {i: j for j, i in enumerate(idx)}
            res_rec = ("r", tuple((rp, tuple(posmap[i] for i in moved))
                                  for rp, moved in res.items()))
        else:
            res_rec = None
        return res, ((tuple(caddrs), tuple(cvals)),
                     tuple(writes.items()), regs_out, res_rec)

    def _apply(self, entry, meta, idx, R, cs, pcv, hv, store_):
        """Replay a validated entry's delta and rebuild the grain's
        return value."""
        writes = entry[1]
        if writes:
            store_.update(writes)
        n = len(idx)
        i0 = idx[0]
        if idx[n - 1] - i0 + 1 == n:
            # contiguous ascending lane range: slice-assign columns
            i1 = i0 + n
            for r, vals in entry[2]:
                if type(vals) is tuple:
                    R[r][i0:i1] = vals
                else:  # lane-uniform column, stored as its value
                    R[r][i0:i1] = (vals,) * n
        else:
            for r, vals in entry[2]:
                col = R[r]
                if type(vals) is tuple:
                    for j, i in enumerate(idx):
                        col[i] = vals[j]
                else:
                    for i in idx:
                        col[i] = vals
        for t in meta.pushes:
            for i in idx:
                cs[i].append(t)
        if meta.pops_ret:
            for i in idx:
                cs[i].pop()
        if meta.halt_pc is not None:
            hp = meta.halt_pc
            for i in idx:
                hv[i] = 1
                pcv[i] = hp
        rr = entry[3]
        if rr is None:
            return None
        if rr[0] == "b":
            mask = rr[1]
            _t = []
            _f = []
            for j, i in enumerate(idx):
                (_t if mask[j] else _f).append(i)
            return _t, _f
        out = {}
        for rp, poss in rr[1]:
            out[rp] = [idx[j] for j in poss]
        return out

    def _verify_hit(self, entry, meta, fn, bt, idx, R, cs, sy, pcv, hv,
                    store_, salt):
        """Recompute-and-compare witness: execute the grain live and
        require the fresh delta to match the cached entry exactly."""
        res, fresh = self._execute(meta, fn, bt, idx, R, cs, sy, pcv,
                                   hv, store_, salt)
        if fresh is not None and fresh != entry:
            raise CacheVerifyError(
                "memo: cached grain delta for %s (program %s...) "
                "diverges from recomputation - tampered or stale entry"
                % (meta.name, self.digest[:12]))
        return res
