"""Per-request thread state (the RPU thread has CPU-thread granularity)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..isa.instructions import NUM_REGS, SP
from .memory import DEFAULT_STACK_SIZE, stack_base


class ThreadState:
    """Architectural state of one request-thread.

    The call stack is hardware-managed in our model: ``call`` reserves a
    frame (decrements SP) and pushes the return pc, ``ret`` restores it.
    This keeps SP meaningful for the MinSP reconvergence heuristic
    without making workload authors write prologues.

    The vectorized engine (:mod:`repro.engine.lanes`) transposes a
    batch of ``ThreadState`` objects into structure-of-arrays columns on
    entry and scatters them back on exit, which imposes two aliasing
    contracts on this class: ``call_stack`` and ``syscall_trace`` are
    mutated through aliases held by the lane state (never rebind them,
    only mutate in place), and ``regs`` is written back wholesale via
    slice assignment (so it must stay a plain list of unbounded Python
    ints - the ISA's registers overflow 64 bits by design).
    """

    __slots__ = (
        "tid",
        "regs",
        "pc",
        "call_stack",
        "halted",
        "retired",
        "stack_size",
        "stack_top",
        "syscall_trace",
        "request",
    )

    def __init__(self, tid: int, entry: int = 0,
                 stack_size: int = DEFAULT_STACK_SIZE):
        self.tid = tid
        self.regs: List[int] = [0] * NUM_REGS
        self.pc = entry
        self.call_stack: List[Tuple[int, int]] = []  # (return_pc, frame)
        self.halted = False
        self.retired = 0
        self.stack_size = stack_size
        self.stack_top = stack_base(tid, stack_size)
        # leave a red zone for the initial frame
        self.regs[SP] = self.stack_top - 128
        self.syscall_trace: List[Tuple[int, str]] = []  # (pc, kind)
        self.request = None  # back-reference set by workload setup

    @property
    def sp(self) -> int:
        return self.regs[SP]

    @property
    def depth(self) -> int:
        return len(self.call_stack)

    def snapshot(self) -> dict:
        """Architectural snapshot used by lockstep-equivalence tests."""
        return {
            "regs": list(self.regs),
            "pc": self.pc,
            "halted": self.halted,
            "retired": self.retired,
            "depth": self.depth,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "halted" if self.halted else f"pc={self.pc}"
        return f"<ThreadState tid={self.tid} {state} retired={self.retired}>"
