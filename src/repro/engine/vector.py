"""Vectorized lockstep execution loops over structure-of-arrays state.

These are the batch-call twins of ``IpdomExecutor._run_fast`` and
``MinSpPcExecutor._run_fast``: the same schedulers, but each scheduled
group executes through one generated batch function per *group-step*
(or per whole basic block) instead of one handler call per *lane*
(:mod:`repro.engine.vcodegen`), over :class:`repro.engine.lanes.
LaneState` arrays instead of ``ThreadState`` attributes.

Execution grains, coarsest first:

* **superblock chain** (``chains[pc]``): several blocks linked by
  statically known fallthrough/jump/call edges, executed as one call;
  when the full chain's guard fails, the longest entry-depth *prefix*
  whose guard holds runs instead.  A candidate is legal for IPDOM when the region's reconvergence pc neither falls
  strictly inside any covered block nor equals a chained-through
  boundary; for MinSP-PC when the group is alone, or when the chain is
  atomics-free, the spin window is stale, no boost is active and no
  other same-depth group is keyed at or below the chain's highest
  entry-depth pc (every boundary key of the chain then wins the
  min-key selection, so the reference scheduler would run the same
  blocks back to back);
* **whole basic block** (``blocks[pc]``, terminator included).  Always
  legal for IPDOM when the region's reconvergence pc is not strictly
  inside the block (regions move as one unit through straight-line
  code).  For MinSP-PC it is legal when the group is *alone* (no other
  group can preempt it, the spin-escape needs a second group, and boost
  selection needs two groups to differ from min-key), or when the usual
  fused-run guards hold — atomics-free block, atomics window already
  stale, no boost active, and no same-depth group keyed strictly inside
  the block (such a group would merge with or preempt us mid-block; a
  deeper group cannot exist, it would have been selected first, and a
  shallower one never outranks us);
* **ALU-run suffix** (``runs[pc]``) for mid-block entries, under
  exactly the scalar engine's fused-superblock guards;
* **one batch step** (``ghandlers[pc]``) otherwise.

Counters (``steps``/``scalar``/``branches``/``divergent``), retired
accounting, spin-escape and boost bookkeeping, group orders and every
memory interleaving are maintained exactly as in the scalar loops;
``tests/test_vector_engine.py`` and the fuzz oracle enforce
bit-identity, and ``REPRO_VECTOR=0`` keeps the scalar loops available
as a live differential witness.

Retired counts are batched per group: a group carries a *pending*
per-lane delta that flushes into the lane's retired vector whenever the
group merges into another, halts, or the run truncates - the sum of
flushed deltas always equals ``scalar_instructions`` (checked under
``REPRO_SANITIZE=1``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..sanitize import sanitizer_enabled
from . import memo
from .decode import RK_BRANCH, RK_CALL, RK_FALL, RK_HALT, RK_JUMP, RK_RET
from .events import LockstepResult
from .lanes import LaneState, bounded_call, bounded_enabled
from .lockstep import ExecutionError, _san_result


def _insert(groups: Dict, key, lanes: List[int], pending: int,
            stamp: int, retd) -> None:
    """Insert a lane list into ``groups[key]``; on merge, flush both
    sides' pending retired deltas (the merged group restarts at 0) and
    keep the lane list sorted so execution order matches the reference
    engine's tid iteration order.

    ``stamp`` is the last step at which these lanes executed; a group
    keeps the *minimum* over its lanes, which is the only aggregate the
    spin-escape (oldest live lane) and boost selection (oldest group
    first) ever read, so no per-lane last-executed array is needed."""
    cur = groups.get(key)
    if cur is None:
        groups[key] = [lanes, pending, stamp]
        return
    p0 = cur[1]
    if p0:
        for i in cur[0]:
            retd[i] += p0
        cur[1] = 0
    if pending:
        for i in lanes:
            retd[i] += pending
    cur[0].extend(lanes)
    cur[0].sort()
    if stamp < cur[2]:
        cur[2] = stamp


def _interior_clear(groups: Dict, depth: int, lo: int, hi: int) -> bool:
    """True when no other group at ``depth`` is keyed strictly inside
    (lo, hi) — the scalar engine's mid-run merge/preemption guard."""
    for d2, p2 in groups:
        if d2 == depth and lo < p2 < hi:
            return False
    return True


def _ret_scatter_error(prog, idx: List[int], buckets: Dict,
                       reconv: int) -> ExecutionError:
    """The reference engine's IPDOM invariant error for a region whose
    lanes returned to different pcs: it reports the first running
    lane's pc against the first lane that disagrees (lanes parked at
    the reconvergence pc are filtered out before the check)."""
    lane_pc = {}
    for p2, moved in buckets.items():
        for i in moved:
            lane_pc[i] = p2
    seq = [lane_pc[i] for i in idx if lane_pc[i] != reconv]
    pc0 = seq[0]
    other = next(p for p in seq if p != pc0)
    return ExecutionError(
        f"{prog.name}: IPDOM invariant broken at pc {pc0} "
        f"vs {other} (irreducible control flow?)"
    )


def run_minsp(ex, threads, mem) -> LockstepResult:
    """Vectorized ``MinSpPcExecutor`` (sink-free fast path only)."""
    prog = ex.program
    vdec = prog.vdecoded
    gh = vdec.ghandlers
    vblocks = vdec.blocks
    vruns = vdec.runs
    vchains = vdec.chains
    rekey = vdec.rekey
    is_atomic = vdec.is_atomic
    max_steps = ex.max_steps
    spin_k, spin_b, spin_t = ex.spin_k, ex.spin_b, ex.spin_t
    san = sanitizer_enabled()
    retired0 = sum(t.retired for t in threads) if san else 0

    ls = LaneState(threads)
    if san:
        ls.san_capture(prog.name, threads)
    R = ls.regs
    cs = ls.call_stacks
    sy = ls.syscalls
    pcv = ls.pc
    hv = ls.halted
    retd = ls.retired
    store = mem._store
    salt = mem.salt
    n_lanes = ls.n
    mt = memo.table_for(vdec) if memo.memo_enabled() else None
    bnd = bounded_enabled()

    steps = 0
    scalar = 0
    branches = 0
    divergent = 0
    truncated = False
    last_atomic_step = -(10**9)
    boost_remaining = 0

    # group record: [lanes, pending_retired, min_last_executed_step]
    groups: Dict[Tuple[int, int], list] = {}
    pcl = pcv.tolist()
    hl = hv.tolist()
    for i in range(n_lanes):  # lane order == tid order
        if not hl[i]:
            key = (-len(cs[i]), pcl[i])
            rec = groups.get(key)
            if rec is None:
                groups[key] = [[i], 0, 0]
            else:
                rec[0].append(i)

    while groups:
        if steps >= max_steps:
            truncated = True
            break

        min_sel = True
        if boost_remaining > 0 and len(groups) > 1:
            boost_remaining -= 1
            min_sel = False
            # oldest-waiter first, lowest-lane (== lowest-tid) tiebreak
            key = min(
                groups,
                key=lambda k: (groups[k][2], groups[k][0][0]),
            )
        else:
            key = min(groups)  # deepest call, then lowest pc

        rec = groups.pop(key)
        idx = rec[0]
        pending = rec[1]
        depth, pc = key
        if san:
            ls.san_group(prog.name, idx, pc, depth=-depth)
        n = len(idx)

        # grain selection: superblock chain > whole block > ALU-run
        # suffix > one step
        k = 0
        dd = 0
        fall = -1
        meta = None
        bt = None
        chl = vchains[pc]
        if chl is not None:
            if not groups:
                # alone on the schedule: nothing can preempt, merge,
                # boost past or spin-escape around this group mid-chain
                for ch in chl:
                    if steps + ch[0] <= max_steps:
                        k, fn, rkc, tgt, fall, _bpc, has_at, lat, dd \
                            = ch[:9]
                        meta = ch[12]
                        break
            elif (steps + 1 - last_atomic_step > spin_b
                    and min_sel and boost_remaining == 0):
                # longest candidate (full chain, then its entry-depth
                # prefixes) whose boundary keys all win: every key
                # stays at or below d0_maxpc while at the entry depth
                # and strictly deeper after a chained call, so no
                # same-depth group keyed above d0_maxpc (and none can
                # be keyed below: this group was the minimum) ever
                # merges with or preempts it mid-chain
                for ch in chl:
                    if ch[6] or steps + ch[0] > max_steps:
                        continue
                    mx = ch[9]
                    ok = True
                    for d2, p2 in groups:
                        if d2 == depth and p2 <= mx:
                            ok = False
                            break
                    if ok:
                        k, fn, rkc, tgt, fall, _bpc, has_at, lat, dd \
                            = ch[:9]
                        meta = ch[12]
                        break
        if k == 0:
            vb = vblocks[pc]
            if vb is not None:
                if not groups:
                    if steps + vb[0] <= max_steps:
                        k, fn, rkc, tgt, has_at, lat = vb[:6]
                        meta, bt = vb[6], vb[7]
                elif (not vb[4]
                        and steps + vb[0] <= max_steps
                        and steps + 1 - last_atomic_step > spin_b
                        # min-selection (not merely boost exhausted)
                        # guarantees no lower-keyed group exists to
                        # preempt us at an interior re-key
                        and min_sel and boost_remaining == 0
                        and _interior_clear(groups, depth, pc, pc + vb[0])):
                    k, fn, rkc, tgt, has_at, lat = vb[:6]
                    meta, bt = vb[6], vb[7]
        if k == 0:
            vr = vruns[pc]
            if (vr is not None
                    and steps + vr[0] <= max_steps
                    and steps + 1 - last_atomic_step > spin_b
                    and (boost_remaining == 0 or not groups)
                    and _interior_clear(groups, depth, pc, pc + vr[0])):
                k, fn, meta, bt = vr
                rkc, tgt, has_at, lat = RK_FALL, 0, False, -1
            else:
                k = 1
                fn = gh[pc]
                rkc, tgt = rekey[pc]
                has_at = is_atomic[pc]
                lat = 0

        if fall < 0:  # single-block grains: covered pcs are contiguous
            fall = pc + k

        if mt is not None and meta is not None:
            res = mt.invoke(meta, fn, bt if bnd else None, idx, R, cs,
                            sy, pcv, hv, store, salt)
        elif bt is not None and bnd:
            res = bounded_call(bt, fn, idx, R, cs, sy, pcv, hv, store,
                               salt)
        else:
            res = fn(idx, R, cs, sy, pcv, hv, store, salt)
        steps += k
        scalar += k * n
        pending += k
        if has_at:
            last_atomic_step = steps - k + lat + 1
        depth -= dd  # chained-through calls deepen the group's key

        # spin-lock escape (see MinSpPcExecutor._run_fast); for k > 1
        # grains the guards above keep the window stale (or the
        # schedule empty), so this can only fire after single steps.
        # The oldest live lane is the min over waiting groups' stamps
        # (the just-executed group's lanes are at ``steps``).
        if (boost_remaining == 0 and groups
                and steps - last_atomic_step <= spin_b):
            oldest = min(g[2] for g in groups.values())
            if steps - oldest >= spin_k:
                boost_remaining = spin_t

        if rkc == RK_FALL:
            _insert(groups, (depth, fall), idx, pending, steps, retd)
        elif rkc == RK_BRANCH:
            branches += 1
            taken, fell = res
            if not fell:
                _insert(groups, (depth, tgt), idx, pending, steps, retd)
            elif not taken:
                _insert(groups, (depth, fall), idx, pending, steps, retd)
            else:
                divergent += 1
                _insert(groups, (depth, tgt), taken, pending, steps, retd)
                _insert(groups, (depth, fall), fell, pending, steps, retd)
        elif rkc == RK_JUMP:
            _insert(groups, (depth, tgt), idx, pending, steps, retd)
        elif rkc == RK_CALL:
            _insert(groups, (depth - 1, tgt), idx, pending, steps, retd)
        elif rkc == RK_RET:
            d2 = depth + 1
            for p2, moved in res.items():
                _insert(groups, (d2, p2), moved, pending, steps, retd)
        else:  # RK_HALT: flush and leave the schedule (pcs set by fn)
            for i in idx:
                retd[i] += pending

    if truncated:
        for (d2, p2), rec2 in groups.items():
            lanes2, pending2 = rec2[0], rec2[1]
            for i in lanes2:
                pcv[i] = p2
                retd[i] += pending2

    if mt is not None:
        mt.maybe_flush()
    ls.writeback(threads)
    if san:
        _san_result(prog.name, threads, retired0, scalar)
    return LockstepResult(
        batch_size=len(threads),
        steps=steps,
        scalar_instructions=scalar,
        divergent_branches=divergent,
        branches=branches,
        retired_per_thread=[t.retired for t in threads],
        truncated=truncated,
    )


def run_ipdom(ex, threads, mem) -> LockstepResult:
    """Vectorized ``IpdomExecutor`` (sink-free fast path only); also
    serves ``PredicatedExecutor``, whose sink-free semantics are
    architecturally identical."""
    prog = ex.program
    vdec = prog.vdecoded
    gh = vdec.ghandlers
    vblocks = vdec.blocks
    vruns = vdec.runs
    vchains = vdec.chains
    rekey = vdec.rekey
    reconv_override = ex.reconv_override
    cfg = ex.cfg
    max_steps = ex.max_steps
    end = len(prog)
    san = sanitizer_enabled()
    retired0 = sum(t.retired for t in threads) if san else 0

    ls = LaneState(threads)
    if san:
        ls.san_capture(prog.name, threads)
    R = ls.regs
    cs = ls.call_stacks
    sy = ls.syscalls
    pcv = ls.pc
    hv = ls.halted
    retd = ls.retired
    store = mem._store
    salt = mem.salt
    mt = memo.table_for(vdec) if memo.memo_enabled() else None
    bnd = bounded_enabled()

    steps = 0
    scalar = 0
    branches = 0
    divergent = 0
    truncated = False
    scattered = None  # ret buckets pending at a truncation point
    # regions never re-filter per iteration (they move as one unit);
    # they only drop lanes that halted inside a descendant, detected by
    # a monotonic halt counter snapshotted per region
    halt_count = 0

    # region: [lanes, pc, reconvergence_pc, seen_halt_count]
    stack: List[list] = []
    live = ls.live_lanes()
    if live:
        if max_steps > 0:
            pcl = pcv.tolist()
            pc0 = pcl[live[0]]
            for i in live[1:]:
                if pcl[i] != pc0:
                    raise ExecutionError(
                        f"{prog.name}: IPDOM invariant broken at pc "
                        f"{pc0} vs {pcl[i]} (irreducible control "
                        f"flow?)"
                    )
            stack.append([live, pc0, end, 0])
        else:  # the reference truncates before its uniformity check
            truncated = True

    while stack:
        top = stack[-1]
        if top[3] != halt_count:
            top[0] = [i for i in top[0] if not hv[i]]
            top[3] = halt_count
        idx = top[0]
        pc = top[1]
        reconv = top[2]
        if not idx or pc == reconv:
            stack.pop()
            continue
        if steps >= max_steps:
            truncated = True
            break
        if san:
            ls.san_group(prog.name, idx, pc)
        n = len(idx)

        k = 0
        fall = bpc = -1
        meta = None
        bt = None
        chl = vchains[pc]
        if chl is not None:
            # longest candidate that neither crosses the region's
            # reconvergence pc inside any covered block nor chains
            # through a boundary equal to it (the reference pops the
            # region there)
            for ch in chl:
                if steps + ch[0] > max_steps or reconv in ch[11]:
                    continue
                ok = True
                for lo, hi in ch[10]:
                    if lo < reconv < hi:
                        ok = False
                        break
                if ok:
                    k, fn, rkc, tgt, fall, bpc = ch[:6]
                    meta = ch[12]
                    break
        if k == 0:
            vb = vblocks[pc]
            if vb is not None:
                # a block may end exactly at the reconvergence pc but
                # must never cross it mid-block (possible with
                # speculative reconv overrides; CFG reconv pcs are
                # block leaders)
                if (steps + vb[0] <= max_steps
                        and not (pc < reconv < pc + vb[0])):
                    k, fn, rkc, tgt = vb[0], vb[1], vb[2], vb[3]
                    meta, bt = vb[6], vb[7]
        if k == 0:
            vr = vruns[pc]
            if (vr is not None and steps + vr[0] <= max_steps
                    and not (pc < reconv < pc + vr[0])):
                k, fn, meta, bt = vr
                rkc, tgt = RK_FALL, 0
            else:
                k = 1
                fn = gh[pc]
                rkc, tgt = rekey[pc]

        if fall < 0:  # single-block grains: covered pcs are contiguous
            fall = pc + k
            bpc = pc + k - 1

        if mt is not None and meta is not None:
            res = mt.invoke(meta, fn, bt if bnd else None, idx, R, cs,
                            sy, pcv, hv, store, salt)
        elif bt is not None and bnd:
            res = bounded_call(bt, fn, idx, R, cs, sy, pcv, hv, store,
                               salt)
        else:
            res = fn(idx, R, cs, sy, pcv, hv, store, salt)
        steps += k
        scalar += k * n
        for i in idx:
            retd[i] += k

        if rkc == RK_FALL:
            top[1] = fall
        elif rkc == RK_BRANCH:
            branches += 1
            taken, fell = res
            if not fell:
                top[1] = tgt
            elif not taken:
                top[1] = fall
            else:
                divergent += 1
                rpc = reconv_override.get(bpc)
                if rpc is None:
                    rpc = cfg.reconvergence_pc(bpc)
                top[1] = rpc
                if tgt == fall:
                    # outcomes diverged but both sides land on the
                    # fallthrough pc: one full-width side, counted as
                    # divergent, bounded by the new reconvergence pc
                    stack.append([idx, fall, rpc, halt_count])
                elif fall < tgt:  # lower-pc side first (MinPC order)
                    stack.append([taken, tgt, rpc, halt_count])
                    stack.append([fell, fall, rpc, halt_count])
                else:
                    stack.append([fell, fall, rpc, halt_count])
                    stack.append([taken, tgt, rpc, halt_count])
        elif rkc == RK_JUMP or rkc == RK_CALL:
            top[1] = tgt
        elif rkc == RK_RET:
            buckets = res
            if len(buckets) == 1:
                for p2 in buckets:
                    top[1] = p2
            else:
                rest = [(p2, moved) for p2, moved in buckets.items()
                        if p2 != reconv]
                if len(rest) == 1:
                    # lanes returning straight to the reconvergence pc
                    # park; the rest continue as a child region (the
                    # reference's running-filter does the same split)
                    top[1] = reconv
                    stack.append([rest[0][1], rest[0][0], reconv,
                                  halt_count])
                elif steps >= max_steps:
                    # the reference truncates before its invariant
                    # check; final pcs are patched in after the sweep
                    truncated = True
                    scattered = buckets
                    break
                else:
                    raise _ret_scatter_error(prog, idx, buckets, reconv)
        else:  # RK_HALT: the whole region halted (pcs set by fn)
            halt_count += n
            top[0] = []

    if truncated and stack:
        # materialize final pcs bottom-up: ancestors hold supersets, so
        # the topmost (innermost) region wins; halted lanes keep the
        # halt pc their handler recorded
        for region in stack:
            p2 = region[1]
            for i in region[0]:
                if not hv[i]:
                    pcv[i] = p2
        if scattered is not None:
            for p2, moved in scattered.items():
                for i in moved:
                    pcv[i] = p2

    if mt is not None:
        mt.maybe_flush()
    ls.writeback(threads)
    if san:
        _san_result(prog.name, threads, retired0, scalar)
    return LockstepResult(
        batch_size=len(threads),
        steps=steps,
        scalar_instructions=scalar,
        divergent_branches=divergent,
        branches=branches,
        retired_per_thread=[t.retired for t in threads],
        truncated=truncated,
    )
