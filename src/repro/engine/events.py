"""Event-stream protocol between executors and downstream models.

Executors drive one or more *sinks*.  A sink observes every lockstep
step (one batch instruction) and is how the cache model, the memory
coalescing unit, the timing model and the traffic counters consume the
dynamic trace without the executor materializing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..isa.instructions import Instruction


class StepSink:
    """Base sink; subclasses override :meth:`on_step`.

    ``addrs`` is a sequence of ``(tid, vaddr, size)`` for memory ops
    (empty otherwise); ``outcomes`` is a sequence of ``(tid, taken)``
    for conditional branches (``None`` otherwise).
    """

    def on_step(
        self,
        pc: int,
        inst: Instruction,
        active: int,
        addrs: Sequence[Tuple[int, int, int]],
        outcomes: Optional[Sequence[Tuple[int, bool]]],
    ) -> None:
        raise NotImplementedError

    def on_done(self) -> None:
        """Called once when the batch finishes."""


class MultiSink(StepSink):
    """Fan a step stream out to several sinks.

    When exactly one live sink is supplied the fan-out layer is
    skipped entirely: ``MultiSink(s)`` *is* ``s``, so the executor hot
    loop pays one virtual call instead of two.
    """

    def __new__(cls, *sinks: StepSink):
        live = [s for s in sinks if s is not None]
        if len(live) == 1 and not isinstance(live[0], cls):
            return live[0]
        return super().__new__(cls)

    def __init__(self, *sinks: StepSink):
        self.sinks = [s for s in sinks if s is not None]

    def on_step(self, pc, inst, active, addrs, outcomes) -> None:
        for s in self.sinks:
            s.on_step(pc, inst, active, addrs, outcomes)

    def on_done(self) -> None:
        for s in self.sinks:
            s.on_done()


class InstructionMixSink(StepSink):
    """Counts batch instructions and scalar instructions per op class."""

    def __init__(self):
        self.batch_by_class: dict = {}
        self.scalar_by_class: dict = {}

    def on_step(self, pc, inst, active, addrs, outcomes) -> None:
        key = inst.cls.value
        self.batch_by_class[key] = self.batch_by_class.get(key, 0) + 1
        self.scalar_by_class[key] = self.scalar_by_class.get(key, 0) + active

    @property
    def total_scalar(self) -> int:
        return sum(self.scalar_by_class.values())

    @property
    def total_batch(self) -> int:
        return sum(self.batch_by_class.values())


@dataclass
class LockstepResult:
    """Summary of one batch execution."""

    batch_size: int
    steps: int  # batch instructions issued
    scalar_instructions: int  # sum of per-thread retired instructions
    divergent_branches: int
    branches: int
    retired_per_thread: List[int] = field(default_factory=list)
    truncated: bool = False

    @property
    def simt_efficiency(self) -> float:
        """#scalar instructions / (#batch instructions * batch size)."""
        if self.steps == 0:
            return 1.0
        return self.scalar_instructions / (self.steps * self.batch_size)
