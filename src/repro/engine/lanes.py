"""Structure-of-arrays batch state for the vectorized lockstep engine.

The per-``ThreadState`` fast path pays Python attribute/dispatch cost
once per *thread* per step.  The vectorized engine (:mod:`repro.engine.
vector`) instead keeps the whole batch as a structure of arrays - one
column per architectural register plus flat pc / halted / retired-delta
vectors - and applies each instruction across all live lanes of a group
inside one generated function (:mod:`repro.engine.vcodegen`).

Two backends sit behind the same interface:

* **numpy** (when importable): the pc / halted / retired-delta vectors
  are ``int64`` ndarrays;
* **array** (always available): the same vectors as ``array('q')``
  buffers from the stdlib ``array`` module.

Register columns are deliberately *not* numpy arrays in either backend:
the ISA's registers hold unbounded Python integers (the reference
interpreter masks only shifts and hashes, so multiply chains overflow 64
bits by design) and demoting them to ``int64`` would silently change
architectural results.  Columns are plain lists of Python ints; the
backends only differ in the bounded bookkeeping vectors.

**Bounded-int lanes** recover int64 column arithmetic where it is
provably safe: for pure-ALU grains, ``engine/vcodegen`` emits a
:class:`BoundedTape` — a straight-line int64 column program plus a
per-grain input bound ``M`` chosen by static interval analysis so that
no intermediate can leave int64 when every live-in register is within
``[-M, M]``.  :func:`bounded_call` gathers the live-in columns into
int64 vectors (mirroring the pc/halted vectors) behind a two-stage
overflow gate: values that do not even fit int64 trip the gather's
``OverflowError``, and in-range values are compared against ``±M``
directly (never ``np.abs``, which wraps at ``-2**63``).  Lanes that
trip either stage *demote* to the unbounded per-lane grain function;
pure-ALU lanes are independent, so the split is bit-identical.

Environment switches (re-read per call so tests can toggle them):

* ``REPRO_VECTOR=0`` disables the vectorized engine entirely - the
  executors fall back to the per-thread fast path, which doubles as a
  differential witness for the vector path;
* ``REPRO_VECTOR_NUMPY=0`` forces the ``array``-module backend even
  when numpy is importable (used by the bit-identity tests);
* ``REPRO_BOUNDED=0`` disables the bounded-int lanes (every grain runs
  the unbounded generated function — the bit-identity witness for the
  int64 tape path);
* ``REPRO_MEMO=0`` disables grain-trace memoization (see
  :mod:`repro.engine.memo`).
"""

from __future__ import annotations

import os
from array import array
from typing import List, Optional, Sequence

from ..isa.instructions import NUM_REGS
from ..sanitize import check


def vector_enabled() -> bool:
    """True unless ``REPRO_VECTOR=0`` (re-read per call, so tests and
    CLIs can toggle the engine without re-importing modules)."""
    return os.environ.get("REPRO_VECTOR", "1") != "0"


def bounded_enabled() -> bool:
    """True unless ``REPRO_BOUNDED=0`` (re-read per call): whether
    eligible pure-ALU grains run on int64 columns via
    :func:`bounded_call` instead of the unbounded per-lane loop."""
    return os.environ.get("REPRO_BOUNDED", "1") != "0"


#: cached numpy module, or False after a failed import ("not yet tried"
#: is None).  Monkeypatchable: tests may set this to False to simulate
#: a numpy-less interpreter without uninstalling anything.
_NUMPY = None


def _numpy():
    global _NUMPY
    if _NUMPY is None:
        try:
            import numpy
            _NUMPY = numpy
        except Exception:
            _NUMPY = False
    return _NUMPY


def backend_name() -> str:
    """``"numpy"`` or ``"array"``: which vector backend is in effect."""
    if os.environ.get("REPRO_VECTOR_NUMPY", "1") != "0" and _numpy():
        return "numpy"
    return "array"


def int_vector(values: Sequence[int]):
    """A mutable int64 vector initialized from ``values`` (backend-
    selected).  Both backends support ``v[i]``/``v[i] = x`` with plain
    Python ints, which is all the generated code uses."""
    if backend_name() == "numpy":
        np = _numpy()
        return np.array(list(values), dtype=np.int64)
    return array("q", values)


class LaneState:
    """The batch as a structure of arrays (one lane per thread).

    ``regs[r][i]`` is register ``r`` of lane ``i`` (Python ints, see
    module docstring); ``pc``/``halted``/``retired`` are backend int64
    vectors.  ``call_stacks[i]`` and ``syscalls[i]`` alias the threads'
    own list objects, so call/ret/syscall effects land in place and need
    no write-back.

    The pc vector is only guaranteed current for *halted* lanes while
    the engine runs (running lanes' pcs live in the scheduler's group
    keys); :meth:`writeback` receives the final pcs for the rest.
    """

    __slots__ = ("n", "regs", "pc", "halted", "retired",
                 "call_stacks", "syscalls", "tids")

    def __init__(self, threads: Sequence) -> None:
        self.n = len(threads)
        # transpose [thread][reg] -> [reg][lane]; zip is C-speed and the
        # columns must be fresh mutable lists
        self.regs: List[List[int]] = [list(col)
                                      for col in zip(*(t.regs for t in threads))]
        self.pc = int_vector(t.pc for t in threads)
        self.halted = int_vector(1 if t.halted else 0 for t in threads)
        # retired deltas are engine bookkeeping only (never touched by
        # generated code); a plain list avoids per-element ndarray
        # indexing cost on the frequent pending-retired flushes
        self.retired = [0] * self.n
        self.call_stacks = [t.call_stack for t in threads]
        self.syscalls = [t.syscall_trace for t in threads]
        self.tids = [t.tid for t in threads]

    def live_lanes(self) -> List[int]:
        """Lane indices of non-halted threads, in lane (== tid) order."""
        hl = self.halted.tolist()
        return [i for i in range(self.n) if not hl[i]]

    def writeback(self, threads: Sequence) -> None:
        """Scatter the arrays back into the per-thread views.

        Registers transpose back column->row; pc/halted convert to
        plain Python ``int``/``bool`` so snapshots, pickles and dict
        keys are type-identical to the scalar engines; retired holds
        *deltas* and accumulates.
        """
        # bulk-convert once: both backends' .tolist() yields plain
        # Python ints, avoiding per-element scalar boxing in the loop
        pcl = self.pc.tolist()
        hl = self.halted.tolist()
        retd = self.retired
        for i, row in enumerate(zip(*self.regs)):
            t = threads[i]
            t.regs[:] = row
            t.pc = pcl[i]
            t.halted = bool(hl[i])
            t.retired += retd[i]

    def san_capture(self, name: str, threads: Sequence) -> None:
        """Sanitizer: the SoA view must mirror the per-thread views at
        capture time, and lanes must be tid-sorted (the engine equates
        lane order with the reference engine's tid iteration order)."""
        check(len(self.regs) == NUM_REGS and self.n == len(threads),
              "%s: lane capture shape mismatch", name)
        prev = None
        for i, t in enumerate(threads):
            check(prev is None or t.tid > prev,
                  "%s: batch not tid-sorted at lane %d", name, i)
            prev = t.tid
            check(self.pc[i] == t.pc and bool(self.halted[i]) == t.halted,
                  "%s: lane %d pc/halted desynced from thread view",
                  name, i)
            check(all(self.regs[r][i] == t.regs[r]
                      for r in range(NUM_REGS)),
                  "%s: lane %d register column desynced", name, i)
            check(self.call_stacks[i] is t.call_stack
                  and self.syscalls[i] is t.syscall_trace,
                  "%s: lane %d stack/trace views not aliased", name, i)

    def san_group(self, name: str, lanes: Sequence[int], pc: int,
                  depth: Optional[int] = None) -> None:
        """Sanitizer twin of ``lockstep._san_group`` over lane indices:
        a scheduled group is non-empty, strictly lane-sorted (no dups),
        all live, and sits at the scheduled pc/depth."""
        check(len(lanes) > 0, "%s: empty lane group at pc %d", name, pc)
        prev = -1
        for i in lanes:
            check(prev < i <= self.n - 1,
                  "%s: lane group unsorted/duplicate/out-of-range lane "
                  "%d at pc %d", name, i, pc)
            prev = i
            check(not self.halted[i],
                  "%s: halted lane %d scheduled at pc %d", name, i, pc)
            if depth is not None:
                check(len(self.call_stacks[i]) == depth,
                      "%s: lane %d at depth %d scheduled under depth %d",
                      name, i, len(self.call_stacks[i]), depth)


# ----------------------------------------------------------------------
# bounded-int register lanes


class BoundedTape:
    """Straight-line int64 column program for one pure-ALU grain.

    Built by ``engine/vcodegen`` alongside the grain's generated
    function.  ``steps`` are ``(opcode, dst_reg, a, b)`` with operands
    ``("r", reg)`` or ``("i", imm)``; ``term`` is ``None``, ``("halt",
    pc)`` or ``("branch", cmp, a, b)``.  ``bound`` is the largest
    ladder value ``M`` for which the emitter's interval analysis proves
    every intermediate stays inside int64 when all live-in registers
    are within ``[-M, M]`` (``hash`` internals are exempt: their int64
    wrap is masked away exactly as in the unbounded source)."""

    __slots__ = ("in_regs", "out_regs", "bound", "steps", "term", "hot")

    def __init__(self, in_regs, out_regs, bound, steps, term, hot=True):
        self.in_regs = in_regs
        self.out_regs = out_regs
        self.bound = bound
        self.steps = steps
        self.term = term
        # hot: big-int-producing (hash) or long tapes, where the int64
        # columns beat unbounded-int python at moderate widths; cold
        # tapes only pay off at _BOUNDED_WIDE lanes
        self.hot = hot


#: below this group width the gather/scatter overhead beats the win;
#: tests pin it to 1 to force the vector path on tiny groups
_BOUNDED_MIN_LANES = 8

#: cold (short, no-hash) tapes need this many lanes to amortize the
#: gather/scatter; tests pin it to 1 alongside _BOUNDED_MIN_LANES
_BOUNDED_WIDE = 64

#: observability for tests: how often the tape path ran, how many lanes
#: the overflow gate demoted, and how often we fell back entirely
BOUNDED_STATS = {"vector": 0, "demoted": 0, "scalar": 0}


def bounded_call(bt: BoundedTape, fn, idx, R, cs, sy, pcv, hv, store,
                 salt):
    """Run one pure-ALU grain on int64 columns where every lane's
    live-in values sit inside the tape's proven bound; lanes that trip
    the overflow gate demote to the unbounded ``fn``, bit-identically
    (pure-ALU lanes are independent, so the split cannot reorder any
    architectural effect)."""
    np = _numpy()
    if (np is False
            or len(idx) < (_BOUNDED_MIN_LANES if bt.hot
                           else _BOUNDED_WIDE)
            or os.environ.get("REPRO_VECTOR_NUMPY", "1") == "0"):
        BOUNDED_STATS["scalar"] += 1
        return fn(idx, R, cs, sy, pcv, hv, store, salt)
    n = len(idx)
    bound = bt.bound
    cols = {}
    bad = None
    for r in bt.in_regs:
        col = R[r]
        try:
            a = np.fromiter((col[i] for i in idx), np.int64, n)
        except OverflowError:
            # stage 1: some lane's unbounded value does not even fit
            # int64 (fromiter rejects the whole gather) - rescan
            # per-lane to find every offender
            m = np.fromiter(
                (not (-bound <= col[i] <= bound) for i in idx),
                np.bool_, n)
            bad = m if bad is None else (bad | m)
            continue
        # stage 2: in-int64 values outside the proven bound.  Explicit
        # two-sided compare, NOT np.abs: abs(-2**63) wraps to itself.
        m = (a > bound) | (a < -bound)
        if m.any():
            bad = m if bad is None else (bad | m)
        cols[r] = a
    if bad is None:
        BOUNDED_STATS["vector"] += 1
        return _tape_exec(bt, np, cols, idx, R, pcv, hv)
    badset = set(np.flatnonzero(bad).tolist())
    ok_lanes = [i for j, i in enumerate(idx) if j not in badset]
    bad_lanes = [i for j, i in enumerate(idx) if j in badset]
    BOUNDED_STATS["demoted"] += len(bad_lanes)
    if not ok_lanes:
        BOUNDED_STATS["scalar"] += 1
        return fn(idx, R, cs, sy, pcv, hv, store, salt)
    BOUNDED_STATS["vector"] += 1
    okcols = {r: np.fromiter((R[r][i] for i in ok_lanes), np.int64,
                             len(ok_lanes))
              for r in bt.in_regs}
    res_ok = _tape_exec(bt, np, okcols, ok_lanes, R, pcv, hv)
    res_bad = fn(bad_lanes, R, cs, sy, pcv, hv, store, salt)
    term = bt.term
    if term is None or term[0] != "branch":
        return None
    # lane lists are ascending on both sides, and the executors consume
    # partitions in ascending lane order - a sorted merge is exact
    ta, fa = res_ok
    tb, fb = res_bad
    return sorted(ta + tb), sorted(fa + fb)


def _tape_exec(bt: BoundedTape, np, env, lanes, R, pcv, hv):
    """Execute a tape over pre-gathered int64 columns, scatter the
    written columns back as plain Python ints, and reproduce the
    grain's return-value shape (branch partition, or None)."""
    for opc, dst, a, b in bt.steps:
        av = env[a[1]] if a[0] == "r" else a[1]
        bv = env[b[1]] if b[0] == "r" else b[1]
        if opc == "add":
            v = av + bv
        elif opc == "sub":
            v = av - bv
        elif opc == "mul":
            v = av * bv
        elif opc == "and":
            v = av & bv
        elif opc == "or":
            v = av | bv
        elif opc == "xor":
            v = av ^ bv
        elif opc == "min":
            v = np.minimum(av, bv)
        elif opc == "max":
            v = np.maximum(av, bv)
        elif opc == "slt":
            v = (av < bv).astype(np.int64)
        elif opc == "shr":
            v = av >> (bv & 63)
        elif opc == "li":
            v = np.full(len(lanes), bv, np.int64)
        elif opc == "mov":
            v = av
        else:  # hash: int64 wrap of the products is masked away below,
            # exactly as in the unbounded generated source
            x = (av * 0x9E3779B1 + bv * 0x85EBCA77) & 0xFFFFFFFF
            v = ((x ^ (x >> 13)) * 0xC2B2AE3D) & 0x7FFFFFFF
        env[dst] = v
    for r in bt.out_regs:
        col = R[r]
        vals = env[r].tolist()
        for j, i in enumerate(lanes):
            col[i] = vals[j]
    term = bt.term
    if term is None:
        return None
    if term[0] == "halt":
        hp = term[1]
        for i in lanes:
            hv[i] = 1
            pcv[i] = hp
        return None
    _, op, a, b = term
    av = env[a[1]] if a[0] == "r" else a[1]
    bv = env[b[1]] if b[0] == "r" else b[1]
    if op == "==":
        c = av == bv
    elif op == "!=":
        c = av != bv
    elif op == "<":
        c = av < bv
    elif op == ">=":
        c = av >= bv
    elif op == "<=":
        c = av <= bv
    else:
        c = av > bv
    cl = c.tolist()
    _t: List[int] = []
    _f: List[int] = []
    for j, i in enumerate(lanes):
        (_t if cl[j] else _f).append(i)
    return _t, _f
