"""Structure-of-arrays batch state for the vectorized lockstep engine.

The per-``ThreadState`` fast path pays Python attribute/dispatch cost
once per *thread* per step.  The vectorized engine (:mod:`repro.engine.
vector`) instead keeps the whole batch as a structure of arrays - one
column per architectural register plus flat pc / halted / retired-delta
vectors - and applies each instruction across all live lanes of a group
inside one generated function (:mod:`repro.engine.vcodegen`).

Two backends sit behind the same interface:

* **numpy** (when importable): the pc / halted / retired-delta vectors
  are ``int64`` ndarrays;
* **array** (always available): the same vectors as ``array('q')``
  buffers from the stdlib ``array`` module.

Register columns are deliberately *not* numpy arrays in either backend:
the ISA's registers hold unbounded Python integers (the reference
interpreter masks only shifts and hashes, so multiply chains overflow 64
bits by design) and demoting them to ``int64`` would silently change
architectural results.  Columns are plain lists of Python ints; the
backends only differ in the bounded bookkeeping vectors.

Environment switches (re-read per call so tests can toggle them):

* ``REPRO_VECTOR=0`` disables the vectorized engine entirely - the
  executors fall back to the per-thread fast path, which doubles as a
  differential witness for the vector path;
* ``REPRO_VECTOR_NUMPY=0`` forces the ``array``-module backend even
  when numpy is importable (used by the bit-identity tests).
"""

from __future__ import annotations

import os
from array import array
from typing import List, Optional, Sequence

from ..isa.instructions import NUM_REGS
from ..sanitize import check


def vector_enabled() -> bool:
    """True unless ``REPRO_VECTOR=0`` (re-read per call, so tests and
    CLIs can toggle the engine without re-importing modules)."""
    return os.environ.get("REPRO_VECTOR", "1") != "0"


#: cached numpy module, or False after a failed import ("not yet tried"
#: is None).  Monkeypatchable: tests may set this to False to simulate
#: a numpy-less interpreter without uninstalling anything.
_NUMPY = None


def _numpy():
    global _NUMPY
    if _NUMPY is None:
        try:
            import numpy
            _NUMPY = numpy
        except Exception:
            _NUMPY = False
    return _NUMPY


def backend_name() -> str:
    """``"numpy"`` or ``"array"``: which vector backend is in effect."""
    if os.environ.get("REPRO_VECTOR_NUMPY", "1") != "0" and _numpy():
        return "numpy"
    return "array"


def int_vector(values: Sequence[int]):
    """A mutable int64 vector initialized from ``values`` (backend-
    selected).  Both backends support ``v[i]``/``v[i] = x`` with plain
    Python ints, which is all the generated code uses."""
    if backend_name() == "numpy":
        np = _numpy()
        return np.array(list(values), dtype=np.int64)
    return array("q", values)


class LaneState:
    """The batch as a structure of arrays (one lane per thread).

    ``regs[r][i]`` is register ``r`` of lane ``i`` (Python ints, see
    module docstring); ``pc``/``halted``/``retired`` are backend int64
    vectors.  ``call_stacks[i]`` and ``syscalls[i]`` alias the threads'
    own list objects, so call/ret/syscall effects land in place and need
    no write-back.

    The pc vector is only guaranteed current for *halted* lanes while
    the engine runs (running lanes' pcs live in the scheduler's group
    keys); :meth:`writeback` receives the final pcs for the rest.
    """

    __slots__ = ("n", "regs", "pc", "halted", "retired",
                 "call_stacks", "syscalls", "tids")

    def __init__(self, threads: Sequence) -> None:
        self.n = len(threads)
        # transpose [thread][reg] -> [reg][lane]; zip is C-speed and the
        # columns must be fresh mutable lists
        self.regs: List[List[int]] = [list(col)
                                      for col in zip(*(t.regs for t in threads))]
        self.pc = int_vector(t.pc for t in threads)
        self.halted = int_vector(1 if t.halted else 0 for t in threads)
        # retired deltas are engine bookkeeping only (never touched by
        # generated code); a plain list avoids per-element ndarray
        # indexing cost on the frequent pending-retired flushes
        self.retired = [0] * self.n
        self.call_stacks = [t.call_stack for t in threads]
        self.syscalls = [t.syscall_trace for t in threads]
        self.tids = [t.tid for t in threads]

    def live_lanes(self) -> List[int]:
        """Lane indices of non-halted threads, in lane (== tid) order."""
        hl = self.halted.tolist()
        return [i for i in range(self.n) if not hl[i]]

    def writeback(self, threads: Sequence) -> None:
        """Scatter the arrays back into the per-thread views.

        Registers transpose back column->row; pc/halted convert to
        plain Python ``int``/``bool`` so snapshots, pickles and dict
        keys are type-identical to the scalar engines; retired holds
        *deltas* and accumulates.
        """
        # bulk-convert once: both backends' .tolist() yields plain
        # Python ints, avoiding per-element scalar boxing in the loop
        pcl = self.pc.tolist()
        hl = self.halted.tolist()
        retd = self.retired
        for i, row in enumerate(zip(*self.regs)):
            t = threads[i]
            t.regs[:] = row
            t.pc = pcl[i]
            t.halted = bool(hl[i])
            t.retired += retd[i]

    def san_capture(self, name: str, threads: Sequence) -> None:
        """Sanitizer: the SoA view must mirror the per-thread views at
        capture time, and lanes must be tid-sorted (the engine equates
        lane order with the reference engine's tid iteration order)."""
        check(len(self.regs) == NUM_REGS and self.n == len(threads),
              "%s: lane capture shape mismatch", name)
        prev = None
        for i, t in enumerate(threads):
            check(prev is None or t.tid > prev,
                  "%s: batch not tid-sorted at lane %d", name, i)
            prev = t.tid
            check(self.pc[i] == t.pc and bool(self.halted[i]) == t.halted,
                  "%s: lane %d pc/halted desynced from thread view",
                  name, i)
            check(all(self.regs[r][i] == t.regs[r]
                      for r in range(NUM_REGS)),
                  "%s: lane %d register column desynced", name, i)
            check(self.call_stacks[i] is t.call_stack
                  and self.syscalls[i] is t.syscall_trace,
                  "%s: lane %d stack/trace views not aliased", name, i)

    def san_group(self, name: str, lanes: Sequence[int], pc: int,
                  depth: Optional[int] = None) -> None:
        """Sanitizer twin of ``lockstep._san_group`` over lane indices:
        a scheduled group is non-empty, strictly lane-sorted (no dups),
        all live, and sits at the scheduled pc/depth."""
        check(len(lanes) > 0, "%s: empty lane group at pc %d", name, pc)
        prev = -1
        for i in lanes:
            check(prev < i <= self.n - 1,
                  "%s: lane group unsorted/duplicate/out-of-range lane "
                  "%d at pc %d", name, i, pc)
            prev = i
            check(not self.halted[i],
                  "%s: halted lane %d scheduled at pc %d", name, i, pc)
            if depth is not None:
                check(len(self.call_stacks[i]) == depth,
                      "%s: lane %d at depth %d scheduled under depth %d",
                      name, i, len(self.call_stacks[i]), depth)
