"""Pre-decoded instruction handlers and superblock fusion.

The interpretation hot path used to re-discover everything about an
instruction on every dynamic step: an ``OpClass`` if-chain, ``_ALU`` /
``_COND`` dict lookups, operand-tuple indexing and immediate selection
(:func:`repro.engine.interpreter.execute`).  This module moves all of
that work to *decode time*: each :class:`~repro.isa.instructions.
Instruction` of a :class:`~repro.isa.program.Program` is compiled once
into a specialized Python function with its operands, immediate, ALU
expression and resolved branch target baked in as literals.  The
executors then dispatch through a flat per-pc handler table.

On top of the handler table, straight-line *superblocks* are fused: a
maximal run of branch-free ALU/MUL instructions inside one basic block
(found with the existing :mod:`repro.isa.cfg` analysis) becomes a single
composite function that retires the whole run for one thread without
re-entering the dispatch loop.  Fused blocks are only usable on the
sink-free fast path - they are register-only, so they produce no memory
events, no branch outcomes and no per-step records a sink could need -
and every per-event counter (``steps``, ``scalar_instructions``,
``retired``) is accounted exactly as if the run had been stepped
one instruction at a time.

The correctness contract is *bit-identical equivalence* with the
reference interpreter: for any program and any batch, the fast path must
leave registers, memory, call stacks, syscall traces and every
``LockstepResult`` counter exactly equal to
:func:`repro.engine.interpreter.execute`-based execution.  This is
enforced by ``tests/test_differential_fastpath.py`` over all 15
workloads and all execution policies.

Handler calling convention::

    handler(thread, mem) -> Optional[bool]        # True/False for branches
    trace_handler(thread, mem, addrs) -> ...      # also records (tid, addr, size)
    fused(thread)                                 # register-only superblock

``trace_handlers`` mirror the plain handlers but additionally append
``(tid, vaddr, size)`` tuples to a caller-supplied list with exactly the
semantics of :func:`repro.engine.interpreter.execute`'s ``addrs_out``
(loads/stores/atomics record their effective address, calls the pushed
return-address slot, rets the popped one).  They are what lets the
executors keep the pre-decoded fast path when a :class:`~repro.engine.
events.StepSink` is attached.

Since the vectorized structure-of-arrays engine landed
(:mod:`repro.engine.vector` / :mod:`repro.engine.vcodegen`), this
per-thread fast path is no longer the default batch execution engine:
batch executors dispatch to the vector engine unless ``REPRO_VECTOR=0``
or a sink is attached.  It remains load-bearing three ways - as the
``solo`` policy's engine, as the sink-attached engine, and as the
scalar differential witness the vector engine is required to match
bit-for-bit (``tests/test_vector_engine.py``).  The ``RK_*`` re-key
codes defined here are shared vocabulary with the vector engine's
compiled dispatch tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..isa.instructions import SP, Instruction, OpClass
from .interpreter import _MASK64, _hash_mix

#: binary ALU mnemonics that map 1:1 onto a Python infix operator
_BIN_OPS = {
    "add": "+",
    "addi": "+",
    "sub": "-",
    "and": "&",
    "andi": "&",
    "or": "|",
    "ori": "|",
    "xor": "^",
    "xori": "^",
    "mul": "*",
    "muli": "*",
}

#: branch mnemonics -> Python comparison operator
_CMP_OPS = {
    "beq": "==",
    "bne": "!=",
    "blt": "<",
    "bge": ">=",
    "ble": "<=",
    "bgt": ">",
}

#: op classes eligible for superblock fusion (register-only, no control
#: flow, no memory traffic, cannot halt and cannot change call depth)
_FUSABLE = (OpClass.ALU, OpClass.MUL)


#: rekey table codes: how a whole group moves after executing the op at
#: a pc (used by the MinSP-PC fast loop to re-key groups in O(1) instead
#: of re-bucketing thread by thread)
RK_FALL = 0    # pc+1, same depth (ALU/MUL/LOAD/STORE/ATOMIC/SYSCALL/...)
RK_JUMP = 1    # target, same depth
RK_CALL = 2    # target, depth+1
RK_HALT = 3    # group leaves the schedule
RK_BRANCH = 4  # target or pc+1 per outcome, same depth
RK_RET = 5     # per-thread return pcs, depth-1


@dataclass(frozen=True)
class DecodedProgram:
    """Flat per-pc dispatch tables produced by :func:`compile_program`.

    ``superblocks[pc]`` is ``None`` or ``(length, fused_fn)`` where
    ``fused_fn(thread)`` executes the ``length`` ALU/MUL instructions
    starting at ``pc`` for one thread (suffix entries exist for every
    interior pc of a run, so a group that enters mid-run still fuses
    the remainder).

    ``solo_blocks[pc]`` is ``None`` or ``(steps, block_fn)`` fusing an
    entire basic block - memory ops and terminator included - into one
    ``block_fn(thread, mem)`` call.  Only valid for single-thread
    execution: fusing memory ops across a *batch* would reorder the
    per-step thread interleaving the reference engine defines.

    ``rekey[pc]`` is ``(RK_* code, branch/jump/call target or 0)``.
    """

    handlers: Tuple
    trace_handlers: Tuple
    superblocks: Tuple
    solo_blocks: Tuple
    rekey: Tuple
    is_branch: Tuple[bool, ...]
    is_atomic: Tuple[bool, ...]


def _alu_expr(inst: Instruction) -> str:
    """Python expression computing the ALU result, operands inlined.

    Mirrors :func:`repro.engine.interpreter.execute` exactly:
    ``a = regs[srcs[0]]`` (0 when there are no sources) and
    ``b = regs[srcs[1]]`` (the immediate when there is no second source).
    """
    srcs = inst.srcs
    a = f"regs[{srcs[0]}]" if srcs else "0"
    b = f"regs[{srcs[1]}]" if len(srcs) > 1 else f"({inst.imm})"
    op = inst.op
    if op in _BIN_OPS:
        return f"{a} {_BIN_OPS[op]} {b}"
    if op in ("shl", "shli"):
        return f"({a} << ({b} & 63)) & {_MASK64}"
    if op in ("shr", "shri"):
        return f"{a} >> ({b} & 63)"
    if op in ("min", "max"):
        return f"{op}({a}, {b})"
    if op in ("slt", "slti"):
        return f"(1 if {a} < {b} else 0)"
    if op == "li":
        return b
    if op == "mov":
        return a
    if op == "hash":
        return f"_hash_mix({a}, {b})"
    if op == "div":
        return f"({a} // {b} if {b} else 0)"
    if op == "rem":
        return f"({a} % {b} if {b} else 0)"
    raise ValueError(f"unknown ALU/MUL mnemonic: {op!r}")


def _handler_source(pc: int, inst: Instruction, target: Optional[int],
                    trace: bool = False) -> List[str]:
    """Source lines of the specialized handler for the op at ``pc``.

    With ``trace=True`` the handler takes a third ``addrs`` argument and
    appends ``(tid, addr, size)`` tuples exactly where the reference
    :func:`repro.engine.interpreter.execute` appends to ``addrs_out``.
    """
    cls = inst.cls
    if trace:
        out = [f"def _t{pc}(t, mem, addrs):"]
    else:
        out = [f"def _h{pc}(t, mem):"]

    if cls is OpClass.ALU or cls is OpClass.MUL:
        if inst.dst:  # r0 writes are dropped (and the ALU not evaluated)
            out.append("    regs = t.regs")
            out.append(f"    regs[{inst.dst}] = {_alu_expr(inst)}")
        out += ["    t.retired += 1", "    t.pc += 1"]
        return out

    if cls is OpClass.LOAD:
        if trace:
            out += [
                "    regs = t.regs",
                f"    addr = regs[{inst.srcs[0]}] + ({inst.imm})",
                f"    addrs.append((t.tid, addr, {inst.size}))",
            ]
            if inst.dst:
                out.append(f"    regs[{inst.dst}] = mem.read(addr)")
        elif inst.dst:
            out.append("    regs = t.regs")
            out.append(
                f"    regs[{inst.dst}] = "
                f"mem.read(regs[{inst.srcs[0]}] + ({inst.imm}))"
            )
        out += ["    t.retired += 1", "    t.pc += 1"]
        return out

    if cls is OpClass.STORE:
        out.append("    regs = t.regs")
        if trace:
            out += [
                f"    addr = regs[{inst.srcs[0]}] + ({inst.imm})",
                f"    addrs.append((t.tid, addr, {inst.size}))",
                f"    mem.write(addr, regs[{inst.srcs[1]}])",
            ]
        else:
            out.append(
                f"    mem.write(regs[{inst.srcs[0]}] + ({inst.imm}), "
                f"regs[{inst.srcs[1]}])"
            )
        out += ["    t.retired += 1", "    t.pc += 1"]
        return out

    if cls is OpClass.BRANCH:
        sym = _CMP_OPS[inst.op]
        out += [
            "    t.retired += 1",
            "    regs = t.regs",
            f"    if regs[{inst.srcs[0]}] {sym} regs[{inst.srcs[1]}]:",
            f"        t.pc = {target}",
            "        return True",
            "    t.pc += 1",
            "    return False",
        ]
        return out

    if cls is OpClass.JUMP:
        out += ["    t.retired += 1", f"    t.pc = {target}"]
        return out

    if cls is OpClass.CALL:
        frame = inst.imm
        out += [
            "    t.retired += 1",
            "    regs = t.regs",
            "    ra = t.pc + 1",
            f"    t.call_stack.append((ra, {frame}))",
            f"    sp = regs[{SP}] - ({frame})",
            f"    regs[{SP}] = sp",
            "    mem.write(sp, ra)",
        ]
        if trace:  # execute() records the slot the return address hit
            out.append("    addrs.append((t.tid, sp, 8))")
        out.append(f"    t.pc = {target}")
        return out

    if cls is OpClass.RET:
        out += [
            "    t.retired += 1",
            "    ret_pc, frame = t.call_stack.pop()",
        ]
        if trace:  # pre-increment SP: where the return address sits
            out.append(f"    addrs.append((t.tid, t.regs[{SP}], 8))")
        out += [
            f"    t.regs[{SP}] += frame",
            "    t.pc = ret_pc",
        ]
        return out

    if cls is OpClass.ATOMIC:
        s0, s1 = inst.srcs[0], inst.srcs[1]
        new = f"old + regs[{s1}]" if inst.op == "amoadd" else f"regs[{s1}]"
        out += [
            "    t.retired += 1",
            "    regs = t.regs",
            f"    addr = regs[{s0}] + ({inst.imm})",
        ]
        if trace:
            out.append(f"    addrs.append((t.tid, addr, {inst.size}))")
        out += [
            "    old = mem.read(addr)",
            f"    mem.write(addr, {new})",
        ]
        if inst.dst:
            out.append(f"    regs[{inst.dst}] = old")
        out.append("    t.pc += 1")
        return out

    if cls is OpClass.SYSCALL:
        out += [
            "    t.retired += 1",
            f"    t.syscall_trace.append((t.pc, {inst.syscall.value!r}))",
            "    t.pc += 1",
        ]
        return out

    if cls is OpClass.HALT:
        out += ["    t.retired += 1", "    t.halted = True"]
        return out

    # FENCE / NOP / SIMD: retire and fall through
    out += ["    t.retired += 1", "    t.pc += 1"]
    return out


def _fused_source(entry: int, insts: List[Instruction], k: int) -> List[str]:
    """Source of the composite handler for the run starting at ``entry``."""
    body = []
    for inst in insts:
        if inst.dst:
            body.append(f"    regs[{inst.dst}] = {_alu_expr(inst)}")
    out = [f"def _f{entry}(t):"]
    if body:
        out.append("    regs = t.regs")
        out += body
    out += [f"    t.retired += {k}", f"    t.pc += {k}"]
    return out


def _inline_body(pc: int, inst: Instruction,
                 target: Optional[int]) -> List[str]:
    """Body lines (no retired/pc bookkeeping) for one instruction of a
    whole-block solo fusion.  Assumes ``regs = t.regs`` is in scope and
    that execution is single-threaded, so memory ops stay in program
    order by construction."""
    cls = inst.cls
    if cls is OpClass.ALU or cls is OpClass.MUL:
        if inst.dst:
            return [f"    regs[{inst.dst}] = {_alu_expr(inst)}"]
        return []
    if cls is OpClass.LOAD:
        if inst.dst:
            return [
                f"    regs[{inst.dst}] = "
                f"mem.read(regs[{inst.srcs[0]}] + ({inst.imm}))"
            ]
        return []
    if cls is OpClass.STORE:
        return [
            f"    mem.write(regs[{inst.srcs[0]}] + ({inst.imm}), "
            f"regs[{inst.srcs[1]}])"
        ]
    if cls is OpClass.ATOMIC:
        s0, s1 = inst.srcs[0], inst.srcs[1]
        new = f"old + regs[{s1}]" if inst.op == "amoadd" else f"regs[{s1}]"
        out = [
            f"    addr = regs[{s0}] + ({inst.imm})",
            "    old = mem.read(addr)",
            f"    mem.write(addr, {new})",
        ]
        if inst.dst:
            out.append(f"    regs[{inst.dst}] = old")
        return out
    if cls is OpClass.SYSCALL:
        # the trace records the *instruction's* pc, baked as a literal
        return [
            f"    t.syscall_trace.append(({pc}, {inst.syscall.value!r}))"
        ]
    if cls in (OpClass.FENCE, OpClass.NOP, OpClass.SIMD):
        return []
    raise ValueError(f"not inlineable mid-block: {inst.op!r}")


#: terminators that end a solo chain (a jump or fallthrough threads
#: straight into the next block instead)
_CHAIN_STOPS = (OpClass.BRANCH, OpClass.CALL, OpClass.RET, OpClass.HALT)

#: instruction budget per chained solo handler (bounds code bloat from
#: shared suffix blocks being duplicated into several chains)
_CHAIN_CAP = 96


def _solo_chain(start_block, block_at, insts,
                targets) -> Tuple[List, Optional[int]]:
    """Blocks reachable from ``start_block`` by jump/fallthrough threading.

    Returns ``(segments, cont_pc)``: the chain's basic blocks in
    execution order and, when the chain was cut short (cycle or budget)
    rather than ended by a branch/call/ret/halt terminator, the pc the
    handler must continue at.
    """
    segments = []
    seen = set()
    total = 0
    cur = start_block
    while True:
        seen.add(cur.start)
        segments.append(cur)
        total += cur.end - cur.start + 1
        last = insts[cur.end]
        if last.cls in _CHAIN_STOPS:
            return segments, None
        nxt = targets[cur.end] if last.cls is OpClass.JUMP else cur.end + 1
        if nxt in seen or nxt not in block_at or total >= _CHAIN_CAP:
            return segments, nxt
        cur = block_at[nxt]


def _chain_source(segments, cont_pc: Optional[int],
                  insts, targets) -> List[str]:
    """Source of the fused solo handler ``_b{entry}(t, mem)``.

    Executes every instruction of every segment - memory ops, syscalls
    and mid-chain jumps included (a jump's only effect is the pc, which
    threading resolves statically) - then performs the final terminator
    or parks the thread at ``cont_pc``.  Single-thread execution keeps
    all of it in program order, so state is bit-identical to stepping.
    """
    entry = segments[0].start
    k = sum(b.end - b.start + 1 for b in segments)
    final = segments[-1]
    last = insts[final.end]
    cls = last.cls
    ends_chain = cont_pc is None

    out = [f"def _b{entry}(t, mem):", "    regs = t.regs"]
    for seg in segments:
        stop = seg.end if (seg is final and ends_chain) else seg.end + 1
        for pc in range(seg.start, stop):
            if insts[pc].cls is not OpClass.JUMP:  # threaded away
                out += _inline_body(pc, insts[pc], targets[pc])
    out.append(f"    t.retired += {k}")

    if not ends_chain:
        out.append(f"    t.pc = {cont_pc}")
        return out
    target = targets[final.end]
    if cls is OpClass.BRANCH:
        sym = _CMP_OPS[last.op]
        out.append(
            f"    t.pc = {target} if regs[{last.srcs[0]}] {sym} "
            f"regs[{last.srcs[1]}] else {final.end + 1}"
        )
    elif cls is OpClass.CALL:
        out += [
            f"    t.call_stack.append(({final.end + 1}, {last.imm}))",
            f"    sp = regs[{SP}] - ({last.imm})",
            f"    regs[{SP}] = sp",
            f"    mem.write(sp, {final.end + 1})",
            f"    t.pc = {target}",
        ]
    elif cls is OpClass.RET:
        out += [
            "    ret_pc, frame = t.call_stack.pop()",
            f"    regs[{SP}] += frame",
            "    t.pc = ret_pc",
        ]
    else:  # HALT: pc stays at the halt instruction
        out += [f"    t.pc = {final.end}", "    t.halted = True"]
    return out


def _rekey_entry(inst: Instruction, target: Optional[int]) -> Tuple[int, int]:
    cls = inst.cls
    if cls is OpClass.BRANCH:
        return (RK_BRANCH, target)
    if cls is OpClass.JUMP:
        return (RK_JUMP, target)
    if cls is OpClass.CALL:
        return (RK_CALL, target)
    if cls is OpClass.RET:
        return (RK_RET, 0)
    if cls is OpClass.HALT:
        return (RK_HALT, 0)
    return (RK_FALL, 0)


def _alu_runs(program, cfg) -> List[Tuple[int, int]]:
    """Maximal straight-line ALU/MUL runs ``(first_pc, last_pc)``.

    Runs never span basic-block boundaries (computed with the existing
    :class:`repro.isa.cfg.ControlFlowGraph`), so no pc strictly inside a
    run is a branch/jump/call target: the only way to be mid-run is to
    have stepped through its prefix.
    """
    insts = program.instructions
    runs: List[Tuple[int, int]] = []
    for block in cfg.blocks:
        p = block.start
        while p <= block.end:
            if insts[p].cls in _FUSABLE:
                q = p
                while q + 1 <= block.end and insts[q + 1].cls in _FUSABLE:
                    q += 1
                if q > p:  # only runs of >= 2 are worth a composite
                    runs.append((p, q))
                p = q + 1
            else:
                p += 1
    return runs


def compile_program(program) -> DecodedProgram:
    """Compile ``program`` into flat dispatch tables (one ``exec``)."""
    from ..isa.cfg import ControlFlowGraph

    insts = program.instructions
    targets = program.targets
    n = len(insts)
    cfg = ControlFlowGraph(program)

    lines: List[str] = []
    for pc in range(n):
        lines += _handler_source(pc, insts[pc], targets[pc])
        lines += _handler_source(pc, insts[pc], targets[pc], trace=True)

    fused_meta: List[Tuple[int, int]] = []
    for first, last in _alu_runs(program, cfg):
        for p in range(first, last):  # suffix from every interior entry
            k = last - p + 1
            lines += _fused_source(p, insts[p:last + 1], k)
            fused_meta.append((p, k))

    block_at = {b.start: b for b in cfg.blocks}
    block_meta: List[Tuple[int, int]] = []
    for block in cfg.blocks:
        segments, cont_pc = _solo_chain(block, block_at, insts, targets)
        k = sum(b.end - b.start + 1 for b in segments)
        if k >= 2:  # a 1-op chain is just its handler
            lines += _chain_source(segments, cont_pc, insts, targets)
            block_meta.append((block.start, k))

    namespace = {
        "_hash_mix": _hash_mix,
        "min": min,
        "max": max,
        "__builtins__": {},
    }
    code = compile("\n".join(lines), f"<decoded:{program.name}>", "exec")
    exec(code, namespace)

    handlers = tuple(namespace[f"_h{pc}"] for pc in range(n))
    trace_handlers = tuple(namespace[f"_t{pc}"] for pc in range(n))
    superblocks: List[Optional[Tuple[int, object]]] = [None] * n
    for p, k in fused_meta:
        superblocks[p] = (k, namespace[f"_f{p}"])
    solo_blocks: List[Optional[Tuple[int, object]]] = [None] * n
    for p, k in block_meta:
        solo_blocks[p] = (k, namespace[f"_b{p}"])
    return DecodedProgram(
        handlers=handlers,
        trace_handlers=trace_handlers,
        superblocks=tuple(superblocks),
        solo_blocks=tuple(solo_blocks),
        rekey=tuple(
            _rekey_entry(insts[pc], targets[pc]) for pc in range(n)
        ),
        is_branch=tuple(i.cls is OpClass.BRANCH for i in insts),
        is_atomic=tuple(i.cls is OpClass.ATOMIC for i in insts),
    )
