"""Single-instruction semantics shared by the solo and lockstep executors."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isa.instructions import SP, Instruction, OpClass
from .memory import MemoryImage
from .thread import ThreadState

_MASK64 = (1 << 64) - 1


def _hash_mix(a: int, b: int) -> int:
    x = (a * 0x9E3779B1 + b * 0x85EBCA77) & 0xFFFF_FFFF
    x ^= x >> 13
    return (x * 0xC2B2AE3D) & 0x7FFF_FFFF


_ALU = {
    "add": lambda a, b: a + b,
    "addi": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "and": lambda a, b: a & b,
    "andi": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "ori": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "xori": lambda a, b: a ^ b,
    "shl": lambda a, b: (a << (b & 63)) & _MASK64,
    "shli": lambda a, b: (a << (b & 63)) & _MASK64,
    "shr": lambda a, b: a >> (b & 63),
    "shri": lambda a, b: a >> (b & 63),
    "min": min,
    "max": max,
    "slt": lambda a, b: 1 if a < b else 0,
    "slti": lambda a, b: 1 if a < b else 0,
    "li": lambda a, b: b,
    "mov": lambda a, b: a,
    "hash": _hash_mix,
    "mul": lambda a, b: a * b,
    "muli": lambda a, b: a * b,
    "div": lambda a, b: a // b if b else 0,
    "rem": lambda a, b: a % b if b else 0,
}

_COND = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
    "ble": lambda a, b: a <= b,
    "bgt": lambda a, b: a > b,
}


def execute(
    thread: ThreadState,
    inst: Instruction,
    target: Optional[int],
    mem: MemoryImage,
    addrs_out: Optional[List[Tuple[int, int, int]]] = None,
) -> Optional[bool]:
    """Execute ``inst`` for ``thread``, updating pc and state.

    Memory accesses are appended to ``addrs_out`` as ``(tid, addr,
    size)`` tuples.  For branches the return value is the taken/not-taken
    outcome (``None`` for everything else).
    """
    regs = thread.regs
    cls = inst.cls
    pc = thread.pc
    thread.retired += 1

    if cls is OpClass.ALU or cls is OpClass.MUL:
        srcs = inst.srcs
        a = regs[srcs[0]] if srcs else 0
        b = regs[srcs[1]] if len(srcs) > 1 else inst.imm
        if inst.dst:  # r0 writes are dropped
            regs[inst.dst] = _ALU[inst.op](a, b)
        thread.pc = pc + 1
        return None

    if cls is OpClass.LOAD:
        addr = regs[inst.srcs[0]] + inst.imm
        if addrs_out is not None:
            addrs_out.append((thread.tid, addr, inst.size))
        if inst.dst:
            regs[inst.dst] = mem.read(addr)
        thread.pc = pc + 1
        return None

    if cls is OpClass.STORE:
        addr = regs[inst.srcs[0]] + inst.imm
        if addrs_out is not None:
            addrs_out.append((thread.tid, addr, inst.size))
        mem.write(addr, regs[inst.srcs[1]])
        thread.pc = pc + 1
        return None

    if cls is OpClass.BRANCH:
        taken = _COND[inst.op](regs[inst.srcs[0]], regs[inst.srcs[1]])
        thread.pc = target if taken else pc + 1
        return taken

    if cls is OpClass.JUMP:
        thread.pc = target
        return None

    if cls is OpClass.CALL:
        thread.call_stack.append((pc + 1, inst.imm))
        regs[SP] -= inst.imm
        # push the return address (x86-style call writes the stack)
        mem.write(regs[SP], pc + 1)
        if addrs_out is not None:
            addrs_out.append((thread.tid, regs[SP], 8))
        thread.pc = target
        return None

    if cls is OpClass.RET:
        ret_pc, frame = thread.call_stack.pop()
        if addrs_out is not None:
            addrs_out.append((thread.tid, regs[SP], 8))
        regs[SP] += frame
        thread.pc = ret_pc
        return None

    if cls is OpClass.ATOMIC:
        addr = regs[inst.srcs[0]] + inst.imm
        if addrs_out is not None:
            addrs_out.append((thread.tid, addr, inst.size))
        old = mem.read(addr)
        operand = regs[inst.srcs[1]]
        if inst.op == "amoadd":
            mem.write(addr, old + operand)
        else:  # amoswap
            mem.write(addr, operand)
        if inst.dst:
            regs[inst.dst] = old
        thread.pc = pc + 1
        return None

    if cls is OpClass.SYSCALL:
        thread.syscall_trace.append((pc, inst.syscall.value))
        thread.pc = pc + 1
        return None

    if cls is OpClass.HALT:
        thread.halted = True
        return None

    # FENCE / NOP
    thread.pc = pc + 1
    return None
