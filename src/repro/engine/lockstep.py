"""Lockstep (SIMT) and solo executors.

Two reconvergence policies from the paper are implemented:

* **ipdom** — the "ideal" stack-based policy of contemporary GPUs: on a
  divergent branch the executor pushes both sides bounded by the
  branch's immediate post-dominator (computed from the CFG) and runs
  them serially until they reconverge.  Supports *speculative
  reconvergence* overrides (paper Section III-B1, used for
  HDSearch-midtier) via ``reconv_override``.

* **minsp_pc** — the stack-less heuristic the RPU hardware uses: every
  step the hardware groups threads by (call depth, pc) and selects the
  deepest call first (MinSP), breaking ties toward the lowest pc
  (MinPC).  A spin-lock escape hatch rotates selection away from a
  group that keeps re-executing atomics without global progress,
  mirroring the paper's k-cycle / b-atomics multipath rule.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.cfg import ControlFlowGraph
from ..isa.instructions import Instruction, OpClass
from ..isa.program import Program
from .events import LockstepResult, StepSink
from .interpreter import execute
from .memory import MemoryImage
from .thread import ThreadState


class ExecutionError(Exception):
    """Raised when lockstep invariants are violated or budgets exceeded."""


class SoloExecutor:
    """Runs one thread to completion (the MIMD CPU reference)."""

    def __init__(self, program: Program, sink: Optional[StepSink] = None,
                 max_steps: int = 2_000_000):
        self.program = program
        self.sink = sink
        self.max_steps = max_steps

    def run(self, thread: ThreadState, mem: MemoryImage) -> int:
        prog = self.program
        insts = prog.instructions
        targets = prog.targets
        sink = self.sink
        steps = 0
        addrs: List[Tuple[int, int, int]] = []
        while not thread.halted:
            if steps >= self.max_steps:
                raise ExecutionError(
                    f"{prog.name}: thread {thread.tid} exceeded "
                    f"{self.max_steps} steps"
                )
            pc = thread.pc
            inst = insts[pc]
            del addrs[:]
            taken = execute(thread, inst, targets[pc], mem, addrs)
            if sink is not None:
                outcomes = ((thread.tid, taken),) if taken is not None else None
                sink.on_step(pc, inst, 1, addrs, outcomes)
            steps += 1
        if sink is not None:
            sink.on_done()
        return steps


class _BaseLockstep:
    def __init__(self, program: Program, sink: Optional[StepSink] = None,
                 max_steps: int = 4_000_000):
        self.program = program
        self.sink = sink
        self.max_steps = max_steps

    def _emit(self, pc: int, inst: Instruction, group: Sequence[ThreadState],
              mem: MemoryImage) -> Tuple[int, bool]:
        """Execute ``inst`` for every thread in ``group``; returns
        (#active, diverged?) for branch bookkeeping."""
        target = self.program.targets[pc]
        addrs: List[Tuple[int, int, int]] = []
        outcomes: Optional[List[Tuple[int, bool]]] = None
        if inst.cls is OpClass.BRANCH:
            outcomes = []
            for t in group:
                taken = execute(t, inst, target, mem, addrs)
                outcomes.append((t.tid, taken))
        else:
            for t in group:
                execute(t, inst, target, mem, addrs)
        if self.sink is not None:
            self.sink.on_step(pc, inst, len(group), addrs, outcomes)
        diverged = False
        if outcomes is not None:
            first = outcomes[0][1]
            diverged = any(o[1] != first for o in outcomes)
        return len(group), diverged


class IpdomExecutor(_BaseLockstep):
    """Stack-based reconvergence at immediate post-dominators."""

    def __init__(self, program: Program, cfg: Optional[ControlFlowGraph] = None,
                 sink: Optional[StepSink] = None, max_steps: int = 4_000_000,
                 reconv_override: Optional[Dict[int, int]] = None):
        super().__init__(program, sink, max_steps)
        self.cfg = cfg if cfg is not None else ControlFlowGraph(program)
        self.reconv_override = reconv_override or {}

    def run(self, threads: Sequence[ThreadState], mem: MemoryImage) -> LockstepResult:
        prog = self.program
        insts = prog.instructions
        end = len(prog)
        # stack entries: (threads_in_region, reconvergence_pc)
        stack: List[Tuple[List[ThreadState], int]] = [(list(threads), end)]
        steps = 0
        scalar = 0
        branches = 0
        divergent = 0
        truncated = False

        while stack:
            region, reconv = stack[-1]
            running = [t for t in region if not t.halted and t.pc != reconv]
            if not running:
                stack.pop()
                continue
            if steps >= self.max_steps:
                truncated = True
                break
            pc = running[0].pc
            group = running
            for t in group[1:]:
                if t.pc != pc:
                    raise ExecutionError(
                        f"{prog.name}: IPDOM invariant broken at pc {pc} "
                        f"vs {t.pc} (irreducible control flow?)"
                    )
            inst = insts[pc]
            active, diverged = self._emit(pc, inst, group, mem)
            steps += 1
            scalar += active
            if inst.cls is OpClass.BRANCH:
                branches += 1
                if diverged:
                    divergent += 1
                    rpc = self.reconv_override.get(pc)
                    if rpc is None:
                        rpc = self.cfg.reconvergence_pc(pc)
                    taken_pc = prog.target_of(pc)
                    taken = [t for t in group if t.pc == taken_pc]
                    not_taken = [t for t in group if t.pc != taken_pc]
                    # execute the lower-pc side first (MinPC-style order)
                    first, second = (taken, not_taken)
                    if not_taken and taken and not_taken[0].pc < taken_pc:
                        first, second = not_taken, taken
                    stack.append((second, rpc))
                    stack.append((first, rpc))

        if self.sink is not None:
            self.sink.on_done()
        return LockstepResult(
            batch_size=len(threads),
            steps=steps,
            scalar_instructions=scalar,
            divergent_branches=divergent,
            branches=branches,
            retired_per_thread=[t.retired for t in threads],
            truncated=truncated,
        )


class MinSpPcExecutor(_BaseLockstep):
    """Stack-less MinSP-PC heuristic with a spin-lock escape hatch.

    If some thread has made no progress for ``spin_k`` steps while an
    atomic was decoded within the last ``spin_b`` steps (the signature
    of other threads spinning on a lock), the scheduler temporarily
    prioritizes the longest-waiting group for ``spin_t`` steps (paper
    Section III-A, SIMT-induced deadlock avoidance).
    """

    def __init__(self, program: Program, sink: Optional[StepSink] = None,
                 max_steps: int = 4_000_000, spin_k: int = 256,
                 spin_b: int = 4, spin_t: int = 32):
        super().__init__(program, sink, max_steps)
        self.spin_k = spin_k
        self.spin_b = spin_b
        self.spin_t = spin_t

    def run(self, threads: Sequence[ThreadState], mem: MemoryImage) -> LockstepResult:
        prog = self.program
        insts = prog.instructions
        steps = 0
        scalar = 0
        branches = 0
        divergent = 0
        truncated = False

        last_atomic_step = -(10**9)
        boost_remaining = 0
        last_executed: Dict[int, int] = {t.tid: 0 for t in threads}

        while True:
            groups: Dict[Tuple[int, int], List[ThreadState]] = {}
            for t in threads:
                if not t.halted:
                    groups.setdefault((-t.depth, t.pc), []).append(t)
            if not groups:
                break
            if steps >= self.max_steps:
                truncated = True
                break

            if boost_remaining > 0 and len(groups) > 1:
                boost_remaining -= 1
                key = min(
                    groups,
                    key=lambda k: min(last_executed[t.tid] for t in groups[k]),
                )
            else:
                key = min(groups)  # deepest call, then lowest pc

            group = groups[key]
            pc = group[0].pc
            inst = insts[pc]
            active, diverged = self._emit(pc, inst, group, mem)
            steps += 1
            scalar += active
            for t in group:
                last_executed[t.tid] = steps
            if inst.cls is OpClass.BRANCH:
                branches += 1
                if diverged:
                    divergent += 1

            # Spin-lock escape: if some thread has not made progress for
            # spin_k steps while atomics keep being decoded (somebody is
            # spinning on a lock), temporarily prioritize the waiter.
            if inst.cls is OpClass.ATOMIC:
                last_atomic_step = steps
            if boost_remaining == 0 and len(groups) > 1:
                oldest = min(
                    last_executed[t.tid] for t in threads if not t.halted
                )
                if (
                    steps - oldest >= self.spin_k
                    and steps - last_atomic_step <= self.spin_b
                ):
                    boost_remaining = self.spin_t

        if self.sink is not None:
            self.sink.on_done()
        return LockstepResult(
            batch_size=len(threads),
            steps=steps,
            scalar_instructions=scalar,
            divergent_branches=divergent,
            branches=branches,
            retired_per_thread=[t.retired for t in threads],
            truncated=truncated,
        )


class PredicatedExecutor(IpdomExecutor):
    """SPMD-on-SIMD (ISPC-style) execution model (paper Section VI-A).

    Control flow is handled by *predication*: the vector unit issues
    every instruction with all lanes occupied and masks off inactive
    ones, so (a) a step consumes full-batch issue/energy regardless of
    the active mask, and (b) conditional branches become predicate
    computations that never consult the branch predictor.  The
    architectural semantics are identical to IPDOM reconvergence; only
    the event stream the timing/energy models see differs.

    Instructions without a vector equivalent (atomics, system calls,
    call/ret bookkeeping, integer division - the paper counts only 27%
    of scalar x86 ops as vectorizable) are *emulated*: serialized per
    lane with unpack/repack overhead, modelled by inflating their issue
    occupancy by ``emulation_factor``.
    """

    EMULATED_CLASSES = frozenset(
        {OpClass.ATOMIC, OpClass.SYSCALL, OpClass.CALL, OpClass.RET}
    )
    EMULATED_OPS = frozenset({"div", "rem"})

    def __init__(self, *args, emulation_factor: int = 4, **kwargs):
        super().__init__(*args, **kwargs)
        self.emulation_factor = emulation_factor

    def run(self, threads, mem):
        self._full = len(threads)
        return super().run(threads, mem)

    def _emit(self, pc, inst, group, mem):
        target = self.program.targets[pc]
        addrs = []
        diverged = False
        if inst.cls is OpClass.BRANCH:
            outs = [execute(t, inst, target, mem, addrs) for t in group]
            first = outs[0]
            diverged = any(o != first for o in outs)
        else:
            for t in group:
                execute(t, inst, target, mem, addrs)
        if self.sink is not None:
            width = self._full
            if (inst.cls in self.EMULATED_CLASSES
                    or inst.op in self.EMULATED_OPS):
                width *= self.emulation_factor
            # full-width issue, no branch outcomes (predication)
            self.sink.on_step(pc, inst, width, addrs, None)
        return len(group), diverged


def make_executor(program: Program, policy: str = "minsp_pc",
                  sink: Optional[StepSink] = None, **kwargs):
    """Factory over the two reconvergence policies (and ``solo``)."""
    if policy == "ipdom":
        return IpdomExecutor(program, sink=sink, **kwargs)
    if policy == "minsp_pc":
        return MinSpPcExecutor(program, sink=sink, **kwargs)
    if policy == "predicated":
        return PredicatedExecutor(program, sink=sink, **kwargs)
    if policy == "solo":
        return SoloExecutor(program, sink=sink, **kwargs)
    raise ValueError(f"unknown policy {policy!r}")
