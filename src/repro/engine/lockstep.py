"""Lockstep (SIMT) and solo executors.

Two reconvergence policies from the paper are implemented:

* **ipdom** — the "ideal" stack-based policy of contemporary GPUs: on a
  divergent branch the executor pushes both sides bounded by the
  branch's immediate post-dominator (computed from the CFG) and runs
  them serially until they reconverge.  Supports *speculative
  reconvergence* overrides (paper Section III-B1, used for
  HDSearch-midtier) via ``reconv_override``.

* **minsp_pc** — the stack-less heuristic the RPU hardware uses: every
  step the hardware groups threads by (call depth, pc) and selects the
  deepest call first (MinSP), breaking ties toward the lowest pc
  (MinPC).  A spin-lock escape hatch rotates selection away from a
  group that keeps re-executing atomics without global progress,
  mirroring the paper's k-cycle / b-atomics multipath rule.

Every executor has two execution engines:

* the **reference engine** — the original, obviously-correct loops
  built on :func:`repro.engine.interpreter.execute`.  Used when
  ``fastpath=False`` is requested; it is the oracle the fast paths are
  differentially tested against.

* the **fast-path engine** — pre-decoded handler dispatch plus
  superblock fusion (:mod:`repro.engine.decode`).  When a sink is
  attached the executors switch to the pre-decoded *tracing* handlers,
  which record ``(tid, addr, size)`` tuples inline, so per-step events
  are produced without falling back to slow dispatch.  Both variants
  are required to leave architectural state, every
  :class:`LockstepResult` counter *and* the emitted event stream
  bit-identical to the reference engine;
  ``tests/test_differential_fastpath.py`` and the fuzz oracle enforce
  this over all 15 workloads and all policies, sink present or not.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.cfg import ControlFlowGraph
from ..isa.instructions import Instruction, OpClass
from ..isa.program import Program
from ..sanitize import check, sanitizer_enabled
from .decode import RK_BRANCH, RK_CALL, RK_FALL, RK_JUMP, RK_RET
from .events import LockstepResult, StepSink
from .interpreter import execute
from .lanes import vector_enabled
from .memory import MemoryImage
from .thread import ThreadState


class ExecutionError(Exception):
    """Raised when lockstep invariants are violated or budgets exceeded."""


#: lazily-imported repro.engine.vector module.  The vector module
#: imports this one at load time (for ExecutionError/_san_result), so
#: the import must be deferred past this module's own initialization.
_VECTOR = None


def _vector():
    global _VECTOR
    if _VECTOR is None:
        from . import vector as _VECTOR_MOD
        _VECTOR = _VECTOR_MOD
    return _VECTOR


def _san_group(name: str, group: Sequence[ThreadState], alive: set,
               pc: int, depth: Optional[int] = None) -> None:
    """Sanitizer: an executed group is an active mask over the batch.

    It must be non-empty, duplicate-free, a subset of the batch's alive
    (non-halted) threads, tid-sorted (execution order contract) and
    every member must sit at the scheduled pc (and call depth, for the
    MinSP-PC keyed schedule).
    """
    check(len(group) > 0, "%s: empty group scheduled at pc %d", name, pc)
    prev_tid = -1
    for t in group:
        check(t.tid in alive,
              "%s: unknown thread %d in group at pc %d", name, t.tid, pc)
        check(t.tid > prev_tid,
              "%s: group not tid-sorted/duplicate tid %d at pc %d",
              name, t.tid, pc)
        prev_tid = t.tid
        check(not t.halted,
              "%s: halted thread %d scheduled at pc %d", name, t.tid, pc)
        check(t.pc == pc,
              "%s: thread %d at pc %d scheduled under pc %d",
              name, t.tid, t.pc, pc)
        if depth is not None:
            check(len(t.call_stack) == depth,
                  "%s: thread %d at depth %d scheduled under depth %d",
                  name, t.tid, len(t.call_stack), depth)


def _san_result(name: str, threads: Sequence[ThreadState], retired0: int,
                scalar: int) -> None:
    """Sanitizer: the scalar-instruction counter must equal the sum of
    per-thread retire deltas (no instruction is counted twice or lost)."""
    delta = sum(t.retired for t in threads) - retired0
    check(delta == scalar,
          "%s: scalar_instructions=%d but threads retired %d",
          name, scalar, delta)


def _tid_key(t: ThreadState) -> int:
    return t.tid


def _regroup_insert(groups: Dict, key, moved: List[ThreadState]) -> None:
    """Insert ``moved`` (tid-sorted) into ``groups[key]``, keeping the
    group list tid-sorted so execution order matches the reference
    engine (which rebuilds groups by iterating threads in tid order)."""
    cur = groups.get(key)
    if cur is None:
        groups[key] = moved
    else:
        cur.extend(moved)
        cur.sort(key=_tid_key)


class SoloExecutor:
    """Runs one thread to completion (the MIMD CPU reference)."""

    def __init__(self, program: Program, sink: Optional[StepSink] = None,
                 max_steps: int = 2_000_000, fastpath: bool = True):
        self.program = program
        self.sink = sink
        self.max_steps = max_steps
        self.fastpath = fastpath
        # run() is called once per thread (not per batch like the
        # lockstep executors), so the env lookup is captured here
        self._san = sanitizer_enabled()

    def run(self, thread: ThreadState, mem: MemoryImage) -> int:
        san = self._san
        retired0 = thread.retired if san else 0
        if not self.fastpath:
            steps = self._run_reference(thread, mem)
        elif self.sink is None:
            steps = self._run_fast(thread, mem)
        else:
            steps = self._run_fast_sink(thread, mem)
        if san:
            _san_result(self.program.name, (thread,), retired0, steps)
        return steps

    def _run_fast(self, thread: ThreadState, mem: MemoryImage) -> int:
        prog = self.program
        decoded = prog.decoded
        handlers = decoded.handlers
        blocks = decoded.solo_blocks
        max_steps = self.max_steps
        steps = 0
        # single-thread execution keeps memory ops in program order no
        # matter how they are batched, so whole basic blocks (terminator
        # included) collapse into one call each
        while not thread.halted:
            b = blocks[thread.pc]
            if b is not None and steps + b[0] <= max_steps:
                b[1](thread, mem)
                steps += b[0]
                continue
            if steps >= max_steps:
                raise ExecutionError(
                    f"{prog.name}: thread {thread.tid} exceeded "
                    f"{max_steps} steps"
                )
            handlers[thread.pc](thread, mem)
            steps += 1
        return steps

    def _run_fast_sink(self, thread: ThreadState, mem: MemoryImage) -> int:
        """Pre-decoded dispatch with per-step event emission.

        Uses the tracing handler table for address recording and the
        register-only superblocks (which produce one empty-addrs event
        per fused pc).  Whole-block solo fusion is not usable here: it
        collapses memory ops whose per-step events a sink must see.
        The ``addrs`` list is reused across steps - sinks must copy it
        (``ListSink`` already tuples it) before returning.
        """
        prog = self.program
        decoded = prog.decoded
        trace_handlers = decoded.trace_handlers
        fused = decoded.superblocks
        insts = prog.instructions
        sink = self.sink
        on_step = sink.on_step
        tid = thread.tid
        max_steps = self.max_steps
        steps = 0
        addrs: List[Tuple[int, int, int]] = []
        while not thread.halted:
            pc = thread.pc
            f = fused[pc]
            if f is not None and steps + f[0] <= max_steps:
                k = f[0]
                f[1](thread)
                del addrs[:]
                for p in range(pc, pc + k):
                    on_step(p, insts[p], 1, addrs, None)
                steps += k
                continue
            if steps >= max_steps:
                raise ExecutionError(
                    f"{prog.name}: thread {thread.tid} exceeded "
                    f"{max_steps} steps"
                )
            del addrs[:]
            taken = trace_handlers[pc](thread, mem, addrs)
            if taken is None:
                on_step(pc, insts[pc], 1, addrs, None)
            else:
                on_step(pc, insts[pc], 1, addrs, ((tid, taken),))
            steps += 1
        sink.on_done()
        return steps

    def _run_reference(self, thread: ThreadState, mem: MemoryImage) -> int:
        prog = self.program
        insts = prog.instructions
        targets = prog.targets
        sink = self.sink
        max_steps = self.max_steps
        steps = 0
        addrs: List[Tuple[int, int, int]] = []
        while not thread.halted:
            if steps >= max_steps:
                raise ExecutionError(
                    f"{prog.name}: thread {thread.tid} exceeded "
                    f"{max_steps} steps"
                )
            pc = thread.pc
            inst = insts[pc]
            addrs.clear()
            taken = execute(thread, inst, targets[pc], mem, addrs)
            if sink is not None:
                outcomes = ((thread.tid, taken),) if taken is not None else None
                sink.on_step(pc, inst, 1, addrs, outcomes)
            steps += 1
        if sink is not None:
            sink.on_done()
        return steps


class _BaseLockstep:
    def __init__(self, program: Program, sink: Optional[StepSink] = None,
                 max_steps: int = 4_000_000, fastpath: bool = True):
        self.program = program
        self.sink = sink
        self.max_steps = max_steps
        self.fastpath = fastpath

    def _emit(self, pc: int, inst: Instruction, group: Sequence[ThreadState],
              mem: MemoryImage) -> Tuple[int, bool]:
        """Execute ``inst`` for every thread in ``group``; returns
        (#active, diverged?) for branch bookkeeping."""
        target = self.program.targets[pc]
        sink = self.sink
        if sink is None:
            # no-sink fast path: no address list, no outcome tuples
            if inst.cls is OpClass.BRANCH:
                outs = [execute(t, inst, target, mem, None) for t in group]
                first = outs[0]
                return len(group), any(o != first for o in outs)
            for t in group:
                execute(t, inst, target, mem, None)
            return len(group), False
        addrs: List[Tuple[int, int, int]] = []
        outcomes: Optional[List[Tuple[int, bool]]] = None
        if inst.cls is OpClass.BRANCH:
            outcomes = []
            for t in group:
                taken = execute(t, inst, target, mem, addrs)
                outcomes.append((t.tid, taken))
        else:
            for t in group:
                execute(t, inst, target, mem, addrs)
        sink.on_step(pc, inst, len(group), addrs, outcomes)
        diverged = False
        if outcomes is not None:
            first = outcomes[0][1]
            diverged = any(o[1] != first for o in outcomes)
        return len(group), diverged


class IpdomExecutor(_BaseLockstep):
    """Stack-based reconvergence at immediate post-dominators."""

    def __init__(self, program: Program, cfg: Optional[ControlFlowGraph] = None,
                 sink: Optional[StepSink] = None, max_steps: int = 4_000_000,
                 reconv_override: Optional[Dict[int, int]] = None,
                 fastpath: bool = True):
        super().__init__(program, sink, max_steps, fastpath)
        self.cfg = cfg if cfg is not None else ControlFlowGraph(program)
        self.reconv_override = reconv_override or {}

    def run(self, threads: Sequence[ThreadState], mem: MemoryImage) -> LockstepResult:
        if not self.fastpath:
            return self._run_reference(threads, mem)
        if self.sink is None:
            if vector_enabled():
                return _vector().run_ipdom(self, threads, mem)
            return self._run_fast(threads, mem)
        return self._run_fast_sink(threads, mem)

    def _sink_widths(self, n_threads: int) -> Optional[List[int]]:
        """Per-pc event ``active`` width override, or ``None`` to report
        the true group size (:class:`PredicatedExecutor` overrides)."""
        return None

    def _run_fast(self, threads: Sequence[ThreadState],
                  mem: MemoryImage) -> LockstepResult:
        prog = self.program
        decoded = prog.decoded
        handlers = decoded.handlers
        fused = decoded.superblocks
        is_branch = decoded.is_branch
        reconv_override = self.reconv_override
        cfg = self.cfg
        max_steps = self.max_steps
        end = len(prog)
        san = sanitizer_enabled()
        alive = {t.tid for t in threads} if san else None
        retired0 = sum(t.retired for t in threads) if san else 0
        # stack entries: (threads_in_region, reconvergence_pc)
        stack: List[Tuple[List[ThreadState], int]] = [(list(threads), end)]
        steps = 0
        scalar = 0
        branches = 0
        divergent = 0
        truncated = False

        while stack:
            region, reconv = stack[-1]
            running = [t for t in region if not t.halted and t.pc != reconv]
            if not running:
                stack.pop()
                continue
            if steps >= max_steps:
                truncated = True
                break
            pc = running[0].pc
            for t in running:
                if t.pc != pc:
                    raise ExecutionError(
                        f"{prog.name}: IPDOM invariant broken at pc {pc} "
                        f"vs {t.pc} (irreducible control flow?)"
                    )
            if san:
                _san_group(prog.name, running, alive, pc)
            f = fused[pc]
            if f is not None:
                k = f[0]
                # a fused run may end exactly at the reconvergence pc
                # (the re-filter above catches the threads there) but
                # must never cross it mid-run (possible only with
                # speculative reconv overrides; CFG reconv pcs are
                # block leaders, which no run interior contains)
                if steps + k <= max_steps and not (pc < reconv < pc + k):
                    fn = f[1]
                    for t in running:
                        fn(t)
                    steps += k
                    scalar += k * len(running)
                    continue
            h = handlers[pc]
            n = len(running)
            if is_branch[pc]:
                outs = [h(t, mem) for t in running]
                steps += 1
                scalar += n
                branches += 1
                first = outs[0]
                diverged = False
                for o in outs:
                    if o != first:
                        diverged = True
                        break
                if diverged:
                    divergent += 1
                    rpc = reconv_override.get(pc)
                    if rpc is None:
                        rpc = cfg.reconvergence_pc(pc)
                    taken_pc = prog.target_of(pc)
                    taken = [t for t in running if t.pc == taken_pc]
                    not_taken = [t for t in running if t.pc != taken_pc]
                    # execute the lower-pc side first (MinPC-style order)
                    first_side, second = (taken, not_taken)
                    if not_taken and taken and not_taken[0].pc < taken_pc:
                        first_side, second = not_taken, taken
                    stack.append((second, rpc))
                    stack.append((first_side, rpc))
            else:
                for t in running:
                    h(t, mem)
                steps += 1
                scalar += n

        if san:
            _san_result(prog.name, threads, retired0, scalar)
        return LockstepResult(
            batch_size=len(threads),
            steps=steps,
            scalar_instructions=scalar,
            divergent_branches=divergent,
            branches=branches,
            retired_per_thread=[t.retired for t in threads],
            truncated=truncated,
        )

    def _run_fast_sink(self, threads: Sequence[ThreadState],
                       mem: MemoryImage) -> LockstepResult:
        """`_run_fast` with per-step event emission via the tracing
        handler table.  Must produce the exact event stream of
        `_run_reference` (group order gives address order; superblocks
        expand to one empty-addrs event per fused pc).  The ``addrs``
        list is reused across steps - sinks must copy what they keep.
        """
        prog = self.program
        decoded = prog.decoded
        trace_handlers = decoded.trace_handlers
        fused = decoded.superblocks
        is_branch = decoded.is_branch
        insts = prog.instructions
        reconv_override = self.reconv_override
        cfg = self.cfg
        max_steps = self.max_steps
        end = len(prog)
        sink = self.sink
        on_step = sink.on_step
        widths = self._sink_widths(len(threads))
        san = sanitizer_enabled()
        alive = {t.tid for t in threads} if san else None
        retired0 = sum(t.retired for t in threads) if san else 0
        stack: List[Tuple[List[ThreadState], int]] = [(list(threads), end)]
        steps = 0
        scalar = 0
        branches = 0
        divergent = 0
        truncated = False
        addrs: List[Tuple[int, int, int]] = []

        while stack:
            region, reconv = stack[-1]
            running = [t for t in region if not t.halted and t.pc != reconv]
            if not running:
                stack.pop()
                continue
            if steps >= max_steps:
                truncated = True
                break
            pc = running[0].pc
            for t in running:
                if t.pc != pc:
                    raise ExecutionError(
                        f"{prog.name}: IPDOM invariant broken at pc {pc} "
                        f"vs {t.pc} (irreducible control flow?)"
                    )
            if san:
                _san_group(prog.name, running, alive, pc)
            n = len(running)
            f = fused[pc]
            if f is not None:
                k = f[0]
                if steps + k <= max_steps and not (pc < reconv < pc + k):
                    fn = f[1]
                    for t in running:
                        fn(t)
                    del addrs[:]
                    if widths is None:
                        for p in range(pc, pc + k):
                            on_step(p, insts[p], n, addrs, None)
                    else:
                        for p in range(pc, pc + k):
                            on_step(p, insts[p], widths[p], addrs, None)
                    steps += k
                    scalar += k * n
                    continue
            h = trace_handlers[pc]
            del addrs[:]
            if is_branch[pc]:
                outs = [h(t, mem, addrs) for t in running]
                if widths is None:
                    outcomes = [
                        (t.tid, o) for t, o in zip(running, outs)
                    ]
                    on_step(pc, insts[pc], n, addrs, outcomes)
                else:  # predication: full-width issue, no outcomes
                    on_step(pc, insts[pc], widths[pc], addrs, None)
                steps += 1
                scalar += n
                branches += 1
                first = outs[0]
                diverged = False
                for o in outs:
                    if o != first:
                        diverged = True
                        break
                if diverged:
                    divergent += 1
                    rpc = reconv_override.get(pc)
                    if rpc is None:
                        rpc = cfg.reconvergence_pc(pc)
                    taken_pc = prog.target_of(pc)
                    taken = [t for t in running if t.pc == taken_pc]
                    not_taken = [t for t in running if t.pc != taken_pc]
                    # execute the lower-pc side first (MinPC-style order)
                    first_side, second = (taken, not_taken)
                    if not_taken and taken and not_taken[0].pc < taken_pc:
                        first_side, second = not_taken, taken
                    stack.append((second, rpc))
                    stack.append((first_side, rpc))
            else:
                for t in running:
                    h(t, mem, addrs)
                on_step(pc, insts[pc],
                        n if widths is None else widths[pc], addrs, None)
                steps += 1
                scalar += n

        if san:
            _san_result(prog.name, threads, retired0, scalar)
        sink.on_done()
        return LockstepResult(
            batch_size=len(threads),
            steps=steps,
            scalar_instructions=scalar,
            divergent_branches=divergent,
            branches=branches,
            retired_per_thread=[t.retired for t in threads],
            truncated=truncated,
        )

    def _run_reference(self, threads: Sequence[ThreadState],
                       mem: MemoryImage) -> LockstepResult:
        prog = self.program
        insts = prog.instructions
        end = len(prog)
        max_steps = self.max_steps
        san = sanitizer_enabled()
        alive = {t.tid for t in threads} if san else None
        retired0 = sum(t.retired for t in threads) if san else 0
        # stack entries: (threads_in_region, reconvergence_pc)
        stack: List[Tuple[List[ThreadState], int]] = [(list(threads), end)]
        steps = 0
        scalar = 0
        branches = 0
        divergent = 0
        truncated = False

        while stack:
            region, reconv = stack[-1]
            running = [t for t in region if not t.halted and t.pc != reconv]
            if not running:
                stack.pop()
                continue
            if steps >= max_steps:
                truncated = True
                break
            pc = running[0].pc
            group = running
            for t in group[1:]:
                if t.pc != pc:
                    raise ExecutionError(
                        f"{prog.name}: IPDOM invariant broken at pc {pc} "
                        f"vs {t.pc} (irreducible control flow?)"
                    )
            if san:
                _san_group(prog.name, group, alive, pc)
            inst = insts[pc]
            active, diverged = self._emit(pc, inst, group, mem)
            steps += 1
            scalar += active
            if inst.cls is OpClass.BRANCH:
                branches += 1
                if diverged:
                    divergent += 1
                    rpc = self.reconv_override.get(pc)
                    if rpc is None:
                        rpc = self.cfg.reconvergence_pc(pc)
                    taken_pc = prog.target_of(pc)
                    taken = [t for t in group if t.pc == taken_pc]
                    not_taken = [t for t in group if t.pc != taken_pc]
                    # execute the lower-pc side first (MinPC-style order)
                    first, second = (taken, not_taken)
                    if not_taken and taken and not_taken[0].pc < taken_pc:
                        first, second = not_taken, taken
                    stack.append((second, rpc))
                    stack.append((first, rpc))

        if san:
            _san_result(prog.name, threads, retired0, scalar)
        if self.sink is not None:
            self.sink.on_done()
        return LockstepResult(
            batch_size=len(threads),
            steps=steps,
            scalar_instructions=scalar,
            divergent_branches=divergent,
            branches=branches,
            retired_per_thread=[t.retired for t in threads],
            truncated=truncated,
        )


class MinSpPcExecutor(_BaseLockstep):
    """Stack-less MinSP-PC heuristic with a spin-lock escape hatch.

    If some thread has made no progress for ``spin_k`` steps while an
    atomic was decoded within the last ``spin_b`` steps (the signature
    of other threads spinning on a lock), the scheduler temporarily
    prioritizes the longest-waiting group for ``spin_t`` steps (paper
    Section III-A, SIMT-induced deadlock avoidance).
    """

    def __init__(self, program: Program, sink: Optional[StepSink] = None,
                 max_steps: int = 4_000_000, spin_k: int = 256,
                 spin_b: int = 4, spin_t: int = 32, fastpath: bool = True):
        super().__init__(program, sink, max_steps, fastpath)
        self.spin_k = spin_k
        self.spin_b = spin_b
        self.spin_t = spin_t

    def run(self, threads: Sequence[ThreadState], mem: MemoryImage) -> LockstepResult:
        if not self.fastpath:
            return self._run_reference(threads, mem)
        if self.sink is None:
            if vector_enabled():
                return _vector().run_minsp(self, threads, mem)
            return self._run_fast(threads, mem)
        return self._run_fast_sink(threads, mem)

    def _run_fast(self, threads: Sequence[ThreadState],
                  mem: MemoryImage) -> LockstepResult:
        """Incremental-grouping fast loop.

        The reference engine rebuilds the (depth, pc) group map from
        scratch every step (O(batch) per issued instruction); here only
        the threads of the executed group are re-keyed.  Group lists are
        kept tid-sorted so per-step execution order - and therefore
        every racy memory interleaving - matches the reference engine
        exactly.
        """
        prog = self.program
        decoded = prog.decoded
        handlers = decoded.handlers
        fused = decoded.superblocks
        rekey = decoded.rekey
        is_atomic = decoded.is_atomic
        max_steps = self.max_steps
        spin_k = self.spin_k
        spin_b = self.spin_b
        spin_t = self.spin_t
        san = sanitizer_enabled()
        alive = {t.tid for t in threads} if san else None
        retired0 = sum(t.retired for t in threads) if san else 0

        steps = 0
        scalar = 0
        branches = 0
        divergent = 0
        truncated = False

        last_atomic_step = -(10**9)
        boost_remaining = 0
        last_executed: Dict[int, int] = {t.tid: 0 for t in threads}

        groups: Dict[Tuple[int, int], List[ThreadState]] = {}
        for t in threads:  # tid order -> tid-sorted group lists
            if not t.halted:
                groups.setdefault((-len(t.call_stack), t.pc), []).append(t)

        while groups:
            if steps >= max_steps:
                truncated = True
                break

            if boost_remaining > 0 and len(groups) > 1:
                boost_remaining -= 1
                # oldest-waiter first; ties resolve to the lowest-tid
                # group, matching the reference engine's insertion order
                key = min(
                    groups,
                    key=lambda k: (
                        min(last_executed[t.tid] for t in groups[k]),
                        groups[k][0].tid,
                    ),
                )
            else:
                key = min(groups)  # deepest call, then lowest pc

            group = groups.pop(key)
            pc = key[1]
            if san:
                _san_group(prog.name, group, alive, pc, depth=-key[0])

            f = fused[pc]
            if (f is not None
                    and steps + f[0] <= max_steps
                    # no spin-escape check can fire during the run: the
                    # atomics window must already be stale for its first
                    # fused step (runs contain no atomics, so it only
                    # gets staler)
                    and steps + 1 - last_atomic_step > spin_b
                    # an active boost re-ranks groups every step
                    and (boost_remaining == 0 or not groups)):
                k = f[0]
                fusable = True
                if groups:
                    depth = key[0]
                    hi = pc + k
                    for d2, p2 in groups:
                        # a same-depth group strictly inside the run
                        # would merge with (or preempt) us mid-run
                        if d2 == depth and pc < p2 < hi:
                            fusable = False
                            break
                if fusable:
                    fn = f[1]
                    for t in group:
                        fn(t)
                    steps += k
                    scalar += k * len(group)
                    for t in group:
                        last_executed[t.tid] = steps
                    _regroup_insert(groups, (key[0], pc + k), group)
                    continue

            h = handlers[pc]
            n = len(group)
            rk = rekey[pc]
            kind = rk[0]
            outs = None
            uniform = True
            if kind == RK_BRANCH:
                outs = [h(t, mem) for t in group]
                branches += 1
                first = outs[0]
                for o in outs:
                    if o != first:
                        uniform = False
                        divergent += 1
                        break
            else:
                for t in group:
                    h(t, mem)
            steps += 1
            scalar += n
            for t in group:
                last_executed[t.tid] = steps
            if is_atomic[pc]:
                last_atomic_step = steps

            # Spin-lock escape (see _run_reference); the popped group
            # counts toward the reference's len(groups) > 1 condition,
            # so the remaining map only needs to be non-empty.  The
            # cheap atomics-window test goes first: computing the
            # oldest waiter is O(batch).
            if (boost_remaining == 0 and groups
                    and steps - last_atomic_step <= spin_b):
                oldest = min(
                    last_executed[t.tid] for t in threads if not t.halted
                )
                if steps - oldest >= spin_k:
                    boost_remaining = spin_t

            # re-key the executed group: O(1) whole-group moves for
            # straight-line code, per-outcome partition for branches,
            # per-thread buckets only for ret (threads of one (depth,
            # pc) group may hold different return addresses)
            if kind == RK_FALL:
                _regroup_insert(groups, (key[0], pc + 1), group)
            elif kind == RK_BRANCH:
                if uniform:
                    npc = rk[1] if outs[0] else pc + 1
                    _regroup_insert(groups, (key[0], npc), group)
                else:
                    taken = [t for t, o in zip(group, outs) if o]
                    fell = [t for t, o in zip(group, outs) if not o]
                    _regroup_insert(groups, (key[0], rk[1]), taken)
                    _regroup_insert(groups, (key[0], pc + 1), fell)
            elif kind == RK_JUMP:
                _regroup_insert(groups, (key[0], rk[1]), group)
            elif kind == RK_CALL:
                _regroup_insert(groups, (key[0] - 1, rk[1]), group)
            elif kind == RK_RET:
                d2 = key[0] + 1
                buckets: Dict[int, List[ThreadState]] = {}
                for t in group:
                    buckets.setdefault(t.pc, []).append(t)
                for p2, moved in buckets.items():
                    _regroup_insert(groups, (d2, p2), moved)
            # RK_HALT: the whole group halted and leaves the schedule

        if san:
            _san_result(prog.name, threads, retired0, scalar)
        return LockstepResult(
            batch_size=len(threads),
            steps=steps,
            scalar_instructions=scalar,
            divergent_branches=divergent,
            branches=branches,
            retired_per_thread=[t.retired for t in threads],
            truncated=truncated,
        )

    def _run_fast_sink(self, threads: Sequence[ThreadState],
                       mem: MemoryImage) -> LockstepResult:
        """`_run_fast` (incremental grouping) with per-step events via
        the tracing handler table.  Group lists stay tid-sorted, so the
        per-step execution order - and therefore the address order in
        every emitted event - matches the reference engine exactly.
        The ``addrs`` list is reused across steps.

        Sinks that *mutate* the batch (append threads mid-run) are
        supported: growth is detected at the top of every scheduling
        iteration.  A thread injected while a fused superblock run is
        being emitted joins after the run completes instead of
        preempting it mid-run; recording sinks (the fuzz oracle's
        bit-identity contract) never mutate, so their event streams are
        unaffected."""
        prog = self.program
        decoded = prog.decoded
        trace_handlers = decoded.trace_handlers
        fused = decoded.superblocks
        rekey = decoded.rekey
        is_atomic = decoded.is_atomic
        insts = prog.instructions
        max_steps = self.max_steps
        spin_k = self.spin_k
        spin_b = self.spin_b
        spin_t = self.spin_t
        sink = self.sink
        on_step = sink.on_step
        san = sanitizer_enabled()
        alive = {t.tid for t in threads} if san else None
        retired0 = sum(t.retired for t in threads) if san else 0

        steps = 0
        scalar = 0
        branches = 0
        divergent = 0
        truncated = False
        addrs: List[Tuple[int, int, int]] = []

        last_atomic_step = -(10**9)
        boost_remaining = 0
        last_executed: Dict[int, int] = {t.tid: 0 for t in threads}

        groups: Dict[Tuple[int, int], List[ThreadState]] = {}
        n_seen = len(threads)
        for t in threads:  # tid order -> tid-sorted group lists
            if not t.halted:
                groups.setdefault((-len(t.call_stack), t.pc), []).append(t)

        while True:
            # a sink may append new threads to the batch mid-run (the
            # reference loop picks them up by rebuilding its group map
            # from ``threads`` every step)
            if len(threads) != n_seen:
                for t in threads[n_seen:]:
                    last_executed.setdefault(t.tid, 0)
                    if san:
                        alive.add(t.tid)
                    if not t.halted:
                        _regroup_insert(
                            groups, (-len(t.call_stack), t.pc), [t])
                n_seen = len(threads)
            if not groups:
                break
            if steps >= max_steps:
                truncated = True
                break

            if boost_remaining > 0 and len(groups) > 1:
                boost_remaining -= 1
                # oldest-waiter first; ties resolve to the lowest-tid
                # group, matching the reference engine's insertion order
                key = min(
                    groups,
                    key=lambda k: (
                        min(last_executed[t.tid] for t in groups[k]),
                        groups[k][0].tid,
                    ),
                )
            else:
                key = min(groups)  # deepest call, then lowest pc

            group = groups.pop(key)
            pc = key[1]
            if san:
                _san_group(prog.name, group, alive, pc, depth=-key[0])

            n = len(group)
            f = fused[pc]
            if (f is not None
                    and steps + f[0] <= max_steps
                    and steps + 1 - last_atomic_step > spin_b
                    and (boost_remaining == 0 or not groups)):
                k = f[0]
                fusable = True
                if groups:
                    depth = key[0]
                    hi = pc + k
                    for d2, p2 in groups:
                        if d2 == depth and pc < p2 < hi:
                            fusable = False
                            break
                if fusable:
                    fn = f[1]
                    for t in group:
                        fn(t)
                    del addrs[:]
                    for p in range(pc, pc + k):
                        on_step(p, insts[p], n, addrs, None)
                    steps += k
                    scalar += k * n
                    for t in group:
                        last_executed[t.tid] = steps
                    _regroup_insert(groups, (key[0], pc + k), group)
                    continue

            h = trace_handlers[pc]
            rk = rekey[pc]
            kind = rk[0]
            outs = None
            uniform = True
            del addrs[:]
            if kind == RK_BRANCH:
                outs = [h(t, mem, addrs) for t in group]
                on_step(pc, insts[pc], n, addrs,
                        [(t.tid, o) for t, o in zip(group, outs)])
                branches += 1
                first = outs[0]
                for o in outs:
                    if o != first:
                        uniform = False
                        divergent += 1
                        break
            else:
                for t in group:
                    h(t, mem, addrs)
                on_step(pc, insts[pc], n, addrs, None)
            steps += 1
            scalar += n
            for t in group:
                last_executed[t.tid] = steps
            if is_atomic[pc]:
                last_atomic_step = steps

            # Spin-lock escape (see _run_fast)
            if (boost_remaining == 0 and groups
                    and steps - last_atomic_step <= spin_b):
                oldest = min(
                    last_executed[t.tid] for t in threads if not t.halted
                )
                if steps - oldest >= spin_k:
                    boost_remaining = spin_t

            if kind == RK_FALL:
                _regroup_insert(groups, (key[0], pc + 1), group)
            elif kind == RK_BRANCH:
                if uniform:
                    npc = rk[1] if outs[0] else pc + 1
                    _regroup_insert(groups, (key[0], npc), group)
                else:
                    taken = [t for t, o in zip(group, outs) if o]
                    fell = [t for t, o in zip(group, outs) if not o]
                    _regroup_insert(groups, (key[0], rk[1]), taken)
                    _regroup_insert(groups, (key[0], pc + 1), fell)
            elif kind == RK_JUMP:
                _regroup_insert(groups, (key[0], rk[1]), group)
            elif kind == RK_CALL:
                _regroup_insert(groups, (key[0] - 1, rk[1]), group)
            elif kind == RK_RET:
                d2 = key[0] + 1
                buckets: Dict[int, List[ThreadState]] = {}
                for t in group:
                    buckets.setdefault(t.pc, []).append(t)
                for p2, moved in buckets.items():
                    _regroup_insert(groups, (d2, p2), moved)
            # RK_HALT: the whole group halted and leaves the schedule

        if san:
            _san_result(prog.name, threads, retired0, scalar)
        sink.on_done()
        return LockstepResult(
            batch_size=len(threads),
            steps=steps,
            scalar_instructions=scalar,
            divergent_branches=divergent,
            branches=branches,
            retired_per_thread=[t.retired for t in threads],
            truncated=truncated,
        )

    def _run_reference(self, threads: Sequence[ThreadState],
                       mem: MemoryImage) -> LockstepResult:
        prog = self.program
        insts = prog.instructions
        max_steps = self.max_steps
        san = sanitizer_enabled()
        retired0 = sum(t.retired for t in threads) if san else 0
        steps = 0
        scalar = 0
        branches = 0
        divergent = 0
        truncated = False

        last_atomic_step = -(10**9)
        boost_remaining = 0
        # lazily keyed: threads may join mid-run (e.g. a sink spawning
        # work), so unknown tids default to "never executed"
        last_executed: Dict[int, int] = {t.tid: 0 for t in threads}

        while True:
            groups: Dict[Tuple[int, int], List[ThreadState]] = {}
            for t in threads:
                if not t.halted:
                    groups.setdefault((-t.depth, t.pc), []).append(t)
            if not groups:
                break
            if steps >= max_steps:
                truncated = True
                break

            if boost_remaining > 0 and len(groups) > 1:
                boost_remaining -= 1
                key = min(
                    groups,
                    key=lambda k: min(
                        last_executed.get(t.tid, 0) for t in groups[k]
                    ),
                )
            else:
                key = min(groups)  # deepest call, then lowest pc

            group = groups[key]
            pc = group[0].pc
            if san:
                # alive set recomputed per step: a sink may inject new
                # threads into the batch mid-run
                _san_group(prog.name, group, {t.tid for t in threads},
                           pc, depth=-key[0])
            inst = insts[pc]
            active, diverged = self._emit(pc, inst, group, mem)
            steps += 1
            scalar += active
            for t in group:
                last_executed[t.tid] = steps
            if inst.cls is OpClass.BRANCH:
                branches += 1
                if diverged:
                    divergent += 1

            # Spin-lock escape: if some thread has not made progress for
            # spin_k steps while atomics keep being decoded (somebody is
            # spinning on a lock), temporarily prioritize the waiter.
            if inst.cls is OpClass.ATOMIC:
                last_atomic_step = steps
            if boost_remaining == 0 and len(groups) > 1:
                oldest = min(
                    last_executed.get(t.tid, 0)
                    for t in threads if not t.halted
                )
                if (
                    steps - oldest >= self.spin_k
                    and steps - last_atomic_step <= self.spin_b
                ):
                    boost_remaining = self.spin_t

        if san:
            _san_result(prog.name, threads, retired0, scalar)
        if self.sink is not None:
            self.sink.on_done()
        return LockstepResult(
            batch_size=len(threads),
            steps=steps,
            scalar_instructions=scalar,
            divergent_branches=divergent,
            branches=branches,
            retired_per_thread=[t.retired for t in threads],
            truncated=truncated,
        )


class PredicatedExecutor(IpdomExecutor):
    """SPMD-on-SIMD (ISPC-style) execution model (paper Section VI-A).

    Control flow is handled by *predication*: the vector unit issues
    every instruction with all lanes occupied and masks off inactive
    ones, so (a) a step consumes full-batch issue/energy regardless of
    the active mask, and (b) conditional branches become predicate
    computations that never consult the branch predictor.  The
    architectural semantics are identical to IPDOM reconvergence; only
    the event stream the timing/energy models see differs.

    Instructions without a vector equivalent (atomics, system calls,
    call/ret bookkeeping, integer division - the paper counts only 27%
    of scalar x86 ops as vectorizable) are *emulated*: serialized per
    lane with unpack/repack overhead, modelled by inflating their issue
    occupancy by ``emulation_factor``.
    """

    EMULATED_CLASSES = frozenset(
        {OpClass.ATOMIC, OpClass.SYSCALL, OpClass.CALL, OpClass.RET}
    )
    EMULATED_OPS = frozenset({"div", "rem"})

    def __init__(self, *args, emulation_factor: int = 4, **kwargs):
        super().__init__(*args, **kwargs)
        self.emulation_factor = emulation_factor

    def run(self, threads, mem):
        self._full = len(threads)
        return super().run(threads, mem)

    def _sink_widths(self, n_threads):
        # per-pc event width: full-batch issue, inflated for emulated
        # ops (matches _emit; div/rem may sit inside fused superblocks,
        # so the fast path needs the width per pc, not per step)
        factor = self.emulation_factor
        emc = self.EMULATED_CLASSES
        emo = self.EMULATED_OPS
        return [
            n_threads * factor
            if (i.cls in emc or i.op in emo) else n_threads
            for i in self.program.instructions
        ]

    def _emit(self, pc, inst, group, mem):
        target = self.program.targets[pc]
        sink = self.sink
        if sink is None:
            # architecturally identical to the base no-sink path
            if inst.cls is OpClass.BRANCH:
                outs = [execute(t, inst, target, mem, None) for t in group]
                first = outs[0]
                return len(group), any(o != first for o in outs)
            for t in group:
                execute(t, inst, target, mem, None)
            return len(group), False
        addrs = []
        diverged = False
        if inst.cls is OpClass.BRANCH:
            outs = [execute(t, inst, target, mem, addrs) for t in group]
            first = outs[0]
            diverged = any(o != first for o in outs)
        else:
            for t in group:
                execute(t, inst, target, mem, addrs)
        width = self._full
        if (inst.cls in self.EMULATED_CLASSES
                or inst.op in self.EMULATED_OPS):
            width *= self.emulation_factor
        # full-width issue, no branch outcomes (predication)
        sink.on_step(pc, inst, width, addrs, None)
        return len(group), diverged


def make_executor(program: Program, policy: str = "minsp_pc",
                  sink: Optional[StepSink] = None, **kwargs):
    """Factory over the two reconvergence policies (and ``solo``)."""
    if policy == "ipdom":
        return IpdomExecutor(program, sink=sink, **kwargs)
    if policy == "minsp_pc":
        return MinSpPcExecutor(program, sink=sink, **kwargs)
    if policy == "predicated":
        return PredicatedExecutor(program, sink=sink, **kwargs)
    if policy == "solo":
        return SoloExecutor(program, sink=sink, **kwargs)
    raise ValueError(f"unknown policy {policy!r}")
