"""Execution engine: memory image, threads, solo and lockstep executors."""

from .events import InstructionMixSink, LockstepResult, MultiSink, StepSink
from .interpreter import execute
from .lockstep import (
    ExecutionError,
    IpdomExecutor,
    PredicatedExecutor,
    MinSpPcExecutor,
    SoloExecutor,
    make_executor,
)
from .memory import (
    DEFAULT_STACK_SIZE,
    GLOBAL_BASE,
    HEAP_BASE,
    STACK_TOP,
    MemoryImage,
    segment_of,
    stack_base,
)
from .thread import ThreadState

__all__ = [
    "DEFAULT_STACK_SIZE",
    "GLOBAL_BASE",
    "HEAP_BASE",
    "STACK_TOP",
    "ExecutionError",
    "InstructionMixSink",
    "IpdomExecutor",
    "LockstepResult",
    "MemoryImage",
    "MinSpPcExecutor",
    "PredicatedExecutor",
    "MultiSink",
    "SoloExecutor",
    "StepSink",
    "ThreadState",
    "execute",
    "make_executor",
    "segment_of",
    "stack_base",
]
