"""Flat shared memory image with segment layout.

The microservices in the paper are multi-threaded: all request-threads
of a service share one address space (heap + globals) while each thread
owns a private stack segment.  Stack segments for the threads of a batch
are allocated *contiguously* by the RPU driver so the hardware can
interleave them (paper Fig. 13); we reproduce that layout here and let
:mod:`repro.memsys.stackmap` implement the physical interleaving.

Reads of addresses that were never written return a deterministic
pseudo-random "background" value derived from the address and a per-image
salt.  This stands in for the pre-existing service state (hash tables,
posting lists, feature vectors) that the paper's traced binaries read,
and gives data-dependent control flow controlled per-request variety.
"""

from __future__ import annotations

from typing import Dict

GLOBAL_BASE = 0x1000_0000
GLOBAL_SIZE = 0x1000_0000
HEAP_BASE = 0x4000_0000
HEAP_SIZE = 0x3000_0000
STACK_TOP = 0x8000_0000
DEFAULT_STACK_SIZE = 64 * 1024

_MIX = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def stack_base(tid: int, stack_size: int = DEFAULT_STACK_SIZE) -> int:
    """Top of thread ``tid``'s stack segment (stacks grow downward).

    Segments are contiguous in virtual space, matching the RPU driver's
    mmap policy: ``SS_i = STACK_TOP - i * stack_size``.
    """
    return STACK_TOP - tid * stack_size


def segment_of(addr: int) -> str:
    """Classify an address as stack, heap or global by layout range."""
    if addr >= HEAP_BASE + HEAP_SIZE:
        return "stack"
    if addr >= HEAP_BASE:
        return "heap"
    return "global"


class MemoryImage:
    """Byte-addressed shared memory with 8-byte-aligned value storage."""

    __slots__ = ("salt", "_store")

    def __init__(self, salt: int = 0):
        self.salt = salt
        self._store: Dict[int, int] = {}

    def background(self, addr: int) -> int:
        """Deterministic pseudo-random content for untouched addresses."""
        x = ((addr & ~7) * _MIX + self.salt) & _MASK64
        x ^= x >> 29
        return (x >> 17) & 0xFFFF_FFFF

    def read(self, addr: int) -> int:
        a = addr & ~7
        v = self._store.get(a)
        if v is None:
            # inlined background(a): this is the hottest call in the
            # interpreter fast path and a is already 8-byte aligned
            x = (a * _MIX + self.salt) & _MASK64
            x ^= x >> 29
            return (x >> 17) & 0xFFFF_FFFF
        return v

    def write(self, addr: int, value: int) -> None:
        self._store[addr & ~7] = value

    def read_words(self, addr: int, count: int) -> list:
        return [self.read(addr + 8 * i) for i in range(count)]

    def write_words(self, addr: int, values) -> None:
        for i, v in enumerate(values):
            self.write(addr + 8 * i, v)

    def write_block(self, addr: int, values) -> None:
        """Bulk write of consecutive 8-byte words starting at ``addr``.

        Semantically ``write_words``, but with the store dict and the
        running address hoisted out of the loop — the fast path of the
        per-request setup loops, which dominate batch preparation."""
        store = self._store
        a = addr & ~7
        for v in values:
            store[a] = v
            a += 8

    def written_addresses(self):
        return self._store.keys()

    def __len__(self) -> int:
        return len(self._store)
