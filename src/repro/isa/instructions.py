"""Instruction set for the SIMR reproduction.

The paper evaluates x86 binaries traced with a PIN tool (SIMTec) whose
CISC instructions are cracked into RISC-like micro-ops before being fed
to the timing model.  We skip the x86 front and define the RISC-like
micro-op ISA directly: a small load/store architecture with explicit
branches, calls and an opaque SIMD op class.  Everything downstream
(lockstep execution, reconvergence, coalescing, timing, energy) only
cares about the micro-op stream, exactly as in the paper's toolchain.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Number of general-purpose scalar registers per thread.
NUM_REGS = 32

#: Register index conventionally holding the stack pointer.
SP = 29

#: Register index conventionally holding function return values.
RV = 1

#: Register that always reads as zero (writes are ignored).
ZERO = 0


class OpClass(enum.Enum):
    """Coarse classification used by the timing and energy models."""

    ALU = "alu"
    MUL = "mul"
    SIMD = "simd"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    CALL = "call"
    RET = "ret"
    ATOMIC = "atomic"
    SYSCALL = "syscall"
    FENCE = "fence"
    HALT = "halt"
    NOP = "nop"


class Segment(enum.Enum):
    """Virtual address space segments (paper Section III-B2)."""

    GLOBAL = "global"  # shared read-mostly data / constants
    HEAP = "heap"
    STACK = "stack"


class SyscallKind(enum.Enum):
    """Latency classes for blocking system calls (paper Section III-B5)."""

    NETWORK = "network"  # microsecond-scale RPC send/recv
    STORAGE = "storage"  # millisecond-scale disk / database access
    MEMCACHED = "memcached"  # microsecond-scale in-DRAM key-value store
    LOG = "log"  # fire-and-forget, negligible latency


#: ALU mnemonics understood by the interpreter.  Two-source forms take
#: (srcs[0], srcs[1]); immediate forms take (srcs[0], imm).
ALU_OPS = frozenset(
    {
        "add",
        "sub",
        "and",
        "or",
        "xor",
        "shl",
        "shr",
        "min",
        "max",
        "addi",
        "andi",
        "ori",
        "xori",
        "shli",
        "shri",
        "slt",
        "slti",
        "li",
        "mov",
        "hash",  # one-round integer mix, models inlined hash functions
    }
)

MUL_OPS = frozenset({"mul", "muli", "div", "rem"})

#: Branch condition mnemonics: compare srcs[0] against srcs[1].
BRANCH_OPS = frozenset({"beq", "bne", "blt", "bge", "ble", "bgt"})


@dataclass(frozen=True)
class Instruction:
    """A single micro-op.

    ``target`` holds a label name until :meth:`repro.isa.program.Program`
    resolution replaces branch/jump/call targets with instruction
    indices (kept in ``Program.targets`` so instances stay immutable and
    shareable between programs).
    """

    op: str
    cls: OpClass
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    imm: int = 0
    target: Optional[str] = None
    segment: Optional[Segment] = None
    syscall: Optional[SyscallKind] = None
    #: access width in bytes for LOAD/STORE (SIMD mem ops use 32)
    size: int = 8
    #: free-form annotation (lock name, label of allocation, ...)
    note: str = ""

    def is_mem(self) -> bool:
        return self.cls in (OpClass.LOAD, OpClass.STORE, OpClass.ATOMIC)

    def reads(self) -> Tuple[int, ...]:
        return self.srcs

    def writes(self) -> Optional[int]:
        return self.dst

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op]
        if self.dst is not None:
            parts.append(f"r{self.dst}")
        parts.extend(f"r{s}" for s in self.srcs)
        if self.imm:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"@{self.target}")
        return " ".join(parts)


def classify(op: str) -> OpClass:
    """Map a mnemonic to its :class:`OpClass`."""
    if op in ALU_OPS:
        return OpClass.ALU
    if op in MUL_OPS:
        return OpClass.MUL
    if op in BRANCH_OPS:
        return OpClass.BRANCH
    special = {
        "ld": OpClass.LOAD,
        "st": OpClass.STORE,
        "vld": OpClass.LOAD,
        "vst": OpClass.STORE,
        "vop": OpClass.SIMD,
        "jmp": OpClass.JUMP,
        "call": OpClass.CALL,
        "ret": OpClass.RET,
        "amoadd": OpClass.ATOMIC,
        "amoswap": OpClass.ATOMIC,
        "syscall": OpClass.SYSCALL,
        "fence": OpClass.FENCE,
        "halt": OpClass.HALT,
        "nop": OpClass.NOP,
    }
    if op in special:
        return special[op]
    raise ValueError(f"unknown mnemonic: {op}")
