"""Static program validation for workload authors.

Programs are authored by hand (or generated); the validator catches the
mistakes that would otherwise show up as baffling lockstep divergence:

* reads of registers never written on some path (def-before-use, via a
  forward may-be-defined dataflow over the CFG);
* writes to the reserved registers (r0 is hard-zero, r29 is the stack
  pointer managed by call/ret, r31 is the assembler temporary);
* unreachable instructions (dead blocks, usually a missing label);
* call targets that fall through into other code instead of returning;
* stack-frame discipline: helper functions must not address beyond
  their declared frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .cfg import EXIT, ControlFlowGraph
from .instructions import NUM_REGS, SP, ZERO, Instruction, OpClass, Segment
from .program import Program

#: registers every thread has initialized at entry (the workload ABI,
#: see repro.workloads.base) plus always-valid architectural registers
ABI_LIVE_IN = frozenset({ZERO, 1, 2, 3, 4, 5, 6, 7, 8, SP})

ASSEMBLER_TEMP = 31


@dataclass
class Issue:
    severity: str  # "error" | "warning"
    pc: Optional[int]
    message: str

    def __str__(self) -> str:
        where = f"pc {self.pc}" if self.pc is not None else "program"
        return f"[{self.severity}] {where}: {self.message}"


@dataclass
class ValidationReport:
    issues: List[Issue] = field(default_factory=list)

    @property
    def errors(self) -> List[Issue]:
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> List[Issue]:
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors


def validate(program: Program,
             live_in: frozenset = ABI_LIVE_IN) -> ValidationReport:
    """Run all static checks over ``program``."""
    report = ValidationReport()
    cfg = ControlFlowGraph(program)
    _check_reserved_writes(program, report)
    _check_reachability(program, cfg, report)
    _check_def_before_use(program, cfg, report, live_in)
    _check_frame_discipline(program, report)
    return report


def _check_reserved_writes(program: Program, report: ValidationReport) -> None:
    for pc, inst in enumerate(program.instructions):
        if inst.dst == SP:
            report.issues.append(Issue(
                "error", pc,
                "writes the stack pointer directly; only call/ret "
                "manage SP"))
        # writes to r0 are legal no-ops but usually a typo
        if inst.dst == ZERO and inst.cls is not OpClass.NOP:
            report.issues.append(Issue(
                "warning", pc, "writes r0 (hard-wired zero)"))


def _reachable_blocks(cfg: ControlFlowGraph) -> Set[int]:
    seen: Set[int] = set()
    work = [cfg.block_of(0).index]
    # call targets are entry points too
    prog = cfg.program
    for pc, inst in enumerate(prog.instructions):
        if inst.cls is OpClass.CALL:
            work.append(cfg.block_of(prog.target_of(pc)).index)
    while work:
        b = work.pop()
        if b in seen or b == EXIT:
            continue
        seen.add(b)
        work.extend(s for s in cfg.blocks[b].successors if s != EXIT)
    return seen


def _check_reachability(program: Program, cfg: ControlFlowGraph,
                        report: ValidationReport) -> None:
    reachable = _reachable_blocks(cfg)
    for block in cfg.blocks:
        if block.index not in reachable:
            report.issues.append(Issue(
                "warning", block.start,
                f"unreachable block [{block.start}..{block.end}]"))


def _check_def_before_use(program: Program, cfg: ControlFlowGraph,
                          report: ValidationReport,
                          live_in: frozenset) -> None:
    """Forward may-be-undefined analysis at basic-block granularity.

    A register read is flagged when *no* path defines it first.  The
    analysis is conservative across calls (helpers may define values),
    so it reports 'error' only when the register cannot be defined on
    any path.
    """
    n = len(cfg.blocks)
    reachable = _reachable_blocks(cfg)
    # defs[b]: registers definitely written within block b
    defs: List[Set[int]] = []
    uses_before_def: List[List] = []
    for block in cfg.blocks:
        written: Set[int] = set()
        early_uses = []
        for pc in range(block.start, block.end + 1):
            inst = program.instructions[pc]
            for src in inst.srcs:
                if src not in written:
                    early_uses.append((pc, src))
            if inst.dst is not None:
                written.add(inst.dst)
        defs.append(written)
        uses_before_def.append(early_uses)

    # available[b]: registers defined on at least one path to b's entry
    available: List[Set[int]] = [set(live_in) for _ in range(n)]
    preds: Dict[int, List[int]] = {i: [] for i in range(n)}
    for b in cfg.blocks:
        for s in b.successors:
            if s != EXIT:
                preds[s].append(b.index)

    changed = True
    while changed:
        changed = False
        for b in range(n):
            if b not in reachable:
                continue
            if preds[b]:
                incoming = set(live_in)
                for p in preds[b]:
                    incoming |= available[p] | defs[p]
            else:
                incoming = set(live_in)
            if incoming - available[b]:
                available[b] |= incoming
                changed = True

    for b in range(n):
        if b not in reachable:
            continue
        for pc, reg in uses_before_def[b]:
            if reg not in available[b] and reg != ASSEMBLER_TEMP:
                report.issues.append(Issue(
                    "warning", pc,
                    f"r{reg} may be read before any definition"))


def _check_frame_discipline(program: Program,
                            report: ValidationReport) -> None:
    """Stack offsets inside a callee must stay within its frame."""
    # collect call targets and frame sizes (min over call sites)
    frames: Dict[int, int] = {}
    for pc, inst in enumerate(program.instructions):
        if inst.cls is OpClass.CALL:
            target = program.target_of(pc)
            frames[target] = min(frames.get(target, 1 << 30), inst.imm)
    for entry, frame in frames.items():
        pc = entry
        while pc < len(program.instructions):
            inst = program.instructions[pc]
            if inst.cls is OpClass.RET:
                break
            if (inst.segment is Segment.STACK and inst.srcs
                    and inst.srcs[0] == SP and inst.imm >= frame):
                report.issues.append(Issue(
                    "error", pc,
                    f"stack access at sp+{inst.imm} exceeds the "
                    f"{frame}-byte frame of the function at {entry}"))
            if inst.cls is OpClass.CALL:
                pc += 1
                continue
            pc += 1
