"""Program container: instructions, labels and resolved control flow."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .instructions import Instruction, OpClass


class ProgramError(Exception):
    """Raised for malformed programs (unknown labels, fallthrough off end)."""


@dataclass
class Program:
    """An immutable, resolved program.

    ``targets[i]`` gives the resolved instruction index for the
    branch/jump/call at pc ``i`` (``None`` for other instructions).
    """

    name: str
    instructions: List[Instruction]
    labels: Dict[str, int]
    targets: List[Optional[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.targets:
            self.targets = self._resolve_targets()
        self._validate()
        # decode cache: per-pc specialized handlers + fused superblocks
        # (built on first executor use, shared by every executor of this
        # program; see repro.engine.decode)
        self._decoded = None
        # batch-decode cache for the vectorized lockstep engine (lane-
        # array handlers and whole-block functions; see
        # repro.engine.vcodegen)
        self._vdecoded = None

    @property
    def decoded(self):
        """Pre-decoded dispatch tables (lazily compiled, then cached).

        Decoding happens once per program, not per step: every
        instruction is specialized into a closure with operands,
        immediates and resolved branch targets bound, and straight-line
        ALU/MUL runs are fused into composite superblock handlers.
        """
        dec = self._decoded
        if dec is None:
            from ..engine.decode import compile_program

            dec = self._decoded = compile_program(self)
        return dec

    @property
    def vdecoded(self):
        """Batch dispatch tables for the vectorized engine (lazily
        source-generated and compiled, then cached; the generated
        source itself is additionally cached in the result store keyed
        by program digest and engine fingerprint)."""
        vdec = self._vdecoded
        if vdec is None:
            from ..engine.vcodegen import compile_vector

            vdec = self._vdecoded = compile_vector(self)
        return vdec

    @property
    def handlers(self):
        """Per-pc specialized handler table (see :attr:`decoded`)."""
        return self.decoded.handlers

    @property
    def superblocks(self):
        """Per-pc fused superblock table (see :attr:`decoded`)."""
        return self.decoded.superblocks

    def __getstate__(self):
        # compiled handlers are closures and cannot cross process
        # boundaries; drop the cache and let the receiver re-decode
        state = dict(self.__dict__)
        state["_decoded"] = None
        state["_vdecoded"] = None
        return state

    def _resolve_targets(self) -> List[Optional[int]]:
        targets: List[Optional[int]] = []
        for pc, inst in enumerate(self.instructions):
            if inst.target is None:
                targets.append(None)
                continue
            if inst.target not in self.labels:
                raise ProgramError(
                    f"{self.name}: pc {pc} ({inst.op}) references "
                    f"unknown label {inst.target!r}"
                )
            targets.append(self.labels[inst.target])
        return targets

    def _validate(self) -> None:
        if not self.instructions:
            raise ProgramError(f"{self.name}: empty program")
        last = self.instructions[-1]
        if last.cls not in (OpClass.HALT, OpClass.JUMP, OpClass.RET):
            raise ProgramError(
                f"{self.name}: control can fall off the end "
                f"(last op is {last.op})"
            )

    def __len__(self) -> int:
        return len(self.instructions)

    def target_of(self, pc: int) -> int:
        t = self.targets[pc]
        if t is None:
            raise ProgramError(f"{self.name}: pc {pc} has no branch target")
        return t

    def label_at(self, pc: int) -> Optional[str]:
        for name, idx in self.labels.items():
            if idx == pc:
                return name
        return None

    def listing(self) -> str:
        """Human-readable disassembly, used by examples and debugging."""
        by_pc: Dict[int, List[str]] = {}
        for name, idx in self.labels.items():
            by_pc.setdefault(idx, []).append(name)
        lines = []
        for pc, inst in enumerate(self.instructions):
            for lab in sorted(by_pc.get(pc, [])):
                lines.append(f"{lab}:")
            tgt = self.targets[pc]
            suffix = f"  -> {tgt}" if tgt is not None else ""
            lines.append(f"  {pc:4d}: {inst}{suffix}")
        return "\n".join(lines)
