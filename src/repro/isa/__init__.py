"""RISC-like micro-op ISA: instructions, programs, builder, CFG analysis."""

from .instructions import (
    ALU_OPS,
    BRANCH_OPS,
    MUL_OPS,
    NUM_REGS,
    RV,
    SP,
    ZERO,
    Instruction,
    OpClass,
    Segment,
    SyscallKind,
    classify,
)
from .builder import ProgramBuilder, reg
from .cfg import EXIT, BasicBlock, ControlFlowGraph
from .program import Program, ProgramError
from .validator import Issue, ValidationReport, validate

__all__ = [
    "ALU_OPS",
    "BRANCH_OPS",
    "MUL_OPS",
    "NUM_REGS",
    "RV",
    "SP",
    "ZERO",
    "EXIT",
    "BasicBlock",
    "ControlFlowGraph",
    "Instruction",
    "OpClass",
    "Program",
    "ProgramBuilder",
    "ProgramError",
    "Segment",
    "SyscallKind",
    "classify",
    "Issue",
    "ValidationReport",
    "validate",
    "reg",
]
