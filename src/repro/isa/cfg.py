"""Control-flow graph and post-dominator analysis.

The "ideal" reconvergence policy in the paper (stack-based IPDOM, used
by modern GPUs) needs the immediate post-dominator of every conditional
branch.  The analysis here is intraprocedural: ``call`` is treated as a
fall-through edge (the callee returns) and ``ret``/``halt`` connect to a
virtual exit node, so a branch inside a function reconverges inside that
function, never across its return.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .instructions import Instruction, OpClass
from .program import Program

EXIT = -1  # virtual exit node id


@dataclass
class BasicBlock:
    index: int
    start: int  # first pc (inclusive)
    end: int  # last pc (inclusive)
    successors: List[int] = field(default_factory=list)


class ControlFlowGraph:
    """Basic blocks, successor edges and post-dominator tree of a program."""

    def __init__(self, program: Program):
        self.program = program
        self.blocks: List[BasicBlock] = []
        self._block_of_pc: List[int] = []
        self._build_blocks()
        self._ipdom_block = self._compute_ipdom()
        self._branch_reconv = self._compute_branch_reconvergence()

    # ------------------------------------------------------------------
    def _build_blocks(self) -> None:
        prog = self.program
        n = len(prog.instructions)
        leaders = {0}
        for pc, inst in enumerate(prog.instructions):
            if inst.cls in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL):
                tgt = prog.targets[pc]
                if tgt is not None and inst.cls is not OpClass.CALL:
                    leaders.add(tgt)
                if pc + 1 < n:
                    leaders.add(pc + 1)
            elif inst.cls in (OpClass.RET, OpClass.HALT):
                if pc + 1 < n:
                    leaders.add(pc + 1)
        # call targets are function entries and therefore leaders too
        for pc, inst in enumerate(prog.instructions):
            if inst.cls is OpClass.CALL and prog.targets[pc] is not None:
                leaders.add(prog.targets[pc])

        ordered = sorted(leaders)
        starts = {s: i for i, s in enumerate(ordered)}
        self._block_of_pc = [0] * n
        for i, start in enumerate(ordered):
            end = (ordered[i + 1] - 1) if i + 1 < len(ordered) else n - 1
            self.blocks.append(BasicBlock(index=i, start=start, end=end))
            for pc in range(start, end + 1):
                self._block_of_pc[pc] = i

        for block in self.blocks:
            last = prog.instructions[block.end]
            succ: List[int] = []
            if last.cls is OpClass.BRANCH:
                succ.append(starts[prog.target_of(block.end)])
                if block.end + 1 < n:
                    succ.append(self._block_of_pc[block.end + 1])
            elif last.cls is OpClass.JUMP:
                succ.append(starts[prog.target_of(block.end)])
            elif last.cls in (OpClass.RET, OpClass.HALT):
                succ.append(EXIT)
            else:  # fallthrough (includes CALL: callee returns here)
                if block.end + 1 < n:
                    succ.append(self._block_of_pc[block.end + 1])
                else:
                    succ.append(EXIT)
            block.successors = succ

    # ------------------------------------------------------------------
    def _compute_ipdom(self) -> Dict[int, int]:
        """Immediate post-dominator per block (Cooper-Harvey-Kennedy on
        the reverse CFG, with the virtual EXIT as root)."""
        nodes = [b.index for b in self.blocks] + [EXIT]
        preds: Dict[int, List[int]] = {v: [] for v in nodes}
        for b in self.blocks:
            for s in b.successors:
                preds[s].append(b.index)

        # reverse post-order of the *reverse* CFG from EXIT
        order: List[int] = []
        seen = set()

        def dfs(v: int) -> None:
            stack = [(v, iter(preds[v]))]
            seen.add(v)
            while stack:
                node, it = stack[-1]
                advanced = False
                for w in it:
                    if w not in seen:
                        seen.add(w)
                        stack.append((w, iter(preds[w])))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        dfs(EXIT)
        rpo = list(reversed(order))  # EXIT first
        rpo_index = {v: i for i, v in enumerate(rpo)}

        ipdom: Dict[int, Optional[int]] = {v: None for v in nodes}
        ipdom[EXIT] = EXIT

        def intersect(a: int, b: int) -> int:
            while a != b:
                while rpo_index[a] > rpo_index[b]:
                    a = ipdom[a]  # type: ignore[assignment]
                while rpo_index[b] > rpo_index[a]:
                    b = ipdom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for v in rpo:
                if v == EXIT:
                    continue
                if v not in rpo_index:
                    continue
                candidates = [
                    s
                    for s in self.blocks[v].successors
                    if s in rpo_index and ipdom[s] is not None
                ]
                if not candidates:
                    continue
                new = candidates[0]
                for s in candidates[1:]:
                    new = intersect(new, s)
                if ipdom[v] != new:
                    ipdom[v] = new
                    changed = True
        return {v: d for v, d in ipdom.items() if d is not None}

    def _compute_branch_reconvergence(self) -> Dict[int, int]:
        """Map each conditional-branch pc to its reconvergence pc.

        EXIT maps to ``len(program)`` which the executor treats as
        "reconverge when everyone halts/returns".
        """
        out: Dict[int, int] = {}
        for block in self.blocks:
            last = self.program.instructions[block.end]
            if last.cls is not OpClass.BRANCH:
                continue
            d = self._ipdom_block.get(block.index, EXIT)
            if d == EXIT:
                out[block.end] = len(self.program)
            else:
                out[block.end] = self.blocks[d].start
        return out

    # ------------------------------------------------------------------
    def block_of(self, pc: int) -> BasicBlock:
        return self.blocks[self._block_of_pc[pc]]

    def reconvergence_pc(self, branch_pc: int) -> int:
        """Reconvergence point (pc) for the conditional branch at ``branch_pc``."""
        return self._branch_reconv[branch_pc]

    def ipdom_of_block(self, block_index: int) -> int:
        return self._ipdom_block.get(block_index, EXIT)
