"""Control-flow graph and post-dominator analysis.

The "ideal" reconvergence policy in the paper (stack-based IPDOM, used
by modern GPUs) needs the immediate post-dominator of every conditional
branch.  The analysis here is intraprocedural: ``call`` is treated as a
fall-through edge (the callee returns) and ``ret``/``halt`` connect to a
virtual exit node, so a branch inside a function reconverges inside that
function, never across its return.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .instructions import SP, Instruction, OpClass
from .program import Program

EXIT = -1  # virtual exit node id


def inst_uses_defs(inst: Instruction) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """``(uses, defs)`` register sets of one instruction, mirroring the
    execution engines exactly: ALU/MUL/LOAD with a dropped ``r0`` (or
    absent) destination are never evaluated, immediate operand forms
    read only ``srcs[0]``, and CALL/RET carry an implicit stack-pointer
    update (``SP -= frame`` / ``SP += frame``).  JUMP/HALT/FENCE/NOP/
    SIMD/SYSCALL touch no architectural registers."""
    cls = inst.cls
    if cls is OpClass.ALU or cls is OpClass.MUL:
        if not inst.dst:  # r0 writes dropped, ALU not evaluated
            return (), ()
        return tuple(inst.srcs), (inst.dst,)
    if cls is OpClass.LOAD:
        if not inst.dst:  # no architectural effect (mirrors decode)
            return (), ()
        return (inst.srcs[0],), (inst.dst,)
    if cls is OpClass.STORE:
        return (inst.srcs[0], inst.srcs[1]), ()
    if cls is OpClass.ATOMIC:
        uses = (inst.srcs[0], inst.srcs[1])
        return uses, ((inst.dst,) if inst.dst else ())
    if cls is OpClass.BRANCH:
        return (inst.srcs[0], inst.srcs[1]), ()
    if cls is OpClass.CALL or cls is OpClass.RET:
        return (SP,), (SP,)
    return (), ()


@dataclass
class BasicBlock:
    index: int
    start: int  # first pc (inclusive)
    end: int  # last pc (inclusive)
    successors: List[int] = field(default_factory=list)


class ControlFlowGraph:
    """Basic blocks, successor edges and post-dominator tree of a program."""

    def __init__(self, program: Program):
        self.program = program
        self.blocks: List[BasicBlock] = []
        self._block_of_pc: List[int] = []
        self._build_blocks()
        self._ipdom_block = self._compute_ipdom()
        self._branch_reconv = self._compute_branch_reconvergence()
        self._liveness: Optional[Tuple[list, list, list, list]] = None

    # ------------------------------------------------------------------
    def _build_blocks(self) -> None:
        prog = self.program
        n = len(prog.instructions)
        leaders = {0}
        for pc, inst in enumerate(prog.instructions):
            if inst.cls in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL):
                tgt = prog.targets[pc]
                if tgt is not None and inst.cls is not OpClass.CALL:
                    leaders.add(tgt)
                if pc + 1 < n:
                    leaders.add(pc + 1)
            elif inst.cls in (OpClass.RET, OpClass.HALT):
                if pc + 1 < n:
                    leaders.add(pc + 1)
        # call targets are function entries and therefore leaders too
        for pc, inst in enumerate(prog.instructions):
            if inst.cls is OpClass.CALL and prog.targets[pc] is not None:
                leaders.add(prog.targets[pc])

        ordered = sorted(leaders)
        starts = {s: i for i, s in enumerate(ordered)}
        self._block_of_pc = [0] * n
        for i, start in enumerate(ordered):
            end = (ordered[i + 1] - 1) if i + 1 < len(ordered) else n - 1
            self.blocks.append(BasicBlock(index=i, start=start, end=end))
            for pc in range(start, end + 1):
                self._block_of_pc[pc] = i

        for block in self.blocks:
            last = prog.instructions[block.end]
            succ: List[int] = []
            if last.cls is OpClass.BRANCH:
                succ.append(starts[prog.target_of(block.end)])
                if block.end + 1 < n:
                    succ.append(self._block_of_pc[block.end + 1])
            elif last.cls is OpClass.JUMP:
                succ.append(starts[prog.target_of(block.end)])
            elif last.cls in (OpClass.RET, OpClass.HALT):
                succ.append(EXIT)
            else:  # fallthrough (includes CALL: callee returns here)
                if block.end + 1 < n:
                    succ.append(self._block_of_pc[block.end + 1])
                else:
                    succ.append(EXIT)
            block.successors = succ

    # ------------------------------------------------------------------
    def _compute_ipdom(self) -> Dict[int, int]:
        """Immediate post-dominator per block (Cooper-Harvey-Kennedy on
        the reverse CFG, with the virtual EXIT as root)."""
        nodes = [b.index for b in self.blocks] + [EXIT]
        preds: Dict[int, List[int]] = {v: [] for v in nodes}
        for b in self.blocks:
            for s in b.successors:
                preds[s].append(b.index)

        # reverse post-order of the *reverse* CFG from EXIT
        order: List[int] = []
        seen = set()

        def dfs(v: int) -> None:
            stack = [(v, iter(preds[v]))]
            seen.add(v)
            while stack:
                node, it = stack[-1]
                advanced = False
                for w in it:
                    if w not in seen:
                        seen.add(w)
                        stack.append((w, iter(preds[w])))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        dfs(EXIT)
        rpo = list(reversed(order))  # EXIT first
        rpo_index = {v: i for i, v in enumerate(rpo)}

        ipdom: Dict[int, Optional[int]] = {v: None for v in nodes}
        ipdom[EXIT] = EXIT

        def intersect(a: int, b: int) -> int:
            while a != b:
                while rpo_index[a] > rpo_index[b]:
                    a = ipdom[a]  # type: ignore[assignment]
                while rpo_index[b] > rpo_index[a]:
                    b = ipdom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for v in rpo:
                if v == EXIT:
                    continue
                if v not in rpo_index:
                    continue
                candidates = [
                    s
                    for s in self.blocks[v].successors
                    if s in rpo_index and ipdom[s] is not None
                ]
                if not candidates:
                    continue
                new = candidates[0]
                for s in candidates[1:]:
                    new = intersect(new, s)
                if ipdom[v] != new:
                    ipdom[v] = new
                    changed = True
        return {v: d for v, d in ipdom.items() if d is not None}

    def _compute_branch_reconvergence(self) -> Dict[int, int]:
        """Map each conditional-branch pc to its reconvergence pc.

        EXIT maps to ``len(program)`` which the executor treats as
        "reconverge when everyone halts/returns".
        """
        out: Dict[int, int] = {}
        for block in self.blocks:
            last = self.program.instructions[block.end]
            if last.cls is not OpClass.BRANCH:
                continue
            d = self._ipdom_block.get(block.index, EXIT)
            if d == EXIT:
                out[block.end] = len(self.program)
            else:
                out[block.end] = self.blocks[d].start
        return out

    # ------------------------------------------------------------------
    def _compute_liveness(self) -> Tuple[list, list, list, list]:
        """Per-block register liveness: ``use`` (read before any local
        write), ``def`` (written), and the backward-dataflow fixpoint
        ``live_in = use ∪ (live_out − def)`` /
        ``live_out = ∪ live_in(succ)``.

        Intraprocedural like the rest of this class: a CALL block falls
        through to its return point, so callee-clobbered registers stay
        conservatively live across the call site.  The vector engine's
        memo keys use the *exact* per-grain read set (a syntactic
        read-before-write scan in ``engine/vcodegen``); for whole-block
        grains that scan equals ``reg_use`` here by construction —
        ``use(b) ⊆ live_in(b)`` — and the sanitizer cross-checks the
        two computations against each other.
        """
        insts = self.program.instructions
        use: List[set] = []
        defs: List[set] = []
        for block in self.blocks:
            u: set = set()
            d: set = set()
            for pc in range(block.start, block.end + 1):
                iu, idf = inst_uses_defs(insts[pc])
                for r in iu:
                    if r not in d:
                        u.add(r)
                d.update(idf)
            use.append(u)
            defs.append(d)
        live_in = [set(u) for u in use]
        live_out: List[set] = [set() for _ in self.blocks]
        changed = True
        while changed:
            changed = False
            for block in reversed(self.blocks):
                i = block.index
                out: set = set()
                for s in block.successors:
                    if s != EXIT:
                        out |= live_in[s]
                ni = use[i] | (out - defs[i])
                if out != live_out[i] or ni != live_in[i]:
                    live_out[i] = out
                    live_in[i] = ni
                    changed = True
        self._liveness = (
            [frozenset(s) for s in use],
            [frozenset(s) for s in defs],
            [frozenset(s) for s in live_in],
            [frozenset(s) for s in live_out],
        )
        return self._liveness

    def reg_use(self, block_index: int) -> frozenset:
        """Registers block ``block_index`` reads before writing."""
        live = self._liveness or self._compute_liveness()
        return live[0][block_index]

    def reg_def(self, block_index: int) -> frozenset:
        """Registers block ``block_index`` writes."""
        live = self._liveness or self._compute_liveness()
        return live[1][block_index]

    def reg_live_in(self, block_index: int) -> frozenset:
        """Registers live on entry to block ``block_index``."""
        live = self._liveness or self._compute_liveness()
        return live[2][block_index]

    def reg_live_out(self, block_index: int) -> frozenset:
        """Registers live on exit from block ``block_index``."""
        live = self._liveness or self._compute_liveness()
        return live[3][block_index]

    # ------------------------------------------------------------------
    def block_of(self, pc: int) -> BasicBlock:
        return self.blocks[self._block_of_pc[pc]]

    def reconvergence_pc(self, branch_pc: int) -> int:
        """Reconvergence point (pc) for the conditional branch at ``branch_pc``."""
        return self._branch_reconv[branch_pc]

    def ipdom_of_block(self, block_index: int) -> int:
        return self._ipdom_block.get(block_index, EXIT)
