"""Fluent assembler used to author the microservice programs.

The builder keeps the workload sources short and readable::

    b = ProgramBuilder("memcached")
    b.li("r4", 8)
    with b.loop("r4"):          # decrement-and-branch loop on r4
        b.ld("r5", "r3", 0, Segment.HEAP)
        b.add("r6", "r6", "r5")
        b.addi("r3", "r3", 8)
    b.halt()
    program = b.build()
"""

from __future__ import annotations

import contextlib
import itertools
from typing import Dict, Iterator, List, Optional, Union

from .instructions import (
    ALU_OPS,
    BRANCH_OPS,
    MUL_OPS,
    NUM_REGS,
    SP,
    Instruction,
    OpClass,
    Segment,
    SyscallKind,
    classify,
)
from .program import Program

RegLike = Union[int, str]

_REG_ALIASES = {"zero": 0, "sp": SP, "rv": 1}


def reg(r: RegLike) -> int:
    """Resolve a register name ('r7', 'sp', 'zero') or index to an index."""
    if isinstance(r, int):
        idx = r
    elif r in _REG_ALIASES:
        idx = _REG_ALIASES[r]
    elif r.startswith("r") and r[1:].isdigit():
        idx = int(r[1:])
    else:
        raise ValueError(f"bad register: {r!r}")
    if not 0 <= idx < NUM_REGS:
        raise ValueError(f"register index out of range: {idx}")
    return idx


class ProgramBuilder:
    """Accumulates instructions and labels, then builds a :class:`Program`."""

    def __init__(self, name: str):
        self.name = name
        self._insts: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._fresh = itertools.count()

    # ------------------------------------------------------------------
    # low-level emission
    # ------------------------------------------------------------------
    def emit(self, inst: Instruction) -> "ProgramBuilder":
        self._insts.append(inst)
        return self

    def label(self, name: str) -> str:
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insts)
        return name

    def fresh(self, stem: str = "L") -> str:
        return f"_{stem}_{next(self._fresh)}"

    @property
    def pc(self) -> int:
        return len(self._insts)

    # ------------------------------------------------------------------
    # scalar ALU ops
    # ------------------------------------------------------------------
    def _alu(self, op: str, dst: RegLike, *srcs: RegLike, imm: int = 0) -> "ProgramBuilder":
        return self.emit(
            Instruction(
                op=op,
                cls=classify(op),
                dst=reg(dst),
                srcs=tuple(reg(s) for s in srcs),
                imm=imm,
            )
        )

    def li(self, dst: RegLike, imm: int) -> "ProgramBuilder":
        return self._alu("li", dst, imm=imm)

    def mov(self, dst: RegLike, src: RegLike) -> "ProgramBuilder":
        return self._alu("mov", dst, src)

    def __getattr__(self, op: str):
        """Expose every ALU/MUL mnemonic as a method (add, addi, mul, ...)."""
        if op in ALU_OPS or op in MUL_OPS:

            def emitter(dst: RegLike, *srcs, imm: int = 0):
                regs = [s for s in srcs if isinstance(s, str) or isinstance(s, int)]
                # immediate forms: trailing int positional becomes imm
                if regs and isinstance(regs[-1], int) and op.endswith("i"):
                    imm = regs.pop()
                return self._alu(op, dst, *regs, imm=imm)

            return emitter
        raise AttributeError(op)

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def ld(
        self,
        dst: RegLike,
        base: RegLike,
        offset: int = 0,
        segment: Segment = Segment.HEAP,
        size: int = 8,
        note: str = "",
    ) -> "ProgramBuilder":
        return self.emit(
            Instruction(
                op="ld",
                cls=OpClass.LOAD,
                dst=reg(dst),
                srcs=(reg(base),),
                imm=offset,
                segment=segment,
                size=size,
                note=note,
            )
        )

    def st(
        self,
        src: RegLike,
        base: RegLike,
        offset: int = 0,
        segment: Segment = Segment.HEAP,
        size: int = 8,
        note: str = "",
    ) -> "ProgramBuilder":
        return self.emit(
            Instruction(
                op="st",
                cls=OpClass.STORE,
                srcs=(reg(base), reg(src)),
                imm=offset,
                segment=segment,
                size=size,
                note=note,
            )
        )

    def vld(self, dst: RegLike, base: RegLike, offset: int = 0,
            segment: Segment = Segment.HEAP) -> "ProgramBuilder":
        """SIMD load of one 32B vector."""
        return self.emit(
            Instruction(op="vld", cls=OpClass.LOAD, dst=reg(dst),
                        srcs=(reg(base),), imm=offset, segment=segment,
                        size=32)
        )

    def vst(self, src: RegLike, base: RegLike, offset: int = 0,
            segment: Segment = Segment.HEAP) -> "ProgramBuilder":
        return self.emit(
            Instruction(op="vst", cls=OpClass.STORE,
                        srcs=(reg(base), reg(src)), imm=offset,
                        segment=segment, size=32)
        )

    def vop(self, dst: RegLike, *srcs: RegLike, note: str = "") -> "ProgramBuilder":
        """Opaque SIMD arithmetic op (fma over one vector register)."""
        return self.emit(
            Instruction(op="vop", cls=OpClass.SIMD, dst=reg(dst),
                        srcs=tuple(reg(s) for s in srcs), note=note)
        )

    def amoadd(self, dst: RegLike, base: RegLike, src: RegLike,
               offset: int = 0, note: str = "") -> "ProgramBuilder":
        """Atomic fetch-and-add (executes at the shared L3 on the RPU)."""
        return self.emit(
            Instruction(op="amoadd", cls=OpClass.ATOMIC, dst=reg(dst),
                        srcs=(reg(base), reg(src)), imm=offset,
                        segment=Segment.HEAP, note=note)
        )

    def amoswap(self, dst: RegLike, base: RegLike, src: RegLike,
                offset: int = 0, note: str = "") -> "ProgramBuilder":
        """Atomic swap; the workhorse of spin locks."""
        return self.emit(
            Instruction(op="amoswap", cls=OpClass.ATOMIC, dst=reg(dst),
                        srcs=(reg(base), reg(src)), imm=offset,
                        segment=Segment.HEAP, note=note)
        )

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------
    def branch(self, op: str, a: RegLike, b: RegLike, target: str) -> "ProgramBuilder":
        if op not in BRANCH_OPS:
            raise ValueError(f"not a branch op: {op}")
        return self.emit(
            Instruction(op=op, cls=OpClass.BRANCH,
                        srcs=(reg(a), reg(b)), target=target)
        )

    def beq(self, a, b, t): return self.branch("beq", a, b, t)
    def bne(self, a, b, t): return self.branch("bne", a, b, t)
    def blt(self, a, b, t): return self.branch("blt", a, b, t)
    def bge(self, a, b, t): return self.branch("bge", a, b, t)
    def ble(self, a, b, t): return self.branch("ble", a, b, t)
    def bgt(self, a, b, t): return self.branch("bgt", a, b, t)

    def jmp(self, target: str) -> "ProgramBuilder":
        return self.emit(Instruction(op="jmp", cls=OpClass.JUMP, target=target))

    def call(self, target: str, frame: int = 64) -> "ProgramBuilder":
        """Call ``target``; ``frame`` bytes are reserved on the stack and
        the return address is pushed (a stack-segment store)."""
        return self.emit(
            Instruction(op="call", cls=OpClass.CALL, target=target,
                        imm=frame, segment=Segment.STACK, size=8)
        )

    def ret(self) -> "ProgramBuilder":
        """Return: pops the saved return address (a stack-segment load)."""
        return self.emit(
            Instruction(op="ret", cls=OpClass.RET, segment=Segment.STACK,
                        size=8)
        )

    def syscall(self, kind: SyscallKind, note: str = "") -> "ProgramBuilder":
        return self.emit(
            Instruction(op="syscall", cls=OpClass.SYSCALL, syscall=kind,
                        note=note)
        )

    def fence(self) -> "ProgramBuilder":
        return self.emit(Instruction(op="fence", cls=OpClass.FENCE))

    def nop(self) -> "ProgramBuilder":
        return self.emit(Instruction(op="nop", cls=OpClass.NOP))

    def halt(self) -> "ProgramBuilder":
        return self.emit(Instruction(op="halt", cls=OpClass.HALT))

    # ------------------------------------------------------------------
    # structured helpers
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def loop(self, counter: RegLike) -> Iterator[None]:
        """``while (counter > 0) { body; counter-- }`` loop."""
        head = self.fresh("loop")
        done = self.fresh("done")
        self.label(head)
        self.ble(counter, "zero", done)
        yield
        self.addi(counter, counter, -1)
        self.jmp(head)
        self.label(done)

    def counted_loop(self, counter: RegLike, body, cursors=(),
                     unroll: int = 1) -> "ProgramBuilder":
        """Emit a (possibly unrolled) counted loop.

        ``body(j)`` emits the code for one element with unroll offset
        ``j`` (use ``j * step`` as the extra displacement off the cursor
        registers).  ``cursors`` is a sequence of ``(reg, step)`` pairs
        advanced once per unrolled block.  With ``unroll > 1`` a main
        loop consumes ``unroll`` elements per iteration - the register
        recurrence (counter/cursor updates) then costs one ALU op per
        ``unroll`` elements, matching what ``-O3`` does to hot loops -
        and a remainder loop handles the tail.  ``r31`` is reserved as
        the assembler temporary.
        """
        if unroll <= 1:
            with self.loop(counter):
                body(0)
                for reg, step in cursors:
                    self.addi(reg, reg, step)
            return self
        u = "r31"
        main = self.fresh("umain")
        rem = self.fresh("urem")
        done = self.fresh("udone")
        self.li(u, unroll)
        self.label(main)
        self.blt(counter, u, rem)
        for j in range(unroll):
            body(j)
        for reg, step in cursors:
            self.addi(reg, reg, step * unroll)
        self.addi(counter, counter, -unroll)
        self.jmp(main)
        self.label(rem)
        self.ble(counter, "zero", done)
        body(0)
        for reg, step in cursors:
            self.addi(reg, reg, step)
        self.addi(counter, counter, -1)
        self.jmp(rem)
        self.label(done)
        return self

    @contextlib.contextmanager
    def if_(self, op: str, a: RegLike, b: RegLike) -> Iterator[None]:
        """Execute body when ``a <op> b`` holds."""
        skip = self.fresh("endif")
        self.branch(_negate(op), a, b, skip)
        yield
        self.label(skip)

    def if_else(self, op: str, a: RegLike, b: RegLike, then_body, else_body) -> "ProgramBuilder":
        """Emit ``if (a <op> b) then_body() else else_body()``.

        The bodies are zero-argument callables that emit into this
        builder, which keeps divergent-branch authoring one-liner short.
        """
        else_lab = self.fresh("else")
        end_lab = self.fresh("endif")
        self.branch(_negate(op), a, b, else_lab)
        then_body()
        self.jmp(end_lab)
        self.label(else_lab)
        else_body()
        self.label(end_lab)
        return self

    # ------------------------------------------------------------------
    def build(self) -> Program:
        return Program(self.name, list(self._insts), dict(self._labels))


def _negate(op: str) -> str:
    return {
        "beq": "bne", "bne": "beq",
        "blt": "bge", "bge": "blt",
        "ble": "bgt", "bgt": "ble",
    }[op]
