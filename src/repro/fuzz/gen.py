"""Seeded random program generator for differential fuzzing.

Programs are described by *specs*: plain dicts of JSON-serializable
construct descriptions.  A spec is deterministic to rebuild, cheap to
pickle across the parallel driver, and easy to shrink (drop a
construct, lower a trip count) - which is what makes the greedy
minimizer in :mod:`repro.fuzz.oracle` possible.

Generated programs always terminate under every policy *they are run
under*: loops are bounded, divergent trip counts come from per-thread
ABI registers, and spin locks come in two flavours.  ``spin_lock``
retries a bounded number of times before giving up, so it is safe
everywhere.  ``spin_unbounded`` retries forever - the construct that
*requires* MinSP-PC's spin-escape hatch to make progress - so specs
containing it are restricted to the policies that can terminate it
(:data:`POLICY_LIMITED`: ``solo`` runs threads alone against a free
lock, ``minsp_pc`` rotates selection to the lock holder; stack-IPDOM
and predication have no escape and would livelock).
The generator is deliberately biased toward the paper's hard cases:
branches around reconvergence points, loops with divergent trip
counts, mixed stack/heap access streams and system calls issued from
inside divergent regions.

Register map (on top of the workload ABI in ``repro.workloads.base``):

===== ==========================================================
reg   meaning
===== ==========================================================
r9    running accumulator, stored to scratch before halt
r10   copy of r2 (request size)
r11   copy of r3 (request key)
r12   copy of r8 (thread id, set up by the fuzz harness)
r15+  per-construct scratch, re-initialized by each construct
===== ==========================================================
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..engine.memory import GLOBAL_BASE
from ..isa.builder import ProgramBuilder
from ..isa.instructions import Segment, SyscallKind
from ..isa.program import Program
from ..isa.validator import validate


class GeneratorError(Exception):
    """A spec produced an invalid program (a generator bug, not a
    simulator bug - the oracle treats these as fatal)."""


#: constructs whose cross-thread interleaving is policy-visible; specs
#: containing one are only checked for fast-vs-reference agreement
#: (plus ipdom==predicated), never across policies
RACY_KINDS = frozenset({"spin_lock", "atomic_rmw", "spin_unbounded"})

#: constructs that only terminate under a subset of the policies;
#: a spec's policy matrix is the intersection over its constructs
#: (:func:`spec_policies`)
POLICY_LIMITED = {"spin_unbounded": ("solo", "minsp_pc")}

_ALL_POLICIES = ("solo", "ipdom", "minsp_pc", "predicated")


def spec_policies(spec: Dict) -> Tuple[str, ...]:
    """The policies a spec may run under (order of the full matrix).

    Unrestricted specs return all four; a spec containing a
    policy-limited construct (e.g. ``spin_unbounded``) returns the
    intersection of every construct's allowance.
    """
    allowed = _ALL_POLICIES
    for c in spec["constructs"]:
        limit = POLICY_LIMITED.get(c["kind"])
        if limit is not None:
            allowed = tuple(p for p in allowed if p in limit)
    return allowed

#: two-source ALU/MUL ops safe for arbitrary register operands
_REG_OPS = ("add", "sub", "xor", "and", "or", "min", "max", "slt",
            "hash", "mul", "div", "rem")

#: immediate-form ops (shift amounts kept small to bound magnitudes)
_IMM_OPS = ("addi", "xori", "andi", "ori", "shli", "shri", "muli")

_BRANCH_OPS = ("beq", "bne", "blt", "bge", "ble", "bgt")

_SYSCALLS = ("network", "storage", "memcached", "log")


def spec_is_racy(spec: Dict) -> bool:
    return any(c["kind"] in RACY_KINDS for c in spec["constructs"])


# ----------------------------------------------------------------------
# spec generation
# ----------------------------------------------------------------------

def gen_spec(rng: random.Random, max_constructs: int = 5) -> Dict:
    """Draw one program spec (all fields JSON-serializable)."""
    kinds = (
        ["divergent_if"] * 3
        + ["bounded_loop"] * 2
        + ["heap_stream"] * 2
        + ["alu_run"] * 2
        + ["simd_stream"] * 2
        + ["stack_frame", "call_chain", "recursive", "spin_lock",
           "spin_unbounded", "atomic_rmw", "syscall", "global_read"]
    )
    n = rng.randint(1, max_constructs)
    constructs = [_gen_construct(rng, rng.choice(kinds))
                  for _ in range(n)]
    spec = {
        "seed": rng.randrange(1 << 31),
        "n_threads": rng.randint(2, 8),
        "salt": rng.randrange(4),
        "constructs": constructs,
    }
    # occasionally move a divergent_if's reconvergence point past its
    # immediate post-dominator, the way profile-guided reconvergence
    # does for the paper's midtier services: entries are
    # [construct_index, target] where target is a later construct index
    # or "epilogue" (resolved to pcs by spec_reconv_override)
    overrides = []
    for i, c in enumerate(constructs):
        if c["kind"] == "divergent_if" and rng.random() < 0.35:
            later: List = list(range(i + 1, len(constructs)))
            later.append("epilogue")
            overrides.append([i, rng.choice(later)])
    if overrides:
        spec["reconv_override"] = overrides
    return spec


def spec_reconv_override(spec: Dict, program: Program):
    """Resolve a spec's ``reconv_override`` entries to a pc map.

    Returns ``None`` when the spec has no overrides.  Entries whose
    labels no longer exist (the construct was dropped by shrinking) or
    that would move reconvergence backwards are skipped: every emitted
    ``c*_top``/``epilogue`` label sits on the straight-line construct
    spine all lanes execute, so any forward target is a valid (if not
    immediate) post-dominator of the branch.
    """
    entries = spec.get("reconv_override")
    if not entries:
        return None
    labels = program.labels
    out: Dict[int, int] = {}
    for idx, target in entries:
        br = labels.get(f"c{idx}_br")
        name = "epilogue" if target == "epilogue" else f"c{target}_top"
        tgt = labels.get(name)
        if br is None or tgt is None or tgt <= br:
            continue
        out[br] = tgt
    return out or None


def _gen_construct(rng: random.Random, kind: str) -> Dict:
    if kind == "alu_run":
        ops = []
        for _ in range(rng.randint(2, 8)):
            if rng.random() < 0.3:
                ops.append({"op": rng.choice(_IMM_OPS),
                            "val": rng.randint(1, 8)})
            else:
                ops.append({"op": rng.choice(_REG_OPS),
                            "src": rng.choice(("imm", "tid", "key")),
                            "val": rng.randint(1, 64)})
        return {"kind": kind, "init": rng.randint(1, 64), "ops": ops}
    if kind == "heap_stream":
        return {"kind": kind,
                "counter": rng.choice(("size", "tid", "const")),
                "trips": rng.randint(1, 8),
                "base": rng.choice(("inbuf", "scratch")),
                "store": rng.random() < 0.5,
                "unroll": rng.choice((1, 1, 2, 4))}
    if kind == "simd_stream":
        # inbuf is guaranteed only 64 bytes (2 vectors); scratch is 256
        base = rng.choice(("inbuf", "scratch"))
        return {"kind": kind, "base": base,
                "vecs": rng.randint(1, 2 if base == "inbuf" else 4),
                "counter": rng.choice(("const", "size")),
                "ops_per_vec": rng.randint(1, 3),
                "store": rng.random() < 0.5,
                "unroll": rng.choice((1, 1, 2))}
    if kind == "global_read":
        return {"kind": kind, "offset": rng.randrange(1 << 14) * 8,
                "words": rng.randint(1, 4)}
    if kind == "divergent_if":
        c = {"kind": kind,
             "cond": rng.choice(("tid", "key", "mem")),
             "op": rng.choice(_BRANCH_OPS),
             "thresh": rng.randint(0, 7),
             "then_add": rng.randint(1, 64),
             "else_xor": rng.randint(1, 64),
             "then_syscall": rng.choice((None,) + _SYSCALLS),
             "else_syscall": rng.choice((None, None, None, "log")),
             "nested": rng.random() < 0.4}
        if c["nested"]:
            c["nested_op"] = rng.choice(_BRANCH_OPS)
        return c
    if kind == "bounded_loop":
        return {"kind": kind, "mask": rng.choice((1, 3, 7)),
                "body_ops": rng.randint(1, 4),
                "inner": rng.random() < 0.4,
                "inner_trips": rng.randint(1, 3)}
    if kind == "stack_frame":
        return {"kind": kind, "spills": rng.randint(1, 4),
                "work": rng.randint(1, 4),
                "frame": rng.choice((48, 64)),
                "seed_val": rng.randint(1, 64)}
    if kind == "call_chain":
        depth = rng.randint(2, 3)
        return {"kind": kind,
                "frames": [rng.choice((48, 64)) for _ in range(depth)],
                "spills": [rng.randint(1, 3) for _ in range(depth)],
                "work": [rng.randint(1, 3) for _ in range(depth)],
                "seed_val": rng.randint(1, 64),
                "divergent": rng.random() < 0.5}
    if kind == "recursive":
        return {"kind": kind, "depth": rng.randint(2, 5),
                "frame": rng.choice((48, 64)),
                "work": rng.randint(1, 2),
                "divergent": rng.random() < 0.5}
    if kind == "spin_lock":
        return {"kind": kind, "retries": rng.randint(2, 6),
                "crit_ops": rng.randint(1, 3)}
    if kind == "spin_unbounded":
        return {"kind": kind, "crit_ops": rng.randint(1, 3)}
    if kind == "atomic_rmw":
        return {"kind": kind, "op": rng.choice(("amoadd", "amoswap")),
                "offset": rng.choice((16, 24)),
                "src": rng.choice(("tid", "const")),
                "val": rng.randint(1, 16)}
    if kind == "syscall":
        return {"kind": kind, "syscall": rng.choice(_SYSCALLS)}
    raise GeneratorError(f"unknown construct kind {kind!r}")


# ----------------------------------------------------------------------
# spec -> Program
# ----------------------------------------------------------------------

def build_program(spec: Dict) -> Program:
    """Deterministically assemble a spec into a validated Program."""
    b = ProgramBuilder(f"fuzz_{spec['seed']:08x}")
    helpers: List[Tuple[str, Dict]] = []

    # prologue: accumulator + stable copies of the divergence sources.
    # The trailing `sub` and the 2-trip loop guarantee every program
    # exercises a fused binary op and a `ble` loop branch, so the
    # mutation self-check (scripts/fuzz_selfcheck.py) detects its
    # seeded engine bugs on any spec.
    b.li("r9", 0)
    b.mov("r10", "r2")
    b.mov("r11", "r3")
    b.mov("r12", "r8")
    b.sub("r9", "r9", "r12")
    b.li("r15", 2)
    with b.loop("r15"):
        b.addi("r9", "r9", 3)

    for idx, c in enumerate(spec["constructs"]):
        # construct-boundary label: a reconv_override target (every
        # lane passes through every boundary on the construct spine)
        b.label(f"c{idx}_top")
        _EMITTERS[c["kind"]](b, c, idx, helpers)

    # epilogue: make the accumulator memory-observable, then halt
    b.label("epilogue")
    b.st("r9", "r5", 0, Segment.HEAP)
    b.halt()
    for label, c in helpers:
        _emit_helper(b, label, c)

    program = b.build()
    report = validate(program)
    if not report.ok:
        raise GeneratorError(
            "generated program fails validation:\n"
            + "\n".join(str(i) for i in report.errors)
            + "\n" + program.listing())
    return program


def _emit_alu_run(b, c, idx, helpers):
    b.li("r15", c["init"])
    for step in c["ops"]:
        op = step["op"]
        if op in _IMM_OPS:
            getattr(b, op)("r15", "r15", step["val"])
            continue
        if step["src"] == "imm":
            b.li("r16", step["val"])
        elif step["src"] == "tid":
            b.mov("r16", "r12")
        else:
            b.mov("r16", "r11")
        getattr(b, op)("r15", "r15", "r16")
    b.add("r9", "r9", "r15")


def _emit_heap_stream(b, c, idx, helpers):
    if c["counter"] == "size":
        b.mov("r17", "r10")
    elif c["counter"] == "tid":
        b.andi("r17", "r12", 3)
        b.addi("r17", "r17", 1)
    else:
        b.li("r17", c["trips"])
    b.mov("r18", "r4" if c["base"] == "inbuf" else "r5")

    def body(j):
        b.ld("r20", "r18", 8 * j, Segment.HEAP)
        b.add("r9", "r9", "r20")
        if c["store"]:
            b.st("r9", "r18", 8 * j, Segment.HEAP)

    b.counted_loop("r17", body, cursors=(("r18", 8),),
                   unroll=c["unroll"])


def _emit_simd_stream(b, c, idx, helpers):
    """Streaming vld/vop/vst over the thread's own buffer, mirroring
    ``kernels.emit_simd_stream``.  ``vop`` is architecturally opaque, so
    each loaded word is also folded into the scalar accumulator (and a
    stored word reloaded through a scalar ``ld``) - the differential
    oracle would otherwise never see a wrong vector address."""
    base_reg = "r4" if c["base"] == "inbuf" else "r5"
    b.mov("r19", base_reg)
    b.li("r30", c["vecs"])
    if c["counter"] == "size":
        # divergent vector trip counts (r10 = request size, 1..6)
        b.min("r30", "r30", "r10")

    def body(j):
        b.vld("r27", "r19", 32 * j, Segment.HEAP)
        for _ in range(c["ops_per_vec"]):
            b.vop("r28", "r28", "r27", note="fma")
        if c["store"]:
            b.vst("r28", "r19", 32 * j, Segment.HEAP)
        b.add("r9", "r9", "r27")

    b.counted_loop("r30", body, cursors=(("r19", 32),),
                   unroll=c["unroll"])
    if c["store"]:
        b.ld("r26", base_reg, 0, Segment.HEAP)
        b.add("r9", "r9", "r26")


def _emit_global_read(b, c, idx, helpers):
    b.li("r21", GLOBAL_BASE + c["offset"])
    for i in range(c["words"]):
        b.ld("r22", "r21", 8 * i, Segment.GLOBAL)
        b.add("r9", "r9", "r22")


def _emit_divergent_if(b, c, idx, helpers):
    if c["cond"] == "tid":
        b.mov("r23", "r12")
    elif c["cond"] == "key":
        b.andi("r23", "r11", 7)
    else:
        b.ld("r23", "r4", 0, Segment.HEAP)
        b.andi("r23", "r23", 15)
    b.li("r24", c["thresh"])

    def then_body():
        b.addi("r9", "r9", c["then_add"])
        if c["then_syscall"]:
            b.syscall(SyscallKind(c["then_syscall"]),
                      note="mid-divergence")
        if c.get("nested"):
            with b.if_(c["nested_op"], "r23", "zero"):
                b.xori("r9", "r9", 21)

    def else_body():
        b.xori("r9", "r9", c["else_xor"])
        if c["else_syscall"]:
            b.syscall(SyscallKind(c["else_syscall"]),
                      note="mid-divergence")

    # if_else emits its branch first, so this label names the branch pc
    # (the key of a reconv_override entry)
    b.label(f"c{idx}_br")
    b.if_else(c["op"], "r23", "r24", then_body, else_body)


def _emit_bounded_loop(b, c, idx, helpers):
    b.andi("r25", "r12", c["mask"])
    b.addi("r25", "r25", 1)
    with b.loop("r25"):
        for _ in range(c["body_ops"]):
            b.hash("r9", "r9", "r25")
        if c["inner"]:
            b.li("r26", c["inner_trips"])
            with b.loop("r26"):
                b.add("r9", "r9", "r26")


def _emit_stack_frame(b, c, idx, helpers):
    label = f"c{idx}_fn"
    b.li("r15", c["seed_val"])
    b.call(label, frame=c["frame"])
    b.add("r9", "r9", "r15")
    helpers.append((label, c))


def _emit_call_chain(b, c, idx, helpers):
    """Multi-level nested calls (2-3 deep); the ``divergent`` variant
    skips the innermost call on thread 0, leaving lanes at different
    call depths mid-batch - the MinSP-PC deep-stack-first case."""
    b.li("r15", c["seed_val"])
    b.call(f"c{idx}_lvl0", frame=c["frames"][0])
    b.add("r9", "r9", "r15")
    helpers.append((f"c{idx}_lvl0", c))


def _emit_recursive(b, c, idx, helpers):
    """Self-recursive helper with a register countdown.

    The depth is uniform across lanes: per-lane recursion depth would
    put the countdown branch's reconvergence point *inside* the
    recursive body, which stack-based IPDOM correctly rejects as
    irreducible.  The ``divergent`` variant instead has odd lanes skip
    the whole recursion, so lanes still sit at different call depths
    mid-batch while reconvergence stays at the (reducible) call site.
    """
    label = f"c{idx}_rec"
    b.li("r15", c["depth"])
    b.li("r16", 0)
    if c["divergent"]:
        b.andi("r17", "r12", 1)
        with b.if_("bne", "r17", "zero"):
            b.call(label, frame=c["frame"])
    else:
        b.call(label, frame=c["frame"])
    b.add("r9", "r9", "r16")
    helpers.append((label, c))


def _emit_helper(b, label, c):
    """Helper bodies (emitted after the final halt, as the workload
    kernels do): spill/work/reload produces the mixed stack streams the
    stack-interleaving layer has to get right."""
    if c["kind"] == "call_chain":
        depth = min(len(c["frames"]), len(c["spills"]), len(c["work"]))
        for lvl in range(depth):
            b.label(label if lvl == 0 else f"{label[:-1]}{lvl}")
            spills = c["spills"][lvl]
            for i in range(spills):
                b.st(f"r{16 + i}", "sp", 8 * (i + 1), Segment.STACK)
            for _ in range(c["work"][lvl]):
                b.hash("r15", "r15", "r12")
            if lvl + 1 < depth:
                inner = f"{label[:-1]}{lvl + 1}"
                if c["divergent"] and lvl + 2 == depth:
                    with b.if_("bne", "r12", "zero"):
                        b.call(inner, frame=c["frames"][lvl + 1])
                else:
                    b.call(inner, frame=c["frames"][lvl + 1])
            for i in range(spills):
                b.ld(f"r{16 + i}", "sp", 8 * (i + 1), Segment.STACK)
            b.ret()
        return
    if c["kind"] == "recursive":
        base = f"{label}_base"
        b.label(label)
        b.st("r17", "sp", 8, Segment.STACK)
        for _ in range(c["work"]):
            b.hash("r16", "r16", "r12")
        b.ble("r15", "zero", base)
        b.addi("r15", "r15", -1)
        b.call(label, frame=c["frame"])
        b.label(base)
        b.ld("r17", "sp", 8, Segment.STACK)
        b.ret()
        return
    b.label(label)
    for i in range(c["spills"]):
        b.st(f"r{16 + i}", "sp", 8 * (i + 1), Segment.STACK)
    for _ in range(c["work"]):
        b.hash("r15", "r15", "r12")
    for i in range(c["spills"]):
        b.ld(f"r{16 + i}", "sp", 8 * (i + 1), Segment.STACK)
    b.ret()


def _emit_spin_lock(b, c, idx, helpers):
    """Bounded-retry spin lock on the shared lock word (r7).

    The retry count is bounded so the batch terminates even under
    IPDOM, which has no spin-escape: a loser that exhausts its retries
    gives up and skips the critical section.
    """
    retry = f"c{idx}_retry"
    acq = f"c{idx}_acq"
    done = f"c{idx}_done"
    b.li("r22", c["retries"])
    b.li("r23", 1)
    b.label(retry)
    b.amoswap("r24", "r7", "r23", note="lock acquire")
    b.beq("r24", "zero", acq)
    b.addi("r22", "r22", -1)
    b.bgt("r22", "zero", retry)
    b.jmp(done)
    b.label(acq)
    b.ld("r26", "r7", 8, Segment.HEAP)
    for _ in range(c["crit_ops"]):
        b.addi("r26", "r26", 1)
    b.st("r26", "r7", 8, Segment.HEAP)
    b.add("r9", "r9", "r26")
    b.amoswap("r27", "r7", "zero", note="lock release")
    b.label(done)


def _emit_spin_unbounded(b, c, idx, helpers):
    """*Unbounded*-retry spin lock on the shared lock word (r7).

    A loser retries forever, so a lockstep batch only terminates if the
    scheduler can hand cycles to the lock holder while others spin -
    exactly what MinSP-PC's spin-escape hatch (``spin_k``/``spin_b``/
    ``spin_t``) exists for.  Stack-IPDOM and predication have no such
    hatch and would livelock, hence the :data:`POLICY_LIMITED` entry
    restricting specs with this construct to ``solo`` + ``minsp_pc``.
    """
    retry = f"c{idx}_retry"
    b.li("r23", 1)
    b.label(retry)
    b.amoswap("r24", "r7", "r23", note="lock acquire (unbounded)")
    b.bne("r24", "zero", retry)
    b.ld("r26", "r7", 8, Segment.HEAP)
    for _ in range(c["crit_ops"]):
        b.addi("r26", "r26", 1)
    b.st("r26", "r7", 8, Segment.HEAP)
    b.add("r9", "r9", "r26")
    b.amoswap("r27", "r7", "zero", note="lock release")


def _emit_atomic_rmw(b, c, idx, helpers):
    if c["src"] == "tid":
        b.addi("r27", "r12", 1)
    else:
        b.li("r27", c["val"])
    getattr(b, c["op"])("r28", "r7", "r27", offset=c["offset"])
    b.add("r9", "r9", "r28")


def _emit_syscall(b, c, idx, helpers):
    b.syscall(SyscallKind(c["syscall"]))


_EMITTERS = {
    "alu_run": _emit_alu_run,
    "heap_stream": _emit_heap_stream,
    "simd_stream": _emit_simd_stream,
    "global_read": _emit_global_read,
    "divergent_if": _emit_divergent_if,
    "bounded_loop": _emit_bounded_loop,
    "stack_frame": _emit_stack_frame,
    "call_chain": _emit_call_chain,
    "recursive": _emit_recursive,
    "spin_lock": _emit_spin_lock,
    "spin_unbounded": _emit_spin_unbounded,
    "atomic_rmw": _emit_atomic_rmw,
    "syscall": _emit_syscall,
}
