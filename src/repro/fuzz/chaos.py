"""Chaos-conformance suite for the fleet tier.

The robustness analogue of the differential engine fuzzer: instead of
random ISA programs, it draws random-but-seeded *fault schedules* -
rack outages, request drops, stragglers, zone fail-stop windows, zone
brownouts, flash crowds and load steps - and sweeps each one against
every balancer x resilience policy, asserting the conservation
invariants that must survive any amount of injected chaos:

* **exactly-once resolution** - every offered request ends completed
  or violated, never both, never neither;
* **no orphaned work** - every station drains: nothing pending, no
  scheduled completion that never fired (the ``REPRO_SANITIZE=1``
  occupancy counters check this at every event too);
* **bounded energy horizon** - the billing window never runs away
  past the simulation horizon plus the worst-case tail of in-flight
  work;
* **byte-identical replay** - re-running a case produces the same
  digest, so any failure reproduces from ``(seed, balancer, policy)``
  alone.

Run a campaign with ``python -m repro.fuzz.chaos --seeds N``; the
stdout is deterministic (one line per case), which is what the CI
chaos-smoke job ``cmp``'s across serial / ``--jobs`` / heap-scheduler
legs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..system.arrivals import TrafficShape, generate_arrivals
from ..system.faults import FaultConfig
from ..system.fleet import BALANCERS, GRAPHS, FleetConfig, FleetSimulation
from ..system.resilience import ResilienceConfig
from ..system.seeding import stream_rng
from ..system.zones import ZoneConfig

#: one chaos case's simulated horizon (us) - small enough for a dense
#: seed matrix, long enough for several fault windows to land
HORIZON_US = 20_000.0
BASE_QPS = 40_000.0
REPLICAS = 4
RACK_SIZE = 2

#: the billing window may trail the horizon by in-flight tails (late
#: completions, deadline timers); anything past this is a leak
HORIZON_BOUND_US = 4.0 * HORIZON_US


class ChaosError(AssertionError):
    """A conservation invariant broke under an injected fault schedule."""


@dataclass(frozen=True)
class ChaosCase:
    """One cell of the campaign matrix (identifies a run completely)."""

    seed: int
    balancer: str
    resilient: bool


def gen_fault_schedule(seed: int) -> Tuple[TrafficShape, FaultConfig,
                                           ZoneConfig]:
    """Draw one fault schedule + traffic shape from ``seed`` alone.

    All draws come from ``stream_rng(seed, "chaos")`` up front - the
    schedule never consumes randomness during the simulation, matching
    the determinism contract of the fault layer itself.
    """
    rng = stream_rng(seed, "chaos")
    shape = TrafficShape(
        base_qps=BASE_QPS,
        flash_at_us=(rng.uniform(0.1, 0.5) * HORIZON_US
                     if rng.random() < 0.4 else -1.0),
        flash_duration_us=rng.uniform(0.05, 0.2) * HORIZON_US,
        flash_mult=rng.uniform(1.2, 2.0),
        step_at_us=(rng.uniform(0.3, 0.7) * HORIZON_US
                    if rng.random() < 0.3 else -1.0),
        step_mult=rng.uniform(0.6, 1.5),
    )
    faults = FaultConfig(
        seed=seed * 2 + 1,
        outage_rate_per_s=rng.uniform(0.0, 40.0),
        outage_min_us=500.0,
        outage_max_us=rng.uniform(1_000.0, 4_000.0),
        straggler_prob=rng.uniform(0.0, 0.05),
        straggler_mult=rng.uniform(2.0, 6.0),
        spike_prob=rng.uniform(0.0, 0.02),
        spike_us=rng.uniform(200.0, 1_000.0),
        drop_prob=rng.uniform(0.0, 0.02),
        horizon_us=HORIZON_US,
    )
    n_zones = -(-REPLICAS // RACK_SIZE)  # racks; one rack per zone below
    planned: Tuple[Tuple[int, float, float], ...] = ()
    if rng.random() < 0.5:
        z = rng.randrange(n_zones)
        start = rng.uniform(0.2, 0.6) * HORIZON_US
        planned = ((z, start, start + rng.uniform(0.1, 0.3) * HORIZON_US),)
    zones = ZoneConfig(
        racks_per_zone=1,
        seed=seed * 2 + 2,
        outage_rate_per_s=rng.uniform(0.0, 20.0),
        outage_min_us=500.0,
        outage_max_us=rng.uniform(1_000.0, 3_000.0),
        brownout_rate_per_s=rng.uniform(0.0, 30.0),
        brownout_min_us=1_000.0,
        brownout_max_us=rng.uniform(2_000.0, 6_000.0),
        brownout_mult=rng.uniform(1.5, 3.5),
        planned=planned,
        horizon_us=HORIZON_US,
    )
    return shape, faults, zones


def run_case(case: ChaosCase) -> dict:
    """Run one case and check its conservation invariants.

    Returns the shard payload extended with a replay ``digest``.
    Raises :class:`ChaosError` on any invariant violation.
    """
    shape, faults, zones = gen_fault_schedule(case.seed)
    resilience: Optional[ResilienceConfig] = None
    fleet = FleetConfig(replicas=REPLICAS, rack_size=RACK_SIZE,
                        balancer=case.balancer)
    if case.resilient:
        resilience = ResilienceConfig(deadline_us=10_000.0, max_retries=2)
        fleet = FleetConfig(replicas=REPLICAS, rack_size=RACK_SIZE,
                            balancer=case.balancer, health_check=True,
                            unhealthy_after=2, health_probe_us=1_500.0)
    arrivals = generate_arrivals(shape, HORIZON_US, case.seed,
                                 shard=0, n_shards=1)
    sim = FleetSimulation(GRAPHS["fleet_rpu"](), fleet, seed=case.seed,
                          faults=faults, resilience=resilience,
                          shard=0, zones=zones)
    payload = sim.run_arrivals(arrivals, HORIZON_US)

    n = payload["n"]
    completed = payload["completed"]
    violated = payload["violated"]
    if completed + violated != n:
        raise ChaosError(
            f"{case}: {n} requests but {completed} completed + "
            f"{violated} violated (lost or duplicated work)")
    if payload["horizon_us"] > HORIZON_BOUND_US:
        raise ChaosError(
            f"{case}: billing horizon {payload['horizon_us']:.1f}us ran "
            f"away past the {HORIZON_BOUND_US:.0f}us bound")
    for rs in sim.replica_sets.values():
        for st in rs.stations:
            if st._pending:
                raise ChaosError(
                    f"{case}: station {st.name} stranded "
                    f"{len(st._pending)} jobs")
            if st.open_jobs or st.open_groups:
                raise ChaosError(
                    f"{case}: station {st.name} left {st.open_jobs} jobs"
                    f" / {st.open_groups} groups in flight")
    payload["digest"] = case_digest(payload)
    return payload


def case_digest(payload: dict) -> int:
    """CRC-32 over the payload's canonical repr: two runs of the same
    case must match bit-for-bit, latencies included."""
    canon = repr(sorted(
        (k, v) for k, v in payload.items() if k != "digest"))
    return zlib.crc32(canon.encode("ascii")) & 0xFFFFFFFF


def case_line(case: ChaosCase, payload: dict) -> str:
    """One deterministic stdout line per case (the CI ``cmp`` unit)."""
    return (f"seed {case.seed:3d}  {case.balancer:<12s} "
            f"{'resilient' if case.resilient else 'bare':<9s} "
            f"n {payload['n']:4d}  done {payload['completed']:4d}  "
            f"viol {payload['violated']:4d}  "
            f"faults {payload['fault_failures']:4d}  "
            f"ej {payload['ejections']:3d}  "
            f"digest {payload['digest']:08x}")


def campaign_cases(seeds: Sequence[int],
                   balancers: Sequence[str] = BALANCERS
                   ) -> List[ChaosCase]:
    return [ChaosCase(seed=s, balancer=b, resilient=r)
            for s in seeds
            for b in balancers
            for r in (False, True)]


def _case_worker(case: ChaosCase) -> Tuple[dict, dict]:
    """Worker entry: run the case twice and pin byte-identical replay."""
    first = run_case(case)
    second = run_case(case)
    if first["digest"] != second["digest"]:
        raise ChaosError(
            f"{case}: replay diverged "
            f"({first['digest']:08x} != {second['digest']:08x})")
    return first, second


def run_campaign(seeds: Sequence[int],
                 balancers: Sequence[str] = BALANCERS,
                 jobs: Optional[int] = None) -> List[Tuple[ChaosCase, dict]]:
    """Sweep the full matrix through the parallel driver (bit-identical
    for any ``jobs``); every case is replay-checked in its worker."""
    from ..experiments.common import parallel_map

    cases = campaign_cases(seeds, balancers)
    results = parallel_map(_case_worker, cases, jobs=jobs)
    return [(c, first) for c, (first, _second) in zip(cases, results)]


def main(argv=None) -> int:
    """CLI: ``python -m repro.fuzz.chaos --seeds N --jobs J``."""
    import argparse
    import os

    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz.chaos",
        description="chaos-conformance sweep of the fleet tier")
    parser.add_argument(
        "--seeds", type=int,
        default=int(os.environ.get("REPRO_CHAOS_SEEDS", "20")),
        help="fault-schedule seeds (default REPRO_CHAOS_SEEDS or 20)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default REPRO_JOBS or 1)")
    parser.add_argument("--balancers", default=",".join(BALANCERS),
                        help="comma-separated balancer subset")
    args = parser.parse_args(argv)

    balancers = tuple(b for b in args.balancers.split(",") if b)
    for b in balancers:
        if b not in BALANCERS:
            parser.error(f"unknown balancer {b!r}")

    # sanitizers on before any worker forks, like the engine fuzzer;
    # an explicit REPRO_SANITIZE=0 from the caller wins.  Restored on
    # exit so in-process callers (the test suite) keep their env.
    inherited = os.environ.get("REPRO_SANITIZE")
    os.environ.setdefault("REPRO_SANITIZE", "1")
    try:
        results = run_campaign(range(args.seeds), balancers,
                               jobs=args.jobs)
    finally:
        if inherited is None:
            os.environ.pop("REPRO_SANITIZE", None)
    for case, payload in results:
        print(case_line(case, payload))
    total = len(results)
    print(f"chaos: {total} cases ({args.seeds} seeds x "
          f"{len(balancers)} balancers x 2 policies): all invariants held")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
