"""Differential oracle: reference vs fast path, across every policy.

For one spec the oracle runs the program

* under each policy the spec admits (:func:`repro.fuzz.gen
  .spec_policies` - all of ``solo``, ``ipdom``, ``minsp_pc``,
  ``predicated`` unless a construct like ``spin_unbounded`` only
  terminates under a subset) with the pre-decoded fast path and with
  the ``execute()``-based reference loop, asserting bit-identical
  registers, memory, syscall traces, call stacks and
  ``LockstepResult`` counters;
* a second, identical fast-path run per lockstep policy: the first run
  populated the grain-memo tables (:mod:`repro.engine.memo`), so the
  repeat is dominated by memoized replay and must still be
  bit-identical - plus a witness run with ``REPRO_MEMO=0`` and
  ``REPRO_BOUNDED=0``, pinning that neither memoization nor the
  bounded-int lanes are architecturally visible (a
  :class:`~repro.store.CacheVerifyError` raised by a poisoned memo
  entry counts as a mismatch, not a crash);
* once more per policy with an event-recording sink under *both*
  engines (the fast path keeps pre-decoded dispatch when a sink is
  attached), asserting the two sink runs match each other and the
  sink-free reference bit-for-bit - including the full
  ``(pc, inst, active, addrs, outcomes)`` event stream - and that the
  mask history is consistent with the counters;
* across policies: ``ipdom`` and ``predicated`` are architecturally
  identical by construction and must agree on *everything*; for
  race-free specs (no atomics / spin locks) every policy must reach the
  same architectural state as solo execution;
* through the batching layer: each request-batching policy
  (:mod:`repro.batching.policies`) partitions the spec's threads into
  lockstep batches; the partition must cover every request exactly
  once, and for race-free specs the per-request architectural results
  must be bit-identical to solo execution no matter how the policy
  grouped them.

A failing spec is greedily shrunk (drop constructs, fewer threads,
smaller parameters) and written out as a standalone repro file.
"""

from __future__ import annotations

import contextlib
import copy
import dataclasses
import os
import pprint
import random
from typing import Dict, List, Optional

from ..batching.policies import POLICIES as BATCHING_POLICIES
from ..batching.policies import form_batches
from ..engine.events import StepSink
from ..engine.lockstep import ExecutionError, make_executor
from ..engine.memory import MemoryImage
from ..engine.thread import ThreadState
from ..memsys.alloc import SimrAwareAllocator
from ..sanitize import SanitizerError
from ..store import CacheVerifyError
from ..workloads.base import Request
from .gen import (GeneratorError, build_program, spec_is_racy,
                  spec_policies, spec_reconv_override)

POLICIES = ("solo", "ipdom", "minsp_pc", "predicated")

#: exception types the oracle reports as mismatches (a poisoned memo
#: entry surfacing as CacheVerifyError is a detected divergence, not
#: an oracle crash)
_ORACLE_ERRORS = (ExecutionError, SanitizerError, CacheVerifyError)


@contextlib.contextmanager
def _fastpath_features_off():
    """Run with grain memoization and bounded-int lanes disabled (the
    witness legs); restores the prior environment on exit."""
    saved = {k: os.environ.get(k) for k in ("REPRO_MEMO",
                                            "REPRO_BOUNDED")}
    os.environ["REPRO_MEMO"] = "0"
    os.environ["REPRO_BOUNDED"] = "0"
    try:
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v

#: observable state compared between runs of the *same* policy
_FIELDS = ("snapshots", "syscalls", "call_stacks", "memory", "result")

#: architectural state compared *across* policies (counters and step
#: totals legitimately differ between policies)
_ARCH_FIELDS = ("snapshots", "syscalls", "call_stacks", "memory")

DEFAULT_MAX_STEPS = 200_000


class ActiveMaskSink(StepSink):
    """Records the active-lane count and full event of every step.

    ``addrs``/``outcomes`` are copied: the fast path reuses its scratch
    list across steps (documented sink contract)."""

    def __init__(self):
        self.history: List[int] = []
        self.events: List[tuple] = []

    def on_step(self, pc, inst, active, addrs, outcomes) -> None:
        self.history.append(active)
        self.events.append(
            (pc, inst.op, active, tuple(addrs),
             tuple(outcomes) if outcomes else None)
        )

    def on_done(self) -> None:
        pass


def _setup_threads(spec: Dict, mem: MemoryImage) -> List[ThreadState]:
    """Mirror the workload ABI (repro.workloads.base) without a service:
    per-thread input buffers and scratch from the SIMR-aware allocator,
    shared table + lock words, r8 = tid."""
    alloc = SimrAwareAllocator()
    table = alloc.alloc_shared(4096)
    lock = alloc.alloc_shared(64)
    for off in (0, 8, 16, 24):
        mem.write(lock + off, 0)
    rng = random.Random(spec["seed"] * 0x9E3779B1 + 17)
    threads = []
    for tid in range(spec["n_threads"]):
        t = ThreadState(tid)
        t.regs[1] = rng.randrange(4)
        size = rng.randint(1, 6)
        t.regs[2] = size
        t.regs[3] = rng.randrange(1 << 24)
        inbuf = alloc.alloc(max(64, size * 8 + 16), tid)
        for i in range(size):
            mem.write(inbuf + 8 * i, (t.regs[3] * 31 + i * 7) & 0xFFFF)
        t.regs[4] = inbuf
        t.regs[5] = alloc.alloc(256, tid)
        t.regs[6] = table
        t.regs[7] = lock
        t.regs[8] = tid
        threads.append(t)
    return threads


def _run_one(spec: Dict, policy: str, fastpath: bool,
             with_mask: bool = False,
             max_steps: int = DEFAULT_MAX_STEPS) -> Dict:
    """One full execution; returns every observable final state.

    The program is rebuilt (and re-decoded) from the spec each time so
    runs never share a decode cache - which is also what lets the
    mutation self-check corrupt an engine between runs.
    """
    program = build_program(spec)
    mem = MemoryImage(salt=spec["salt"])
    threads = _setup_threads(spec, mem)
    sink = ActiveMaskSink() if with_mask else None
    kwargs = {}
    if policy in ("ipdom", "predicated"):
        override = spec_reconv_override(spec, program)
        if override is not None:
            kwargs["reconv_override"] = override
    ex = make_executor(program, policy, sink=sink, fastpath=fastpath,
                       max_steps=max_steps, **kwargs)
    if policy == "solo":
        result = [ex.run(t, mem) for t in threads]
    else:
        result = dataclasses.asdict(ex.run(threads, mem))
    return {
        "result": result,
        "snapshots": [t.snapshot() for t in threads],
        "syscalls": [list(t.syscall_trace) for t in threads],
        "call_stacks": [list(t.call_stack) for t in threads],
        "memory": {a: mem.read(a) for a in sorted(mem.written_addresses())},
        "mask": sink.history if sink is not None else None,
        "events": sink.events if sink is not None else None,
    }


def _spec_requests(threads: List[ThreadState]) -> List[Request]:
    """The spec's threads as the server's batching layer would see
    them: ``rid`` is the thread id, ``api_id``/``size`` mirror the
    register draws of :func:`_setup_threads` (r1 = API selector,
    r2 = argument length)."""
    return [Request(rid=t.tid, service="fuzz", api=f"api{t.regs[1]}",
                    api_id=t.regs[1], size=t.regs[2], key=t.regs[3])
            for t in threads]


def _run_batched(spec: Dict, batching: str,
                 max_steps: int = DEFAULT_MAX_STEPS) -> Dict:
    """Execute the spec the way a batched SIMR server would: partition
    the requests with ``batching``, then run each batch in lockstep
    (``minsp_pc``) over the shared memory image, in batch order."""
    program = build_program(spec)
    mem = MemoryImage(salt=spec["salt"])
    threads = _setup_threads(spec, mem)
    bs = max(2, spec["n_threads"] // 2)
    batches = form_batches(_spec_requests(threads), bs, policy=batching)
    for batch in batches:
        # the executor's contract wants tid-sorted groups (execution
        # order); a policy's ordering *within* a batch is a dispatch
        # detail, its grouping is what is under test here
        group = sorted((threads[r.rid] for r in batch),
                       key=lambda t: t.tid)
        # a fresh executor per batch: real dispatches never share
        # divergence state across batches
        ex = make_executor(program, "minsp_pc", fastpath=True,
                           max_steps=max_steps)
        ex.run(group, mem)
    return {
        "rids": sorted(r.rid for b in batches for r in b),
        "snapshots": [t.snapshot() for t in threads],
        "syscalls": [list(t.syscall_trace) for t in threads],
        "call_stacks": [list(t.call_stack) for t in threads],
        "memory": {a: mem.read(a) for a in sorted(mem.written_addresses())},
    }


def check_batching_spec(spec: Dict, solo_state: Optional[Dict] = None,
                        max_steps: int = DEFAULT_MAX_STEPS) -> List[str]:
    """The batching-layer oracle: every policy's partition must cover
    each request exactly once, and (race-free specs only - batches
    interleave threads differently, so racy programs may legitimately
    diverge) per-request architectural state must match solo execution
    bit for bit."""
    mismatches: List[str] = []
    if solo_state is None:
        solo_state = _run_one(spec, "solo", fastpath=False,
                              max_steps=max_steps)
    racy = spec_is_racy(spec)
    for batching in BATCHING_POLICIES:
        try:
            got = _run_batched(spec, batching, max_steps=max_steps)
        except _ORACLE_ERRORS as e:
            mismatches.append(
                f"batching {batching}: {type(e).__name__}: {e}")
            continue
        if got["rids"] != list(range(spec["n_threads"])):
            mismatches.append(
                f"batching {batching}: partition does not cover every "
                f"request exactly once (got rids {got['rids']})")
            continue
        if racy:
            continue
        for fld in _ARCH_FIELDS:
            if got[fld] != solo_state[fld]:
                mismatches.append(
                    f"batching {batching}: per-request {fld} diverges "
                    f"from solo execution on a race-free program")
    return mismatches


def check_spec(spec: Dict,
               max_steps: int = DEFAULT_MAX_STEPS) -> List[str]:
    """Run the full differential matrix; returns mismatch descriptions
    (empty when the spec passes)."""
    mismatches: List[str] = []
    ref_states: Dict[str, Dict] = {}
    policies = spec_policies(spec)
    try:
        for policy in policies:
            fast = _run_one(spec, policy, fastpath=True,
                            max_steps=max_steps)
            ref = _run_one(spec, policy, fastpath=False,
                           max_steps=max_steps)
            if policy != "solo":
                # memo-replay leg: the first fast run populated the
                # grain-memo tables for this program digest, so this
                # repeat is served by cached-delta replay and must be
                # bit-identical to live execution
                replay = _run_one(spec, policy, fastpath=True,
                                  max_steps=max_steps)
                for fld in _FIELDS:
                    if replay[fld] != fast[fld]:
                        mismatches.append(
                            f"{policy}: memo-replay run {fld} diverges "
                            f"from first fast-path run")
                # witness leg: memoization and bounded-int lanes off
                # must not be architecturally visible
                with _fastpath_features_off():
                    plain = _run_one(spec, policy, fastpath=True,
                                     max_steps=max_steps)
                for fld in _FIELDS:
                    if plain[fld] != fast[fld]:
                        mismatches.append(
                            f"{policy}: memo/bounded-off witness {fld} "
                            f"diverges from default fast path")
            for fld in _FIELDS:
                if fast[fld] != ref[fld]:
                    mismatches.append(
                        f"{policy}: fast-path {fld} diverges from "
                        f"reference")
            ref_states[policy] = ref
            masked = _run_one(spec, policy, fastpath=False,
                              with_mask=True, max_steps=max_steps)
            for fld in _FIELDS:
                if masked[fld] != ref[fld]:
                    mismatches.append(
                        f"{policy}: sink-observed run {fld} diverges "
                        f"from reference")
            # sink-present fast path: pre-decoded dispatch must emit
            # the bit-identical event stream the reference loop does
            masked_fast = _run_one(spec, policy, fastpath=True,
                                   with_mask=True, max_steps=max_steps)
            for fld in _FIELDS:
                if masked_fast[fld] != masked[fld]:
                    mismatches.append(
                        f"{policy}: sink-present fast path {fld} "
                        f"diverges from sink-present reference")
            if masked_fast["events"] != masked["events"]:
                mismatches.append(
                    f"{policy}: sink-present fast path event stream "
                    f"diverges from reference")
            if policy == "solo":
                continue
            hist = masked["mask"]
            steps = ref["result"]["steps"]
            if len(hist) != steps:
                mismatches.append(
                    f"{policy}: mask history has {len(hist)} entries "
                    f"for {steps} steps")
            if policy in ("ipdom", "minsp_pc"):
                scalar = ref["result"]["scalar_instructions"]
                if sum(hist) != scalar:
                    mismatches.append(
                        f"{policy}: mask history sums to {sum(hist)}, "
                        f"counters say {scalar} scalar instructions")
                n = spec["n_threads"]
                if not all(1 <= a <= n for a in hist):
                    mismatches.append(
                        f"{policy}: active mask outside [1, {n}]")

        # predication is architecturally identical to IPDOM
        # reconvergence: everything, counters included, must agree
        if "ipdom" in ref_states and "predicated" in ref_states:
            for fld in _FIELDS:
                if (ref_states["ipdom"][fld]
                        != ref_states["predicated"][fld]):
                    mismatches.append(
                        f"ipdom vs predicated: {fld} differs")

        # race-free specs must reach the same architectural state no
        # matter how the policies interleave the threads
        if not spec_is_racy(spec):
            for policy in ("ipdom", "minsp_pc"):
                if policy not in ref_states:
                    continue
                for fld in _ARCH_FIELDS:
                    if ref_states[policy][fld] != ref_states["solo"][fld]:
                        mismatches.append(
                            f"{policy} vs solo: {fld} differs on a "
                            f"race-free program")

        # the batching layer on top: however a policy partitions the
        # requests into lockstep batches, each request's architectural
        # results must survive unchanged
        mismatches.extend(
            check_batching_spec(spec, solo_state=ref_states["solo"],
                                max_steps=max_steps))
    except _ORACLE_ERRORS as e:
        mismatches.append(f"{type(e).__name__}: {e}")
    return mismatches


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------

def shrink_spec(spec: Dict, max_steps: int = DEFAULT_MAX_STEPS,
                budget: int = 200) -> Dict:
    """Greedy minimizer: returns the smallest failing spec found.

    Tries, to a fixed point (or until ``budget`` oracle runs): dropping
    whole constructs, lowering the thread count, truncating op lists
    and halving numeric parameters.  Every candidate is re-checked, so
    the result is guaranteed to still fail.
    """
    evals = [0]

    def fails(s: Dict) -> bool:
        if evals[0] >= budget:
            return False
        evals[0] += 1
        try:
            return bool(check_spec(s, max_steps=max_steps))
        except GeneratorError:
            # a shrink step broke spec validity (e.g. a frame smaller
            # than its spills): discard the candidate, keep shrinking
            return False

    if not fails(spec):
        return spec
    cur = copy.deepcopy(spec)
    changed = True
    while changed and evals[0] < budget:
        changed = False
        i = 0
        while len(cur["constructs"]) > 1 and i < len(cur["constructs"]):
            cand = copy.deepcopy(cur)
            del cand["constructs"][i]
            if fails(cand):
                cur = cand
                changed = True
            else:
                i += 1
        # reconv_override entries shrink like constructs: drop them one
        # at a time (entries orphaned by construct deletion are already
        # ignored by spec_reconv_override's label lookup)
        i = 0
        while i < len(cur.get("reconv_override", ())):
            cand = copy.deepcopy(cur)
            del cand["reconv_override"][i]
            if not cand["reconv_override"]:
                del cand["reconv_override"]
            if fails(cand):
                cur = cand
                changed = True
            else:
                i += 1
        for n in (2, 3, 4):
            if n < cur["n_threads"]:
                cand = copy.deepcopy(cur)
                cand["n_threads"] = n
                if fails(cand):
                    cur = cand
                    changed = True
                    break
        for ci, c in enumerate(cur["constructs"]):
            for k, v in list(c.items()):
                if isinstance(v, list) and len(v) > 1:
                    cand = copy.deepcopy(cur)
                    cand["constructs"][ci][k] = v[:len(v) // 2]
                    if fails(cand):
                        cur = cand
                        changed = True
                elif (isinstance(v, int) and not isinstance(v, bool)
                        and v > 1):
                    cand = copy.deepcopy(cur)
                    cand["constructs"][ci][k] = v // 2
                    if fails(cand):
                        cur = cand
                        changed = True
    return cur


_REPRO_TEMPLATE = '''\
"""Auto-generated by `python -m repro.fuzz`: minimal differential repro.

Replay with `PYTHONPATH=src python {filename}` (exits non-zero while
the mismatch reproduces).  Expected mismatches at generation time:

{expected}
"""

SPEC = {spec}

if __name__ == "__main__":
    import sys

    from repro.fuzz.oracle import check_spec

    mismatches = check_spec(SPEC)
    for m in mismatches:
        print(f"MISMATCH: {{m}}")
    if not mismatches:
        print("spec no longer mismatches (bug fixed?)")
    sys.exit(1 if mismatches else 0)
'''


def write_repro(spec: Dict, mismatches: List[str], path: str) -> None:
    """Emit a standalone replay script for a failing spec."""
    filename = path.rsplit("/", 1)[-1]
    body = _REPRO_TEMPLATE.format(
        filename=filename,
        expected="\n".join(f"  * {m}" for m in mismatches),
        spec=pprint.pformat(spec, width=72, sort_dicts=False),
    )
    with open(path, "w", encoding="utf-8") as f:
        f.write(body)
