"""Differential fuzzing for the execution engines.

``repro.fuzz`` generates random (but always-terminating) ISA programs
from small JSON-serializable *specs*, runs each one through every
execution policy with both the reference interpreter and the pre-decoded
fast path, and cross-checks all observable state.  Mismatching specs are
greedily shrunk and emitted as standalone repro files.

Run a campaign with ``python -m repro.fuzz --iters N --seed S``.
"""

from .gen import GeneratorError, build_program, gen_spec, spec_is_racy
from .oracle import check_spec, shrink_spec, write_repro

__all__ = [
    "GeneratorError",
    "build_program",
    "gen_spec",
    "spec_is_racy",
    "check_spec",
    "shrink_spec",
    "write_repro",
]
