"""Differential fuzzing for the execution engines.

``repro.fuzz`` generates random (but always-terminating) ISA programs
from small JSON-serializable *specs*, runs each one through every
execution policy with both the reference interpreter and the pre-decoded
fast path, and cross-checks all observable state.  Mismatching specs are
greedily shrunk and emitted as standalone repro files.

Run a campaign with ``python -m repro.fuzz --iters N --seed S``.

``repro.fuzz.chaos`` is the fleet-tier sibling: seeded *fault
schedules* swept against every balancer x resilience policy, checking
the conservation invariants instead of architectural state.  Run it
with ``python -m repro.fuzz.chaos --seeds N``.
"""

from .gen import GeneratorError, build_program, gen_spec, spec_is_racy
from .oracle import check_spec, shrink_spec, write_repro

#: chaos-suite names re-exported lazily (PEP 562) so that running
#: ``python -m repro.fuzz.chaos`` does not import the submodule twice
_CHAOS_EXPORTS = ("ChaosCase", "ChaosError", "case_digest",
                  "gen_fault_schedule", "run_campaign", "run_case")


def __getattr__(name):
    if name in _CHAOS_EXPORTS:
        from . import chaos
        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ChaosCase",
    "ChaosError",
    "GeneratorError",
    "build_program",
    "case_digest",
    "gen_fault_schedule",
    "gen_spec",
    "run_campaign",
    "run_case",
    "spec_is_racy",
    "check_spec",
    "shrink_spec",
    "write_repro",
]
