"""Differential fuzzing CLI: ``python -m repro.fuzz --iters N --seed S``.

Runs a campaign of generated specs through the differential oracle,
fanned across worker processes by the shared parallel driver.  Spec
seeds derive from the task identity alone (``task_seed``), so a
campaign is bit-identical for any ``--jobs`` value and any iteration
reproduces standalone via its repro file.

Simulation sanitizers (``REPRO_SANITIZE=1``) are force-enabled for the
campaign unless the variable is already set, so invariant violations
surface even when the final states happen to agree.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from typing import Dict, List, Tuple

# sanitizers on before any worker forks (and before executors capture
# the flag); an explicit REPRO_SANITIZE=0 from the caller wins
os.environ.setdefault("REPRO_SANITIZE", "1")

from ..experiments.common import parallel_map, task_seed
from .gen import gen_spec
from .oracle import DEFAULT_MAX_STEPS, check_spec, shrink_spec, write_repro


def _check_task(payload: Tuple[Dict, int]) -> List[str]:
    spec, max_steps = payload
    return check_spec(spec, max_steps=max_steps)


def _load_spec(path: str) -> Dict:
    scope: Dict = {}
    with open(path, "r", encoding="utf-8") as f:
        src = f.read()
    exec(compile(src, path, "exec"), {"__name__": "__repro__"}, scope)
    if "SPEC" not in scope:
        raise SystemExit(f"{path}: no SPEC dict found")
    return scope["SPEC"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential fuzzing of the execution engines")
    parser.add_argument("--iters", type=int, default=100,
                        help="number of generated specs (default 100)")
    parser.add_argument("--seed", type=int, default=1,
                        help="campaign base seed (default 1)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default REPRO_JOBS or 1)")
    parser.add_argument("--max-steps", type=int,
                        default=DEFAULT_MAX_STEPS,
                        help="per-run step budget")
    parser.add_argument("--out", default="artifacts/fuzz",
                        help="directory for shrunken repro files")
    parser.add_argument("--no-shrink", action="store_true",
                        help="emit failing specs without minimizing")
    parser.add_argument("--replay", metavar="REPRO_PY",
                        help="re-check the SPEC of one repro file and "
                             "exit (ignores --iters)")
    args = parser.parse_args(argv)

    if args.replay:
        spec = _load_spec(args.replay)
        mismatches = check_spec(spec, max_steps=args.max_steps)
        for m in mismatches:
            print(f"MISMATCH: {m}")
        print("replay:", "FAIL" if mismatches else "ok")
        return 1 if mismatches else 0

    specs = []
    for i in range(args.iters):
        rng = random.Random(task_seed("fuzz", i, base=args.seed))
        specs.append(gen_spec(rng))

    results = parallel_map(_check_task,
                           [(s, args.max_steps) for s in specs],
                           jobs=args.jobs)

    failures = [(i, specs[i], ms)
                for i, ms in enumerate(results) if ms]
    print(f"fuzz: {args.iters} specs, seed {args.seed}: "
          f"{len(failures)} mismatching")

    if failures:
        os.makedirs(args.out, exist_ok=True)
    for i, spec, mismatches in failures:
        print(f"-- iter {i} (program seed {spec['seed']:#x}):")
        for m in mismatches:
            print(f"   MISMATCH: {m}")
        if not args.no_shrink:
            spec = shrink_spec(spec, max_steps=args.max_steps)
            mismatches = check_spec(spec, max_steps=args.max_steps)
        path = os.path.join(args.out, f"repro_{args.seed}_{i}.py")
        write_repro(spec, mismatches, path)
        print(f"   repro written to {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
