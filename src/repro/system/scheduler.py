"""Bucketed calendar-queue (event-wheel) scheduler for the system tier.

The discrete-event simulators used to run on a ``heapq`` of
``(when, tie, fn, args)`` tuples: every ``schedule`` paid a tie-counter
draw, a 4-tuple allocation, an ``*args`` pack and an O(log n) sift, and
every pop paid the mirror-image sift plus an unpack.  uqSim and
CloudNativeSim both make the same point about microservice-graph
simulation: the scheduler must be cheap before anything built on it can
scale.  This module replaces the heap with a classic **event wheel**:

* events land in FIFO **buckets** keyed by their quantized timestamp
  (``int(when * 1/width)``; the width is a power of two, so the
  quantization is exact float arithmetic and an event can never land
  one bucket off a boundary);
* the wheel covers ``n_buckets`` consecutive buckets from the cursor;
  events scheduled past that horizon go to a small **overflow heap**
  and are migrated bucket-by-bucket as the cursor admits their window;
* a bucket is *stable-sorted by timestamp* when the cursor reaches it,
  so equal-time events fire in insertion order - the exact tie-break
  contract of the old heap (its tie counter) without paying for a
  counter per event.

Ordering is bit-identical to the heap, which is kept as a differential
witness behind ``REPRO_WHEEL=0``.  The argument sketch:

* across buckets, time order is bucket order (exact quantization);
* within a bucket, Python's stable sort keyed on the timestamp alone
  preserves append order for ties;
* an overflow event is migrated into its bucket at the moment the
  bucket becomes admissible, *before* any direct insert can target
  that bucket (direct inserts to it were themselves overflow until
  then) - so migrated-then-appended order is insertion order (the
  overflow heap carries its own tie counter for ties *within* it);
* events scheduled into the bucket currently being drained are
  placed by ``bisect_right`` on the timestamp: after every queued
  equal-time event (FIFO) and never before the drain index.

:class:`WheelSimulator` is built in the closure style of the streaming
timing engine (PR 3): ``schedule1``/``run`` are closures sharing the
wheel state through cells, so the per-event hot path does no
self-attribute loads at all.  :class:`EventWheel` is the plain-class
reference implementation of the same structure - it backs the RPU
driver's ready queue (:mod:`repro.batching.driver`) in ``fifo=False``
mode, where entries are ordered by their leading ``(time, key)`` tuple
prefix instead of insertion order (the ordering the driver's old
``(time, bid, task, idx)`` heap provided), and it is what the rotation
invariant tests poke at directly.

``Simulator`` is the factory the simulators instantiate: it returns a
:class:`WheelSimulator` unless ``REPRO_WHEEL=0`` selects the
:class:`HeapSimulator` witness.  Both expose the same interface:
``schedule(when, fn, *args)`` fires ``fn(when, *args)``, and
``schedule1(when, fn, arg)`` is the allocation-free fast path for the
one-argument callbacks that dominate the hot loops (station batch
completions and flush timers).

``max_events`` arms a bounded-progress guard: instead of spinning
forever on a pathological schedule (a retry storm, or a future
self-rescheduling callback bug), ``run`` raises a diagnosable
:class:`SimulationLimitError` naming the hottest callback owner.
Accounting is O(1) per event (a counter keyed on the callback object);
owner names are resolved only on the overflow diagnostic path.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from collections import Counter
from heapq import heappop, heappush
from operator import itemgetter
from typing import Callable, List, Optional, Tuple

from ..sanitize import check, sanitizer_enabled

__all__ = [
    "EventWheel",
    "HeapSimulator",
    "SimulationLimitError",
    "Simulator",
    "WheelSimulator",
    "wheel_enabled",
]


def wheel_enabled() -> bool:
    """True unless ``REPRO_WHEEL=0`` (re-read per call, so tests and
    CLIs can flip the scheduler without re-importing modules)."""
    return os.environ.get("REPRO_WHEEL", "1") != "0"


class SimulationLimitError(RuntimeError):
    """The event-count ceiling was hit: the simulation is (probably)
    stuck in a self-rescheduling loop, e.g. an unbounded retry storm."""


_key0 = itemgetter(0)
_key01 = itemgetter(0, 1)


class _Greatest:
    """Compares greater than anything (used as a bisect probe pad so a
    ``(when, _GREATEST)`` probe tuple sorts after every equal-``when``
    entry without ordering the callback objects themselves)."""

    __slots__ = ()

    def __lt__(self, other):
        return False

    def __gt__(self, other):
        return True


_GREATEST = _Greatest()


class _Args:
    """Boxed argument tuple for the rare zero- or multi-argument
    schedule call (so the common one-argument event never packs a
    tuple): a boxed ``args`` fires ``fn(when, *args)``."""

    __slots__ = ("args",)

    def __init__(self, args: tuple):
        self.args = args


def _check_geometry(width_us: float, n_buckets: int) -> float:
    if n_buckets & (n_buckets - 1):
        raise ValueError(f"n_buckets must be a power of two, "
                         f"got {n_buckets}")
    inv = 1.0 / width_us
    if width_us * inv != 1.0:
        raise ValueError(f"width_us must be a power of two, "
                         f"got {width_us}")
    return inv


class EventWheel:
    """Plain-class calendar queue (the reference implementation).

    Entries are tuples whose first element is the absolute timestamp.
    ``fifo=True`` breaks timestamp ties by insertion order;
    ``fifo=False`` (the RPU driver's ready queue) orders by the
    ``(entry[0], entry[1])`` prefix, which callers must keep unique.
    """

    __slots__ = ("width", "n", "buckets", "overflow", "cursor", "count",
                 "live", "live_i", "fifo", "_inv", "_mask", "_otie",
                 "_san")

    def __init__(self, width_us: float = 64.0, n_buckets: int = 256,
                 fifo: bool = True):
        self._inv = _check_geometry(width_us, n_buckets)
        self.width = width_us
        self.n = n_buckets
        self._mask = n_buckets - 1
        self.buckets: List[list] = [[] for _ in range(n_buckets)]
        #: far-future events beyond the wheel horizon; fifo mode wraps
        #: them as ``(when, tie, entry)`` so migration replays
        #: insertion order, keyed mode stores the entry tuples raw
        self.overflow: list = []
        #: absolute index of the bucket being (or next to be) drained
        self.cursor = 0
        #: entries currently in buckets (the overflow heap is extra)
        self.count = 0
        #: the bucket currently being drained (sorted), else None
        self.live: Optional[list] = None
        #: drain position within ``live``: entries below it have fired
        self.live_i = 0
        self.fifo = fifo
        self._otie = 0
        self._san = sanitizer_enabled()

    # -- insertion -----------------------------------------------------
    def push(self, entry: tuple) -> None:
        """Insert ``entry`` (``entry[0]`` is the absolute time)."""
        when = entry[0]
        b = int(when * self._inv)
        c = self.cursor
        if b > c:
            if b - c < self.n:
                self.buckets[b & self._mask].append(entry)
                self.count += 1
            elif self.fifo:
                self._otie += 1
                heappush(self.overflow, (when, self._otie, entry))
            else:
                heappush(self.overflow, entry)
            return
        # current (possibly draining) bucket - or the past, which the
        # sanitizer rejects and the unsanitized wheel clamps to "fire
        # next", mirroring the heap's behaviour for invalid schedules
        if self._san:
            check(b == c, "event wheel: push into a past bucket "
                  "(t=%f, bucket %d < cursor %d)", when, b, c)
        live = self.live
        if live is None:
            self.buckets[c & self._mask].append(entry)
        else:
            if self.fifo:
                pos = bisect_right(live, when, key=_key0)
            else:
                pos = bisect_right(live, _key01(entry), key=_key01)
            li = self.live_i
            if pos < li:
                pos = li
            live.insert(pos, entry)
        self.count += 1

    # -- rotation ------------------------------------------------------
    def _admit(self) -> None:
        """Migrate overflow events whose buckets are now admissible."""
        ov = self.overflow
        if not ov:
            return
        horizon = (self.cursor + self.n) * self.width
        buckets = self.buckets
        mask = self._mask
        inv = self._inv
        if self._san:
            check(self.live is None,
                  "event wheel: admission during a live bucket drain")
        if self.fifo:
            while ov and ov[0][0] < horizon:
                when, _tie, entry = heappop(ov)
                buckets[int(when * inv) & mask].append(entry)
                self.count += 1
        else:
            while ov and ov[0][0] < horizon:
                entry = heappop(ov)
                buckets[int(entry[0] * inv) & mask].append(entry)
                self.count += 1

    def _open_bucket(self) -> Optional[list]:
        """Advance to the next non-empty bucket, sort it and return it
        as the live bucket; None when the wheel and overflow are empty.
        """
        while True:
            if self.count:
                buck = self.buckets[self.cursor & self._mask]
                if buck:
                    buck.sort(key=_key0 if self.fifo else _key01)
                    if self._san:
                        inv = self._inv
                        c = self.cursor
                        for e in buck:
                            check(int(e[0] * inv) == c,
                                  "event wheel: entry at t=%f drained "
                                  "from bucket %d (its own is %d)",
                                  e[0], c, int(e[0] * inv))
                    self.live = buck
                    self.live_i = 0
                    return buck
                self.cursor += 1
                self._admit()
                continue
            if self.overflow:
                # wheel empty: jump the cursor straight to the next
                # overflow event's bucket instead of rotating there
                b = int(self.overflow[0][0] * self._inv)
                if b > self.cursor:
                    self.cursor = b
                self._admit()
                if self._san:
                    check(self.count > 0,
                          "event wheel: admission after a cursor jump "
                          "landed no events")
                continue
            return None

    def _close_bucket(self) -> None:
        """Retire the fully-drained live bucket and advance the cursor."""
        buck = self.live
        self.count -= len(buck)
        buck.clear()
        self.live = None
        self.live_i = 0
        self.cursor += 1
        self._admit()

    # -- draining ------------------------------------------------------
    def pop(self) -> Optional[tuple]:
        """Remove and return the next entry in firing order, or None."""
        buck = self.live
        while True:
            if buck is not None:
                i = self.live_i
                if i < len(buck):
                    self.live_i = i + 1
                    return buck[i]
                self._close_bucket()
            buck = self._open_bucket()
            if buck is None:
                return None

    def __len__(self) -> int:
        pending = self.count + len(self.overflow)
        if self.live is not None:
            pending -= self.live_i
        return pending

    def __bool__(self) -> bool:
        return len(self) > 0


class Simulator:
    """Deterministic event-loop factory.

    ``Simulator(...)`` returns a :class:`WheelSimulator` (the event
    wheel) unless ``REPRO_WHEEL=0`` selects the :class:`HeapSimulator`
    differential witness.  Both fire ``fn(when, *args)`` per event,
    break equal-time ties by insertion order, and honor ``max_events``.
    """

    __slots__ = ()

    def __new__(cls, *args, **kwargs):
        if cls is Simulator:
            cls = WheelSimulator if wheel_enabled() else HeapSimulator
        return object.__new__(cls)

    # -- shared diagnostics --------------------------------------------
    @staticmethod
    def _owner_name(fn: Callable) -> str:
        fn = getattr(fn, "__wrapped__", fn)
        owner = getattr(fn, "__self__", None)
        name = getattr(owner, "name", None)
        if isinstance(name, str):
            return f"station {name!r}"
        return getattr(fn, "__qualname__", repr(fn))

    def _raise_limit(self, fired: Counter, limit: int, now: float,
                     n_queued: int) -> None:
        by_owner: Counter = Counter()
        for fn, hits in fired.items():
            by_owner[self._owner_name(fn)] += hits
        hot, hits = by_owner.most_common(1)[0]
        raise SimulationLimitError(
            f"simulation exceeded {limit} events at "
            f"t={now:.1f}us with {n_queued} still queued; "
            f"hottest callback: {hot} ({hits} of {limit} events). "
            f"Likely an unbounded retry/reschedule loop.")


class WheelSimulator(Simulator):
    """Event-wheel simulator: the default scheduler of the system tier.

    The wheel state (buckets, cursor, live bucket, counts) lives in
    closure cells shared by ``schedule1`` and ``run``; the instance
    attributes are just the bound entry points.  An event is
    ``(when, fn, arg)`` and fires as ``fn(when, arg)`` - or
    ``fn(when, *arg.args)`` when ``arg`` is a boxed :class:`_Args`.
    """

    __slots__ = ("now", "max_events", "schedule", "schedule1", "run",
                 "pending")

    def __init__(self, max_events: Optional[int] = None,
                 width_us: float = 64.0, n_buckets: int = 512):
        inv = _check_geometry(width_us, n_buckets)
        width = width_us
        n = n_buckets
        mask = n - 1
        buckets: List[list] = [[] for _ in range(n)]
        overflow: list = []
        cursor = 0
        count = 0
        live: Optional[list] = None
        now = 0.0
        otie = 0
        san = sanitizer_enabled()
        outer = self
        self.now = 0.0
        self.max_events = max_events

        def schedule1(when: float, fn: Callable, arg) -> None:
            nonlocal count, otie
            if san:
                check(when >= now,
                      "simulator: event scheduled into the past "
                      "(%f before now=%f)", when, now)
            b = int(when * inv)
            d = b - cursor
            if d > 0:
                if d < n:
                    buckets[b & mask].append((when, fn, arg))
                else:
                    otie += 1
                    heappush(overflow, (when, otie, (when, fn, arg)))
                    return
            elif live is not None:
                # mid-drain insert into the live bucket: bisect on a
                # (time, GREATEST) probe lands after every queued
                # equal-time event (FIFO) and - because all
                # already-fired entries carry times <= now - never
                # before the drain point.  The probe keeps the C tuple
                # comparison on the leading floats, no key= callback.
                # A past-time schedule (invalid; the sanitizer rejects
                # it) is clamped to fire at ``now``.
                key = when if when >= now else now
                live.insert(bisect_right(live, (key, _GREATEST)),
                            (when, fn, arg))
            else:
                buckets[cursor & mask].append((when, fn, arg))
            count += 1

        def schedule(when: float, fn: Callable, *args) -> None:
            if len(args) == 1:
                schedule1(when, fn, args[0])
            else:
                schedule1(when, fn, _Args(args))

        def admit() -> None:
            nonlocal count
            horizon = (cursor + n) * width
            while overflow and overflow[0][0] < horizon:
                when, _tie, entry = heappop(overflow)
                buckets[int(when * inv) & mask].append(entry)
                count += 1

        def open_bucket() -> Optional[list]:
            nonlocal cursor
            while True:
                if count:
                    buck = buckets[cursor & mask]
                    if buck:
                        return buck
                    cursor += 1
                    if overflow:
                        admit()
                elif overflow:
                    # jump-ahead: land the cursor straight on the next
                    # overflow event's bucket instead of rotating
                    # through the empty span
                    b = int(overflow[0][0] * inv)
                    if b > cursor:
                        cursor = b
                    admit()
                    if san:
                        check(count > 0,
                              "event wheel: admission after a cursor "
                              "jump landed no events")
                else:
                    return None

        def run(max_events: Optional[int] = None) -> None:
            nonlocal cursor, count, live, now
            limit = (max_events if max_events is not None
                     else outer.max_events)
            if limit is not None or san:
                run_guarded(limit)
                return
            while True:
                buck = open_bucket()
                if buck is None:
                    outer.now = now
                    return
                if len(buck) > 1:
                    buck.sort(key=_key0)
                live = buck
                # the bucket may grow mid-drain: same-window schedules
                # are insorted at or past the iterator position, and
                # the for-loop picks them up in timestamp order
                for e in buck:
                    when = e[0]
                    now = when
                    arg = e[2]
                    if arg.__class__ is _Args:
                        outer.now = when
                        e[1](when, *arg.args)
                    else:
                        e[1](when, arg)
                count -= len(buck)
                buck.clear()
                live = None
                cursor += 1
                if overflow:
                    admit()

        def run_guarded(limit: Optional[int]) -> None:
            """The bounded/sanitized event loop: identical firing order
            to the fast loop, plus O(1)-per-event accounting for the
            ``max_events`` diagnostic and the sanitizer invariants."""
            nonlocal cursor, count, live, now
            fired: Counter = Counter()
            fired_n = 0
            while True:
                buck = open_bucket()
                if buck is None:
                    outer.now = now
                    return
                if len(buck) > 1:
                    buck.sort(key=_key0)
                if san:
                    c = cursor
                    for e in buck:
                        check(int(e[0] * inv) == c,
                              "event wheel: entry at t=%f drained from "
                              "bucket %d (its own is %d)",
                              e[0], c, int(e[0] * inv))
                live = buck
                i = 0
                while i < len(buck):
                    e = buck[i]
                    i += 1
                    when = e[0]
                    if san:
                        check(when >= now,
                              "simulator: time ran backwards "
                              "(%f after %f)", when, now)
                    now = when
                    outer.now = when
                    if limit is not None:
                        fired_n += 1
                        if fired_n > limit:
                            outer._raise_limit(
                                fired, limit, when,
                                count - i + len(overflow))
                        fired[e[1]] += 1
                    arg = e[2]
                    if arg.__class__ is _Args:
                        e[1](when, *arg.args)
                    else:
                        e[1](when, arg)
                count -= len(buck)
                buck.clear()
                live = None
                cursor += 1
                if overflow:
                    admit()

        def pending() -> int:
            """Events still queued (approximate while a bucket is
            mid-drain: already-fired entries of the live bucket are
            included until the bucket retires)."""
            return count + len(overflow)

        self.schedule1 = schedule1
        self.schedule = schedule
        self.run = run
        self.pending = pending


class HeapSimulator(Simulator):
    """The pre-wheel ``heapq`` event loop, kept as the differential
    witness behind ``REPRO_WHEEL=0``: entries ``(when, tie, fn, arg)``
    pop in ``(when, tie)`` order, so equal-time events fire in
    insertion order - the contract the wheel reproduces."""

    __slots__ = ("now", "max_events", "_events", "_tie", "_san")

    def __init__(self, max_events: Optional[int] = None):
        self._events: List[Tuple[float, int, Callable, object]] = []
        self._tie = 0
        self.now = 0.0
        self.max_events = max_events
        self._san = sanitizer_enabled()

    def schedule1(self, when: float, fn: Callable, arg) -> None:
        if self._san:
            check(when >= self.now,
                  "simulator: event scheduled into the past "
                  "(%f before now=%f)", when, self.now)
        self._tie += 1
        heappush(self._events, (when, self._tie, fn, arg))

    def schedule(self, when: float, fn: Callable, *args) -> None:
        if len(args) == 1:
            self.schedule1(when, fn, args[0])
        else:
            self.schedule1(when, fn, _Args(args))

    def pending(self) -> int:
        return len(self._events)

    def run(self, max_events: Optional[int] = None) -> None:
        limit = max_events if max_events is not None else self.max_events
        if limit is not None:
            self._run_bounded(limit)
            return
        events = self._events
        pop = heappop
        san = self._san
        while events:
            when, _t, fn, arg = pop(events)
            if san:
                check(when >= self.now,
                      "simulator: time ran backwards (%f after %f)",
                      when, self.now)
            self.now = when
            if arg.__class__ is _Args:
                fn(when, *arg.args)
            else:
                fn(when, arg)

    def _run_bounded(self, limit: int) -> None:
        events = self._events
        pop = heappop
        san = self._san
        fired: Counter = Counter()
        n = 0
        while events:
            when, _t, fn, arg = pop(events)
            if san:
                check(when >= self.now,
                      "simulator: time ran backwards (%f after %f)",
                      when, self.now)
            n += 1
            if n > limit:
                self.now = when
                self._raise_limit(fired, limit, when, len(events))
            fired[fn] += 1
            self.now = when
            if arg.__class__ is _Args:
                fn(when, *arg.args)
            else:
                fn(when, arg)
