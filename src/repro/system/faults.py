"""Deterministic, seeded fault injection for the system-level simulation.

Four fault classes, mirroring what uqSim/DeathStarBench-style studies
inject into microservice clusters:

* **fail-stop outages** - a station goes dark for a window and comes
  back; dispatches attempted during the window fail fast (connection
  refused after ``detect_us``) and work *in flight* when the outage
  begins is lost at the onset (true fail-stop, not drain);
* **stragglers** - a dispatch is served by a slow replica: latency
  *and* pipelined occupancy are multiplied by ``straggler_mult``;
* **transient latency spikes** - additive ``spike_us`` on a dispatch
  (GC pause, SmartNIC hiccup) without slowing the initiation rate;
* **request drops** - an individual request vanishes from its batch
  and fails fast.

Every decision is a pure function of the injector seed plus stable
identifiers (station name, request id, attempt number): outage windows
are precomputed per fault *domain* from a seeded Poisson process, and
per-dispatch draws hash ``(kind, station, rid, attempt)`` (falling back
to the job id when no logical request id is set).  Nothing consumes
RNG state during the simulation, so fault placement is independent of
event interleaving - the property the determinism tests pin.

Fault domains generalize per-station outages to rack/zone-scoped ones:
pass ``scope={station_name: domain}`` and every station mapped to the
same domain shares one outage schedule (a rack power event takes down
every replica in the rack at once), while unmapped stations keep their
own independent windows.

On top of the rack scope, an optional **zone layer**
(:mod:`repro.system.zones`) adds correlated zone-wide fail-stop
windows - merged into each station's own window list at build time, so
the hot queries stay single-path - and zone **brownouts**: partial
degradation windows that multiply every dispatch's service latency and
occupancy by ``brownout_mult`` instead of killing the work.  A station
outside the zone scope, or a zone config with zero rates and no
planned windows, leaves the schedules bit-identical to the zone-less
injector.

A ``FaultInjector`` with all rates at zero is a strict no-op, and a
:class:`~repro.system.queueing.Station` with no injector attached never
touches this module (the fault-free fast path is bit-identical to the
pre-fault-layer simulator).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .seeding import PrefixStream, stream_rng, stream_u
from .zones import (
    ZoneConfig,
    merge_windows,
    zone_brownout_windows,
    zone_outage_windows,
)


@dataclass(frozen=True)
class FaultConfig:
    """Fault intensity knobs (all default to "no faults")."""

    seed: int = 11
    #: expected fail-stop outages per simulated *second* per station
    outage_rate_per_s: float = 0.0
    outage_min_us: float = 2_000.0
    outage_max_us: float = 10_000.0
    #: how long a client waits before a dead station's fail-fast reply
    detect_us: float = 30.0
    #: probability a dispatch lands on a straggling replica
    straggler_prob: float = 0.0
    straggler_mult: float = 4.0
    #: probability of an additive transient latency spike per dispatch
    spike_prob: float = 0.0
    spike_us: float = 500.0
    #: probability an individual request is dropped at dispatch
    drop_prob: float = 0.0
    #: outage schedules are drawn over this horizon
    horizon_us: float = 2_000_000.0
    #: restrict injection to these station names (None = every station
    #: the injector is attached to)
    stations: Optional[frozenset] = None

    def scaled(self, intensity: float) -> "FaultConfig":
        """A copy with every probability/rate multiplied by ``intensity``
        (probabilities clamped to 1); the sweep's x axis."""
        return FaultConfig(
            seed=self.seed,
            outage_rate_per_s=self.outage_rate_per_s * intensity,
            outage_min_us=self.outage_min_us,
            outage_max_us=self.outage_max_us,
            detect_us=self.detect_us,
            straggler_prob=min(1.0, self.straggler_prob * intensity),
            straggler_mult=self.straggler_mult,
            spike_prob=min(1.0, self.spike_prob * intensity),
            spike_us=self.spike_us,
            drop_prob=min(1.0, self.drop_prob * intensity),
            horizon_us=self.horizon_us,
            stations=self.stations,
        )

    @property
    def enabled(self) -> bool:
        return (self.outage_rate_per_s > 0 or self.straggler_prob > 0
                or self.spike_prob > 0 or self.drop_prob > 0)


@dataclass
class FaultStats:
    """What the injector actually did (for reports and tests)."""

    outage_failures: int = 0
    inflight_failures: int = 0
    drops: int = 0
    stragglers: int = 0
    spikes: int = 0
    #: dispatches served inside a zone brownout window (degraded, not
    #: failed)
    brownouts: int = 0
    windows: Dict[str, int] = field(default_factory=dict)

    @property
    def total_failures(self) -> int:
        return self.outage_failures + self.inflight_failures + self.drops


class FaultInjector:
    """Seeded fault oracle; attach to stations via :meth:`attach`."""

    def __init__(self, cfg: FaultConfig,
                 scope: Optional[Mapping[str, str]] = None,
                 zones: Optional[ZoneConfig] = None,
                 zone_scope: Optional[Mapping[str, str]] = None):
        self.cfg = cfg
        self.stats = FaultStats()
        #: station name -> fault domain; stations sharing a domain share
        #: one outage schedule (rack/zone-scoped outages).  Unmapped
        #: stations form their own singleton domain.
        self.scope: Dict[str, str] = dict(scope) if scope else {}
        #: optional zone layer: station name -> zone domain; a zone's
        #: fail-stop windows are merged into each member station's own
        #: windows, its brownout windows degrade their dispatches
        self.zones = zones if zones is not None and zones.enabled else None
        self.zone_scope: Dict[str, str] = \
            dict(zone_scope) if zone_scope and self.zones else {}
        #: per-station/domain sorted outage windows, built lazily per
        #: name (the zone-less schedules; zone windows merge in below)
        self._windows: Dict[str, Tuple[List[float], List[float]]] = {}
        #: per-station *effective* windows (station/rack + zone merged)
        self._eff: Dict[str, Tuple[List[float], List[float]]] = {}
        #: per-zone-domain window caches
        self._zone_windows: Dict[str, Tuple[List[float], List[float]]] = {}
        self._zone_brownouts: Dict[str, Tuple[List[float], List[float]]] = {}
        #: whether any fail-stop schedule can be non-empty (gates the
        #: outage queries on the hot dispatch path)
        self.has_outages = (cfg.outage_rate_per_s > 0
                            or (self.zones is not None
                                and self.zones.has_outages))
        self._has_brownouts = (self.zones is not None
                               and self.zones.has_brownouts)
        #: per-(kind, station) prefix-hashed draw streams, built lazily:
        #: the per-dispatch draws in :meth:`plan` share a constant
        #: ``(seed, kind, name)`` key prefix, so its CRC state is
        #: computed once per station instead of once per event
        self._streams: Dict[Tuple[str, str], PrefixStream] = {}

    # -- deterministic randomness --------------------------------------
    def _stream(self, kind: str, name: str) -> PrefixStream:
        got = self._streams.get((kind, name))
        if got is None:
            got = PrefixStream(self.cfg.seed, kind, name)
            self._streams[(kind, name)] = got
        return got

    def _u(self, kind: str, name: str, jid: int, attempt: int) -> float:
        """Uniform [0, 1) from stable identifiers only."""
        return stream_u(self.cfg.seed, kind, name, jid, attempt)

    def domain_of(self, name: str) -> str:
        return self.scope.get(name, name)

    def _station_windows(self, name: str) -> Tuple[List[float], List[float]]:
        """Effective fail-stop windows of one station: its own (or its
        rack domain's) schedule, merged with its zone's windows when a
        zone layer is armed.  Merging happens once at build time, so
        the bisect queries below stay single-path."""
        got = self._eff.get(name)
        if got is not None:
            return got
        got = self._base_windows(name)
        zdom = self.zone_scope.get(name)
        if zdom is not None:
            got = merge_windows(got, self._zone_fail_windows(zdom))
        self._eff[name] = got
        self.stats.windows[name] = len(got[0])
        return got

    def _zone_fail_windows(self, domain: str) \
            -> Tuple[List[float], List[float]]:
        got = self._zone_windows.get(domain)
        if got is None:
            got = zone_outage_windows(self.zones, domain)
            self._zone_windows[domain] = got
        return got

    def _base_windows(self, name: str) -> Tuple[List[float], List[float]]:
        got = self._windows.get(name)
        if got is not None:
            return got
        cfg = self.cfg
        domain = self.scope.get(name, name)
        active = (cfg.outage_rate_per_s > 0
                  and (cfg.stations is None or name in cfg.stations
                       or domain in cfg.stations))
        got = None
        if active:
            got = self._windows.get(domain) if domain != name else None
            if got is None:
                starts: List[float] = []
                ends: List[float] = []
                rng = stream_rng(cfg.seed, "outages", domain)
                mean_gap_us = 1e6 / cfg.outage_rate_per_s
                t = rng.expovariate(1.0) * mean_gap_us
                while t < cfg.horizon_us:
                    dur = rng.uniform(cfg.outage_min_us, cfg.outage_max_us)
                    if starts and t <= ends[-1]:
                        ends[-1] = max(ends[-1], t + dur)  # merge overlap
                    else:
                        starts.append(t)
                        ends.append(t + dur)
                    t += rng.expovariate(1.0) * mean_gap_us
                got = (starts, ends)
                self._windows[domain] = got
        else:
            # filtered out (or outages disabled): this station has no
            # windows of its own, and must not seed the domain cache
            # with an empty schedule other domain members would share
            got = ([], [])
        self._windows[name] = got
        return got

    # -- queries -------------------------------------------------------
    def outage_end(self, name: str, t: float) -> Optional[float]:
        """Recovery time if ``name`` is down at ``t``, else None."""
        starts, ends = self._station_windows(name)
        i = bisect.bisect_right(starts, t) - 1
        if i >= 0 and t < ends[i]:
            return ends[i]
        return None

    def outage_onset(self, name: str, a: float, b: float) -> Optional[float]:
        """First outage start strictly inside ``(a, b)``, if any."""
        starts, _ends = self._station_windows(name)
        i = bisect.bisect_right(starts, a)
        if i < len(starts) and starts[i] < b:
            return starts[i]
        return None

    def windows_for(self, name: str) -> List[Tuple[float, float]]:
        starts, ends = self._station_windows(name)
        return list(zip(starts, ends))

    def brownout_mult(self, name: str, t: float) -> float:
        """Service-latency multiplier at ``t``: ``brownout_mult`` when
        the station's zone is browned out, else 1.0."""
        zdom = self.zone_scope.get(name)
        if zdom is None:
            return 1.0
        got = self._zone_brownouts.get(zdom)
        if got is None:
            got = zone_brownout_windows(self.zones, zdom)
            self._zone_brownouts[zdom] = got
        starts, ends = got
        i = bisect.bisect_right(starts, t) - 1
        if i >= 0 and t < ends[i]:
            return self.zones.brownout_mult
        return 1.0

    # -- the per-dispatch plan ----------------------------------------
    def plan(self, name: str, now: float, jobs: Sequence) -> Tuple[
            Optional[float], list, float, float]:
        """Fault plan for one dispatch decision.

        Returns ``(outage_end, drops, lat_mult, extra_us)``: if
        ``outage_end`` is not None the whole dispatch fails fast;
        otherwise ``drops`` (a subset of ``jobs``) fail fast
        individually and the survivors are served with their latency
        multiplied by ``lat_mult`` plus ``extra_us``.
        """
        cfg = self.cfg
        if cfg.stations is not None and name not in cfg.stations:
            return None, (), 1.0, 0.0
        end = self.outage_end(name, now) if self.has_outages else None
        if end is not None:
            self.stats.outage_failures += len(jobs)
            return end, (), 1.0, 0.0
        drops: list = ()
        if cfg.drop_prob > 0:
            # key on the logical request id (attempt-Jobs of one request
            # get fresh jids in interleaving-dependent order; rid/attempt
            # are causally stable), falling back to jid when unset
            du = self._stream("drop", name).u2
            drops = [j for j in jobs
                     if du(j.rid if j.rid >= 0 else j.jid,
                           j.attempt) < cfg.drop_prob]
            self.stats.drops += len(drops)
        mult = 1.0
        extra = 0.0
        lead = jobs[0]
        lead_id = lead.rid if lead.rid >= 0 else lead.jid
        if cfg.straggler_prob > 0 and self._stream(
                "straggler", name).u2(lead_id, lead.attempt) \
                < cfg.straggler_prob:
            mult = cfg.straggler_mult
            self.stats.stragglers += 1
        if cfg.spike_prob > 0 and self._stream(
                "spike", name).u2(lead_id, lead.attempt) < cfg.spike_prob:
            extra = cfg.spike_us
            self.stats.spikes += 1
        if self._has_brownouts:
            bm = self.brownout_mult(name, now)
            if bm != 1.0:
                mult *= bm
                self.stats.brownouts += 1
        return None, drops, mult, extra

    # -- wiring --------------------------------------------------------
    def attach(self, *stations) -> "FaultInjector":
        """Install this injector on the given stations (fluent)."""
        for st in stations:
            st.faults = self
        return self
