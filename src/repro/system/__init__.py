"""System-level microservice-interaction simulation (uqsim role)."""

from .graph import (
    GraphConfig,
    GraphNode,
    GraphSimulation,
    run_graph,
    social_network_graph,
)
from .queueing import (
    EndToEndConfig,
    EndToEndResult,
    Job,
    Simulator,
    Station,
    max_throughput_kqps,
    run_end_to_end,
    saturation_sweep,
)

__all__ = [
    "EndToEndConfig",
    "GraphConfig",
    "GraphNode",
    "GraphSimulation",
    "run_graph",
    "social_network_graph",
    "EndToEndResult",
    "Job",
    "Simulator",
    "Station",
    "max_throughput_kqps",
    "run_end_to_end",
    "saturation_sweep",
]
