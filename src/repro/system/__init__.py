"""System-level microservice-interaction simulation (uqsim role)."""

from .arrivals import TrafficShape, generate_arrivals
from .faults import FaultConfig, FaultInjector, FaultStats
from .fleet import (
    BALANCERS,
    FleetConfig,
    FleetResult,
    FleetShardTask,
    FleetSimulation,
    fleet_social_graph,
    merge_shards,
    run_fleet,
    run_fleet_shard,
)
from .graph import (
    GraphConfig,
    GraphNode,
    GraphSimulation,
    run_graph,
    social_network_graph,
)
from .queueing import (
    EndToEndConfig,
    EndToEndResult,
    Job,
    SimulationLimitError,
    Simulator,
    Station,
    max_throughput_kqps,
    run_end_to_end,
    saturation_sweep,
)
from .resilience import (
    CircuitBreaker,
    ResilienceConfig,
    ResilientEndToEnd,
    ResilientResult,
    run_resilient,
    system_energy_joules,
)
from .seeding import stream_exp, stream_key, stream_rng, stream_u
from .zones import (
    ZoneConfig,
    zone_brownout_windows,
    zone_domain,
    zone_outage_windows,
)

__all__ = [
    "BALANCERS",
    "CircuitBreaker",
    "EndToEndConfig",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "FleetConfig",
    "FleetResult",
    "FleetShardTask",
    "FleetSimulation",
    "GraphConfig",
    "GraphNode",
    "GraphSimulation",
    "ResilienceConfig",
    "ResilientEndToEnd",
    "ResilientResult",
    "TrafficShape",
    "ZoneConfig",
    "fleet_social_graph",
    "generate_arrivals",
    "merge_shards",
    "run_fleet",
    "run_fleet_shard",
    "run_graph",
    "run_resilient",
    "social_network_graph",
    "stream_exp",
    "stream_key",
    "stream_rng",
    "stream_u",
    "system_energy_joules",
    "zone_brownout_windows",
    "zone_domain",
    "zone_outage_windows",
    "EndToEndResult",
    "Job",
    "SimulationLimitError",
    "Simulator",
    "Station",
    "max_throughput_kqps",
    "run_end_to_end",
    "saturation_sweep",
]
