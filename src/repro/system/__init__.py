"""System-level microservice-interaction simulation (uqsim role)."""

from .faults import FaultConfig, FaultInjector, FaultStats
from .graph import (
    GraphConfig,
    GraphNode,
    GraphSimulation,
    run_graph,
    social_network_graph,
)
from .queueing import (
    EndToEndConfig,
    EndToEndResult,
    Job,
    SimulationLimitError,
    Simulator,
    Station,
    max_throughput_kqps,
    run_end_to_end,
    saturation_sweep,
)
from .resilience import (
    CircuitBreaker,
    ResilienceConfig,
    ResilientEndToEnd,
    ResilientResult,
    run_resilient,
    system_energy_joules,
)

__all__ = [
    "CircuitBreaker",
    "EndToEndConfig",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "GraphConfig",
    "GraphNode",
    "GraphSimulation",
    "ResilienceConfig",
    "ResilientEndToEnd",
    "ResilientResult",
    "run_graph",
    "run_resilient",
    "social_network_graph",
    "system_energy_joules",
    "EndToEndResult",
    "Job",
    "SimulationLimitError",
    "Simulator",
    "Station",
    "max_throughput_kqps",
    "run_end_to_end",
    "saturation_sweep",
]
