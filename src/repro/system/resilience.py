"""Resilience policies over the faulty end-to-end simulation.

Runs the paper's Fig. 22 User scenario (web -> user -> mcrouter ->
memcached -> storage-on-miss) on a cluster with injected faults
(:mod:`repro.system.faults`) and layers client-side resilience on top:

* **deadlines** - each request carries ``deadline_us``; an unresolved
  request is counted *violated* when it expires;
* **retry with exponential backoff + deterministic jitter** - a failed
  attempt re-enters the front of the pipeline after
  ``retry_backoff_us * backoff_mult**k`` (jittered by a seeded hash),
  so retries *re-enter the batch queues* and perturb batch formation -
  the SIMR interaction the sweep measures;
* **hedged requests** - if the primary attempt has not resolved after
  ``hedge_after_us``, a duplicate is launched; first completion wins
  and the loser is drained through the stations (never cancelled
  mid-flight, so the no-leak invariant is checkable);
* **load shedding** - a request arriving while the entry tier is more
  than ``shed_backlog_us`` behind is rejected immediately;
* **circuit breaker** - ``breaker_threshold`` consecutive failures at
  one station fail subsequent attempts fast for
  ``breaker_cooldown_us`` instead of queueing into a dead machine;
* **graceful degradation** - a memcached miss whose storage visit
  fails (or is breaker-blocked) can complete *degraded* with a
  recorded quality penalty instead of failing the request.

Conservation contract (sanitizer-checked under ``REPRO_SANITIZE=1``,
and always summarized in the result): every injected request resolves
exactly once as completed, shed, or violated; every launched attempt -
including hedge losers and post-resolution stragglers - is accounted
exactly once; per-request retries/hedges never exceed their budgets.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..sanitize import check, sanitizer_enabled
from .faults import FaultConfig, FaultInjector
from .queueing import (
    EndToEndConfig,
    Job,
    Simulator,
    Station,
    _percentile,
)
from .seeding import stream_u

#: request outcomes (exactly one per injected request)
DONE, SHED, VIOLATED = "done", "shed", "violated"

#: simple tier power model for the system-level requests/joule metric:
#: a fully-occupied tier server burns DYNAMIC_W, every provisioned tier
#: server leaks STATIC_W for the whole run, and the (shared, remote)
#: storage backend is charged dynamic-only at a lower rate.
DYNAMIC_W = 20.0
STATIC_W = 8.0
STORAGE_DYNAMIC_W = 4.0


@dataclass(frozen=True)
class ResilienceConfig:
    """Client-side policy knobs (defaults = every policy off)."""

    deadline_us: float = math.inf
    max_retries: int = 0
    retry_backoff_us: float = 300.0
    backoff_mult: float = 2.0
    #: backoff is multiplied by ``1 + jitter_frac * u`` with ``u`` a
    #: seeded per-(request, attempt) hash - deterministic jitter
    jitter_frac: float = 0.5
    hedge_after_us: float = math.inf
    max_hedges: int = 1
    #: shed arrivals when the entry tier is this far behind (0 = off)
    shed_backlog_us: float = 0.0
    #: consecutive failures at one station that open its breaker (0 = off)
    breaker_threshold: int = 0
    breaker_cooldown_us: float = 5_000.0
    #: complete a request whose storage leg failed, at a quality penalty
    degrade_storage: bool = False
    quality_penalty: float = 0.25
    seed: int = 23


@dataclass(slots=True)
class RequestState:
    """Lifecycle of one logical request across all its attempts."""

    rid: int
    arrival_us: float
    blocks: bool
    outcome: Optional[str] = None
    done_us: float = 0.0
    degraded: bool = False
    attempts: int = 0
    retries: int = 0
    hedges: int = 0
    won_by_hedge: bool = False
    #: attempts currently in the pipeline (primary + live hedges); a
    #: request may only resolve VIOLATED once this reaches zero
    inflight: int = 0
    #: retry relaunches scheduled but not yet fired; while one is
    #: pending, further attempt failures must not burn more budget
    backoffs: int = 0


class CircuitBreaker:
    """Consecutive-failure breaker, one state per station name."""

    def __init__(self, threshold: int, cooldown_us: float):
        self.threshold = threshold
        self.cooldown_us = cooldown_us
        self._fails: Dict[str, int] = {}
        self._open_until: Dict[str, float] = {}
        self.opened = 0

    def allow(self, name: str, now: float) -> bool:
        return now >= self._open_until.get(name, 0.0)

    def failure(self, name: str, now: float) -> None:
        if self.threshold <= 0:
            return
        n = self._fails.get(name, 0) + 1
        if n >= self.threshold:
            self._open_until[name] = now + self.cooldown_us
            self._fails[name] = 0
            self.opened += 1
        else:
            self._fails[name] = n

    def success(self, name: str) -> None:
        if self._fails.get(name):
            self._fails[name] = 0


@dataclass
class ResilientResult:
    """One resilient end-to-end run (metrics the sweep reports)."""

    offered_qps: float
    n_requests: int
    completed: int
    shed: int
    violated: int
    degraded: int
    retries: int
    hedges: int
    hedge_wins: int
    failed_attempts: int
    breaker_opens: int
    avg_latency_us: float
    p50_us: float
    p99_us: float
    p999_us: float
    goodput_kqps: float
    energy_j: float
    requests_per_joule: float
    quality: float
    fault_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def goodput_frac(self) -> float:
        return self.completed / self.n_requests if self.n_requests else 0.0


def system_energy_joules(tiers: List[Station], storage: Station,
                         horizon_us: float) -> float:
    """Busy-time dynamic energy + provisioned static energy (joules)."""
    dyn = sum(st.busy_us for st in tiers) * 1e-6 * DYNAMIC_W
    dyn += storage.busy_us * 1e-6 * STORAGE_DYNAMIC_W
    static = sum(st.servers for st in tiers) * horizon_us * 1e-6 * STATIC_W
    return dyn + static


class ResilientEndToEnd:
    """Fig. 22 pipeline + fault injector + resilience policies."""

    def __init__(self, cfg: EndToEndConfig, policy: ResilienceConfig,
                 faults: Optional[FaultConfig] = None, seed: int = 1,
                 max_events: Optional[int] = None):
        self.cfg = cfg
        self.policy = policy
        #: consumed only while precomputing the arrival schedule in
        #: :meth:`run`, before the event loop starts; event callbacks
        #: use keyed-hash draws (interleaving independence - the same
        #: contract as :mod:`repro.system.faults`)
        self.rng = random.Random(seed)
        self.sim = Simulator(max_events=max_events)
        self.injector: Optional[FaultInjector] = None
        if faults is not None and faults.enabled:
            self.injector = FaultInjector(faults)

        if cfg.rpu:
            lat = cfg.rpu_latency_factor
            gain = cfg.rpu_throughput_gain

            def tier(name: str, t_us: float) -> Station:
                return Station(self.sim, name, t_us * lat,
                               cfg.cpu_tier_servers,
                               occupancy_us=t_us / gain,
                               batch_size=cfg.batch_size,
                               batch_timeout_us=cfg.batch_timeout_us)
        else:
            def tier(name: str, t_us: float) -> Station:
                return Station(self.sim, name, t_us, cfg.cpu_tier_servers)

        self.user_st = tier("user", cfg.user_us)
        self.mcrouter_st = tier("mcrouter", cfg.mcrouter_us)
        self.memcached_st = tier("memcached", cfg.memcached_us)
        self.storage_st = Station(self.sim, "storage", cfg.storage_us,
                                  servers=0, infinite=True)
        self.stations = [self.user_st, self.mcrouter_st,
                         self.memcached_st, self.storage_st]
        if self.injector is not None:
            self.injector.attach(*self.stations)

        self.breaker = CircuitBreaker(policy.breaker_threshold,
                                      policy.breaker_cooldown_us)
        self.states: List[RequestState] = []
        self.attempts_launched = 0
        self.attempts_accounted = 0
        self.failed_attempts = 0
        self.degraded_completions = 0
        self._jid = 0
        self._n_requests = 0
        self._split = cfg.batch_split or not cfg.rpu
        self._san = sanitizer_enabled()
        self._horizon_us = 0.0
        # one stable bound-callback object per station: a batched
        # station dispatches a whole group through a single callback
        # and sanitizes on callback *identity*, so every arrival must
        # share the same object (attribute access would mint new ones)
        self._cb_after_user = self._after_user
        self._cb_after_mcrouter = self._after_mcrouter
        self._cb_after_memcached = self._after_memcached

    # -- deterministic jitter ------------------------------------------
    def _u(self, rid: int, k: int) -> float:
        return stream_u(self.policy.seed, rid, k)

    # -- attempt lifecycle ---------------------------------------------
    def _launch(self, t: float, state: RequestState,
                hedge: bool = False) -> None:
        self._jid += 1
        job = Job(jid=self._jid, arrival_us=state.arrival_us,
                  blocks=state.blocks, rid=state.rid,
                  attempt=state.attempts, hedge=hedge)
        state.attempts += 1
        state.inflight += 1
        self.attempts_launched += 1
        pol = self.policy
        if (not hedge and pol.hedge_after_us != math.inf):
            self.sim.schedule1(t + pol.hedge_after_us, self._maybe_hedge,
                               state)
        self.user_st.arrive(t, job, self._cb_after_user)

    def _maybe_hedge(self, now: float, state: RequestState) -> None:
        if state.outcome is None and state.hedges < self.policy.max_hedges:
            state.hedges += 1
            self._launch(now, state, hedge=True)

    def _relaunch(self, now: float, state: RequestState) -> None:
        state.backoffs -= 1
        # the request may have been resolved (deadline) while backing off
        if state.outcome is None:
            self._launch(now, state)

    def _attempt_failed(self, now: float, job: Job) -> None:
        self.attempts_accounted += 1
        self.failed_attempts += 1
        site = job.fail_site
        if ":" not in site:  # breaker fail-fasts don't re-feed the breaker
            self.breaker.failure(site, now)
        state = self.states[job.rid]
        state.inflight -= 1
        if state.outcome is not None:
            return
        if state.backoffs:
            # a retry is already scheduled for this request: an outage
            # onset that killed the primary and its hedge in one batch
            # must not burn a second slice of the retry budget
            return
        pol = self.policy
        if state.retries < pol.max_retries:
            k = state.retries
            state.retries += 1
            back = (pol.retry_backoff_us * pol.backoff_mult ** k
                    * (1.0 + pol.jitter_frac * self._u(state.rid, k)))
            t = now + back
            if t < state.arrival_us + pol.deadline_us:
                state.backoffs += 1
                self.sim.schedule1(t, self._relaunch, state)
                return
        if state.inflight == 0:
            # budget exhausted and nothing else racing: give up now.
            # With a sibling attempt still in the pipeline (a hedge),
            # the request stays open - that attempt may yet complete.
            self._resolve(now, state, VIOLATED)

    def _attempt_done(self, t: float, job: Job,
                      degraded: bool = False) -> None:
        self.attempts_accounted += 1
        br = self.breaker
        br.success("user")
        br.success("mcrouter")
        br.success("memcached")
        if job.blocks and not degraded:
            br.success("storage")
        state = self.states[job.rid]
        state.inflight -= 1
        if state.outcome is not None:
            return  # hedge loser / post-deadline straggler
        state.done_us = t
        state.degraded = degraded
        state.won_by_hedge = job.hedge
        if degraded:
            self.degraded_completions += 1
        self._resolve(t, state, DONE)

    def _resolve(self, t: float, state: RequestState,
                 outcome: str) -> None:
        if self._san:
            check(state.outcome is None,
                  "resilience: request %d resolved twice (%s then %s)",
                  state.rid, state.outcome, outcome)
        state.outcome = outcome
        # measurement horizon: last *resolution*, not sim drain time
        # (deadline timers and hedge losers tick on harmlessly after
        # the final request has resolved and must not dilute goodput)
        if t > self._horizon_us:
            self._horizon_us = t

    def _deadline(self, now: float, state: RequestState) -> None:
        if state.outcome is None:
            self._resolve(now, state, VIOLATED)

    # -- pipeline routing ----------------------------------------------
    def _hop(self, now: float, jobs: List[Job], nxt: Station,
             after: Callable) -> None:
        ok = []
        for j in jobs:
            if j.failed:
                self._attempt_failed(now, j)
            else:
                ok.append(j)
        if not ok:
            return
        if (self.policy.breaker_threshold > 0
                and not self.breaker.allow(nxt.name, now)):
            for j in ok:
                j.failed = True
                j.fail_site = nxt.name + ":breaker"
                self._attempt_failed(now, j)
            return
        nxt.arrive_many(now, ok, after)

    def _after_user(self, now: float, jobs: List[Job]) -> None:
        self._hop(now, jobs, self.mcrouter_st, self._cb_after_mcrouter)

    def _after_mcrouter(self, now: float, jobs: List[Job]) -> None:
        self._hop(now, jobs, self.memcached_st, self._cb_after_memcached)

    def _finish(self, now: float, jobs: List[Job],
                degraded: bool = False) -> None:
        done_at = now + self.cfg.network_us
        for j in jobs:
            if j.failed:
                self._attempt_failed(now, j)
            else:
                self._attempt_done(done_at, j, degraded)

    def _storage_leg(self, now: float, misses: List[Job],
                     done: Callable) -> None:
        """Route a miss sub-batch to storage, honoring breaker/degrade."""
        if (self.policy.breaker_threshold > 0
                and not self.breaker.allow("storage", now)):
            if self.policy.degrade_storage:
                # skip the dead downstream: serve stale at a penalty
                done(now, misses, True)
                return
            for j in misses:
                j.failed = True
                j.fail_site = "storage:breaker"
            done(now, misses, False)
            return
        self.storage_st.arrive_many(
            now, misses, lambda t, js: self._after_storage(t, js, done))

    def _after_storage(self, now: float, jobs: List[Job],
                       done: Callable) -> None:
        if self.policy.degrade_storage:
            failed = [j for j in jobs if j.failed]
            okay = [j for j in jobs if not j.failed]
            if okay:
                done(now, okay, False)
            if failed:
                for j in failed:  # degrade instead of failing the attempt
                    j.failed = False
                    j.fail_site = ""
                done(now, failed, True)
            return
        done(now, jobs, False)

    def _after_memcached(self, now: float, jobs: List[Job]) -> None:
        hits: List[Job] = []
        misses: List[Job] = []
        for j in jobs:
            if j.failed:
                self._attempt_failed(now, j)
            elif j.blocks:
                misses.append(j)
            else:
                hits.append(j)
        if not misses:
            if hits:
                self._finish(now, hits)
            return
        if self._split:
            if hits:
                self._finish(now, hits)
            self._storage_leg(now, misses,
                              lambda t, js, deg: self._finish(t, js, deg))
            return
        # lockstep without splitting: hits wait for the batch's misses
        remaining = {"n": len(misses)}

        def on_storage(t: float, js: List[Job], deg: bool) -> None:
            self._finish(t, js, deg)
            remaining["n"] -= len(js)
            if remaining["n"] == 0 and hits:
                self._finish(t, hits)

        self._storage_leg(now, misses, on_storage)

    # -- driving --------------------------------------------------------
    def _inject(self, now: float, i: int) -> None:
        state = RequestState(rid=i, arrival_us=now,
                             blocks=self._blocks[i])
        self.states.append(state)
        nxt = i + 1
        if nxt < self._n_requests:
            self.sim.schedule1(self._arrive_at[nxt], self._inject, nxt)
        pol = self.policy
        if (pol.shed_backlog_us > 0
                and self.user_st.backlog_us(now) > pol.shed_backlog_us):
            self._resolve(now, state, SHED)
            return
        if pol.deadline_us != math.inf:
            self.sim.schedule1(now + pol.deadline_us, self._deadline, state)
        self._launch(now + self.cfg.web_us + self.cfg.network_us, state)

    def run(self, qps: float, n_requests: int = 2000) -> ResilientResult:
        self._san = sanitizer_enabled()
        self._n_requests = n_requests
        inter_us = 1e6 / qps
        hit_rate = self.cfg.memcached_hit_rate
        rnd = self.rng.random
        expovariate = self.rng.expovariate
        # the whole arrival schedule is drawn *before* the event loop,
        # in the exact draw order the old in-event injector used (gap,
        # then per-request [blocks, gap]), so results are bit-identical
        # while no event callback ever consumes shared RNG state
        arrive_at: List[float] = []
        blocks: List[bool] = []
        if n_requests > 0:
            t = expovariate(1.0) * inter_us
            for i in range(n_requests):
                arrive_at.append(t)
                blocks.append(rnd() >= hit_rate)
                if i + 1 < n_requests:
                    t += expovariate(1.0) * inter_us
        self._arrive_at = arrive_at
        self._blocks = blocks
        if n_requests > 0:
            self.sim.schedule1(arrive_at[0], self._inject, 0)
        self.sim.run()

        states = self.states
        completed = [s for s in states if s.outcome == DONE]
        shed = sum(1 for s in states if s.outcome == SHED)
        violated = sum(1 for s in states if s.outcome == VIOLATED)
        if self._san:
            self._sanitize(n_requests, len(completed), shed, violated)

        lats = [s.done_us - s.arrival_us for s in completed]
        makespan_us = max(self._horizon_us, 1e-9)
        energy = system_energy_joules(
            [self.user_st, self.mcrouter_st, self.memcached_st],
            self.storage_st, makespan_us)
        n_done = len(completed)
        n_degraded = sum(1 for s in completed if s.degraded)
        quality = 0.0
        if n_done:
            quality = (n_done - n_degraded * self.policy.quality_penalty) \
                / n_done
        inj = self.injector
        fault_stats = {}
        if inj is not None:
            fault_stats = {
                "outage_failures": inj.stats.outage_failures,
                "inflight_failures": inj.stats.inflight_failures,
                "drops": inj.stats.drops,
                "stragglers": inj.stats.stragglers,
                "spikes": inj.stats.spikes,
            }
        return ResilientResult(
            offered_qps=qps,
            n_requests=n_requests,
            completed=n_done,
            shed=shed,
            violated=violated,
            degraded=n_degraded,
            retries=sum(s.retries for s in states),
            hedges=sum(s.hedges for s in states),
            hedge_wins=sum(1 for s in completed if s.won_by_hedge),
            failed_attempts=self.failed_attempts,
            breaker_opens=self.breaker.opened,
            avg_latency_us=sum(lats) / n_done if n_done else 0.0,
            p50_us=_percentile(lats, 0.50),
            p99_us=_percentile(lats, 0.99),
            p999_us=_percentile(lats, 0.999),
            goodput_kqps=n_done / makespan_us * 1e3,
            energy_j=energy,
            requests_per_joule=n_done / energy if energy > 0 else 0.0,
            quality=quality,
            fault_stats=fault_stats,
        )

    def _sanitize(self, n: int, completed: int, shed: int,
                  violated: int) -> None:
        """The conservation invariants of the resilience layer."""
        check(completed + shed + violated == n,
              "resilience: %d requests but %d completed + %d shed + %d "
              "violated", n, completed, shed, violated)
        check(self.attempts_launched == self.attempts_accounted,
              "resilience: %d attempts launched but %d accounted - a "
              "job leaked (hedge cancellation?)",
              self.attempts_launched, self.attempts_accounted)
        pol = self.policy
        for s in self.states:
            check(s.retries <= pol.max_retries,
                  "resilience: request %d used %d retries (budget %d)",
                  s.rid, s.retries, pol.max_retries)
            check(s.hedges <= pol.max_hedges,
                  "resilience: request %d used %d hedges (budget %d)",
                  s.rid, s.hedges, pol.max_hedges)
            check(s.inflight == 0,
                  "resilience: request %d drained with %d attempts "
                  "still in flight", s.rid, s.inflight)
            check(s.backoffs == 0,
                  "resilience: request %d drained with %d backoff "
                  "relaunches still pending", s.rid, s.backoffs)
            if s.outcome == DONE:
                check(s.done_us >= s.arrival_us,
                      "resilience: request %d finished at %f before "
                      "arriving at %f", s.rid, s.done_us, s.arrival_us)
        for st in self.stations:
            check(not st._pending,
                  "resilience: station %s stranded %d jobs",
                  st.name, len(st._pending))
            check(st.dispatched_jobs == st.arrived_jobs,
                  "resilience: station %s dispatched %d of %d arrivals",
                  st.name, st.dispatched_jobs, st.arrived_jobs)


def run_resilient(cfg: EndToEndConfig, policy: ResilienceConfig,
                  faults: Optional[FaultConfig] = None, qps: float = 10000,
                  n_requests: int = 2000, seed: int = 1,
                  max_events: Optional[int] = None) -> ResilientResult:
    """Convenience wrapper: one resilient end-to-end run."""
    return ResilientEndToEnd(cfg, policy, faults, seed=seed,
                             max_events=max_events).run(qps, n_requests)
