"""Generic microservice-graph simulation (the full Fig. 3 topology).

``queueing.run_end_to_end`` hard-codes the paper's Fig. 22 User path;
this module generalizes to arbitrary service graphs so the whole
social-network application of Fig. 3 can be driven end to end:

    web -> {user | post | search}
    post   -> uniqueid + text + urlshort   (parallel fan-out, join)
    search -> 8 leaf shards                (parallel fan-out, join)
    user   -> mcrouter -> memcached (-> storage on miss)

Each node is a batched/batchable Station; edges either *route* (pick
one child by probability) or *fan out* (visit all children in parallel
and join on the slowest).
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sanitize import check, sanitizer_enabled
from .faults import FaultConfig, FaultInjector
from .queueing import EndToEndResult, Job, Simulator, Station, _percentile
from .resilience import ResilienceConfig
from .seeding import PrefixStream, stream_u


@dataclass
class GraphNode:
    """One service tier."""

    name: str
    service_us: float
    servers: int = 1
    #: route: pick one child by weight; fanout: visit all and join
    route: List[Tuple[str, float]] = field(default_factory=list)
    fanout: List[str] = field(default_factory=list)
    #: optional per-visit side branch probability (e.g. storage miss)
    miss_to: Optional[str] = None
    miss_rate: float = 0.0


@dataclass
class GraphConfig:
    nodes: Dict[str, GraphNode]
    entry: str
    network_us: float = 60.0
    rpu: bool = False
    rpu_throughput_gain: float = 5.0
    rpu_latency_factor: float = 1.2
    batch_size: int = 32
    batch_timeout_us: float = 50.0


def social_network_graph(rpu: bool = False) -> GraphConfig:
    """The Fig. 3 application with the paper's Fig. 22 latency scales."""
    nodes = {
        "web": GraphNode("web", 10.0, servers=2,
                         route=[("user", 0.3), ("post", 0.4),
                                ("search", 0.3)]),
        "user": GraphNode("user", 100.0, route=[("mcrouter", 1.0)]),
        "mcrouter": GraphNode("mcrouter", 20.0,
                              route=[("memcached", 1.0)]),
        "memcached": GraphNode("memcached", 25.0, miss_to="storage",
                               miss_rate=0.1),
        "storage": GraphNode("storage", 1000.0, servers=10_000),
        "post": GraphNode("post", 60.0,
                          fanout=["uniqueid", "text", "urlshort"]),
        "uniqueid": GraphNode("uniqueid", 15.0),
        "text": GraphNode("text", 40.0),
        "urlshort": GraphNode("urlshort", 20.0),
        "search": GraphNode("search", 50.0,
                            fanout=[f"shard{i}" for i in range(8)]),
        **{f"shard{i}": GraphNode(f"shard{i}", 80.0) for i in range(8)},
    }
    return GraphConfig(nodes=nodes, entry="web", rpu=rpu)


class GraphSimulation:
    """Drives jobs through a GraphConfig at an offered load.

    ``faults`` attaches a :class:`~repro.system.faults.FaultInjector`
    to every station; ``resilience`` arms the retry/deadline subset of
    :class:`~repro.system.resilience.ResilienceConfig` at the request
    level (a failed attempt re-enters the entry tier's batch queue
    after exponential backoff with deterministic jitter; an unresolved
    request past its deadline, or out of retries, counts as violated).
    With both left at None the simulation is bit-identical to the
    pre-fault-layer behaviour.

    Randomness: the arrival schedule is drawn from one seeded RNG
    *before* the event loop starts (a fixed draw sequence), while every
    in-simulation decision - routing, miss branches, retry jitter - is
    a pure keyed-hash function of stable identifiers (request id,
    attempt, node name) via :mod:`repro.system.seeding`.  No RNG state
    is consumed inside event callbacks, so results are independent of
    event interleaving: adding a replica, changing a batch timeout, or
    one request retrying cannot perturb any other request's draws.
    (Each attempt visits a node at most once - the continuation table
    is a per-node ``{jid: continuation}`` dict - so
    ``(node, rid, attempt)`` uniquely identifies a routing decision.)

    Hot-path layout: each node's completion callback is *compiled* in
    :meth:`_make_after` - the routing table (children + cumulative
    weights), the miss branch and the per-node
    :class:`~repro.system.seeding.PrefixStream` draws are baked into
    one closure per node, so serving a job does no routing-table
    walks, repr-hashing or closure allocation on the common path (the
    only per-job closure left is the miss continuation, taken at
    ``miss_rate``).
    """

    __slots__ = ("cfg", "seed", "rng", "sim", "injector", "resilience",
                 "violated", "_rstates", "_jidc", "stations", "finished",
                 "_conts", "_afters", "_vbund")

    def __init__(self, cfg: GraphConfig, seed: int = 1,
                 faults: Optional[FaultConfig] = None,
                 resilience: Optional[ResilienceConfig] = None):
        self.cfg = cfg
        self.seed = seed
        #: used only for the upfront arrival schedule (drawn before the
        #: event loop runs), never inside event callbacks
        self.rng = random.Random(seed)
        self.sim = Simulator()
        self.injector: Optional[FaultInjector] = None
        if faults is not None and faults.enabled:
            self.injector = FaultInjector(faults)
        self.resilience = resilience
        self.violated = 0
        self._rstates: Dict[int, dict] = {}
        self._jidc = itertools.count()
        self.stations: Dict[str, Station] = {}
        for name, node in cfg.nodes.items():
            if cfg.rpu and node.servers < 1000:
                self.stations[name] = Station(
                    self.sim, name,
                    node.service_us * cfg.rpu_latency_factor,
                    node.servers,
                    occupancy_us=node.service_us / cfg.rpu_throughput_gain,
                    batch_size=cfg.batch_size,
                    batch_timeout_us=cfg.batch_timeout_us,
                )
            else:
                self.stations[name] = Station(
                    self.sim, name, node.service_us, node.servers,
                    infinite=node.servers >= 1000,
                )
        if self.injector is not None:
            self.injector.attach(*self.stations.values())
        self.finished: List[Job] = []
        #: per-node ``{jid: continuation}`` tables: a Station fires one
        #: callback per dispatched *batch*, so each job's onward path
        #: is looked up here rather than captured per-arrival
        self._conts: Dict[str, Dict[int, Callable[[float], None]]] = \
            {name: {} for name in cfg.nodes}
        #: one completion callback per station, shared by every arrival
        #: (a batch dispatches through a single callback; per-arrival
        #: closures would be both slower and wrong for batches)
        self._afters = {name: self._make_after(node)
                        for name, node in cfg.nodes.items()}
        self._rebind_visits()

    def _rebind_visits(self) -> None:
        """Per-node ``(conts, arrive, after)`` bundles: one dict lookup
        per visit instead of three (subclasses that replace the station
        layer rebuild this after rewiring)."""
        self._vbund = {name: (self._conts[name], st.arrive,
                              self._afters[name])
                       for name, st in self.stations.items()}

    def _make_after(self, node: GraphNode):
        """Compile one node's completion callback.

        Everything per-node-constant - the continuation table, the
        routing children with their cumulative weights, the miss branch
        and the keyed draw streams - is bound into the closure; the
        draws themselves are bit-identical to the ``stream_u`` calls
        they replace (:class:`~repro.system.seeding.PrefixStream`).
        """
        name = node.name
        conts = self._conts[name]
        visit = self._visit
        net = self.cfg.network_us

        if node.route:
            children = [c for c, _w in node.route]
            cum: List[float] = []
            acc = 0.0
            for _c, w in node.route:
                acc += w
                cum.append(acc)
            total = sum(w for _c, w in node.route)
            n_children = len(children)
            last = children[-1]
            route_u = PrefixStream(self.seed, "route", name).u2

            def downstream(t: float, job: Job, rid: int, done) -> None:
                x = route_u(rid, job.attempt) * total
                for k in range(n_children):
                    if x < cum[k]:
                        visit(t + net, children[k], job, done)
                        return
                visit(t + net, last, job, done)
        elif node.fanout:
            fanout = list(node.fanout)
            nf = len(fanout)

            def downstream(t: float, job: Job, rid: int, done) -> None:
                cell = [nf]

                def join(tt: float) -> None:
                    cell[0] -= 1
                    if not cell[0]:
                        done(tt)

                for child in fanout:
                    visit(t + net, child, job, join)
        else:
            def downstream(t: float, job: Job, rid: int, done) -> None:
                done(t)

        miss_to = node.miss_to
        if miss_to:
            miss_rate = node.miss_rate
            miss_u = PrefixStream(self.seed, "miss", name).u2

            def serve_one(t: float, job: Job) -> None:
                done = conts.pop(job.jid)
                rid = job.rid if job.rid >= 0 else job.jid
                if miss_u(rid, job.attempt) < miss_rate:
                    # the side branch resumes this node's downstream
                    # path when it completes (the only remaining
                    # per-job closure, taken at miss_rate)
                    def cont(tt: float, job=job, rid=rid,
                             done=done) -> None:
                        downstream(tt, job, rid, done)

                    visit(t + net, miss_to, job, cont)
                else:
                    downstream(t, job, rid, done)
        else:
            def serve_one(t: float, job: Job) -> None:
                downstream(t, job,
                           job.rid if job.rid >= 0 else job.jid,
                           conts.pop(job.jid))

        if self.injector is None:
            def after(t: float, jobs: List[Job]) -> None:
                for j in jobs:
                    serve_one(t, j)
            return after

        attempt_failed = self._attempt_failed

        def after(t: float, jobs: List[Job]) -> None:
            for j in jobs:
                if j.failed:
                    conts.pop(j.jid)
                    attempt_failed(t, j)
                else:
                    serve_one(t, j)
        return after

    # -- fault/resilience request lifecycle ----------------------------
    def _attempt_failed(self, now: float, job: Job) -> None:
        """A fault killed this attempt somewhere in the graph: retry
        from the entry tier (re-entering its batch queue) or give up.
        The attempt's other fan-out legs keep draining harmlessly -
        their join continuation checks the resolved flag."""
        state = self._rstates[job.rid]
        if state["resolved"]:
            return
        if job.attempt < state["retries"]:
            # a sibling fan-out leg of this attempt already triggered
            # its retry (or this is a stale older attempt): one failed
            # attempt, one retry - otherwise each failed leg would
            # spawn its own duplicate attempt, and a stale leg could
            # burn the retry budget out from under the live attempt
            return
        res = self.resilience
        if res is not None and state["retries"] < res.max_retries:
            k = state["retries"]
            state["retries"] += 1
            u = stream_u(res.seed, job.rid, k)
            back = (res.retry_backoff_us * res.backoff_mult ** k
                    * (1.0 + res.jitter_frac * u))
            self.sim.schedule(now + back, self._start_attempt, state)
            return
        state["resolved"] = True
        self.violated += 1

    def _make_job(self, state: dict) -> Job:
        """Build one attempt-Job (subclass hook: the fleet tier stamps
        the request's API class here for batch-aware routing)."""
        return Job(jid=next(self._jidc), arrival_us=state["arrival"],
                   rid=state["rid"], attempt=state["retries"])

    def _start_attempt(self, now: float, state: dict) -> None:
        if state["resolved"]:  # deadline fired while backing off
            return
        job = self._make_job(state)

        def finish(tt: float, j: Job = job, s: dict = state) -> None:
            if s["resolved"]:
                return
            s["resolved"] = True
            j.done_us = tt + self.cfg.network_us
            self.finished.append(j)

        self._visit(now, self.cfg.entry, job, finish)

    def _deadline(self, now: float, state: dict) -> None:
        if not state["resolved"]:
            state["resolved"] = True
            self.violated += 1

    # ------------------------------------------------------------------
    def _visit(self, now: float, node_name: str, job: Job,
               done: Callable[[float], None]) -> None:
        conts, arrive, after = self._vbund[node_name]
        conts[job.jid] = done
        arrive(now, job, after)

    # ------------------------------------------------------------------
    def run(self, qps: float, n_requests: int = 2000) -> EndToEndResult:
        inter_us = 1e6 / qps
        resilient = self.injector is not None or self.resilience is not None
        t = 0.0
        for i in range(n_requests):
            t += self.rng.expovariate(1.0) * inter_us
            if resilient:
                state = {"rid": i, "arrival": t, "retries": 0,
                         "resolved": False}
                self._rstates[i] = state
                res = self.resilience
                if res is not None and res.deadline_us != math.inf:
                    self.sim.schedule(t + res.deadline_us, self._deadline,
                                      state)
                self.sim.schedule(t, self._start_attempt, state)
                continue
            job = Job(jid=i, arrival_us=t)

            def finish(tt: float, j: Job = job) -> None:
                j.done_us = tt + self.cfg.network_us
                self.finished.append(j)

            self.sim.schedule(t, self._visit, self.cfg.entry, job, finish)
        self.sim.run()
        if resilient and sanitizer_enabled():
            check(len(self.finished) + self.violated == n_requests,
                  "graph: %d requests but %d finished + %d violated",
                  n_requests, len(self.finished), self.violated)
            check(all(s["resolved"] for s in self._rstates.values()),
                  "graph: unresolved request states after drain")
        lats = [j.latency_us for j in self.finished]
        return EndToEndResult(
            offered_qps=qps,
            completed=len(self.finished),
            avg_latency_us=sum(lats) / len(lats) if lats else 0.0,
            p50_us=_percentile(lats, 0.50),
            p99_us=_percentile(lats, 0.99),
        )


def run_graph(cfg: GraphConfig, qps: float, n_requests: int = 2000,
              seed: int = 1, faults: Optional[FaultConfig] = None,
              resilience: Optional[ResilienceConfig] = None
              ) -> EndToEndResult:
    """Convenience wrapper: simulate ``cfg`` at ``qps`` offered load."""
    return GraphSimulation(cfg, seed=seed, faults=faults,
                           resilience=resilience).run(qps, n_requests)
