"""Zone fault domains: a topology level above racks for the fleet tier.

Real data centers group racks into *availability zones* that fail
together - a zone's power feed, cooling loop or spine switch is one
blast radius.  DeathStarBench-style studies show a single zone loss
cascading through fan-out tiers; the paper's fleet-level requests/joule
claim is only credible if the simulated fleet survives that.  This
module adds the zone layer on top of the rack scoping that
:mod:`repro.system.fleet` already gives the fault injector:

* **zone fail-stop outages** - every station whose rack belongs to a
  down zone goes dark together.  Windows come from a seeded Poisson
  process per zone domain (exactly the rack-outage mechanism of
  :mod:`repro.system.faults`) *plus* optional **planned windows** -
  deterministic ``(zone, start, end)`` kills the failover experiment
  uses to stage a controlled one-zone loss;
* **zone brownouts** - partial degradation: inside a brownout window
  every dispatch in the zone is served at ``brownout_mult`` times its
  service latency (power capping, a thermal event, a degraded spine)
  instead of failing outright.  Brownouts inflate latency and
  occupancy but never kill work - the failure mode health checks and
  tail-latency autoscaling exist for.

Determinism contract (same as the rest of the fault layer): windows
are a pure function of ``(seed, domain)`` - never of event
interleaving - and a ``ZoneConfig`` with zero rates and no planned
windows is inert: the injector's schedules are bit-identical to the
zone-less ones.

Topology: replica ``r`` of every tier lives in rack
``r // rack_size`` (see :mod:`.fleet`); rack ``k`` lives in zone
``k // racks_per_zone``.  Zone domains are named ``s{shard}/zone{z}``,
so zones in different shards never share schedules, mirroring the rack
domain naming.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Tuple

from .seeding import stream_rng

Windows = Tuple[List[float], List[float]]


@dataclass(frozen=True)
class ZoneConfig:
    """Zone topology + zone-scoped fault schedule (frozen: part of a
    fleet shard's store identity)."""

    #: racks per zone (replica ``r`` is in rack ``r // rack_size``,
    #: rack ``k`` is in zone ``k // racks_per_zone``)
    racks_per_zone: int = 1
    seed: int = 17
    #: expected fail-stop zone outages per simulated second per zone
    outage_rate_per_s: float = 0.0
    outage_min_us: float = 5_000.0
    outage_max_us: float = 20_000.0
    #: expected brownout windows per simulated second per zone
    brownout_rate_per_s: float = 0.0
    brownout_min_us: float = 5_000.0
    brownout_max_us: float = 20_000.0
    #: latency/occupancy multiplier inside a brownout window
    brownout_mult: float = 2.5
    #: deterministic fail-stop windows: ``((zone, start_us, end_us), ...)``
    planned: Tuple[Tuple[int, float, float], ...] = ()
    #: deterministic brownout windows, same shape
    planned_brownout: Tuple[Tuple[int, float, float], ...] = ()
    #: seeded schedules are drawn over this horizon
    horizon_us: float = 2_000_000.0

    @property
    def enabled(self) -> bool:
        """False for an all-zero config (the zone layer is inert)."""
        return (self.outage_rate_per_s > 0 or self.brownout_rate_per_s > 0
                or bool(self.planned) or bool(self.planned_brownout))

    @property
    def has_outages(self) -> bool:
        return self.outage_rate_per_s > 0 or bool(self.planned)

    @property
    def has_brownouts(self) -> bool:
        return self.brownout_rate_per_s > 0 or bool(self.planned_brownout)

    def zone_of_rack(self, rack: int) -> int:
        return rack // max(1, self.racks_per_zone)


def zone_domain(shard: int, zone: int) -> str:
    """The fault-domain name of one zone (scoped per shard, like the
    rack domains ``s{shard}/rack{k}``)."""
    return f"s{shard}/zone{zone}"


def zone_index(domain: str) -> int:
    """Parse the zone index back out of a :func:`zone_domain` name."""
    return int(domain.rsplit("zone", 1)[1])


def _poisson_windows(seed: int, kind: str, domain: str,
                     rate_per_s: float, min_us: float, max_us: float,
                     horizon_us: float) -> List[Tuple[float, float]]:
    """Seeded Poisson window process (same construction as the rack
    outage schedules in :mod:`.faults`): a pure function of
    ``(seed, kind, domain)``."""
    if rate_per_s <= 0:
        return []
    out: List[Tuple[float, float]] = []
    rng = stream_rng(seed, kind, domain)
    mean_gap_us = 1e6 / rate_per_s
    t = rng.expovariate(1.0) * mean_gap_us
    while t < horizon_us:
        dur = rng.uniform(min_us, max_us)
        out.append((t, t + dur))
        t += rng.expovariate(1.0) * mean_gap_us
    return out


def _merged(pairs: List[Tuple[float, float]]) -> Windows:
    """Sort and merge overlapping ``(start, end)`` pairs into the
    parallel ``(starts, ends)`` lists the injector queries bisect."""
    starts: List[float] = []
    ends: List[float] = []
    for a, b in sorted(pairs):
        if starts and a <= ends[-1]:
            if b > ends[-1]:
                ends[-1] = b
        else:
            starts.append(a)
            ends.append(b)
    return starts, ends


def zone_outage_windows(cfg: ZoneConfig, domain: str) -> Windows:
    """Merged fail-stop windows of one zone domain (seeded + planned)."""
    z = zone_index(domain)
    pairs = _poisson_windows(cfg.seed, "zone_outages", domain,
                             cfg.outage_rate_per_s, cfg.outage_min_us,
                             cfg.outage_max_us, cfg.horizon_us)
    pairs.extend((a, b) for zz, a, b in cfg.planned if zz == z)
    return _merged(pairs)


def zone_brownout_windows(cfg: ZoneConfig, domain: str) -> Windows:
    """Merged brownout windows of one zone domain (seeded + planned)."""
    z = zone_index(domain)
    pairs = _poisson_windows(cfg.seed, "zone_brownouts", domain,
                             cfg.brownout_rate_per_s, cfg.brownout_min_us,
                             cfg.brownout_max_us, cfg.horizon_us)
    pairs.extend((a, b) for zz, a, b in cfg.planned_brownout if zz == z)
    return _merged(pairs)


def merge_windows(a: Windows, b: Windows) -> Windows:
    """Union of two merged window lists, re-merged."""
    if not a[0]:
        return b
    if not b[0]:
        return a
    return _merged(list(zip(a[0], a[1])) + list(zip(b[0], b[1])))


def in_window(windows: Windows, t: float) -> bool:
    """Whether ``t`` falls inside any window (bisect on starts)."""
    starts, ends = windows
    i = bisect.bisect_right(starts, t) - 1
    return i >= 0 and t < ends[i]
