"""Stable keyed-hash randomness for the system-level simulators.

The discrete-event simulators must stay deterministic not just for a
fixed seed but *independently of event interleaving*: a shared
``random.Random`` consumed inside event callbacks makes every draw
depend on the global event order, so adding a station, changing a
batch timeout, or retrying one request perturbs every *other*
request's coin flips.  :mod:`repro.system.faults` solved this for
fault placement by hashing stable identifiers; this module hoists that
scheme into shared helpers so routing, miss, arrival and jitter draws
across the graph/fleet layers all use one keyed construction:

* :func:`stream_u` - uniform [0, 1) from a key tuple (CRC-32 based,
  matching the injector's historical construction bit for bit);
* :func:`stream_exp` - unit-mean exponential via the inverse CDF;
* :func:`stream_rng` - a seeded ``random.Random`` whose seed is the
  keyed hash, for places that legitimately need a *sequence* of draws
  scoped to one stable identity (per-station outage schedules,
  per-shard arrival streams);
* :class:`PrefixStream` - the hot-path form of :func:`stream_u` for a
  *fixed key prefix* (seed, kind, station name) and a varying integer
  suffix (request id, attempt).  The prefix's CRC state is computed
  once; each draw continues it over just the suffix bytes, so the
  per-draw cost drops from repr-ing the whole tuple to formatting two
  integers.  Bit-identical to ``stream_u(*prefix, *suffix)`` by
  construction (CRC-32 is a streaming checksum over the same bytes).

Keys must be built from stable identifiers only - request ids, attempt
numbers, station/tier names, shard indices - never from object ids,
wall-clock time, or anything order-dependent.
"""

from __future__ import annotations

import math
import random
import zlib

_U32 = float(1 << 32)


def stream_key(*parts) -> int:
    """CRC-32 of the ``repr`` of the key tuple (stable across runs and
    processes for ints/strings/floats/tuples)."""
    return zlib.crc32(repr(parts).encode("ascii"))


def stream_u(*parts) -> float:
    """Uniform [0, 1) as a pure function of the key."""
    return stream_key(*parts) / _U32


def stream_exp(*parts) -> float:
    """Unit-mean exponential variate as a pure function of the key.

    ``1 - u`` lies in (0, 1], so the log is always finite.
    """
    return -math.log(1.0 - stream_u(*parts))


def stream_rng(*parts) -> random.Random:
    """A ``random.Random`` seeded by the keyed hash - for bounded,
    identity-scoped draw sequences (e.g. one station's outage windows).
    """
    return random.Random(stream_key(*parts))


class PrefixStream:
    """Keyed draws with a precomputed key prefix.

    ``PrefixStream(seed, "route", name).u2(rid, attempt)`` returns the
    exact bits of ``stream_u(seed, "route", name, rid, attempt)``:
    ``repr((p0, ..., s0, s1))`` is the prefix tuple's repr up to its
    closing parenthesis, then ``", "``-joined suffix reprs, then
    ``")"`` - and CRC-32 over a byte stream equals CRC-32 of a prefix
    continued over the remaining bytes.  The routers and the fault
    injector draw millions of these with a per-node/per-kind constant
    prefix; hashing only the two-integer suffix is the "batched keyed
    draw" fast path.
    """

    __slots__ = ("_crc",)

    def __init__(self, *prefix):
        if not prefix:
            raise ValueError("PrefixStream needs at least one key part")
        head = repr(prefix)
        # "(p0,)" -> "(p0, "; "(p0, p1)" -> "(p0, p1, "
        head = (head[:-2] if len(prefix) == 1 else head[:-1]) + ", "
        self._crc = zlib.crc32(head.encode("ascii"))

    def key2(self, a: int, b: int) -> int:
        """:func:`stream_key` of ``(*prefix, a, b)`` for plain ints."""
        return zlib.crc32(b"%d, %d)" % (a, b), self._crc)

    def u2(self, a: int, b: int) -> float:
        """:func:`stream_u` of ``(*prefix, a, b)`` for plain ints."""
        return zlib.crc32(b"%d, %d)" % (a, b), self._crc) / _U32

    def key(self, *suffix) -> int:
        """:func:`stream_key` of ``(*prefix, *suffix)`` (generic)."""
        if not suffix:
            raise ValueError("PrefixStream.key needs a suffix")
        tail = repr(suffix)
        tail = (tail[1:-2] if len(suffix) == 1 else tail[1:-1]) + ")"
        return zlib.crc32(tail.encode("ascii"), self._crc)

    def u(self, *suffix) -> float:
        """:func:`stream_u` of ``(*prefix, *suffix)`` (generic)."""
        return self.key(*suffix) / _U32
