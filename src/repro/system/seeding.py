"""Stable keyed-hash randomness for the system-level simulators.

The discrete-event simulators must stay deterministic not just for a
fixed seed but *independently of event interleaving*: a shared
``random.Random`` consumed inside event callbacks makes every draw
depend on the global event order, so adding a station, changing a
batch timeout, or retrying one request perturbs every *other*
request's coin flips.  :mod:`repro.system.faults` solved this for
fault placement by hashing stable identifiers; this module hoists that
scheme into shared helpers so routing, miss, arrival and jitter draws
across the graph/fleet layers all use one keyed construction:

* :func:`stream_u` - uniform [0, 1) from a key tuple (CRC-32 based,
  matching the injector's historical construction bit for bit);
* :func:`stream_exp` - unit-mean exponential via the inverse CDF;
* :func:`stream_rng` - a seeded ``random.Random`` whose seed is the
  keyed hash, for places that legitimately need a *sequence* of draws
  scoped to one stable identity (per-station outage schedules,
  per-shard arrival streams).

Keys must be built from stable identifiers only - request ids, attempt
numbers, station/tier names, shard indices - never from object ids,
wall-clock time, or anything order-dependent.
"""

from __future__ import annotations

import math
import random
import zlib

_U32 = float(1 << 32)


def stream_key(*parts) -> int:
    """CRC-32 of the ``repr`` of the key tuple (stable across runs and
    processes for ints/strings/floats/tuples)."""
    return zlib.crc32(repr(parts).encode("ascii"))


def stream_u(*parts) -> float:
    """Uniform [0, 1) as a pure function of the key."""
    return stream_key(*parts) / _U32


def stream_exp(*parts) -> float:
    """Unit-mean exponential variate as a pure function of the key.

    ``1 - u`` lies in (0, 1], so the log is always finite.
    """
    return -math.log(1.0 - stream_u(*parts))


def stream_rng(*parts) -> random.Random:
    """A ``random.Random`` seeded by the keyed hash - for bounded,
    identity-scoped draw sequences (e.g. one station's outage windows).
    """
    return random.Random(stream_key(*parts))
