"""Fleet tier: replicated service graphs behind load balancers.

SIMR's headline requests/joule is measured on one chip; the pitch is
*data-center* efficiency.  This module turns one service graph
(:mod:`repro.system.graph`) into a fleet cell: every tier gets N
replica stations, requests are spread by a pluggable load balancer,
an autoscaler grows/shrinks the active replica set on queue backlog,
and per-replica busy/provisioned time rolls up through
:mod:`repro.energy.cluster` to rack and cluster watts.

The SIMT-specific piece is **batch-aware routing**: an RPU tier's
efficiency comes from batching *same-API* requests (paper Fig. 4/11);
a balancer that interleaves API classes onto one replica fills its
batches with divergent work.  We model that cost with the
:attr:`~repro.system.queueing.Station.batch_cost` hook - a dispatch
serving ``k`` distinct API classes pays ``1 + penalty * (k - 1)`` on
both latency and occupancy - and provide three balancers:

* ``round_robin`` - classic, class-blind;
* ``least_loaded`` - backlog-greedy, class-blind;
* ``batch_aware`` - routes a request to replica ``api_id % active``
  so each replica's batches stay single-class, spilling to the
  least-loaded replica when the affinity target is backlogged;
* ``adaptive`` - batch-aware with an *online-learned* affinity map:
  it counts API classes per adaptation window and re-ranks classes by
  observed popularity, so the hottest class always owns replica 0 even
  as the request mix drifts (a static ``api_id % n`` map goes stale
  when the mix shifts mid-run).  With health-checked failover, a
  replica ejection decays the learned map back to identity and reopens
  the adaptation window (``affinity_decay``): the stale ranks were
  learned against the pre-ejection replica set and a retry-storm
  window, and re-learning fresh is what recovers the post-fault tail.

Determinism: a fleet shard is a pure function of its configuration.
Arrival schedules come from keyed streams (:mod:`.arrivals`), routing
and fault draws are keyed hashes (:mod:`.seeding`, :mod:`.faults`),
and balancer state evolves inside one deterministic event loop - so
serial and ``--jobs`` runs are bit-identical, and unchanged shards are
persistent-store hits.

Rack-scoped faults: replica ``r`` of every tier lives in rack
``r // rack_size``; with faults enabled the injector's ``scope`` maps
each replica station to its rack domain, so one outage takes down the
whole rack's replicas at once.

Zones and failover: an optional :class:`~repro.system.zones.ZoneConfig`
groups racks into availability zones - correlated fail-stop windows
and brownouts per zone (:mod:`.zones`).  With ``health_check`` on, the
balancers route around unhealthy replicas: ``unhealthy_after``
consecutive attempt failures eject a replica from the routable set
until its outage ends (or a probe interval passes), and re-admission
is probational.  Tail-latency autoscaling
(``autoscale_signal="p99"``) grows/shrinks the active set on the
windowed p99 instead of queue backlog - brownouts inflate service
times without queue growth, which the backlog signal cannot see.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..energy.cluster import ClusterEnergy, ClusterPowerModel, rollup_cluster
from ..sanitize import check, sanitizer_enabled
from .arrivals import TrafficShape, generate_arrivals
from .faults import FaultConfig, FaultInjector
from .graph import GraphConfig, GraphSimulation, social_network_graph
from .queueing import Job, Station, _percentile
from .resilience import ResilienceConfig
from .seeding import PrefixStream
from .zones import ZoneConfig, zone_domain

BALANCERS = ("round_robin", "least_loaded", "batch_aware", "adaptive")


def fleet_social_graph(rpu: bool = True) -> GraphConfig:
    """The Fig. 3 application sized for fleet experiments: the web
    front tier does real work (template render + auth, ~80us) instead
    of the 10us stub, so its batching efficiency - where all three API
    classes mix - is a first-order term in cluster energy."""
    cfg = social_network_graph(rpu=rpu)
    cfg.nodes["web"].service_us = 80.0
    return cfg


#: named graph factories (fleet configs identify graphs by name so the
#: whole shard task stays hashable/serializable for the store)
GRAPHS: Dict[str, Callable[[], GraphConfig]] = {
    "fleet_rpu": lambda: fleet_social_graph(rpu=True),
    "fleet_cpu": lambda: fleet_social_graph(rpu=False),
    "social_rpu": lambda: social_network_graph(rpu=True),
    "social_cpu": lambda: social_network_graph(rpu=False),
}


@dataclass(frozen=True)
class FleetConfig:
    """One fleet cell's knobs (frozen: part of the store identity)."""

    #: provisioned replicas per service tier
    replicas: int = 3
    balancer: str = "batch_aware"
    #: batching at the replica stations (RPU-style tiers); the fleet
    #: default window is wider than the single-graph 50us because a
    #: balancer splits each tier's arrival stream ``replicas`` ways -
    #: batches need a realistic chance to fill per replica
    batch_size: int = 16
    batch_timeout_us: float = 200.0
    #: latency/occupancy multiplier per *extra* API class in a batch
    divergence_penalty: float = 0.5
    #: batch-aware routing spills off its affinity replica when that
    #: replica's backlog exceeds this
    affinity_spill_us: float = 200.0
    #: replicas per rack (rack overhead power + rack-scoped outages)
    rack_size: int = 2
    # -- autoscaling ---------------------------------------------------
    autoscale: bool = False
    autoscale_interval_us: float = 2_000.0
    scale_up_backlog_us: float = 300.0
    scale_down_backlog_us: float = 40.0
    min_active: int = 1
    #: autoscaling signal: ``"queue"`` (mean backlog of the active
    #: replicas) or ``"p99"`` (windowed tail latency of requests that
    #: finished since the last tick - sees brownout degradation that
    #: never shows up as queue growth)
    autoscale_signal: str = "queue"
    p99_target_us: float = 2_500.0
    # -- health-checked failover ---------------------------------------
    #: eject replicas from the routable set after consecutive failures
    health_check: bool = False
    #: consecutive attempt failures before a replica is marked unhealthy
    unhealthy_after: int = 3
    #: failure-streak decay window, minimum ejection span, and the
    #: probation probe interval, all in one knob
    health_probe_us: float = 2_000.0
    #: adaptive balancer: re-rank the API-affinity map every window
    adapt_interval_us: float = 2_000.0
    #: adaptive balancer: drop the learned affinity map whenever a
    #: replica is ejected.  The map's ranks were learned modulo the
    #: pre-ejection routable set - and the window that just closed was
    #: polluted by the dying replica's retry storm - so routing on the
    #: stale map steers the hottest classes into arbitrary survivors
    #: for up to a full adaptation window.  Decaying to the identity
    #: map and reopening the window re-learns against the shrunken set
    #: immediately, which is what recovers the tail (recovery p99)
    #: after a fault.  Only meaningful with ``health_check`` and the
    #: ``adaptive`` balancer.
    affinity_decay: bool = True


class ReplicaSet:
    """One tier's replicas + the active-prefix the balancer routes to.

    ``active_server_us`` integrates (active replicas x servers each)
    over time - the static-energy term autoscaling is able to shrink.
    """

    __slots__ = ("name", "stations", "servers_each", "active", "rr",
                 "active_server_us", "_last_t", "infinite",
                 "routable", "fail_streak", "last_fail_us", "down_until",
                 "ejections", "api_counts", "api_map", "next_adapt_us")

    def __init__(self, name: str, stations: List[Station],
                 servers_each: int, active: int, infinite: bool):
        self.name = name
        self.stations = stations
        self.servers_each = servers_each
        self.active = active
        self.rr = 0
        self.active_server_us = 0.0
        self._last_t = 0.0
        self.infinite = infinite
        # -- health-checked failover state (inert unless health_check) --
        #: the stations the balancer may route to: the active prefix
        #: minus replicas currently marked unhealthy
        self.routable: List[Station] = stations[:active]
        self.fail_streak = [0] * len(stations)
        self.last_fail_us = [-1e18] * len(stations)
        #: per-replica ejection horizon; 0.0 = healthy
        self.down_until = [0.0] * len(stations)
        self.ejections = 0
        # -- adaptive-balancer state ------------------------------------
        self.api_counts: Dict[int, int] = {}
        #: API class -> popularity rank (0 = hottest); identity before
        #: the first adaptation window closes
        self.api_map: Dict[int, int] = {}
        self.next_adapt_us = 0.0

    def note(self, now: float) -> None:
        """Integrate provisioned-server time up to ``now``."""
        if not self.infinite:
            self.active_server_us += (self.active * self.servers_each
                                      * (now - self._last_t))
        self._last_t = now

    def set_active(self, now: float, n: int) -> None:
        if n != self.active:
            self.note(now)
            self.active = n
            self.rebuild_routable(now)

    def rebuild_routable(self, now: float) -> None:
        down = self.down_until
        self.routable = [st for i, st in enumerate(self.stations)
                         if i < self.active and down[i] <= now]


class FleetSimulation(GraphSimulation):
    """A single fleet cell (one shard of a sharded fleet run)."""

    __slots__ = ("fleet", "shard", "replica_sets", "batch_stats",
                 "scale_ups", "scale_downs", "_tick_until",
                 "_last_violation_us", "_pick_fn", "_entry_route",
                 "zones", "_sites", "_p99_seen")

    def __init__(self, graph_cfg: GraphConfig, fleet: FleetConfig,
                 seed: int = 1, faults: Optional[FaultConfig] = None,
                 resilience: Optional[ResilienceConfig] = None,
                 shard: int = 0, zones: Optional[ZoneConfig] = None):
        if fleet.balancer not in BALANCERS:
            raise ValueError(f"unknown balancer {fleet.balancer!r}; "
                             f"expected one of {BALANCERS}")
        # the parent wires the simulator, continuation tables, retry
        # machinery and singleton stations; the fleet replaces the
        # station layer below with replica sets.  `fleet` must be set
        # before super().__init__ because the parent's _make_after
        # closures call self._visit, whose picker is built from it.
        self.fleet = fleet
        self._pick_fn = self._make_picker(fleet)
        super().__init__(graph_cfg, seed=seed, resilience=resilience)
        self.shard = shard
        self.replica_sets: Dict[str, ReplicaSet] = {}
        self.batch_stats = {"batches": 0, "mixed": 0, "classes": 0}
        self.scale_ups = 0
        self.scale_downs = 0
        self._tick_until = 0.0
        #: latest time a request actually resolved by violation (the
        #: billing window must cover it; resolved requests' leftover
        #: deadline timers must NOT extend it)
        self._last_violation_us = 0.0
        self.zones = zones if zones is not None and zones.enabled else None
        self._p99_seen = 0
        cost_hook = None
        if fleet.divergence_penalty > 0.0:
            cost_hook = self._make_batch_cost()
        scope: Dict[str, str] = {}
        zone_scope: Dict[str, str] = {}
        start_active = fleet.replicas
        if fleet.autoscale:
            start_active = max(1, min(fleet.replicas, fleet.min_active))
        for name, node in graph_cfg.nodes.items():
            infinite = node.servers >= 1000
            n_rep = 1 if infinite else fleet.replicas
            stations: List[Station] = []
            for r in range(n_rep):
                st_name = f"{name}@{r}" if n_rep > 1 else name
                if infinite:
                    st = Station(self.sim, st_name, node.service_us,
                                 node.servers, infinite=True)
                elif graph_cfg.rpu:
                    st = Station(
                        self.sim, st_name,
                        node.service_us * graph_cfg.rpu_latency_factor,
                        node.servers,
                        occupancy_us=(node.service_us
                                      / graph_cfg.rpu_throughput_gain),
                        batch_size=fleet.batch_size,
                        batch_timeout_us=fleet.batch_timeout_us)
                else:
                    st = Station(self.sim, st_name, node.service_us,
                                 node.servers)
                if cost_hook is not None and st.batch_size > 1:
                    st.batch_cost = cost_hook
                rack = r // fleet.rack_size
                scope[st_name] = f"s{shard}/rack{rack}"
                if self.zones is not None:
                    zone_scope[st_name] = zone_domain(
                        shard, self.zones.zone_of_rack(rack))
                stations.append(st)
            self.replica_sets[name] = ReplicaSet(
                name, stations, node.servers,
                1 if infinite else start_active, infinite)
        # replace the parent's singleton-station injector wiring with a
        # rack-scoped (and optionally zone-scoped) one over the replicas
        self.injector = None
        if (faults is not None and faults.enabled) \
                or self.zones is not None:
            # a zone-only run still needs an injector; the default
            # FaultConfig has every rate at zero, so only the merged
            # zone windows / brownouts act
            self.injector = FaultInjector(
                faults if faults is not None else FaultConfig(),
                scope=scope, zones=self.zones,
                zone_scope=zone_scope or None)
            for rs in self.replica_sets.values():
                self.injector.attach(*rs.stations)
        #: station name -> (replica set, index) for failure attribution
        self._sites: Dict[str, tuple] = {}
        if fleet.health_check:
            for rs in self.replica_sets.values():
                for i, st in enumerate(rs.stations):
                    self._sites[st.name] = (rs, i)
        self._afters = {name: self._make_after(node)
                        for name, node in graph_cfg.nodes.items()}
        self._rebind_visits()
        # precompiled entry-class table: children's cumulative weights
        # + the entry node's keyed route stream (same draw the router
        # makes, so routing stays consistent with the class the
        # balancer saw)
        entry = graph_cfg.nodes[graph_cfg.entry]
        if entry.route:
            cum: List[float] = []
            acc = 0.0
            for _c, w in entry.route:
                acc += w
                cum.append(acc)
            total = sum(w for _c, w in entry.route)
            self._entry_route = (
                PrefixStream(seed, "route", entry.name).u2, cum, total)
        else:
            self._entry_route = None

    def _rebind_visits(self) -> None:
        try:
            rsets = self.replica_sets
        except AttributeError:
            # parent __init__ runs before the replica layer exists; the
            # real bundles are built at the end of our own __init__
            self._vbund = {}
            return
        self._vbund = {name: (rsets[name], self._conts[name],
                              self._afters[name])
                       for name in self.cfg.nodes}

    # -- SIMT divergence cost ------------------------------------------
    def _make_batch_cost(self):
        pen = self.fleet.divergence_penalty
        stats = self.batch_stats

        def cost(group: List[Job]) -> float:
            k = len({j.api_id for j in group})
            stats["batches"] += 1
            stats["classes"] += k
            if k > 1:
                stats["mixed"] += 1
            return 1.0 + pen * (k - 1)

        return cost

    # -- request classes -----------------------------------------------
    def _entry_api(self, rid: int, attempt: int) -> int:
        """The request's API class: the index of the entry tier's
        routed child.  Computed with the *same* keyed draw the entry
        node's compiled router will make, so routing stays consistent
        with the class the balancer saw."""
        if self._entry_route is None:
            return 0
        route_u, cum, total = self._entry_route
        x = route_u(rid, attempt) * total
        for k in range(len(cum)):
            if x < cum[k]:
                return k
        return len(cum) - 1

    def _make_job(self, state: dict) -> Job:
        job = super()._make_job(state)
        job.api_id = self._entry_api(state["rid"], state["retries"])
        return job

    # -- load balancing ------------------------------------------------
    @staticmethod
    def _least_loaded(rs: ReplicaSet, now: float) -> Station:
        stations = rs.stations
        best = stations[0]
        fa = best._free_at
        b = min(fa) - now
        best_key = (b if b > 0.0 else 0.0, len(best._pending))
        for i in range(1, rs.active):
            st = stations[i]
            fa = st._free_at
            b = min(fa) - now
            key = (b if b > 0.0 else 0.0, len(st._pending))
            if key < best_key:
                best = st
                best_key = key
        return best

    @staticmethod
    def _least_of(lst: List[Station], n: int, now: float) -> Station:
        """Least-loaded of ``lst[:n]`` (list-generic twin of
        :meth:`_least_loaded` for the health-aware routable subsets)."""
        best = lst[0]
        b = min(best._free_at) - now
        best_key = (b if b > 0.0 else 0.0, len(best._pending))
        for i in range(1, n):
            st = lst[i]
            b = min(st._free_at) - now
            key = (b if b > 0.0 else 0.0, len(st._pending))
            if key < best_key:
                best = st
                best_key = key
        return best

    def _make_picker(self, fleet: FleetConfig):
        """Compile the balancer into one closure (no per-job string
        compares or method dispatch; backlog reads inlined)."""
        if fleet.health_check:
            return self._make_health_picker(fleet)
        balancer = fleet.balancer
        if balancer == "round_robin":
            def pick(rs: ReplicaSet, now: float, job: Job) -> Station:
                n = rs.active
                if n <= 1:
                    return rs.stations[0]
                st = rs.stations[rs.rr % n]
                rs.rr += 1
                return st
            return pick
        least = self._least_loaded
        if balancer == "least_loaded":
            def pick(rs: ReplicaSet, now: float, job: Job) -> Station:
                if rs.active <= 1:
                    return rs.stations[0]
                return least(rs, now)
            return pick
        spill = fleet.affinity_spill_us
        if balancer == "adaptive":
            adapt = fleet.adapt_interval_us

            def pick(rs: ReplicaSet, now: float, job: Job) -> Station:
                c = job.api_id
                counts = rs.api_counts
                counts[c] = counts.get(c, 0) + 1
                if now >= rs.next_adapt_us:
                    # close the window: re-rank classes by observed
                    # popularity (count desc, class id tie-break) so
                    # the affinity map tracks the drifting mix
                    ranked = sorted(counts,
                                    key=lambda k: (-counts[k], k))
                    rs.api_map = {k: i for i, k in enumerate(ranked)}
                    counts.clear()
                    rs.next_adapt_us = now + adapt
                n = rs.active
                if n <= 1:
                    return rs.stations[0]
                st = rs.stations[rs.api_map.get(c, c) % n]
                if spill >= 0.0 and min(st._free_at) - now <= spill:
                    return st
                return least(rs, now)
            return pick
        if spill < 0.0:
            # a clamped backlog can never be <= a negative threshold:
            # the affinity target is always "backlogged"
            def pick(rs: ReplicaSet, now: float, job: Job) -> Station:
                if rs.active <= 1:
                    return rs.stations[0]
                return least(rs, now)
            return pick

        def pick(rs: ReplicaSet, now: float, job: Job) -> Station:
            n = rs.active
            if n <= 1:
                return rs.stations[0]
            st = rs.stations[job.api_id % n]
            # backlog_us(st) <= spill, with the max(0, .) clamp folded
            # into the comparison (spill >= 0 here)
            if min(st._free_at) - now <= spill:
                return st
            # affinity target is backlogged: spill (same-class traffic
            # keeps downstream batches pure anyway)
            return least(rs, now)
        return pick

    def _make_health_picker(self, fleet: FleetConfig):
        """The balancers again, routing over ``rs.routable`` - the
        active prefix minus ejected replicas.  When every replica is
        ejected the full active prefix is used: traffic fails fast
        there and the retry layer keeps probing for recovery."""
        balancer = fleet.balancer
        least_of = self._least_of
        spill = fleet.affinity_spill_us
        adapt = fleet.adapt_interval_us

        if balancer == "round_robin":
            def pick(rs: ReplicaSet, now: float, job: Job) -> Station:
                lst = rs.routable
                n = len(lst)
                if n == 0:
                    lst = rs.stations
                    n = rs.active
                if n <= 1:
                    return lst[0]
                st = lst[rs.rr % n]
                rs.rr += 1
                return st
            return pick
        if balancer == "least_loaded":
            def pick(rs: ReplicaSet, now: float, job: Job) -> Station:
                lst = rs.routable
                n = len(lst)
                if n == 0:
                    lst = rs.stations
                    n = rs.active
                if n <= 1:
                    return lst[0]
                return least_of(lst, n, now)
            return pick
        if balancer == "batch_aware":
            def pick(rs: ReplicaSet, now: float, job: Job) -> Station:
                lst = rs.routable
                n = len(lst)
                if n == 0:
                    lst = rs.stations
                    n = rs.active
                if n <= 1:
                    return lst[0]
                st = lst[job.api_id % n]
                if spill >= 0.0 and min(st._free_at) - now <= spill:
                    return st
                return least_of(lst, n, now)
            return pick

        def pick(rs: ReplicaSet, now: float, job: Job) -> Station:
            # adaptive
            c = job.api_id
            counts = rs.api_counts
            counts[c] = counts.get(c, 0) + 1
            if now >= rs.next_adapt_us:
                ranked = sorted(counts, key=lambda k: (-counts[k], k))
                rs.api_map = {k: i for i, k in enumerate(ranked)}
                counts.clear()
                rs.next_adapt_us = now + adapt
            lst = rs.routable
            n = len(lst)
            if n == 0:
                lst = rs.stations
                n = rs.active
            if n <= 1:
                return lst[0]
            st = lst[rs.api_map.get(c, c) % n]
            if spill >= 0.0 and min(st._free_at) - now <= spill:
                return st
            return least_of(lst, n, now)
        return pick

    def _pick(self, rs: ReplicaSet, now: float, job: Job) -> Station:
        return self._pick_fn(rs, now, job)

    # -- health-checked failover ---------------------------------------
    def _attempt_failed(self, now: float, job: Job) -> None:
        if self._sites:
            self._note_failure(now, job.fail_site)
        super()._attempt_failed(now, job)

    def _note_failure(self, now: float, site: str) -> None:
        """One attempt failed at ``site``: advance the replica's
        failure streak (decayed if it was quiet for a probe interval)
        and eject it from the routable set at the threshold.  Ejection
        lasts a probe interval - or until the replica's known outage
        window ends, when the injector can say - and re-admission is
        probational: the streak restarts from zero, so a still-sick
        replica is re-ejected after ``unhealthy_after`` more failures.
        """
        hit = self._sites.get(site)
        if hit is None:
            return
        rs, idx = hit
        fl = self.fleet
        if now - rs.last_fail_us[idx] > fl.health_probe_us:
            rs.fail_streak[idx] = 0
        rs.fail_streak[idx] += 1
        rs.last_fail_us[idx] = now
        if rs.fail_streak[idx] < fl.unhealthy_after \
                or rs.down_until[idx] > now:
            return
        until = now + fl.health_probe_us
        inj = self.injector
        if inj is not None:
            end = inj.outage_end(site, now)
            if end is not None and end > until:
                until = end
        rs.down_until[idx] = until
        rs.ejections += 1
        rs.rebuild_routable(now)
        if fl.affinity_decay and fl.balancer == "adaptive":
            # the learned ranks index the routable set that just
            # shrank (and the closing window counted the ejected
            # replica's retry storm): decay to the identity map and
            # reopen a full window so affinity re-learns against the
            # survivors instead of misrouting until the stale window
            # expires
            rs.api_map = {}
            rs.api_counts.clear()
            rs.next_adapt_us = now + fl.adapt_interval_us
        self.sim.schedule1(until, self._readmit, (rs, idx))

    def _readmit(self, now: float, arg: tuple) -> None:
        rs, idx = arg
        if rs.down_until[idx] > now:
            return  # re-ejected with a later horizon; that event readmits
        rs.down_until[idx] = 0.0
        rs.fail_streak[idx] = 0
        rs.rebuild_routable(now)

    def _deadline(self, now: float, state: dict) -> None:
        unresolved = not state["resolved"]
        super()._deadline(now, state)
        if unresolved:
            self._last_violation_us = max(self._last_violation_us, now)

    def _visit(self, now: float, node_name: str, job: Job,
               done: Callable[[float], None]) -> None:
        rs, conts, after = self._vbund[node_name]
        conts[job.jid] = done
        self._pick_fn(rs, now, job).arrive(now, job, after)

    # -- autoscaling ---------------------------------------------------
    def _autoscale_tick(self, now: float) -> None:
        fl = self.fleet
        if fl.autoscale_signal == "p99":
            self._p99_scale(now, fl)
        else:
            for rs in self.replica_sets.values():
                if rs.infinite:
                    continue
                backlog = sum(rs.stations[i].backlog_us(now)
                              for i in range(rs.active)) / rs.active
                if backlog > fl.scale_up_backlog_us \
                        and rs.active < fl.replicas:
                    rs.set_active(now, rs.active + 1)
                    self.scale_ups += 1
                elif backlog < fl.scale_down_backlog_us \
                        and rs.active > fl.min_active:
                    rs.set_active(now, rs.active - 1)
                    self.scale_downs += 1
        if now + fl.autoscale_interval_us <= self._tick_until:
            self.sim.schedule(now + fl.autoscale_interval_us,
                              self._autoscale_tick)

    def _p99_scale(self, now: float, fl: FleetConfig) -> None:
        """Tail-latency autoscaling: p99 of the requests that finished
        since the last tick.  Catches brownout degradation - inflated
        service times with no queue growth - which the backlog signal
        is structurally blind to."""
        fin = self.finished
        lats = [j.latency_us for j in fin[self._p99_seen:]]
        self._p99_seen = len(fin)
        if not lats:
            return
        p99 = _percentile(lats, 0.99)
        if p99 > fl.p99_target_us:
            for rs in self.replica_sets.values():
                if not rs.infinite and rs.active < fl.replicas:
                    rs.set_active(now, rs.active + 1)
                    self.scale_ups += 1
        elif p99 < 0.5 * fl.p99_target_us:
            for rs in self.replica_sets.values():
                if not rs.infinite and rs.active > fl.min_active:
                    rs.set_active(now, rs.active - 1)
                    self.scale_downs += 1

    # -- driving -------------------------------------------------------
    def run_arrivals(self, arrivals: Sequence[float],
                     horizon_us: float) -> dict:
        """Simulate this cell over a precomputed arrival schedule and
        return the shard payload (mergeable, store-friendly)."""
        fl = self.fleet
        resilient = self.injector is not None or self.resilience is not None
        n = len(arrivals)
        for i, t in enumerate(arrivals):
            if resilient:
                state = {"rid": i, "arrival": t, "retries": 0,
                         "resolved": False}
                self._rstates[i] = state
                res = self.resilience
                if res is not None and res.deadline_us != math.inf:
                    self.sim.schedule1(t + res.deadline_us,
                                       self._deadline, state)
                self.sim.schedule1(t, self._start_attempt, state)
                continue
            job = Job(jid=next(self._jidc), arrival_us=t,
                      api_id=self._entry_api(i, 0))

            def finish(tt: float, j: Job = job) -> None:
                j.done_us = tt + self.cfg.network_us
                self.finished.append(j)

            self.sim.schedule(t, self._visit, self.cfg.entry, job, finish)
        # note: with rid unset the entry draw keys on jid == i, so
        # _entry_api(i, 0) above matches the router's own draw
        self._tick_until = arrivals[-1] if arrivals else 0.0
        if fl.autoscale and n > 0:
            self.sim.schedule(fl.autoscale_interval_us,
                              self._autoscale_tick)
        self.sim.run()
        # billing window: the horizon, extended by work that spills
        # past it (late completions, requests abandoned at deadline) -
        # but not by leftover deadline timers of resolved requests,
        # which are bookkeeping events on an already-idle cluster
        end = max(horizon_us, self._last_violation_us)
        if self.finished:
            end = max(end, max(j.done_us for j in self.finished))
        busy_us = 0.0
        storage_busy_us = 0.0
        fault_failures = 0
        for rs in self.replica_sets.values():
            rs.note(end)
            for st in rs.stations:
                if rs.infinite:
                    storage_busy_us += st.busy_us
                else:
                    busy_us += st.busy_us
                fault_failures += st.failed_jobs + st.dropped_jobs
        if sanitizer_enabled():
            if resilient:
                check(len(self.finished) + self.violated == n,
                      "fleet: %d requests but %d finished + %d violated",
                      n, len(self.finished), self.violated)
            else:
                check(len(self.finished) == n,
                      "fleet: %d requests but %d finished",
                      n, len(self.finished))
            for rs in self.replica_sets.values():
                for st in rs.stations:
                    check(not st._pending,
                          "fleet: station %s stranded %d jobs",
                          st.name, len(st._pending))
                    check(st.open_jobs == 0 and st.open_groups == 0,
                          "fleet: station %s drained with %d jobs / %d "
                          "groups still in flight", st.name,
                          st.open_jobs, st.open_groups)
        active_server_us = sum(rs.active_server_us
                               for rs in self.replica_sets.values())
        n_racks = math.ceil(fl.replicas / max(1, fl.rack_size))
        n_zones = 0
        if self.zones is not None:
            n_zones = math.ceil(n_racks
                                / max(1, self.zones.racks_per_zone))
        return {
            "n": n,
            "completed": len(self.finished),
            "violated": self.violated,
            "latencies": [j.latency_us for j in self.finished],
            "busy_us": busy_us,
            "storage_busy_us": storage_busy_us,
            "active_server_us": active_server_us,
            "n_racks": n_racks,
            "horizon_us": end,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "batches": self.batch_stats["batches"],
            "mixed_batches": self.batch_stats["mixed"],
            "sum_classes": self.batch_stats["classes"],
            "fault_failures": fault_failures,
            "n_zones": n_zones,
            "ejections": sum(rs.ejections
                             for rs in self.replica_sets.values()),
        }


# ----------------------------------------------------------------------
# sharded fleet engine
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FleetShardTask:
    """Everything identifying one shard's simulation (store key)."""

    graph: str
    fleet: FleetConfig
    shape: TrafficShape
    horizon_us: float
    shard: int
    n_shards: int
    seed: int
    faults: Optional[FaultConfig] = None
    resilience: Optional[ResilienceConfig] = None
    zones: Optional[ZoneConfig] = None


#: modules whose source participates in the shard-result fingerprint
_FP_MODULES = (
    "repro.system.fleet",
    "repro.system.scheduler",
    "repro.system.arrivals",
    "repro.system.graph",
    "repro.system.queueing",
    "repro.system.faults",
    "repro.system.resilience",
    "repro.system.seeding",
    "repro.system.zones",
    "repro.energy.cluster",
)


def run_fleet_shard(task: FleetShardTask) -> dict:
    """Simulate one shard (pure function of the task)."""
    graph_cfg = GRAPHS[task.graph]()
    arrivals = generate_arrivals(task.shape, task.horizon_us, task.seed,
                                 shard=task.shard,
                                 n_shards=task.n_shards)
    sim = FleetSimulation(graph_cfg, task.fleet, seed=task.seed,
                          faults=task.faults, resilience=task.resilience,
                          shard=task.shard, zones=task.zones)
    return sim.run_arrivals(arrivals, task.horizon_us)


def shard_store_key(task: FleetShardTask) -> tuple:
    """Logical store key of one shard (the task's full identity)."""
    return (repr(task),)


def _run_shard_cached(task: FleetShardTask) -> dict:
    """Worker entry: shard simulation through the persistent store."""
    from .. import store

    fp = store.source_fingerprint(_FP_MODULES)
    key = shard_store_key(task)
    hit = store.lookup("fleet_shard", fp, key)
    if hit is not store.MISS and not store.verify_enabled():
        return hit
    value = run_fleet_shard(task)
    if hit is not store.MISS:  # REPRO_CACHE_VERIFY=1 hit
        if hit != value:
            raise store.CacheVerifyError(
                f"stored fleet shard diverges from recompute for "
                f"shard {task.shard}/{task.n_shards} "
                f"({task.graph}, {task.fleet.balancer})")
    else:
        store.record("fleet_shard", fp, key, value)
    return value


@dataclass
class FleetResult:
    """Merged fleet run: request metrics + cluster power roll-up."""

    n_requests: int
    completed: int
    violated: int
    offered_qps: float
    avg_latency_us: float
    p50_us: float
    p99_us: float
    energy: ClusterEnergy
    requests_per_joule: float
    avg_watts: float
    carbon_g: float
    scale_ups: int
    scale_downs: int
    #: fraction of dispatched batches that mixed API classes
    mixed_batch_frac: float
    #: mean distinct API classes per dispatched batch
    mean_classes: float
    fault_failures: int
    #: replicas ejected by health checks (0 without health_check)
    ejections: int
    #: availability zones across all shards (0 without a zone layer)
    n_zones: int
    shards: int

    @property
    def goodput_frac(self) -> float:
        return self.completed / self.n_requests if self.n_requests else 0.0


def merge_shards(payloads: Sequence[dict], horizon_us: float,
                 power: ClusterPowerModel = ClusterPowerModel()
                 ) -> FleetResult:
    """Roll shard payloads up to one cluster-level result."""
    lats: List[float] = []
    for p in payloads:
        lats.extend(p["latencies"])
    n = sum(p["n"] for p in payloads)
    completed = sum(p["completed"] for p in payloads)
    end = max([p["horizon_us"] for p in payloads] + [horizon_us])
    n_zones = sum(p.get("n_zones", 0) for p in payloads)
    energy = rollup_cluster(
        busy_us=sum(p["busy_us"] for p in payloads),
        storage_busy_us=sum(p["storage_busy_us"] for p in payloads),
        active_server_us=sum(p["active_server_us"] for p in payloads),
        n_racks=sum(p["n_racks"] for p in payloads),
        horizon_us=end, model=power, n_zones=n_zones)
    batches = sum(p["batches"] for p in payloads)
    return FleetResult(
        n_requests=n,
        completed=completed,
        violated=sum(p["violated"] for p in payloads),
        offered_qps=n / end * 1e6 if end > 0 else 0.0,
        avg_latency_us=sum(lats) / len(lats) if lats else 0.0,
        p50_us=_percentile(lats, 0.50),
        p99_us=_percentile(lats, 0.99),
        energy=energy,
        requests_per_joule=(completed / energy.facility_j
                            if energy.facility_j > 0 else 0.0),
        avg_watts=energy.avg_watts,
        carbon_g=energy.carbon_g(power),
        scale_ups=sum(p["scale_ups"] for p in payloads),
        scale_downs=sum(p["scale_downs"] for p in payloads),
        mixed_batch_frac=(sum(p["mixed_batches"] for p in payloads)
                          / batches if batches else 0.0),
        mean_classes=(sum(p["sum_classes"] for p in payloads)
                      / batches if batches else 0.0),
        fault_failures=sum(p["fault_failures"] for p in payloads),
        ejections=sum(p.get("ejections", 0) for p in payloads),
        n_zones=n_zones,
        shards=len(payloads),
    )


def run_fleet(shape: TrafficShape, horizon_us: float,
              fleet: FleetConfig = FleetConfig(),
              graph: str = "fleet_rpu", shards: int = 4, seed: int = 1,
              faults: Optional[FaultConfig] = None,
              resilience: Optional[ResilienceConfig] = None,
              zones: Optional[ZoneConfig] = None,
              power: ClusterPowerModel = ClusterPowerModel(),
              jobs: Optional[int] = None) -> FleetResult:
    """Run a sharded fleet: ``shards`` independent cells each carrying
    ``1/shards`` of the offered load, simulated through ``parallel_map``
    (bit-identical serial vs ``--jobs``) with per-shard store caching.
    """
    from ..experiments.common import parallel_map

    tasks = [FleetShardTask(graph=graph, fleet=fleet, shape=shape,
                            horizon_us=horizon_us, shard=s,
                            n_shards=shards, seed=seed, faults=faults,
                            resilience=resilience, zones=zones)
             for s in range(shards)]
    payloads = parallel_map(_run_shard_cached, tasks, jobs=jobs)
    return merge_shards(payloads, horizon_us, power=power)
