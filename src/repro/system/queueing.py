"""Discrete-event queueing simulator for microservice graphs (uqsim role).

Models the paper's end-to-end User scenario (Fig. 3 / Fig. 22):

    client -> WebServer -> User -> McRouter -> Memcached
                                                  \\-> Storage (miss)

Each tier is a multi-server station with deterministic service times.
Stations may *batch*: requests wait for ``batch_size`` arrivals or a
``batch_timeout_us``, then are served together.  A server is occupied
for ``occupancy_us`` per dispatch (the pipelined initiation interval,
which sets throughput) while the batch's *latency* is ``latency_us`` -
this decouples an RPU tier's 5x throughput from its 1.2x service
latency, as in the paper's uqsim configuration.

At the memcached tier, misses continue to millisecond-scale storage.
Without *batch splitting* the hit requests of a batch wait at the
reconvergence point until their batch's misses return from storage
(Fig. 17a); with splitting (Section III-B5) hits complete immediately.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..sanitize import check, sanitizer_enabled
from .scheduler import (  # noqa: F401  (re-exported compat names)
    HeapSimulator,
    SimulationLimitError,
    Simulator,
    WheelSimulator,
    wheel_enabled,
)


@dataclass(slots=True)
class Job:
    jid: int
    arrival_us: float
    blocks: bool = False  # misses memcached -> storage path
    done_us: float = 0.0
    #: logical request id (several attempt-Jobs of one retried/hedged
    #: request share it); -1 means "same as jid"
    rid: int = -1
    #: API/request class (drives batch-aware routing and the SIMT
    #: divergence cost of mixed-class batches in the fleet tier)
    api_id: int = 0
    #: attempt number of this Job for its logical request (0 = primary)
    attempt: int = 0
    #: True for a hedge duplicate launched by the resilience layer
    hedge: bool = False
    #: set by the fault injector: this attempt failed at ``fail_site``
    failed: bool = False
    fail_site: str = ""

    @property
    def latency_us(self) -> float:
        return self.done_us - self.arrival_us


class Station:
    """Multi-server station with optional request batching."""

    __slots__ = (
        "sim", "name", "latency_us", "occupancy_us", "_pipelined",
        "servers", "batch_size", "batch_timeout_us", "infinite",
        "_free_at", "_pending", "_pending_dones", "_timeout_at",
        "dispatched_batches", "dispatched_jobs", "arrived_jobs",
        "failed_jobs", "dropped_jobs", "busy_us", "faults",
        "batch_cost", "_san", "_sched1", "_schedc",
        "open_jobs", "open_groups",
    )

    def __init__(self, sim: Simulator, name: str, latency_us: float,
                 servers: int, occupancy_us: Optional[float] = None,
                 batch_size: int = 1, batch_timeout_us: float = 50.0,
                 infinite: bool = False):
        self.sim = sim
        self.name = name
        self.latency_us = latency_us
        #: server occupancy per *request* in a dispatch (pipelined
        #: initiation interval); a partially-filled batch only occupies
        #: the server for its actual fill
        self.occupancy_us = occupancy_us if occupancy_us is not None else latency_us
        #: pipelined stations decouple occupancy from latency; on a
        #: non-pipelined station the server is the request's execution
        #: context, so serialized overheads (latency spikes) occupy it
        self._pipelined = occupancy_us is not None
        self.servers = servers
        self.batch_size = batch_size
        self.batch_timeout_us = batch_timeout_us
        self.infinite = infinite
        self._free_at = [0.0] * (0 if infinite else servers)
        #: queued jobs and their completion callbacks, parallel lists
        #: (cheaper to slice at dispatch than a list of pairs)
        self._pending: List[Job] = []
        self._pending_dones: List[Callable] = []
        self._timeout_at: Optional[float] = None
        self.dispatched_batches = 0
        self.dispatched_jobs = 0
        self.arrived_jobs = 0
        #: jobs that failed fast because the station was down / in-flight
        self.failed_jobs = 0
        #: jobs individually dropped out of their dispatch
        self.dropped_jobs = 0
        #: total server-occupancy time actually dispatched (for the
        #: system energy model); stragglers are charged their real time
        self.busy_us = 0.0
        #: optional :class:`repro.system.faults.FaultInjector`; when
        #: None (the default) dispatching takes the exact pre-fault
        #: fast path
        self.faults = None
        #: optional SIMT batch-cost hook ``fn(group) -> multiplier``
        #: applied to both latency and occupancy of a dispatch (e.g.
        #: the fleet tier's divergence penalty for mixed-API batches);
        #: when None (the default) dispatch arithmetic is untouched
        self.batch_cost: Optional[Callable[[List[Job]], float]] = None
        self._san = sanitizer_enabled()
        #: locally-bound scheduler fast paths: every Station event is
        #: either ``fn(t)`` (flush timers) or ``fn(t, jobs)`` (batch
        #: completions), so the variadic ``schedule`` never runs hot
        self._sched1 = sim.schedule1
        #: sanitize-only occupancy conservation: dispatched jobs /
        #: groups whose completion event has not fired yet.  Completion
        #: scheduling goes through ``_schedc``, which is the plain
        #: scheduler fast path unless the sanitizer is armed.
        self.open_jobs = 0
        self.open_groups = 0
        self._schedc = self._sched_done if self._san else sim.schedule1

    def arrive(self, now: float, job: Job,
               done: Callable[[float, List[Job]], None]) -> None:
        """``done(t, jobs)`` fires once for the whole dispatched batch."""
        self.arrived_jobs += 1
        bs = self.batch_size
        if bs == 1:
            # unbatched stations never queue: dispatch straight through
            # without touching the pending list or the timeout machinery
            self._dispatch_one(now, job, done)
            return
        pending = self._pending
        pending.append(job)
        self._pending_dones.append(done)
        if len(pending) < bs:
            # the common case: the batch is still filling; it must
            # always have a pending flush or it would be stranded
            if self._timeout_at is None:
                deadline = now + self.batch_timeout_us
                self._timeout_at = deadline
                self._sched1(deadline, self._flush, None)
            return
        self._dispatch(now)
        if pending and self._timeout_at is None:
            deadline = now + self.batch_timeout_us
            self._timeout_at = deadline
            self._sched1(deadline, self._flush, None)

    def arrive_many(self, now: float, jobs: Sequence[Job],
                    done: Callable[[float, List[Job]], None]) -> None:
        """Arrive several jobs sharing one completion callback.

        Exactly equivalent to calling :meth:`arrive` once per job (same
        dispatch grouping, same timeout arming order), minus the
        per-job call overhead - routing callbacks fan whole batches
        into the next tier, so this is the hot entry point.
        """
        n = len(jobs)
        self.arrived_jobs += n
        if self.batch_size == 1:
            if (n > 1 and self.infinite and self.faults is None
                    and self.batch_cost is None):
                # every job of an unbatched infinite station dispatched
                # at the same instant starts now and finishes together:
                # complete the whole group through one event (the jobs
                # were consecutive events before, so firing order is
                # unchanged), with per-job dispatch accounting
                self.dispatched_batches += n
                self.dispatched_jobs += n
                self.busy_us += self.occupancy_us * n
                self._schedc(now + self.latency_us, done, list(jobs))
                return
            for job in jobs:
                self._dispatch_one(now, job, done)
            return
        pending = self._pending
        dones = self._pending_dones
        bs = self.batch_size
        timeout = self.batch_timeout_us
        schedule = self._sched1
        for job in jobs:
            pending.append(job)
            dones.append(done)
            if len(pending) >= bs:
                self._dispatch(now)
            if pending and self._timeout_at is None:
                deadline = now + timeout
                self._timeout_at = deadline
                schedule(deadline, self._flush, None)

    def _pick_server(self, now: float) -> float:
        """Reserve the earliest-free server; returns the start time."""
        free = self._free_at
        server = 0
        best = free[0]
        for s in range(1, len(free)):
            if free[s] < best:
                best = free[s]
                server = s
        start = best if best > now else now
        free[server] = start + self.occupancy_us
        return start

    def _dispatch_one(self, now: float, job: Job, done: Callable) -> None:
        if self.faults is not None:
            self._serve_group_faulty(now, [job], done)
            return
        bc = self.batch_cost
        if bc is None:
            occ = self.occupancy_us
            lat = self.latency_us
        else:
            m = bc([job])
            occ = self.occupancy_us * m
            lat = self.latency_us * m
        if self.infinite:
            start = now
        else:
            free = self._free_at
            server = 0
            best = free[0]
            for s in range(1, len(free)):
                if free[s] < best:
                    best = free[s]
                    server = s
            start = best if best > now else now
            free[server] = start + occ
        finish = start + lat
        self.dispatched_batches += 1
        self.dispatched_jobs += 1
        self.busy_us += occ
        self._schedc(finish, done, [job])

    def _arm_timeout(self, now: float) -> None:
        """A partial batch must always have a pending flush, or its
        requests would be stranded when no further arrivals come."""
        if (self._pending and self.batch_size > 1
                and self._timeout_at is None):
            deadline = now + self.batch_timeout_us
            self._timeout_at = deadline
            self._sched1(deadline, self._flush, None)

    def _flush(self, now: float, _arg=None) -> None:
        self._timeout_at = None
        if self._pending:
            self._dispatch(now)
        self._arm_timeout(now)

    def _dispatch(self, now: float) -> None:
        pending = self._pending
        dones = self._pending_dones
        bs = self.batch_size
        while pending:
            n = len(pending)
            if n < bs:
                if self._timeout_at is not None:
                    break  # wait for more arrivals or the timeout
                # timed-out partial batch: drain everything in place
                group = pending[:]
                pending.clear()
                done = dones[0]
                if self._san:
                    self._check_dones(dones, n, done)
                dones.clear()
            else:
                n = bs
                group = pending[:bs]
                del pending[:bs]
                done = dones[0]
                if self._san:
                    self._check_dones(dones, n, done)
                del dones[:bs]
            if self.faults is not None:
                self._serve_group_faulty(now, group, done)
                if n < bs:
                    break
                continue
            bc = self.batch_cost
            if bc is None:
                occ = self.occupancy_us
                lat = self.latency_us
            else:
                m = bc(group)
                occ = self.occupancy_us * m
                lat = self.latency_us * m
            if self.infinite:
                start = now
            else:
                free = self._free_at
                server = 0
                best = free[0]
                for s in range(1, len(free)):
                    if free[s] < best:
                        best = free[s]
                        server = s
                start = best if best > now else now
                free[server] = start + occ * n
            finish = start + lat
            self.dispatched_batches += 1
            self.dispatched_jobs += n
            self.busy_us += occ * n
            self._schedc(finish, done, group)
            if n < bs:
                break

    def _check_dones(self, dones: List[Callable], n: int,
                     done: Callable) -> None:
        # a batch completes through exactly one callback; mixed
        # callbacks would silently drop the other jobs' routing
        for d in dones[:n]:
            check(d is done,
                  "station %s: mixed completion callbacks in "
                  "one dispatched batch", self.name)

    def _sched_done(self, when: float, done: Callable,
                    group: List[Job]) -> None:
        """Sanitized completion scheduling (``_schedc`` when
        ``REPRO_SANITIZE=1``): every dispatched group stays *open* until
        its callback fires exactly once, so occupancy conservation can
        be audited - the busy-server census of a sequential unbatched
        station can never exceed its open dispatches, including across
        outage kill/restore boundaries, and a drained station must end
        with zero open work.  The wrapper changes no event time or
        ordering, so sanitized runs stay byte-identical."""
        self.open_jobs += len(group)
        self.open_groups += 1

        def fire(t: float, jobs: List[Job], _done=done) -> None:
            n = len(jobs)
            check(self.open_jobs >= n and self.open_groups >= 1,
                  "station %s: completion of %d jobs fired with only "
                  "%d jobs / %d groups open (double completion?)",
                  self.name, n, self.open_jobs, self.open_groups)
            self.open_jobs -= n
            self.open_groups -= 1
            if (not self.infinite and not self._pipelined
                    and self.batch_size == 1):
                # sequential unbatched stations release each server
                # reservation no later than the group completes (killed
                # in-flight work frees it at the onset), so any server
                # still busy past ``t`` belongs to an open dispatch
                busy = 0
                for f in self._free_at:
                    if f > t:
                        busy += 1
                check(busy <= self.open_groups,
                      "station %s: %d busy servers exceed %d open "
                      "dispatches at t=%.3f", self.name, busy,
                      self.open_groups, t)
            _done(t, jobs)

        # the event-limit diagnostics must keep naming the wrapped
        # callback (or its owning station), not this sanitize shim
        fire.__wrapped__ = done
        self._sched1(when, fire, group)

    def _serve_group_faulty(self, now: float, group: List[Job],
                            done: Callable) -> None:
        """Dispatch one group through the fault injector.

        Semantics: a dispatch attempted while the station is down fails
        fast (no server time consumed); dropped requests leave the
        batch and fail fast; survivors are served with the injector's
        latency multiplier/spike, and an outage *beginning* during the
        service interval kills the in-flight work at its onset.
        Failed jobs complete through the same ``done`` callback with
        ``job.failed`` set, so routing layers can divert them.
        """
        inj = self.faults
        n = len(group)
        self.dispatched_batches += 1
        self.dispatched_jobs += n
        outage_end, drops, mult, extra = inj.plan(self.name, now, group)
        detect = now + inj.cfg.detect_us
        if outage_end is not None:
            for j in group:
                j.failed = True
                j.fail_site = self.name
            self.failed_jobs += n
            self._schedc(detect, done, group)
            return
        if drops:
            dropped = set(id(j) for j in drops)
            group = [j for j in group if id(j) not in dropped]
            for j in drops:
                j.failed = True
                j.fail_site = self.name
            self.dropped_jobs += len(drops)
            self._schedc(detect, done, list(drops))
            if not group:
                return
        if self.batch_cost is not None:
            mult *= self.batch_cost(group)
        occ = self.occupancy_us * mult
        occ_total = occ * len(group)
        if not self._pipelined:
            # on a non-pipelined station the server *is* the execution
            # context, so a latency spike (GC pause, CPU contention)
            # stalls the server for its duration; only a pipelined
            # station can absorb the spike outside its initiation
            # interval.  Utilization/busy accounting must reflect this,
            # or degraded runs under-report server-busy time.
            occ_total += extra
        if self.infinite:
            start = now
            server = -1
            free = self._free_at
        else:
            free = self._free_at
            server = 0
            best = free[0]
            for s in range(1, len(free)):
                if free[s] < best:
                    best = free[s]
                    server = s
            start = best if best > now else now
            free[server] = start + occ_total
        finish = start + self.latency_us * mult + extra
        # an outage beginning any time between the dispatch decision and
        # the would-be completion kills the (queued or in-flight) work
        onset = inj.outage_onset(self.name, now, finish) \
            if inj.has_outages else None
        if onset is not None:
            # the server worked up to the onset: charge the truncated
            # busy time and release the rest of the reservation (the
            # dead server's queue drains elsewhere after detection)
            served = min(onset, start + occ_total) - start
            if served < 0.0:
                served = 0.0
            if server >= 0:
                free[server] = start + served
            self.busy_us += served
            for j in group:
                j.failed = True
                j.fail_site = self.name
            self.failed_jobs += len(group)
            inj.stats.inflight_failures += len(group)
            self._schedc(max(now, onset) + inj.cfg.detect_us, done,
                         group)
            return
        self.busy_us += occ_total
        self._schedc(finish, done, group)

    def backlog_us(self, now: float) -> float:
        """How far behind the earliest-free server is (the load-shedding
        signal: time a new dispatch would wait for a server)."""
        if not self._free_at:
            return 0.0
        return max(0.0, min(self._free_at) - now)

    @property
    def queue_depth(self) -> int:
        """Requests waiting in the batching queue right now."""
        return len(self._pending)

    @property
    def utilization_horizon(self) -> float:
        return max(self._free_at) if self._free_at else 0.0


@dataclass
class EndToEndConfig:
    """Fig. 22 scenario parameters (paper Section V-B)."""

    web_us: float = 10.0
    user_us: float = 100.0
    mcrouter_us: float = 20.0
    memcached_us: float = 25.0
    storage_us: float = 1000.0
    network_us: float = 60.0
    memcached_hit_rate: float = 0.9
    #: effective service instances per tier across the 3 machines;
    #: calibrated so the CPU system saturates around 15 kQPS as in
    #: Fig. 22 (the paper does not publish uqsim's exact multiplicity)
    cpu_tier_servers: int = 2
    rpu: bool = False
    #: from the chip-level experiments (paper: 5x throughput, 1.2x
    #: latency at the same power budget)
    rpu_throughput_gain: float = 5.0
    rpu_latency_factor: float = 1.2
    batch_size: int = 32
    batch_timeout_us: float = 50.0
    batch_split: bool = False


@dataclass
class EndToEndResult:
    offered_qps: float
    completed: int
    avg_latency_us: float
    p50_us: float
    p99_us: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (f"{self.offered_qps/1000:6.1f} kQPS  avg {self.avg_latency_us:8.1f} us  "
                f"p99 {self.p99_us:8.1f} us")


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile: the smallest sample value such that at
    least ``q`` of the distribution lies at or below it - the
    ``ceil(q * n)``-th order statistic (1-indexed), clamped to the
    sample.  (``int(q * n)`` would index one *past* the nearest rank:
    the p99 of 100 samples must be the 99th value, not the maximum, and
    the median of an even-length sample is the lower of the two middle
    values under nearest-rank.)"""
    if not values:
        return 0.0
    s = sorted(values)
    rank = math.ceil(q * len(s))  # 1-indexed nearest rank
    return s[min(len(s) - 1, max(0, rank - 1))]


def run_end_to_end(cfg: EndToEndConfig, qps: float, n_requests: int = 4000,
                   seed: int = 1) -> EndToEndResult:
    """Simulate the User scenario at offered load ``qps``."""
    rng = random.Random(seed)
    sim = Simulator()

    if cfg.rpu:
        lat = cfg.rpu_latency_factor
        batch = cfg.batch_size
        gain = cfg.rpu_throughput_gain

        def tier(name: str, t_us: float) -> Station:
            # per-request pipelined occupancy = 1/gain of the CPU's
            return Station(sim, name, t_us * lat, cfg.cpu_tier_servers,
                           occupancy_us=t_us / gain, batch_size=batch,
                           batch_timeout_us=cfg.batch_timeout_us)
    else:
        def tier(name: str, t_us: float) -> Station:
            return Station(sim, name, t_us, cfg.cpu_tier_servers)

    user_st = tier("user", cfg.user_us)
    mcrouter_st = tier("mcrouter", cfg.mcrouter_us)
    memcached_st = tier("memcached", cfg.memcached_us)
    storage_st = Station(sim, "storage", cfg.storage_us, servers=0,
                         infinite=True)

    finished: List[Job] = []
    network_us = cfg.network_us
    split = cfg.batch_split or not cfg.rpu

    def finish(now: float, jobs: List[Job],
               _append=finished.append) -> None:
        done_at = now + network_us
        for j in jobs:
            j.done_us = done_at
            _append(j)

    def after_memcached(now: float, jobs: List[Job]) -> None:
        hits: List[Job] = []
        misses: List[Job] = []
        for j in jobs:
            (misses if j.blocks else hits).append(j)
        if not misses:
            finish(now, hits)
            return
        if split:
            # fast sub-batch continues past the reconvergence point
            finish(now, hits)
            storage_st.arrive_many(now, misses, finish)
            return
        # lockstep without splitting: hits wait for the batch's misses
        remaining = {"n": len(misses)}

        def on_storage(t: float, jobs_done: List[Job]) -> None:
            finish(t, jobs_done)
            remaining["n"] -= len(jobs_done)
            if remaining["n"] == 0:
                finish(t, hits)

        storage_st.arrive_many(now, misses, on_storage)

    def after_mcrouter(now: float, jobs: List[Job]) -> None:
        memcached_st.arrive_many(now, jobs, after_memcached)

    def after_user(now: float, jobs: List[Job]) -> None:
        mcrouter_st.arrive_many(now, jobs, after_mcrouter)

    web_us = cfg.web_us
    inter_us = 1e6 / qps
    hit_rate = cfg.memcached_hit_rate
    rnd = rng.random
    schedule = sim.schedule1

    # precompute the per-request draws in one block, preserving the
    # exact draw order of the original interleaved injector
    # (expovariate, then per request: random, expovariate).  Each
    # ``expovariate(1.0)`` is exactly ``-log(1 - random())`` (the
    # division by lambd=1.0 is a float identity), so the whole
    # sequence is one run of uniform draws: even indices are arrival
    # gaps, odd indices are hit/miss draws.
    log = math.log
    raw = [rnd() for _ in range(2 * n_requests)]
    gaps = [-log(1.0 - u) * inter_us for u in raw[0::2]]
    blocks = [u >= hit_rate for u in raw[1::2]]

    # self-rescheduling injector: each arrival event creates the next
    # one, so the scheduler only ever holds in-flight work (tens of
    # events) instead of the entire open-loop arrival schedule - the
    # schedule-call order is exactly the original draw-inline loop's
    def inject(now: float, i: int, _arrive=user_st.arrive) -> None:
        job = Job(jid=i, arrival_us=now, blocks=blocks[i])
        nxt = i + 1
        if nxt < n_requests:
            schedule(now + gaps[nxt], inject, nxt)
        _arrive(now + web_us + network_us, job, after_user)

    if n_requests > 0:
        schedule(gaps[0], inject, 0)

    sim.run()

    if sanitizer_enabled():
        # conservation of jobs: every injected request finishes exactly
        # once and no station strands work in a partial batch
        check(len(finished) == n_requests,
              "queueing: injected %d jobs but %d finished",
              n_requests, len(finished))
        check(len({j.jid for j in finished}) == len(finished),
              "queueing: a job finished more than once")
        for st in (user_st, mcrouter_st, memcached_st, storage_st):
            check(not st._pending,
                  "queueing: station %s stranded %d jobs",
                  st.name, len(st._pending))
            check(st.dispatched_jobs == st.arrived_jobs,
                  "queueing: station %s dispatched %d of %d arrivals",
                  st.name, st.dispatched_jobs, st.arrived_jobs)
            check(st.open_jobs == 0 and st.open_groups == 0,
                  "queueing: station %s drained with %d jobs / %d "
                  "groups still open", st.name, st.open_jobs,
                  st.open_groups)
        for j in finished:
            check(j.done_us >= j.arrival_us,
                  "queueing: job %d finished at %f before arriving at %f",
                  j.jid, j.done_us, j.arrival_us)

    lats = [j.latency_us for j in finished]
    return EndToEndResult(
        offered_qps=qps,
        completed=len(finished),
        avg_latency_us=sum(lats) / len(lats) if lats else 0.0,
        p50_us=_percentile(lats, 0.50),
        p99_us=_percentile(lats, 0.99),
    )


def saturation_sweep(cfg: EndToEndConfig, qps_points: Sequence[float],
                     n_requests: int = 3000) -> List[EndToEndResult]:
    """Latency-vs-load curve (one Fig. 22 series)."""
    return [run_end_to_end(cfg, q, n_requests) for q in qps_points]


def max_throughput_kqps(results: Sequence[EndToEndResult],
                        qos_limit_us: float = 2500.0) -> float:
    """Highest offered load whose p99 meets the QoS limit."""
    best = 0.0
    for r in results:
        if r.completed > 0 and r.p99_us <= qos_limit_us:
            best = max(best, r.offered_qps)
    return best / 1000.0
