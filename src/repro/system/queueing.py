"""Discrete-event queueing simulator for microservice graphs (uqsim role).

Models the paper's end-to-end User scenario (Fig. 3 / Fig. 22):

    client -> WebServer -> User -> McRouter -> Memcached
                                                  \\-> Storage (miss)

Each tier is a multi-server station with deterministic service times.
Stations may *batch*: requests wait for ``batch_size`` arrivals or a
``batch_timeout_us``, then are served together.  A server is occupied
for ``occupancy_us`` per dispatch (the pipelined initiation interval,
which sets throughput) while the batch's *latency* is ``latency_us`` -
this decouples an RPU tier's 5x throughput from its 1.2x service
latency, as in the paper's uqsim configuration.

At the memcached tier, misses continue to millisecond-scale storage.
Without *batch splitting* the hit requests of a batch wait at the
reconvergence point until their batch's misses return from storage
(Fig. 17a); with splitting (Section III-B5) hits complete immediately.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..sanitize import check, sanitizer_enabled


class Simulator:
    """Minimal deterministic event loop.

    ``schedule`` takes the callback's trailing arguments directly
    (``schedule(when, fn, *args)`` fires ``fn(when, *args)``), so hot
    callers pass bound methods plus data instead of allocating a
    closure per event.  Ties break by insertion order; the argument
    tuple is never compared.
    """

    def __init__(self):
        self._events: List[Tuple[float, int, Callable, tuple]] = []
        self._tie = itertools.count()
        self.now = 0.0
        self._san = sanitizer_enabled()

    def schedule(self, when: float, fn: Callable, *args) -> None:
        if self._san:
            check(when >= self.now,
                  "simulator: event scheduled into the past "
                  "(%f before now=%f)", when, self.now)
        heapq.heappush(self._events, (when, next(self._tie), fn, args))

    def run(self) -> None:
        events = self._events
        pop = heapq.heappop
        san = self._san
        while events:
            when, _t, fn, args = pop(events)
            if san:
                check(when >= self.now,
                      "simulator: time ran backwards (%f after %f)",
                      when, self.now)
            self.now = when
            fn(when, *args)


@dataclass(slots=True)
class Job:
    jid: int
    arrival_us: float
    blocks: bool = False  # misses memcached -> storage path
    done_us: float = 0.0

    @property
    def latency_us(self) -> float:
        return self.done_us - self.arrival_us


class Station:
    """Multi-server station with optional request batching."""

    def __init__(self, sim: Simulator, name: str, latency_us: float,
                 servers: int, occupancy_us: Optional[float] = None,
                 batch_size: int = 1, batch_timeout_us: float = 50.0,
                 infinite: bool = False):
        self.sim = sim
        self.name = name
        self.latency_us = latency_us
        #: server occupancy per *request* in a dispatch (pipelined
        #: initiation interval); a partially-filled batch only occupies
        #: the server for its actual fill
        self.occupancy_us = occupancy_us if occupancy_us is not None else latency_us
        self.servers = servers
        self.batch_size = batch_size
        self.batch_timeout_us = batch_timeout_us
        self.infinite = infinite
        self._free_at = [0.0] * (0 if infinite else servers)
        #: queued jobs and their completion callbacks, parallel lists
        #: (cheaper to slice at dispatch than a list of pairs)
        self._pending: List[Job] = []
        self._pending_dones: List[Callable] = []
        self._timeout_at: Optional[float] = None
        self.dispatched_batches = 0
        self.dispatched_jobs = 0
        self.arrived_jobs = 0
        self._san = sanitizer_enabled()
        self._schedule = sim.schedule

    def arrive(self, now: float, job: Job,
               done: Callable[[float, List[Job]], None]) -> None:
        """``done(t, jobs)`` fires once for the whole dispatched batch."""
        self.arrived_jobs += 1
        if self.batch_size == 1:
            # unbatched stations never queue: dispatch straight through
            # without touching the pending list or the timeout machinery
            self._dispatch_one(now, job, done)
            return
        pending = self._pending
        pending.append(job)
        self._pending_dones.append(done)
        if len(pending) >= self.batch_size:
            self._dispatch(now)
        if pending and self._timeout_at is None:
            deadline = now + self.batch_timeout_us
            self._timeout_at = deadline
            self._schedule(deadline, self._flush)

    def arrive_many(self, now: float, jobs: Sequence[Job],
                    done: Callable[[float, List[Job]], None]) -> None:
        """Arrive several jobs sharing one completion callback.

        Exactly equivalent to calling :meth:`arrive` once per job (same
        dispatch grouping, same timeout arming order), minus the
        per-job call overhead - routing callbacks fan whole batches
        into the next tier, so this is the hot entry point.
        """
        self.arrived_jobs += len(jobs)
        if self.batch_size == 1:
            for job in jobs:
                self._dispatch_one(now, job, done)
            return
        pending = self._pending
        dones = self._pending_dones
        bs = self.batch_size
        timeout = self.batch_timeout_us
        schedule = self._schedule
        for job in jobs:
            pending.append(job)
            dones.append(done)
            if len(pending) >= bs:
                self._dispatch(now)
            if pending and self._timeout_at is None:
                deadline = now + timeout
                self._timeout_at = deadline
                schedule(deadline, self._flush)

    def _pick_server(self, now: float) -> float:
        """Reserve the earliest-free server; returns the start time."""
        free = self._free_at
        server = 0
        best = free[0]
        for s in range(1, len(free)):
            if free[s] < best:
                best = free[s]
                server = s
        start = best if best > now else now
        free[server] = start + self.occupancy_us
        return start

    def _dispatch_one(self, now: float, job: Job, done: Callable) -> None:
        start = now if self.infinite else self._pick_server(now)
        finish = start + self.latency_us
        self.dispatched_batches += 1
        self.dispatched_jobs += 1
        self._schedule(finish, done, [job])

    def _arm_timeout(self, now: float) -> None:
        """A partial batch must always have a pending flush, or its
        requests would be stranded when no further arrivals come."""
        if (self._pending and self.batch_size > 1
                and self._timeout_at is None):
            deadline = now + self.batch_timeout_us
            self._timeout_at = deadline
            self._schedule(deadline, self._flush)

    def _flush(self, now: float) -> None:
        self._timeout_at = None
        if self._pending:
            self._dispatch(now)
        self._arm_timeout(now)

    def _dispatch(self, now: float) -> None:
        pending = self._pending
        dones = self._pending_dones
        bs = self.batch_size
        while pending:
            if len(pending) < bs and self._timeout_at is not None:
                break  # wait for more arrivals or the timeout
            group = pending[:bs]
            n = len(group)
            del pending[:n]
            done = dones[0]
            if self._san:
                # a batch completes through exactly one callback; mixed
                # callbacks would silently drop the other jobs' routing
                for d in dones[:n]:
                    check(d is done,
                          "station %s: mixed completion callbacks in "
                          "one dispatched batch", self.name)
            del dones[:n]
            if self.infinite:
                start = now
            else:
                free = self._free_at
                server = 0
                best = free[0]
                for s in range(1, len(free)):
                    if free[s] < best:
                        best = free[s]
                        server = s
                start = best if best > now else now
                free[server] = start + self.occupancy_us * n
            finish = start + self.latency_us
            self.dispatched_batches += 1
            self.dispatched_jobs += n
            self._schedule(finish, done, group)
            if n < bs:
                break

    @property
    def utilization_horizon(self) -> float:
        return max(self._free_at) if self._free_at else 0.0


@dataclass
class EndToEndConfig:
    """Fig. 22 scenario parameters (paper Section V-B)."""

    web_us: float = 10.0
    user_us: float = 100.0
    mcrouter_us: float = 20.0
    memcached_us: float = 25.0
    storage_us: float = 1000.0
    network_us: float = 60.0
    memcached_hit_rate: float = 0.9
    #: effective service instances per tier across the 3 machines;
    #: calibrated so the CPU system saturates around 15 kQPS as in
    #: Fig. 22 (the paper does not publish uqsim's exact multiplicity)
    cpu_tier_servers: int = 2
    rpu: bool = False
    #: from the chip-level experiments (paper: 5x throughput, 1.2x
    #: latency at the same power budget)
    rpu_throughput_gain: float = 5.0
    rpu_latency_factor: float = 1.2
    batch_size: int = 32
    batch_timeout_us: float = 50.0
    batch_split: bool = False


@dataclass
class EndToEndResult:
    offered_qps: float
    completed: int
    avg_latency_us: float
    p50_us: float
    p99_us: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (f"{self.offered_qps/1000:6.1f} kQPS  avg {self.avg_latency_us:8.1f} us  "
                f"p99 {self.p99_us:8.1f} us")


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile: the smallest sample value such that at
    least ``q`` of the distribution lies at or below it - the
    ``ceil(q * n)``-th order statistic (1-indexed), clamped to the
    sample.  (``int(q * n)`` would index one *past* the nearest rank:
    the p99 of 100 samples must be the 99th value, not the maximum, and
    the median of an even-length sample is the lower of the two middle
    values under nearest-rank.)"""
    if not values:
        return 0.0
    s = sorted(values)
    rank = math.ceil(q * len(s))  # 1-indexed nearest rank
    return s[min(len(s) - 1, max(0, rank - 1))]


def run_end_to_end(cfg: EndToEndConfig, qps: float, n_requests: int = 4000,
                   seed: int = 1) -> EndToEndResult:
    """Simulate the User scenario at offered load ``qps``."""
    rng = random.Random(seed)
    sim = Simulator()

    if cfg.rpu:
        lat = cfg.rpu_latency_factor
        batch = cfg.batch_size
        gain = cfg.rpu_throughput_gain

        def tier(name: str, t_us: float) -> Station:
            # per-request pipelined occupancy = 1/gain of the CPU's
            return Station(sim, name, t_us * lat, cfg.cpu_tier_servers,
                           occupancy_us=t_us / gain, batch_size=batch,
                           batch_timeout_us=cfg.batch_timeout_us)
    else:
        def tier(name: str, t_us: float) -> Station:
            return Station(sim, name, t_us, cfg.cpu_tier_servers)

    user_st = tier("user", cfg.user_us)
    mcrouter_st = tier("mcrouter", cfg.mcrouter_us)
    memcached_st = tier("memcached", cfg.memcached_us)
    storage_st = Station(sim, "storage", cfg.storage_us, servers=0,
                         infinite=True)

    finished: List[Job] = []
    network_us = cfg.network_us
    split = cfg.batch_split or not cfg.rpu

    def finish(now: float, jobs: List[Job],
               _append=finished.append) -> None:
        done_at = now + network_us
        for j in jobs:
            j.done_us = done_at
            _append(j)

    def after_memcached(now: float, jobs: List[Job]) -> None:
        hits = [j for j in jobs if not j.blocks]
        misses = [j for j in jobs if j.blocks]
        if not misses:
            finish(now, hits)
            return
        if split:
            # fast sub-batch continues past the reconvergence point
            finish(now, hits)
            storage_st.arrive_many(now, misses, finish)
            return
        # lockstep without splitting: hits wait for the batch's misses
        remaining = {"n": len(misses)}

        def on_storage(t: float, jobs_done: List[Job]) -> None:
            finish(t, jobs_done)
            remaining["n"] -= len(jobs_done)
            if remaining["n"] == 0:
                finish(t, hits)

        storage_st.arrive_many(now, misses, on_storage)

    def after_mcrouter(now: float, jobs: List[Job]) -> None:
        memcached_st.arrive_many(now, jobs, after_memcached)

    def after_user(now: float, jobs: List[Job]) -> None:
        mcrouter_st.arrive_many(now, jobs, after_mcrouter)

    web_us = cfg.web_us
    inter_us = 1e6 / qps
    hit_rate = cfg.memcached_hit_rate
    expovariate = rng.expovariate
    rnd = rng.random
    schedule = sim.schedule

    # self-rescheduling injector: each arrival event creates the next
    # one, so the heap only ever holds in-flight work (tens of events)
    # instead of the entire open-loop arrival schedule - the RNG draw
    # order (expovariate, random, expovariate, ...) is exactly the
    # all-upfront loop's
    def inject(now: float, i: int, _arrive=user_st.arrive) -> None:
        job = Job(jid=i, arrival_us=now, blocks=rnd() >= hit_rate)
        nxt = i + 1
        if nxt < n_requests:
            schedule(now + expovariate(1.0) * inter_us, inject, nxt)
        _arrive(now + web_us + network_us, job, after_user)

    if n_requests > 0:
        schedule(expovariate(1.0) * inter_us, inject, 0)

    sim.run()

    if sanitizer_enabled():
        # conservation of jobs: every injected request finishes exactly
        # once and no station strands work in a partial batch
        check(len(finished) == n_requests,
              "queueing: injected %d jobs but %d finished",
              n_requests, len(finished))
        check(len({j.jid for j in finished}) == len(finished),
              "queueing: a job finished more than once")
        for st in (user_st, mcrouter_st, memcached_st, storage_st):
            check(not st._pending,
                  "queueing: station %s stranded %d jobs",
                  st.name, len(st._pending))
            check(st.dispatched_jobs == st.arrived_jobs,
                  "queueing: station %s dispatched %d of %d arrivals",
                  st.name, st.dispatched_jobs, st.arrived_jobs)
        for j in finished:
            check(j.done_us >= j.arrival_us,
                  "queueing: job %d finished at %f before arriving at %f",
                  j.jid, j.done_us, j.arrival_us)

    lats = [j.latency_us for j in finished]
    return EndToEndResult(
        offered_qps=qps,
        completed=len(finished),
        avg_latency_us=sum(lats) / len(lats) if lats else 0.0,
        p50_us=_percentile(lats, 0.50),
        p99_us=_percentile(lats, 0.99),
    )


def saturation_sweep(cfg: EndToEndConfig, qps_points: Sequence[float],
                     n_requests: int = 3000) -> List[EndToEndResult]:
    """Latency-vs-load curve (one Fig. 22 series)."""
    return [run_end_to_end(cfg, q, n_requests) for q in qps_points]


def max_throughput_kqps(results: Sequence[EndToEndResult],
                        qos_limit_us: float = 2500.0) -> float:
    """Highest offered load whose p99 meets the QoS limit."""
    best = 0.0
    for r in results:
        if r.completed > 0 and r.p99_us <= qos_limit_us:
            best = max(best, r.offered_qps)
    return best / 1000.0
