"""Energy/area models (McPAT + GPUWattch role in the paper)."""

from .area import (
    CHIP_COMPONENTS,
    CORE_COMPONENTS,
    ComponentEstimate,
    chip_totals,
    core_totals,
    format_table,
    frontend_ooo_share,
    simt_overhead_share,
)
from .equation import (
    EnergyComposition,
    anticipated_gain_range,
    energy_efficiency_gain,
)
from .model import (
    CPU_ENERGY,
    ENERGY_BY_CONFIG,
    GPU_ENERGY,
    RPU_ENERGY,
    SMT8_ENERGY,
    EnergyBreakdown,
    EnergyConstants,
    constants_for,
    energy_of,
    requests_per_joule,
)

__all__ = [
    "CHIP_COMPONENTS",
    "CORE_COMPONENTS",
    "CPU_ENERGY",
    "ComponentEstimate",
    "ENERGY_BY_CONFIG",
    "EnergyBreakdown",
    "EnergyComposition",
    "EnergyConstants",
    "GPU_ENERGY",
    "RPU_ENERGY",
    "SMT8_ENERGY",
    "anticipated_gain_range",
    "chip_totals",
    "constants_for",
    "core_totals",
    "energy_efficiency_gain",
    "energy_of",
    "format_table",
    "frontend_ooo_share",
    "requests_per_joule",
    "simt_overhead_share",
]
