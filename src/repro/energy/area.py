"""Area and peak-power model (paper Table V, 7nm).

The CPU core's per-component values anchor the model; RPU components
are derived by the scaling rules the paper describes: frontend
structures are shared by the batch (near-constant), register files and
execution units scale with the 32 threads / 8 lanes, caches grow 4x,
and the SIMT-only structures (majority voting, SIMT optimizer, MCU,
L1 crossbar) are added on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class ComponentEstimate:
    name: str
    cpu_area_mm2: float
    rpu_area_mm2: float
    cpu_power_w: float
    rpu_power_w: float


#: Per-core component estimates (Table V).  CPU column is the anchor;
#: the RPU column applies the scaling rules quoted in the docstring.
CORE_COMPONENTS: List[ComponentEstimate] = [
    ComponentEstimate("Fetch&Decode", 0.27, 0.30, 0.39, 0.40),
    ComponentEstimate("Branch Prediction", 0.01, 0.01, 0.02, 0.02),
    ComponentEstimate("OoO", 0.11, 0.17, 0.85, 1.45),
    ComponentEstimate("Register File", 0.14, 2.52, 0.49, 4.26),
    ComponentEstimate("Execution Units", 0.25, 2.31, 0.34, 2.51),
    ComponentEstimate("Load/Store Unit", 0.07, 0.34, 0.13, 0.41),
    ComponentEstimate("L1 Cache", 0.04, 0.22, 0.09, 0.20),
    ComponentEstimate("TLB", 0.02, 0.08, 0.06, 0.40),
    ComponentEstimate("L2 Cache", 0.20, 0.71, 0.13, 0.24),
    ComponentEstimate("Majority Voting", 0.00, 0.02, 0.00, 0.03),
    ComponentEstimate("SIMT Optimizer", 0.00, 0.03, 0.00, 0.05),
    ComponentEstimate("MCU", 0.00, 0.02, 0.00, 0.01),
    ComponentEstimate("L1-Xbar", 0.00, 0.31, 0.00, 1.23),
]

#: Chip-level components (Table V bottom).
CHIP_COMPONENTS: List[ComponentEstimate] = [
    ComponentEstimate("L3 Cache", 7.82, 7.82, 0.75, 0.75),
    ComponentEstimate("NoC", 9.78, 1.72, 36.52, 7.02),
    ComponentEstimate("Memory Ctrl", 14.64, 23.59, 6.85, 19.27),
]

CPU_CORES = 98
RPU_CORES = 20
CPU_STATIC_W = 49.0
RPU_STATIC_W = 53.0
CPU_THREADS = 98
RPU_THREADS = 640


def core_totals() -> Dict[str, float]:
    """Per-core area/power totals and RPU/CPU ratios (Table V)."""
    cpu_area = sum(c.cpu_area_mm2 for c in CORE_COMPONENTS)
    rpu_area = sum(c.rpu_area_mm2 for c in CORE_COMPONENTS)
    cpu_power = sum(c.cpu_power_w for c in CORE_COMPONENTS)
    rpu_power = sum(c.rpu_power_w for c in CORE_COMPONENTS)
    return {
        "cpu_core_area_mm2": cpu_area,
        "rpu_core_area_mm2": rpu_area,
        "cpu_core_power_w": cpu_power,
        "rpu_core_power_w": rpu_power,
        "core_area_ratio": rpu_area / cpu_area,
        "core_power_ratio": rpu_power / cpu_power,
    }


def chip_totals() -> Dict[str, float]:
    """Chip-level area/power totals and thread density (Table V)."""
    core = core_totals()
    cpu_area = core["cpu_core_area_mm2"] * CPU_CORES + sum(
        c.cpu_area_mm2 for c in CHIP_COMPONENTS
    )
    rpu_area = core["rpu_core_area_mm2"] * RPU_CORES + sum(
        c.rpu_area_mm2 for c in CHIP_COMPONENTS
    )
    cpu_power = (
        core["cpu_core_power_w"] * CPU_CORES
        + sum(c.cpu_power_w for c in CHIP_COMPONENTS)
        + CPU_STATIC_W
    )
    rpu_power = (
        core["rpu_core_power_w"] * RPU_CORES
        + sum(c.rpu_power_w for c in CHIP_COMPONENTS)
        + RPU_STATIC_W
    )
    return {
        "cpu_chip_area_mm2": cpu_area,
        "rpu_chip_area_mm2": rpu_area,
        "cpu_chip_power_w": cpu_power,
        "rpu_chip_power_w": rpu_power,
        "thread_density_ratio": (RPU_THREADS / rpu_area)
        / (CPU_THREADS / cpu_area),
    }


def frontend_ooo_share() -> Tuple[float, float]:
    """CPU frontend+OoO share of core area and power (paper: ~40%/50%)."""
    fe = ("Fetch&Decode", "Branch Prediction", "OoO", "Load/Store Unit")
    area = sum(c.cpu_area_mm2 for c in CORE_COMPONENTS if c.name in fe)
    power = sum(c.cpu_power_w for c in CORE_COMPONENTS if c.name in fe)
    t = core_totals()
    return area / t["cpu_core_area_mm2"], power / t["cpu_core_power_w"]


def simt_overhead_share() -> float:
    """Fraction of RPU core peak power spent on RPU-only structures
    (~11.8%, dominated by the 8x8 L1 crossbar)."""
    extra = ("Majority Voting", "SIMT Optimizer", "MCU", "L1-Xbar")
    power = sum(c.rpu_power_w for c in CORE_COMPONENTS if c.name in extra)
    return power / core_totals()["rpu_core_power_w"]


def format_table() -> str:
    """Render Table V as text."""
    lines = [
        f"{'Component':18s} {'CPU mm2':>8s} {'RPU mm2':>8s} "
        f"{'CPU W':>7s} {'RPU W':>7s}"
    ]
    for c in CORE_COMPONENTS:
        lines.append(
            f"{c.name:18s} {c.cpu_area_mm2:8.2f} {c.rpu_area_mm2:8.2f} "
            f"{c.cpu_power_w:7.2f} {c.rpu_power_w:7.2f}"
        )
    t = core_totals()
    lines.append(
        f"{'Total-1core':18s} {t['cpu_core_area_mm2']:8.2f} "
        f"{t['rpu_core_area_mm2']:8.2f} {t['cpu_core_power_w']:7.2f} "
        f"{t['rpu_core_power_w']:7.2f}"
    )
    for c in CHIP_COMPONENTS:
        lines.append(
            f"{c.name:18s} {c.cpu_area_mm2:8.2f} {c.rpu_area_mm2:8.2f} "
            f"{c.cpu_power_w:7.2f} {c.rpu_power_w:7.2f}"
        )
    ch = chip_totals()
    lines.append(
        f"{'Total Chip':18s} {ch['cpu_chip_area_mm2']:8.1f} "
        f"{ch['rpu_chip_area_mm2']:8.1f} {ch['cpu_chip_power_w']:7.1f} "
        f"{ch['rpu_chip_power_w']:7.1f}"
    )
    return "\n".join(lines)
