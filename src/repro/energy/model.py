"""Runtime energy accounting (McPAT + GPUWattch role in the paper).

Energy = sum(event counts x per-event dynamic energy) + static power x
time.  The per-event constants are calibrated at 7nm so that the CPU
reproduces the paper's Fig. 10 breakdown (frontend+OoO ~= 73% of core
dynamic energy for scalar-integer services, ~39% for the SIMD-heavy
HDSearch-leaf) and the RPU's L1/L2 per-access energies are 1.72x/1.82x
the CPU's (Table V discussion).

The RPU amortization falls out of the *counters*, not the constants:
the timing model counts fetch/decode/OoO once per **batch** instruction
but register-file and execution energy once per **scalar** instruction,
which is exactly Equation 1's structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..timing.chip import ChipResult
from ..timing.memhier import Counters

PJ = 1e-12


@dataclass(frozen=True)
class EnergyConstants:
    """Per-event dynamic energies in picojoules, plus static power."""

    fetch_decode: float = 180.0  # per issued micro-op (batch granularity)
    ooo_control: float = 360.0  # rename/RS/ROB/LSQ-control per micro-op
    bp_lookup: float = 14.0
    flush: float = 70.0  # per flushed divergent-minority instruction
    rf_read: float = 8.0  # per operand per active thread
    rf_write: float = 12.0
    exec_alu: float = 20.0  # per active thread
    exec_mul: float = 70.0
    exec_simd: float = 320.0  # 256-bit SIMD op
    lsq: float = 84.0  # per scalar memory op
    l1_access: float = 140.0
    l2_access: float = 280.0
    l3_access: float = 700.0
    dram_access: float = 1200.0  # memory-controller energy per line
    noc_traversal: float = 210.0
    tlb_access: float = 14.0
    # SIMT-only overheads (zero on MIMD configs)
    mcu_op: float = 28.0
    majority_vote: float = 21.0
    simt_optimizer: float = 14.0  # per batch instruction
    active_mask: float = 14.0  # AM propagation per batch instruction
    l1_xbar: float = 56.0  # per L1 access
    # static
    static_core_w: float = 0.25
    uncore_scale: float = 1.0  # multiplies NoC/L3/DRAM energies


CPU_ENERGY = EnergyConstants()

SMT8_ENERGY = EnergyConstants(
    static_core_w=0.285,  # +14% core area/power for SMT-8 (Section IV)
)

RPU_ENERGY = EnergyConstants(
    l1_access=240.0,  # 1.72x: bigger cache + banking
    l2_access=510.0,  # 1.82x
    noc_traversal=84.0,  # single-hop crossbar
    static_core_w=1.33,  # Table V static ratio: (53/20) / (49/98) x CPU
)

GPU_ENERGY = EnergyConstants(
    fetch_decode=100.0,  # in-order, no OoO structures
    ooo_control=42.0,  # scoreboard only
    bp_lookup=0.0,
    exec_alu=16.0,
    exec_simd=280.0,
    l1_access=96.0,  # small, software-friendly banked caches
    l2_access=280.0,  # (GPUWattch-class per-access energies)
    noc_traversal=84.0,
    dram_access=700.0,  # HBM-class interface
    static_core_w=0.45,
)

ENERGY_BY_CONFIG: Dict[str, EnergyConstants] = {
    "cpu": CPU_ENERGY,
    "cpu-simd": CPU_ENERGY,
    "cpu-smt8": SMT8_ENERGY,
    "rpu": RPU_ENERGY,
    "gpu": GPU_ENERGY,
}


@dataclass
class EnergyBreakdown:
    """Joules spent by one core over one ChipResult run."""

    frontend_ooo: float = 0.0
    execution: float = 0.0
    memory: float = 0.0
    simt_overhead: float = 0.0
    static: float = 0.0

    @property
    def dynamic(self) -> float:
        return (self.frontend_ooo + self.execution + self.memory
                + self.simt_overhead)

    @property
    def total(self) -> float:
        return self.dynamic + self.static

    def share(self, part: str) -> float:
        value = getattr(self, part)
        return value / self.dynamic if self.dynamic else 0.0


def constants_for(config_name: str) -> EnergyConstants:
    """Energy constants for a chip config name (prefix-matched)."""
    for key, consts in ENERGY_BY_CONFIG.items():
        if config_name.startswith(key):
            return consts
    # ablation variants like "rpu-no-mcu"
    if config_name.startswith("rpu"):
        return RPU_ENERGY
    raise KeyError(f"no energy constants for config {config_name!r}")


def energy_of(result: ChipResult,
              constants: EnergyConstants = None) -> EnergyBreakdown:
    """Compute the energy breakdown of one chip run (per core)."""
    k = constants if constants is not None else constants_for(result.config_name)
    c: Counters = result.counters
    is_simt = result.batch_size > 1

    bd = EnergyBreakdown()
    bd.frontend_ooo = PJ * (
        c["batch_instructions"] * (k.fetch_decode + k.ooo_control)
        + c["bp_lookups"] * k.bp_lookup
        + c["bp_minority_flushes"] * k.flush
    )
    scalar_mem = c["scalar_load"] + c["scalar_store"] + c["scalar_atomic"]
    scalar_simple = (c["scalar_alu"] + c["scalar_branch"] + c["scalar_jump"]
                     + c["scalar_call"] + c["scalar_ret"])
    bd.execution = PJ * (
        c["rf_reads"] * k.rf_read
        + c["rf_writes"] * k.rf_write
        + scalar_simple * k.exec_alu
        + c["scalar_mul"] * k.exec_mul
        + c["scalar_simd"] * k.exec_simd
    )
    bd.memory = PJ * (
        scalar_mem * k.lsq
        + c["l1_accesses"] * k.l1_access
        + c["l2_accesses"] * k.l2_access
        + (c["l3_accesses"] + c["atomics_at_l3"]) * k.l3_access
        + c["dram_accesses"] * k.dram_access
        + c["noc_traversals"] * k.noc_traversal * k.uncore_scale
        + c["tlb_accesses"] * k.tlb_access
    )
    if is_simt:
        bd.simt_overhead = PJ * (
            c["mcu_ops"] * k.mcu_op
            + c["bp_lookups"] * k.majority_vote
            + c["batch_instructions"] * (k.simt_optimizer + k.active_mask)
            + c["l1_accesses"] * k.l1_xbar
        )
    bd.static = k.static_core_w * result.core_time_s
    return bd


def requests_per_joule(result: ChipResult,
                       constants: EnergyConstants = None) -> float:
    """Headline Fig. 19 metric: measured requests per joule."""
    bd = energy_of(result, constants)
    if bd.total == 0:
        return 0.0
    return result.n_requests / bd.total
