"""Cluster-level power/carbon roll-up for the fleet tier.

The chip model (:mod:`repro.energy.model`) prices one request on one
chip; the resilience layer prices one service graph.  This module
closes the loop to the paper's data-center pitch: per-replica busy
time and provisioned-server time roll up to rack and cluster *watts*,
facility energy (PUE), and operational carbon, so the headline
requests/joule can be quoted at the granularity operators budget.

Accounting model (all energies in joules, times in us):

* **dynamic** - every us a tier server spends busy burns ``dynamic_w``
  (storage backends at the lower ``storage_dynamic_w``, matching the
  system-level model in :mod:`repro.system.resilience`);
* **static** - every *active provisioned* server leaks ``static_w``;
  autoscaling reduces this term by shrinking the integrated
  active-server-time, which is why it is a time integral
  (``active_server_us``) rather than ``servers x horizon``;
* **rack overhead** - each provisioned rack (ToR switch, fans, PSU
  losses) draws ``rack_overhead_w`` for the whole run: racks stay
  powered even when their servers scale down;
* **zone overhead** - each availability zone (spine switches, zone
  cooling plant) draws ``zone_overhead_w`` for the whole run; zero by
  default, so runs without a zone topology are unchanged;
* **facility** - IT energy times ``pue``; carbon at a grid intensity
  of ``carbon_g_per_kwh``.
"""

from __future__ import annotations

from dataclasses import dataclass

_J_PER_KWH = 3.6e6


@dataclass(frozen=True)
class ClusterPowerModel:
    """Power coefficients for the fleet roll-up."""

    #: watts for a fully-busy tier server (matches the system model)
    dynamic_w: float = 20.0
    #: leakage watts per active provisioned tier server
    static_w: float = 8.0
    #: watts for busy time on the shared storage backend
    storage_dynamic_w: float = 4.0
    #: per-rack fixed overhead (ToR switch, fans, PSU losses)
    rack_overhead_w: float = 40.0
    #: per-availability-zone fixed overhead (spine, zone cooling)
    zone_overhead_w: float = 0.0
    #: facility power usage effectiveness (cooling, distribution)
    pue: float = 1.4
    #: grid carbon intensity (operational, location-based)
    carbon_g_per_kwh: float = 385.0


@dataclass(frozen=True)
class ClusterEnergy:
    """One run's energy roll-up (see module docstring for terms)."""

    dynamic_j: float
    static_j: float
    rack_j: float
    pue: float
    horizon_us: float
    n_racks: int
    #: availability zones provisioned (0 = no zone topology)
    n_zones: int = 0
    zone_j: float = 0.0

    @property
    def it_j(self) -> float:
        return self.dynamic_j + self.static_j + self.rack_j + self.zone_j

    @property
    def facility_j(self) -> float:
        return self.it_j * self.pue

    @property
    def avg_watts(self) -> float:
        """Mean facility draw over the run (the cluster's power bill)."""
        if self.horizon_us <= 0.0:
            return 0.0
        return self.facility_j / (self.horizon_us * 1e-6)

    def carbon_g(self, model: "ClusterPowerModel") -> float:
        """Operational carbon (grams CO2e) at the model's intensity."""
        return self.facility_j / _J_PER_KWH * model.carbon_g_per_kwh


def rollup_cluster(busy_us: float, storage_busy_us: float,
                   active_server_us: float, n_racks: int,
                   horizon_us: float,
                   model: ClusterPowerModel = ClusterPowerModel(),
                   n_zones: int = 0) -> ClusterEnergy:
    """Aggregate per-replica accounting into a :class:`ClusterEnergy`.

    ``busy_us`` sums server-busy time over every tier replica,
    ``active_server_us`` integrates (active replicas x servers each)
    over time, and ``n_racks`` / ``n_zones`` count provisioned racks
    and availability zones.  Shard roll-ups compose by summing the
    inputs before calling this once.
    """
    dynamic = (busy_us * 1e-6 * model.dynamic_w
               + storage_busy_us * 1e-6 * model.storage_dynamic_w)
    static = active_server_us * 1e-6 * model.static_w
    rack = n_racks * horizon_us * 1e-6 * model.rack_overhead_w
    zone = n_zones * horizon_us * 1e-6 * model.zone_overhead_w
    return ClusterEnergy(dynamic_j=dynamic, static_j=static, rack_j=rack,
                         pue=model.pue, horizon_us=horizon_us,
                         n_racks=n_racks, n_zones=n_zones, zone_j=zone)
