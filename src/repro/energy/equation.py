"""The paper's Equation 1: analytical SMT-vs-SIMT energy-efficiency gain.

EE = CPU energy / RPU energy for the same work, parameterized by the
batch size ``n``, average SIMT efficiency ``eff``, the fraction ``r`` of
memory requests that coalesce within a batch, and the CPU's energy
composition.  Used by the anticipated-gain analysis (Section III-A2:
2-10x when amortized components are 50-90% of CPU energy) and validated
against the measured Fig. 19 results.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyComposition:
    """Fractions of CPU energy per Fig. 10 (must sum to <= 1)."""

    frontend_ooo: float = 0.53
    execution: float = 0.14
    memory: float = 0.20
    static: float = 0.13

    def __post_init__(self):
        total = (self.frontend_ooo + self.execution + self.memory
                 + self.static)
        if not 0.99 <= total <= 1.01:
            raise ValueError(f"composition sums to {total}, expected 1")


def energy_efficiency_gain(
    n: int = 32,
    eff: float = 0.92,
    r: float = 0.75,
    composition: EnergyComposition = EnergyComposition(),
    simt_overhead: float = 0.05,
) -> float:
    """Equation 1.

    The CPU spends ``Exec + Mem + FE_OoO + Static``; the RPU spends the
    full execution energy, the uncoalesced ``(1-r)`` share of memory
    energy, and ``1/(n*eff)`` of the amortized components (coalesced
    memory, frontend+OoO, static), plus a SIMT management overhead
    expressed as a fraction of CPU energy.
    """
    if n < 1:
        raise ValueError("batch size must be >= 1")
    if not 0 < eff <= 1:
        raise ValueError("eff must be in (0, 1]")
    if not 0 <= r <= 1:
        raise ValueError("r must be in [0, 1]")
    c = composition
    cpu = c.execution + c.memory + c.frontend_ooo + c.static
    amortized = r * c.memory + c.frontend_ooo + c.static
    rpu = (
        c.execution
        + (1 - r) * c.memory
        + amortized / (n * eff)
        + simt_overhead
    )
    return cpu / rpu


def anticipated_gain_range() -> tuple:
    """Paper Section III-A2: 2-10x across the observed compositions."""
    low = energy_efficiency_gain(
        n=8,
        eff=0.9,
        r=0.5,
        composition=EnergyComposition(
            frontend_ooo=0.39, execution=0.35, memory=0.16, static=0.10
        ),
        simt_overhead=0.05,
    )
    high = energy_efficiency_gain(
        n=32,
        eff=0.98,
        r=0.9,
        composition=EnergyComposition(
            frontend_ooo=0.70, execution=0.04, memory=0.16, static=0.10
        ),
        simt_overhead=0.02,
    )
    return low, high
