"""core.run helper tests: thread preparation and batch execution."""

import random

import pytest

from repro.core.run import prepare_threads, run_batch, run_solo
from repro.engine import MemoryImage
from repro.engine.events import InstructionMixSink
from repro.memsys import SimrAwareAllocator
from repro.workloads import get_service


@pytest.fixture()
def service():
    return get_service("uniqueid")


@pytest.fixture()
def requests(service):
    return service.generate_requests(4, random.Random(0))


def test_prepare_threads_abi(service, requests):
    mem = MemoryImage()
    allocator = SimrAwareAllocator()
    threads = prepare_threads(service, requests, mem, allocator)
    assert [t.tid for t in threads] == [0, 1, 2, 3]
    for t, req in zip(threads, requests):
        assert t.regs[1] == req.api_id
        assert t.regs[2] == req.size
        assert t.regs[3] == req.key
        assert t.regs[4] != 0 and t.regs[5] != 0  # inbuf + scratch
        assert t.regs[6] == threads[0].regs[6]  # shared table
        assert t.request is req


def test_prepare_threads_input_buffer_content(service, requests):
    mem = MemoryImage()
    threads = prepare_threads(service, requests, mem, SimrAwareAllocator())
    for t, req in zip(threads, requests):
        words = mem.read_words(t.regs[4], req.size)
        assert len(words) == req.size


def test_run_batch_rejects_unknown_policy(service, requests):
    with pytest.raises(ValueError):
        run_batch(service, requests, policy="magic")


def test_run_batch_with_sink(service, requests):
    sink = InstructionMixSink()
    result = run_batch(service, requests, sink=sink)
    assert sink.total_batch == result.steps
    assert sink.total_scalar == result.scalar_instructions
    assert "syscall" in sink.scalar_by_class


def test_run_solo_with_sink_accumulates_all_threads(service, requests):
    sink = InstructionMixSink()
    steps = run_solo(service, requests, sink=sink)
    assert sink.total_scalar == sum(steps)


def test_salt_changes_background_data(service, requests):
    a = run_batch(service, requests, salt=1)
    b = run_batch(service, requests, salt=1)
    assert a.steps == b.steps  # deterministic given salt
