"""End-to-end fuzz of the batching layer under faults and deadlines.

Each case drives a seeded random mix of multi-API requests plus a
random fault schedule through :class:`~repro.system.queueing.Station`
with a small retry/deadline client on top, then asserts the two
properties no parameter draw may break:

* **conservation** - every arrival resolves exactly once, so
  ``arrivals == completions + sheds + deadline misses``;
* **latency floor** - a completed request's latency is at least the
  service latency of the station its final attempt was served by
  (faults only ever slow service down, never speed it up).

Both *naive* batching (one shared station serves every API class) and
*per-API* batching (one station per class, the SIMR arrangement) are
fuzzed, with the Station-level sanitizer checks armed throughout.
"""

import random

import pytest

from repro.system import FaultConfig, FaultInjector, Job, Simulator, Station

#: (api name, service latency us) - deliberately spread an order of
#: magnitude so naive cross-API batches are visibly heterogeneous
APIS = (("get", 10.0), ("set", 25.0), ("range", 80.0), ("stat", 120.0))


class _FuzzClient:
    """Tiny open-loop client: deadlines, bounded retries, shedding."""

    def __init__(self, sim, stations, rng, deadline_us, max_retries,
                 shed_backlog_us):
        self.sim = sim
        self.stations = stations  # api name -> Station
        self.rng = rng
        self.deadline_us = deadline_us
        self.max_retries = max_retries
        self.shed_backlog_us = shed_backlog_us
        self.arrivals = 0
        self.completed = []  # (state, done_us)
        self.shed = 0
        self.missed = 0
        self._states = {}
        #: one stable callback per *station* object (a batched station
        #: dispatches each batch through a single callback, and naive
        #: mode routes every API through one shared station)
        by_station = {}
        self._dones = {}
        for api, st in stations.items():
            if id(st) not in by_station:
                by_station[id(st)] = self._make_done()
            self._dones[api] = by_station[id(st)]

    def _make_done(self):
        def done(t, jobs):
            for j in jobs:
                self._job_done(t, j)
        return done

    def submit(self, now, rid, api):
        self.arrivals += 1
        st = self.stations[api]
        state = {"rid": rid, "api": api, "arrival": now, "retries": 0,
                 "resolved": False}
        self._states[rid] = state
        if (self.shed_backlog_us is not None
                and st.backlog_us(now) > self.shed_backlog_us):
            state["resolved"] = True
            self.shed += 1
            return
        self.sim.schedule(now + self.deadline_us, self._deadline, state)
        self._attempt(now, state)

    def _attempt(self, now, state):
        if state["resolved"]:
            return
        job = Job(jid=self.arrivals * 1000 + state["retries"],
                  arrival_us=state["arrival"], rid=state["rid"],
                  attempt=state["retries"])
        api = state["api"]
        self.stations[api].arrive(now, job, self._dones[api])

    def _job_done(self, t, job):
        state = self._states[job.rid]
        if state["resolved"]:
            return  # stale attempt of an already-missed request
        if job.failed:
            if state["retries"] < self.max_retries:
                state["retries"] += 1
                self.sim.schedule(t + 50.0, self._attempt, state)
            # out of retries: leave it to the deadline to resolve
            return
        state["resolved"] = True
        self.completed.append((state, t))

    def _deadline(self, now, state):
        if not state["resolved"]:
            state["resolved"] = True
            self.missed += 1


def _fuzz_case(seed, per_api):
    rng = random.Random(seed)
    sim = Simulator(max_events=500_000)
    batch = rng.choice((1, 2, 4, 8))
    servers = rng.randint(1, 3)
    timeout = rng.choice((10.0, 50.0, 200.0))

    if per_api:
        stations = {api: Station(sim, f"st-{api}", lat, servers,
                                 batch_size=batch,
                                 batch_timeout_us=timeout)
                    for api, lat in APIS}
    else:
        shared = Station(sim, "st-naive", max(l for _a, l in APIS),
                         servers, batch_size=batch,
                         batch_timeout_us=timeout)
        stations = {api: shared for api, _lat in APIS}

    faults = FaultConfig(
        seed=seed,
        outage_rate_per_s=rng.choice((0.0, 5.0, 20.0)),
        outage_min_us=500.0,
        outage_max_us=rng.choice((2_000.0, 10_000.0)),
        straggler_prob=rng.choice((0.0, 0.05)),
        straggler_mult=rng.choice((2.0, 8.0)),
        spike_prob=rng.choice((0.0, 0.05)),
        spike_us=300.0,
        drop_prob=rng.choice((0.0, 0.02, 0.1)),
    )
    if faults.enabled:
        FaultInjector(faults).attach(*set(stations.values()))

    client = _FuzzClient(
        sim, stations, rng,
        deadline_us=rng.choice((2_000.0, 10_000.0, 50_000.0)),
        max_retries=rng.randint(0, 3),
        shed_backlog_us=rng.choice((None, 500.0)),
    )

    n = rng.randint(50, 200)
    t = 0.0
    for rid in range(n):
        t += rng.expovariate(1.0) * rng.choice((20.0, 100.0))
        api = rng.choice(APIS)[0]
        sim.schedule(t, client.submit, rid, api)
    sim.run()
    return client, stations


@pytest.mark.parametrize("per_api", [False, True],
                         ids=["naive", "per-api"])
@pytest.mark.parametrize("seed", range(0, 60, 3))
def test_fuzz_conservation_and_latency_floor(monkeypatch, seed, per_api):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    client, stations = _fuzz_case(seed, per_api)

    # conservation: every arrival resolved exactly once
    assert (len(client.completed) + client.shed + client.missed
            == client.arrivals)

    # no station stranded queued work, none served more than arrived
    for st in set(stations.values()):
        assert not st._pending
        assert st.dispatched_jobs == st.arrived_jobs

    # latency floor: at least the serving station's service latency
    for state, done_us in client.completed:
        floor = stations[state["api"]].latency_us
        lat = done_us - state["arrival"]
        assert lat >= floor - 1e-9, (
            f"seed {seed}: request {state['rid']} ({state['api']}) "
            f"finished in {lat}us, below the {floor}us service floor")


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_case_deterministic(seed):
    a_client, _ = _fuzz_case(seed, per_api=True)
    b_client, _ = _fuzz_case(seed, per_api=True)
    assert [(s["rid"], t) for s, t in a_client.completed] == \
        [(s["rid"], t) for s, t in b_client.completed]
    assert (a_client.shed, a_client.missed) == \
        (b_client.shed, b_client.missed)


def test_fuzz_campaign_exercises_every_outcome():
    """Sanity on the campaign itself: across the seeds, completions,
    sheds, deadline misses and faults must all actually occur, or the
    invariants above are vacuous."""
    totals = {"completed": 0, "shed": 0, "missed": 0, "retried": 0}
    for seed in range(0, 60, 3):
        for per_api in (False, True):
            client, _ = _fuzz_case(seed, per_api)
            totals["completed"] += len(client.completed)
            totals["shed"] += client.shed
            totals["missed"] += client.missed
            totals["retried"] += sum(
                s["retries"] for s in client._states.values())
    assert all(v > 0 for v in totals.values()), totals
