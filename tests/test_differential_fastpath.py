"""Differential gate: fast-path engine vs reference engine.

The pre-decoded/superblock fast path (``fastpath=True``, no sink) must
be *bit-identical* to the ``execute()``-based reference loops: same
registers, same call stacks, same syscall traces, same memory contents,
same per-thread retired counts and the same ``LockstepResult``
counters - for every workload and every execution policy.
"""

import dataclasses
import random

import pytest

from repro.core.run import prepare_threads
from repro.engine.lockstep import make_executor
from repro.engine.memory import MemoryImage
from repro.memsys.alloc import SimrAwareAllocator
from repro.workloads.registry import SERVICE_NAMES, get_service

POLICIES = ["solo", "ipdom", "minsp_pc", "predicated"]

N_REQUESTS = 8
REQUEST_SEED = 123


def _run(service_name: str, policy: str, fastpath: bool):
    """One full batch execution; returns every observable final state."""
    service = get_service(service_name)
    requests = service.generate_requests(
        N_REQUESTS, random.Random(REQUEST_SEED))
    mem = MemoryImage(salt=0)
    threads = prepare_threads(service, requests, mem, SimrAwareAllocator())
    ex = make_executor(service.program, policy, fastpath=fastpath)
    if policy == "solo":
        result = [ex.run(t, mem) for t in threads]
        efficiency = None
    else:
        res = ex.run(threads, mem)
        efficiency = res.simt_efficiency
        result = dataclasses.asdict(res)
    return {
        "result": result,
        "simt_efficiency": efficiency,
        "snapshots": [t.snapshot() for t in threads],
        "syscalls": [list(t.syscall_trace) for t in threads],
        "call_stacks": [list(t.call_stack) for t in threads],
        "memory": {a: mem.read(a) for a in sorted(mem.written_addresses())},
    }


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("service_name", SERVICE_NAMES)
def test_fastpath_bit_identical(service_name, policy):
    fast = _run(service_name, policy, fastpath=True)
    ref = _run(service_name, policy, fastpath=False)
    # compare field by field for readable failures
    assert fast["snapshots"] == ref["snapshots"]
    assert fast["syscalls"] == ref["syscalls"]
    assert fast["call_stacks"] == ref["call_stacks"]
    assert fast["memory"] == ref["memory"]
    assert fast["result"] == ref["result"]
    assert fast["simt_efficiency"] == ref["simt_efficiency"]


@pytest.mark.parametrize("policy", ["ipdom", "minsp_pc"])
def test_fastpath_counters_match_on_larger_batch(policy):
    """A wider batch (more divergence, more reconvergence events) on the
    most branchy service still produces identical counters."""
    service = get_service("post")
    requests = service.generate_requests(32, random.Random(7))

    def once(fastpath):
        mem = MemoryImage(salt=3)
        threads = prepare_threads(
            service, requests, mem, SimrAwareAllocator())
        res = make_executor(service.program, policy,
                            fastpath=fastpath).run(threads, mem)
        return dataclasses.asdict(res)

    assert once(True) == once(False)
