"""Deterministic fault injector: windows, per-dispatch plans, Station
semantics (fail-fast, in-flight kill, drops, stragglers, spikes)."""

import pytest

from repro.system import (
    FaultConfig,
    FaultInjector,
    Job,
    SimulationLimitError,
    Simulator,
    Station,
)


def _place_window(inj, name, start, end):
    """Pin one outage window for ``name`` (bypassing the Poisson draw)
    so the Station-facing tests control fault placement exactly."""
    inj._windows[name] = ([start], [end])
    inj.stats.windows[name] = 1


class TestFaultConfig:
    def test_default_is_disabled(self):
        assert not FaultConfig().enabled

    def test_scaled_multiplies_and_clamps(self):
        cfg = FaultConfig(outage_rate_per_s=2.0, straggler_prob=0.4,
                          spike_prob=0.01, drop_prob=0.6)
        up = cfg.scaled(3.0)
        assert up.outage_rate_per_s == 6.0
        assert up.straggler_prob == 1.0  # clamped
        assert up.spike_prob == pytest.approx(0.03)
        assert up.drop_prob == 1.0  # clamped
        assert not cfg.scaled(0.0).enabled

    def test_scaled_preserves_seed_and_shape(self):
        cfg = FaultConfig(seed=42, outage_rate_per_s=1.0,
                          outage_min_us=100.0, outage_max_us=200.0)
        up = cfg.scaled(2.0)
        assert up.seed == 42
        assert (up.outage_min_us, up.outage_max_us) == (100.0, 200.0)


class TestWindows:
    def test_windows_deterministic_per_seed(self):
        cfg = FaultConfig(outage_rate_per_s=20.0, horizon_us=500_000.0)
        a = FaultInjector(cfg).windows_for("memcached")
        b = FaultInjector(cfg).windows_for("memcached")
        assert a == b and len(a) > 0

    def test_windows_differ_across_stations_and_seeds(self):
        cfg = FaultConfig(outage_rate_per_s=20.0, horizon_us=500_000.0)
        inj = FaultInjector(cfg)
        assert inj.windows_for("user") != inj.windows_for("memcached")
        other = FaultInjector(FaultConfig(seed=99, outage_rate_per_s=20.0,
                                          horizon_us=500_000.0))
        assert other.windows_for("user") != inj.windows_for("user")

    def test_windows_sorted_and_disjoint(self):
        inj = FaultInjector(FaultConfig(outage_rate_per_s=50.0,
                                        horizon_us=1_000_000.0))
        wins = inj.windows_for("s")
        for (s0, e0), (s1, _e1) in zip(wins, wins[1:]):
            assert s0 < e0 < s1  # merged: no overlap, strictly ordered

    def test_outage_queries_match_windows(self):
        inj = FaultInjector(FaultConfig(outage_rate_per_s=1.0))
        _place_window(inj, "s", 100.0, 500.0)
        assert inj.outage_end("s", 99.9) is None
        assert inj.outage_end("s", 100.0) == 500.0
        assert inj.outage_end("s", 499.9) == 500.0
        assert inj.outage_end("s", 500.0) is None
        assert inj.outage_onset("s", 0.0, 100.0) is None  # open interval
        assert inj.outage_onset("s", 0.0, 100.1) == 100.0
        assert inj.outage_onset("s", 100.0, 1000.0) is None  # already down

    def test_station_filter_limits_injection(self):
        cfg = FaultConfig(drop_prob=1.0, stations=frozenset({"memcached"}))
        inj = FaultInjector(cfg)
        jobs = [Job(0, 0.0), Job(1, 0.0)]
        _end, drops, _m, _x = inj.plan("user", 0.0, jobs)
        assert not drops
        _end, drops, _m, _x = inj.plan("memcached", 0.0, jobs)
        assert len(drops) == 2

    def test_plan_is_order_independent(self):
        """The same (station, jid, attempt) identifiers give the same
        plan no matter when or in what order they are queried."""
        cfg = FaultConfig(straggler_prob=0.3, spike_prob=0.3, drop_prob=0.3)
        a = FaultInjector(cfg)
        b = FaultInjector(cfg)
        jobs = [Job(j, 0.0) for j in range(50)]
        plans_a = [a.plan("s", 10.0 * j.jid, [j]) for j in jobs]
        plans_b = [b.plan("s", 999.0, [j]) for j in reversed(jobs)]
        assert plans_a == list(reversed(plans_b))


def _drive(st, jobs, at=0.0):
    """Arrive jobs at ``at`` sharing one callback; run; return results."""
    out = []

    def done(t, js):
        out.append((t, list(js)))

    for j in jobs:
        st.sim.schedule(at, lambda t, j=j: st.arrive(t, j, done))
    st.sim.run()
    return out


class TestStationFaults:
    def test_dispatch_during_outage_fails_fast(self):
        sim = Simulator()
        st = Station(sim, "s", latency_us=100.0, servers=1)
        inj = FaultInjector(FaultConfig(outage_rate_per_s=1.0,
                                        detect_us=30.0)).attach(st)
        _place_window(inj, "s", 0.0, 1_000.0)
        out = _drive(st, [Job(0, 0.0)])
        (t, js), = out
        assert t == 30.0  # detect_us, not service latency
        assert js[0].failed and js[0].fail_site == "s"
        assert st.failed_jobs == 1 and st.busy_us == 0.0
        assert inj.stats.outage_failures == 1

    def test_outage_onset_kills_inflight_work(self):
        sim = Simulator()
        st = Station(sim, "s", latency_us=100.0, servers=1)
        inj = FaultInjector(FaultConfig(outage_rate_per_s=1.0,
                                        detect_us=30.0)).attach(st)
        _place_window(inj, "s", 40.0, 500.0)  # starts mid-service
        out = _drive(st, [Job(0, 0.0)])
        (t, js), = out
        assert t == 70.0  # onset 40 + detect 30, not finish 100
        assert js[0].failed
        assert inj.stats.inflight_failures == 1

    def test_service_completes_before_onset(self):
        sim = Simulator()
        st = Station(sim, "s", latency_us=100.0, servers=1)
        inj = FaultInjector(FaultConfig(outage_rate_per_s=1.0)).attach(st)
        _place_window(inj, "s", 200.0, 500.0)  # after the finish
        (t, js), = _drive(st, [Job(0, 0.0)])
        assert t == 100.0 and not js[0].failed

    def test_drops_leave_the_batch(self):
        sim = Simulator()
        st = Station(sim, "s", latency_us=10.0, servers=1, batch_size=4,
                     batch_timeout_us=5.0)
        inj = FaultInjector(FaultConfig(drop_prob=1.0,
                                        detect_us=30.0)).attach(st)
        out = _drive(st, [Job(j, 0.0) for j in range(4)])
        assert st.dropped_jobs == 4 and inj.stats.drops == 4
        for _t, js in out:
            assert all(j.failed for j in js)

    def test_straggler_multiplies_latency_and_occupancy(self):
        sim = Simulator()
        st = Station(sim, "s", latency_us=10.0, servers=1)
        FaultInjector(FaultConfig(straggler_prob=1.0,
                                  straggler_mult=4.0)).attach(st)
        (t, js), = _drive(st, [Job(0, 0.0)])
        assert t == 40.0 and not js[0].failed
        assert st.busy_us == 40.0  # stragglers charged their real time

    def test_spike_is_additive(self):
        sim = Simulator()
        st = Station(sim, "s", latency_us=10.0, servers=1)
        FaultInjector(FaultConfig(spike_prob=1.0, spike_us=500.0)).attach(st)
        (t, _js), = _drive(st, [Job(0, 0.0)])
        assert t == 510.0

    def test_inflight_kill_truncates_busy_time(self):
        """A killed attempt burned the server only until the onset -
        charging the full occupancy would overstate dynamic energy."""
        sim = Simulator()
        st = Station(sim, "s", latency_us=100.0, servers=1)
        inj = FaultInjector(FaultConfig(outage_rate_per_s=1.0,
                                        detect_us=30.0)).attach(st)
        _place_window(inj, "s", 40.0, 500.0)
        _drive(st, [Job(0, 0.0)])
        assert inj.stats.inflight_failures == 1
        assert st.busy_us == 40.0  # onset - start, not the full 100

    def test_inflight_kill_releases_the_server(self):
        """The kill frees the server at the onset; the next job must
        not wait behind the dead attempt's original reservation."""
        sim = Simulator()
        st = Station(sim, "s", latency_us=100.0, servers=1)
        inj = FaultInjector(FaultConfig(outage_rate_per_s=1.0,
                                        detect_us=30.0)).attach(st)
        _place_window(inj, "s", 40.0, 45.0)  # kills job 0, then lifts
        out = []

        def done(t, js):
            out.append((t, list(js)))

        sim.schedule(0.0, lambda t: st.arrive(t, Job(0, 0.0), done))
        sim.schedule(60.0, lambda t: st.arrive(t, Job(1, 60.0), done))
        sim.run()
        # job 0: onset 40 + detect 30; job 1: starts at its own
        # arrival (server free since 40), not at 100
        assert [t for t, _ in out] == [70.0, 160.0]
        assert out[0][1][0].failed and not out[1][1][0].failed
        assert st.busy_us == 140.0  # 40 truncated + 100 served

    def test_spike_holds_the_server_on_unpipelined_stations(self):
        """A queueing spike is served head-of-line: on a station whose
        server is held for the whole service (no pipelining), the spike
        occupies the server and is charged as busy time."""
        sim = Simulator()
        st = Station(sim, "s", latency_us=10.0, servers=1)
        FaultInjector(FaultConfig(spike_prob=1.0,
                                  spike_us=500.0)).attach(st)
        out = _drive(st, [Job(0, 0.0), Job(1, 0.0)])
        # each service is 10 + 500; the second starts after the first
        # releases the server, not after its bare latency
        assert [t for t, _ in out] == [510.0, 1020.0]
        assert st.busy_us == 1020.0

    def test_spike_does_not_hold_pipelined_stations(self):
        """A pipelined (RPU-style) station's initiation interval is its
        occupancy; the spike delays the stuck batch but the server
        keeps accepting new batches underneath it."""
        sim = Simulator()
        st = Station(sim, "s", latency_us=10.0, servers=1,
                     occupancy_us=2.0)
        FaultInjector(FaultConfig(spike_prob=1.0,
                                  spike_us=500.0)).attach(st)
        out = _drive(st, [Job(0, 0.0), Job(1, 0.0)])
        assert [t for t, _ in out] == [510.0, 512.0]
        assert st.busy_us == 4.0  # occupancy only: 2 per dispatch

    def test_unattached_station_is_exact_fast_path(self):
        for faulty in (False, True):
            sim = Simulator()
            st = Station(sim, "s", latency_us=10.0, servers=1)
            if faulty:
                # all rates zero: attached but must behave identically
                FaultInjector(FaultConfig()).attach(st)
            out = _drive(st, [Job(j, 0.0) for j in range(3)])
            assert [t for t, _ in out] == [10.0, 20.0, 30.0]
            assert st.busy_us == 30.0


class TestSimulatorLimit:
    def test_limit_raises_and_names_hottest_callback(self):
        sim = Simulator(max_events=200)
        st = Station(sim, "hotspot", latency_us=1.0, servers=1)

        def rebound(t, js):  # pathological: every completion re-arrives
            for j in js:
                st.arrive(t, j, rebound)

        st.arrive(0.0, Job(0, 0.0), rebound)
        with pytest.raises(SimulationLimitError) as exc:
            sim.run()
        msg = str(exc.value)
        assert "200 events" in msg and "rebound" in msg

    def test_limit_names_the_owning_station(self):
        """Bound-method callbacks are attributed to their station by
        name - the diagnosis the guard exists to provide."""

        class Pinger:
            def __init__(self, sim, name):
                self.sim = sim
                self.name = name

            def ping(self, t):
                self.sim.schedule(t + 1.0, self.ping)

        sim = Simulator()
        Pinger(sim, "retry-storm").ping(0.0)
        with pytest.raises(SimulationLimitError) as exc:
            sim.run(max_events=100)
        assert "station 'retry-storm'" in str(exc.value)

    def test_limit_on_run_call_overrides(self):
        sim = Simulator()
        st = Station(sim, "s", latency_us=1.0, servers=1)

        def rebound(t, js):
            for j in js:
                st.arrive(t, j, rebound)

        st.arrive(0.0, Job(0, 0.0), rebound)
        with pytest.raises(SimulationLimitError):
            sim.run(max_events=50)

    def test_limit_allows_bounded_simulations(self):
        sim = Simulator(max_events=10_000)
        seen = []
        for i in range(100):
            sim.schedule(float(i), lambda t: seen.append(t))
        sim.run()
        assert len(seen) == 100
