"""Unit tests for the ISA layer: builder, program resolution, listing."""

import pytest

from repro.isa import (
    Instruction,
    OpClass,
    Program,
    ProgramBuilder,
    ProgramError,
    Segment,
    SyscallKind,
    classify,
    reg,
)


def test_reg_resolution():
    assert reg("r0") == 0
    assert reg("r31") == 31
    assert reg("sp") == 29
    assert reg("zero") == 0
    assert reg(7) == 7


@pytest.mark.parametrize("bad", ["x1", "r32", "r-1", 99])
def test_reg_rejects_bad_names(bad):
    with pytest.raises(ValueError):
        reg(bad)


def test_classify_known_ops():
    assert classify("add") is OpClass.ALU
    assert classify("mul") is OpClass.MUL
    assert classify("beq") is OpClass.BRANCH
    assert classify("ld") is OpClass.LOAD
    assert classify("vop") is OpClass.SIMD
    assert classify("amoadd") is OpClass.ATOMIC


def test_classify_unknown_raises():
    with pytest.raises(ValueError):
        classify("frobnicate")


def test_builder_simple_program():
    b = ProgramBuilder("t")
    b.li("r1", 5)
    b.add("r2", "r1", "r1")
    b.halt()
    p = b.build()
    assert len(p) == 3
    assert p.instructions[0].imm == 5
    assert p.instructions[1].srcs == (1, 1)


def test_builder_resolves_labels():
    b = ProgramBuilder("t")
    b.li("r1", 3)
    b.label("loop")
    b.addi("r1", "r1", -1)
    b.bgt("r1", "zero", "loop")
    b.halt()
    p = b.build()
    assert p.targets[1] is None
    assert p.targets[2] == p.labels["loop"] == 1


def test_unknown_label_raises():
    b = ProgramBuilder("t")
    b.jmp("nowhere")
    with pytest.raises(ProgramError):
        b.build()


def test_duplicate_label_raises():
    b = ProgramBuilder("t")
    b.label("x")
    b.nop()
    with pytest.raises(ValueError):
        b.label("x")


def test_fallthrough_off_end_raises():
    b = ProgramBuilder("t")
    b.li("r1", 1)
    with pytest.raises(ProgramError):
        b.build()


def test_loop_helper_emits_counted_loop():
    b = ProgramBuilder("t")
    b.li("r4", 3)
    with b.loop("r4"):
        b.addi("r5", "r5", 1)
    b.halt()
    p = b.build()
    ops = [i.op for i in p.instructions]
    assert "ble" in ops and "jmp" in ops


def test_if_helper():
    b = ProgramBuilder("t")
    with b.if_("beq", "r1", "zero"):
        b.li("r2", 1)
    b.halt()
    p = b.build()
    assert p.instructions[0].op == "bne"  # negated guard


def test_if_else_helper():
    b = ProgramBuilder("t")
    b.if_else("beq", "r1", "zero",
              lambda: b.li("r2", 1),
              lambda: b.li("r2", 2))
    b.halt()
    p = b.build()
    ops = [i.op for i in p.instructions]
    assert ops.count("li") == 2 and "jmp" in ops


def test_listing_is_readable():
    b = ProgramBuilder("t")
    b.label("entry")
    b.li("r1", 1)
    b.halt()
    text = b.build().listing()
    assert "entry:" in text
    assert "li" in text


def test_syscall_and_mem_ops():
    b = ProgramBuilder("t")
    b.ld("r1", "r2", 8, Segment.STACK)
    b.st("r1", "r2", 16, Segment.HEAP)
    b.syscall(SyscallKind.STORAGE)
    b.halt()
    p = b.build()
    assert p.instructions[0].segment is Segment.STACK
    assert p.instructions[1].srcs == (2, 1)
    assert p.instructions[2].syscall is SyscallKind.STORAGE


def test_instruction_str_smoke():
    i = Instruction(op="add", cls=OpClass.ALU, dst=1, srcs=(2, 3))
    assert "add" in str(i)
