"""Chip-level orchestration tests."""

import random

import pytest

from repro.energy import requests_per_joule
from repro.timing import (
    CPU_CONFIG,
    GPU_CONFIG,
    RPU_CONFIG,
    SMT8_CONFIG,
    run_chip,
    rpu_with_lanes,
    rpu_without,
)
from repro.workloads import get_service


@pytest.fixture(scope="module")
def memcached_runs():
    service = get_service("memcached")
    requests = service.generate_requests(128, random.Random(9))
    return {
        "service": service,
        "requests": requests,
        "cpu": run_chip(service, requests, CPU_CONFIG),
        "smt": run_chip(service, requests, SMT8_CONFIG),
        "rpu": run_chip(service, requests, RPU_CONFIG),
    }


def test_all_requests_measured_after_warmup(memcached_runs):
    for key in ("cpu", "smt", "rpu"):
        res = memcached_runs[key]
        assert 0 < res.n_requests < 128  # warmup excluded
        assert len(res.latencies_cycles) == pytest.approx(
            res.n_requests, abs=res.batch_size)


def test_scalar_instruction_parity_across_designs(memcached_runs):
    """Same requests, same programs: per-request scalar instruction
    counts must be close across designs (warmup cut points differ)."""
    cpu = memcached_runs["cpu"]
    rpu = memcached_runs["rpu"]
    per_cpu = cpu.scalar_instructions / cpu.n_requests
    per_rpu = rpu.scalar_instructions / rpu.n_requests
    assert per_rpu == pytest.approx(per_cpu, rel=0.15)


def test_rpu_issues_fewer_instructions(memcached_runs):
    cpu, rpu = memcached_runs["cpu"], memcached_runs["rpu"]
    cpu_rate = cpu.counters["batch_instructions"] / cpu.n_requests
    rpu_rate = rpu.counters["batch_instructions"] / rpu.n_requests
    assert rpu_rate < cpu_rate / 4


def test_rpu_beats_cpu_energy_efficiency(memcached_runs):
    assert requests_per_joule(memcached_runs["rpu"]) > \
        requests_per_joule(memcached_runs["cpu"])


def test_rpu_latency_within_bounds(memcached_runs):
    ratio = (memcached_runs["rpu"].avg_latency_cycles
             / memcached_runs["cpu"].avg_latency_cycles)
    assert 1.0 < ratio < 4.0


def test_smt_latency_higher_than_cpu(memcached_runs):
    assert memcached_runs["smt"].avg_latency_cycles > \
        memcached_runs["cpu"].avg_latency_cycles


def test_chip_throughput_uses_core_count(memcached_runs):
    cpu = memcached_runs["cpu"]
    per_core = cpu.n_requests / cpu.core_time_s
    assert cpu.chip_throughput_rps == pytest.approx(
        per_core * CPU_CONFIG.n_cores)


def test_batch_size_override():
    service = get_service("mcrouter")
    requests = service.generate_requests(96, random.Random(1))
    res = run_chip(service, requests, RPU_CONFIG, batch_size=8)
    assert res.batch_size == 8


def test_recommended_batch_respected():
    service = get_service("hdsearch-leaf")
    requests = service.generate_requests(32, random.Random(1))
    res = run_chip(service, requests, RPU_CONFIG)
    assert res.batch_size == 8


def test_gpu_runs_and_is_slower():
    service = get_service("uniqueid")
    requests = service.generate_requests(256, random.Random(2))
    cpu = run_chip(service, requests, CPU_CONFIG)
    gpu = run_chip(service, requests, GPU_CONFIG)
    cpu_us = cpu.avg_latency_cycles / cpu.freq_ghz
    gpu_us = gpu.avg_latency_cycles / gpu.freq_ghz
    assert gpu_us > 3 * cpu_us


def test_ablation_configs():
    assert rpu_with_lanes(32).lanes == 32
    assert rpu_without("mcu").mcu_enabled is False
    with pytest.raises(KeyError):
        rpu_without("nonsense")


def test_simt_efficiency_reported():
    service = get_service("post")
    requests = service.generate_requests(96, random.Random(3))
    res = run_chip(service, requests, RPU_CONFIG)
    assert 0.5 < res.simt_efficiency <= 1.0


def test_warmup_zero_measures_everything():
    service = get_service("mcrouter")
    requests = service.generate_requests(64, random.Random(4))
    res = run_chip(service, requests, CPU_CONFIG, warmup_frac=0.0)
    assert res.n_requests == 64
