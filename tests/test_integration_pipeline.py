"""Cross-module integration invariants over the full pipeline."""

import random

import pytest

from repro import SimrSystem
from repro.energy import energy_of
from repro.timing import CPU_CONFIG, RPU_CONFIG, run_chip
from repro.workloads import get_service

SERVICES = ("mcrouter", "usertag", "uniqueid")


@pytest.mark.parametrize("name", SERVICES)
def test_counter_consistency_rpu(name):
    service = get_service(name)
    requests = service.generate_requests(96, random.Random(21))
    res = run_chip(service, requests, RPU_CONFIG)
    c = res.counters
    # per-class scalar counts sum to the total
    per_class = sum(v for k, v in c.items() if k.startswith("scalar_")
                    and k != "scalar_instructions")
    assert per_class == c["scalar_instructions"]
    # every L1 miss goes somewhere downstream
    assert c["l2_accesses"] + c["mshr_merges"] >= c["l1_misses"]
    assert c["l3_accesses"] >= c["l2_misses"]
    assert c["dram_accesses"] <= c["l3_accesses"] + 1
    # the RPU issues far fewer batch instructions than scalar ones
    assert c["batch_instructions"] < c["scalar_instructions"]


@pytest.mark.parametrize("name", SERVICES)
def test_cpu_batch_equals_scalar(name):
    service = get_service(name)
    requests = service.generate_requests(64, random.Random(22))
    res = run_chip(service, requests, CPU_CONFIG)
    c = res.counters
    assert c["batch_instructions"] == c["scalar_instructions"]
    assert res.simt_efficiency == 1.0


def test_energy_breakdown_consistent_with_report():
    system = SimrSystem("post")
    rep = system.serve(system.sample_requests(96))
    bd = energy_of(rep.chip_result)
    assert rep.energy.total == pytest.approx(bd.total)
    assert rep.requests_per_joule == pytest.approx(
        rep.n_requests / bd.total)


def test_deterministic_end_to_end():
    a = SimrSystem("urlshort", seed=5)
    b = SimrSystem("urlshort", seed=5)
    ra = a.serve(a.sample_requests(64))
    rb = b.serve(b.sample_requests(64))
    assert ra.avg_latency_us == rb.avg_latency_us
    assert ra.requests_per_joule == rb.requests_per_joule


def test_batch_sizes_multiply_out():
    """At batch 32, measured requests = batches x 32 (full batches)."""
    service = get_service("uniqueid")  # single API, uniform sizes
    requests = service.generate_requests(192, random.Random(23))
    res = run_chip(service, requests, RPU_CONFIG)
    assert res.n_requests % 32 == 0
