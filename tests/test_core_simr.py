"""SimrSystem facade and qualitative-table tests."""

import pytest

from repro import RPU_CONFIG, SimrSystem, speedup_summary
from repro.core import tables


class TestSimrSystem:
    @pytest.fixture(scope="class")
    def system(self):
        return SimrSystem("mcrouter")

    def test_accepts_service_name_or_object(self):
        from repro.workloads import get_service
        a = SimrSystem("post")
        b = SimrSystem(get_service("post"))
        assert a.service.name == b.service.name == "post"

    def test_sample_requests(self, system):
        reqs = system.sample_requests(16)
        assert len(reqs) == 16
        assert all(r.service == "mcrouter" for r in reqs)

    def test_serve_report_fields(self, system):
        rep = system.serve(system.sample_requests(96))
        assert rep.config_name == "rpu"
        assert rep.n_requests > 0
        assert rep.avg_latency_us > 0
        assert rep.requests_per_joule > 0
        assert 0 < rep.simt_efficiency <= 1
        assert rep.energy.total > 0

    def test_compare_includes_baselines(self, system):
        reports = system.compare(system.sample_requests(96))
        assert set(reports) == {"rpu", "cpu", "cpu-smt8"}

    def test_compare_unknown_baseline(self, system):
        with pytest.raises(KeyError):
            system.compare(system.sample_requests(8), baselines=("tpu",))

    def test_speedup_summary_baseline_is_one(self, system):
        reports = system.compare(system.sample_requests(96))
        summary = speedup_summary(reports)
        assert summary["cpu"]["requests_per_joule"] == pytest.approx(1.0)
        assert summary["cpu"]["latency"] == pytest.approx(1.0)
        assert summary["rpu"]["requests_per_joule"] > 1.0

    def test_custom_config(self):
        system = SimrSystem("uniqueid", config=RPU_CONFIG, batch_size=8)
        rep = system.serve(system.sample_requests(64))
        assert rep.chip_result.batch_size == 8


class TestQualitativeTables:
    def test_table_i_shape(self):
        assert len(tables.TABLE_I) == 5
        for metric, cpu, gpu, rpu in tables.TABLE_I:
            assert isinstance(metric, str)

    def test_table_ii_rpu_mixes_cpu_and_gpu_traits(self):
        by_metric = {m: (c, g, r) for m, c, g, r in tables.TABLE_II}
        # latency-side traits match the CPU
        assert by_metric["Core model"][2] == by_metric["Core model"][0]
        assert by_metric["ISA"][2] == by_metric["ISA"][0]
        # memory-system traits match the GPU
        assert by_metric["Consistency"][2] == by_metric["Consistency"][1]
        assert by_metric["Interconnect"][2] == by_metric["Interconnect"][1]

    def test_table_iii_pairs(self):
        assert len(tables.TABLE_III) == 6

    def test_terminology_lookup(self):
        assert tables.gpu_terminology("Warp") == "HW Batch"
        assert tables.gpu_terminology("kernel") == "Service"
        with pytest.raises(KeyError):
            tables.gpu_terminology("tensor core")

    def test_table_vii_simr_row_unique(self):
        simr = [r for r in tables.TABLE_VII if r["system"] == "SIMR"]
        assert len(simr) == 1
        assert simr[0]["ooo"] == "yes"
        assert simr[0]["grain"] == "Coarse"
        others = [r for r in tables.TABLE_VII if r["system"] != "SIMR"]
        assert all(r["grain"] != "Coarse" for r in others)

    def test_render(self):
        text = tables.render(tables.TABLE_I, headers=("metric", "cpu",
                                                      "gpu", "rpu"))
        assert "SIMT" in text
        assert tables.render(tables.TABLE_VII)
