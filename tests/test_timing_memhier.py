"""Memory-hierarchy composition tests."""

from dataclasses import replace

import pytest

from repro.engine.memory import HEAP_BASE, stack_base
from repro.isa import Instruction, OpClass, Segment
from repro.memsys.mcu import CoalescingResult
from repro.sanitize import SanitizerError
from repro.timing import CPU_CONFIG, RPU_CONFIG, MemoryHierarchy


def ld(segment=Segment.HEAP):
    return Instruction(op="ld", cls=OpClass.LOAD, dst=1, srcs=(2,),
                       segment=segment)


def st(segment=Segment.HEAP):
    return Instruction(op="st", cls=OpClass.STORE, srcs=(2, 3),
                       segment=segment)


def amo():
    return Instruction(op="amoadd", cls=OpClass.ATOMIC, dst=1, srcs=(2, 3),
                       segment=Segment.HEAP)


def test_l1_hit_latency():
    mh = MemoryHierarchy(CPU_CONFIG)
    a = [(0, HEAP_BASE, 8)]
    mh.access(ld(), a, 0.0, batched=False)  # warm
    t = mh.access(ld(), a, 1000.0, batched=False)
    assert t - 1000.0 == CPU_CONFIG.l1_latency


def test_miss_goes_down_the_hierarchy():
    mh = MemoryHierarchy(CPU_CONFIG)
    t = mh.access(ld(), [(0, HEAP_BASE, 8)], 0.0, batched=False)
    assert t > CPU_CONFIG.l1_latency + CPU_CONFIG.l2_latency
    c = mh.counters
    assert c["l1_misses"] == 1 and c["l2_misses"] == 1
    assert c["dram_accesses"] == 1
    assert c["noc_traversals"] == 1


def test_store_returns_quickly_but_counts():
    mh = MemoryHierarchy(CPU_CONFIG)
    mh.access(ld(), [(0, HEAP_BASE, 8)], 0.0, batched=False)  # warm TLB
    t = mh.access(st(), [(0, HEAP_BASE, 8)], 1000.0, batched=False)
    assert t <= 1001.0  # drains off the critical path
    assert mh.counters["l1_accesses"] == 2


def test_rpu_mcu_broadcast_counts_one_access():
    mh = MemoryHierarchy(RPU_CONFIG)
    addrs = [(t, HEAP_BASE + 256, 8) for t in range(32)]
    mh.access(ld(), addrs, 0.0, batched=True)
    assert mh.counters["l1_accesses"] == 1
    assert mh.counters["mcu_ops"] == 1


def test_cpu_path_never_coalesces():
    mh = MemoryHierarchy(CPU_CONFIG)
    addrs = [(t, HEAP_BASE + 256, 8) for t in range(4)]
    mh.access(ld(), addrs, 0.0, batched=False)
    assert mh.counters["l1_accesses"] == 4


def test_stack_batch_uses_one_translation():
    mh = MemoryHierarchy(RPU_CONFIG)
    addrs = [(t, stack_base(t) - 128, 8) for t in range(32)]
    mh.access(st(Segment.STACK), addrs, 0.0, batched=True)
    assert mh.counters["tlb_accesses"] == 1
    assert mh.counters["stack_line_accesses"] == 8


def test_bank_conflicts_penalize_divergent_batches():
    mh = MemoryHierarchy(RPU_CONFIG)
    # 16 addresses all mapping to one bank: stride = line * n_banks
    stride = RPU_CONFIG.line_size * RPU_CONFIG.l1_banks
    addrs = [(t, HEAP_BASE + t * stride, 8) for t in range(16)]
    mh.access(ld(), addrs, 0.0, batched=True)
    assert mh.counters["l1_bank_conflict_cycles"] == 15


def test_atomics_at_l3_bypass_private_caches():
    mh = MemoryHierarchy(RPU_CONFIG)
    addrs = [(t, HEAP_BASE + 64, 8) for t in range(32)]
    t = mh.access(amo(), addrs, 0.0, batched=True)
    assert mh.counters["atomics_at_l3"] == 32
    assert mh.counters["l1_accesses"] == 0
    assert t >= RPU_CONFIG.l3_latency + 32  # serialized RMWs


def test_atomics_in_l1_for_cpu():
    mh = MemoryHierarchy(CPU_CONFIG)
    t0 = mh.access(amo(), [(0, HEAP_BASE + 64, 8)], 0.0, batched=False)
    t1 = mh.access(amo(), [(0, HEAP_BASE + 64, 8)], 1000.0, batched=False)
    assert mh.counters["atomics_in_l1"] == 2
    assert t1 - 1000.0 <= CPU_CONFIG.l1_latency


def test_mshr_merges_duplicate_inflight_fills():
    mh = MemoryHierarchy(CPU_CONFIG)
    t1 = mh.access(ld(), [(0, HEAP_BASE, 8)], 0.0, batched=False)
    t2 = mh.access(ld(), [(1, HEAP_BASE, 8)], 1.0, batched=False)
    assert mh.counters["dram_accesses"] == 1
    assert mh.counters["mshr_merges"] == 1
    assert t2 == pytest.approx(t1)  # waits for the same fill
    # once the fill lands, it is a plain L1 hit again
    t3 = mh.access(ld(), [(0, HEAP_BASE, 8)], t1 + 10, batched=False)
    assert t3 - (t1 + 10) == CPU_CONFIG.l1_latency


def test_load_latency_metric_recorded():
    mh = MemoryHierarchy(CPU_CONFIG)
    mh.access(ld(), [(0, HEAP_BASE, 8)], 0.0, batched=False)
    assert mh.counters["load_count"] == 1
    assert mh.counters["load_latency_sum"] > 0


def test_dram_bandwidth_slice_scales_with_cores():
    assert (RPU_CONFIG.dram_bw_core_gbps
            > CPU_CONFIG.dram_bw_core_gbps * 10)


def test_reset_stats():
    mh = MemoryHierarchy(CPU_CONFIG)
    mh.access(ld(), [(0, HEAP_BASE, 8)], 0.0, batched=False)
    mh.reset_stats()
    assert mh.counters == {}


class TestSanitizers:
    """REPRO_SANITIZE=1 memory-system invariants.

    ``MemoryHierarchy`` captures the sanitizer flag at construction, so
    every test sets the environment *before* building the hierarchy.
    """

    @pytest.fixture
    def san(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")

    def test_accounting_invariant_holds_on_clean_runs(self, san):
        mh = MemoryHierarchy(RPU_CONFIG)
        addrs = [(t, HEAP_BASE + 64 * t, 8) for t in range(32)]
        mh.access(ld(), addrs, 0.0, batched=True)
        mh.access(st(), addrs, 100.0, batched=True)
        mh.access(amo(), addrs, 200.0, batched=True)  # no SanitizerError

    def test_corrupted_counters_detected(self, san):
        mh = MemoryHierarchy(CPU_CONFIG)
        mh.access(ld(), [(0, HEAP_BASE, 8)], 0.0, batched=False)
        mh.counters["l1_misses"] += 1  # simulate lost bookkeeping
        with pytest.raises(SanitizerError):
            mh.access(ld(), [(0, HEAP_BASE + 4096, 8)], 10.0,
                      batched=False)

    def test_atomic_accounting_detects_corruption(self, san):
        mh = MemoryHierarchy(RPU_CONFIG)
        addrs = [(t, HEAP_BASE + 64, 8) for t in range(4)]
        mh.access(amo(), addrs, 0.0, batched=True)
        mh.counters["l3_accesses"] += 3
        with pytest.raises(SanitizerError):
            mh.access(amo(), addrs, 100.0, batched=True)

    def test_mcu_fabricated_lines_detected(self, san, monkeypatch):
        mh = MemoryHierarchy(RPU_CONFIG)
        # 3 line requests for a single active lane: impossible for any
        # non-stack pattern
        monkeypatch.setattr(
            mh.mcu, "coalesce",
            lambda segment, accesses: CoalescingResult(
                [0, 32, 64], "same_word"))
        with pytest.raises(SanitizerError):
            mh.access(ld(), [(0, HEAP_BASE, 8)], 0.0, batched=True)

    def test_mcu_duplicate_lines_detected(self, san, monkeypatch):
        mh = MemoryHierarchy(RPU_CONFIG)
        monkeypatch.setattr(
            mh.mcu, "coalesce",
            lambda segment, accesses: CoalescingResult(
                [0, 0], "consecutive"))
        with pytest.raises(SanitizerError):
            mh.access(ld(), [(t, HEAP_BASE + 32 * t, 8) for t in (0, 1)],
                      0.0, batched=True)

    def test_wide_stack_access_within_word_bound(self, san):
        # an 8-byte single-lane stack access maps to two interleaved
        # physical words 128 bytes apart - two lines for one lane is
        # legitimate under the per-lane word-count bound
        mh = MemoryHierarchy(RPU_CONFIG)
        mh.access(ld(Segment.STACK), [(0, stack_base(0) - 128, 8)],
                  0.0, batched=True)
        assert mh.counters["stack_line_accesses"] == 2

    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        mh = MemoryHierarchy(CPU_CONFIG)
        mh.access(ld(), [(0, HEAP_BASE, 8)], 0.0, batched=False)
        mh.counters["l1_misses"] += 1  # corruption goes unchecked
        mh.access(ld(), [(0, HEAP_BASE + 4096, 8)], 10.0, batched=False)
