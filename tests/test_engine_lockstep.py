"""Lockstep executor tests: reconvergence, efficiency, equivalence."""

import pytest

from repro.engine import (
    IpdomExecutor,
    MemoryImage,
    MinSpPcExecutor,
    SoloExecutor,
    ThreadState,
    make_executor,
)
from repro.isa import ControlFlowGraph, ProgramBuilder, Segment


def diamond_program():
    """The Fig. 7 example: if/else with a join (BBA-BBB/BBC-BBD)."""
    b = ProgramBuilder("diamond")
    b.addi("r2", "r1", 0)          # BBA
    b.ble("r1", "zero", "else_")   # if (x > 0)
    b.addi("r3", "r2", 100)        # BBB
    b.jmp("join")
    b.label("else_")
    b.addi("r3", "r2", 200)        # BBC
    b.label("join")
    b.addi("r4", "r3", 1)          # BBD
    b.halt()
    return b.build()


def run_batch(program, inputs, policy):
    mem = MemoryImage()
    threads = []
    for tid, x in enumerate(inputs):
        t = ThreadState(tid)
        t.regs[1] = x
        threads.append(t)
    ex = make_executor(program, policy)
    res = ex.run(threads, mem)
    return threads, res


@pytest.mark.parametrize("policy", ["ipdom", "minsp_pc"])
def test_diamond_results_correct(policy):
    threads, res = run_batch(diamond_program(), [5, 3, -1, -2], policy)
    assert threads[0].regs[4] == 5 + 100 + 1
    assert threads[1].regs[4] == 3 + 100 + 1
    assert threads[2].regs[4] == -1 + 200 + 1
    assert threads[3].regs[4] == -2 + 200 + 1
    assert all(t.halted for t in threads)


@pytest.mark.parametrize("policy", ["ipdom", "minsp_pc"])
def test_diamond_reconverges(policy):
    """Divergent sides are serialized but the join runs with everyone."""
    _, res = run_batch(diamond_program(), [5, 3, -1, -2], policy)
    assert res.divergent_branches == 1
    # 4 threads: uniform part has 2+2 insts (BBA, branch, BBD join+halt),
    # sides have 2 and 1 batch instructions -> efficiency strictly <1 but
    # well above the serialized 1/4 floor.
    assert 0.5 < res.simt_efficiency < 1.0


@pytest.mark.parametrize("policy", ["ipdom", "minsp_pc"])
def test_uniform_batch_is_fully_efficient(policy):
    _, res = run_batch(diamond_program(), [5, 6, 7, 8], policy)
    assert res.divergent_branches == 0
    assert res.simt_efficiency == 1.0


def test_ipdom_matches_fig7_step_count():
    """Fig. 7: with 2 taken and 2 not-taken threads, the MinPC schedule
    issues each side once and reconverges at the join."""
    program = diamond_program()
    _, res = run_batch(program, [5, 5, -1, -1], "ipdom")
    # batch instructions: BBA(1) + branch(1) + BBB(2: addi,jmp) +
    # BBC(1) + BBD(2: addi, halt) = 7
    assert res.steps == 7
    assert res.scalar_instructions == 4 + 4 + 2 * 2 + 2 * 1 + 4 * 2


@pytest.mark.parametrize("policy", ["ipdom", "minsp_pc"])
def test_solo_equivalence_on_diamond(policy):
    inputs = [9, -4, 0, 13]
    program = diamond_program()
    batch_threads, _ = run_batch(program, inputs, policy)

    for tid, x in enumerate(inputs):
        mem = MemoryImage()
        t = ThreadState(tid)
        t.regs[1] = x
        SoloExecutor(program).run(t, mem)
        assert t.regs[4] == batch_threads[tid].regs[4]
        assert t.retired == batch_threads[tid].retired


def loop_program():
    """Per-thread trip counts -> latency/control divergence."""
    b = ProgramBuilder("loop")
    with b.loop("r1"):
        b.addi("r2", "r2", 3)
    b.halt()
    return b.build()


@pytest.mark.parametrize("policy", ["ipdom", "minsp_pc"])
def test_variable_trip_counts(policy):
    threads, res = run_batch(loop_program(), [1, 2, 4, 8], policy)
    for t, n in zip(threads, [1, 2, 4, 8]):
        assert t.regs[2] == 3 * n
    # efficiency dominated by the longest thread
    assert res.simt_efficiency < 1.0


def call_program():
    b = ProgramBuilder("call")
    b.call("double", frame=32)
    b.addi("r3", "r1", 5)
    b.halt()
    b.label("double")
    b.add("r1", "r1", "r1")
    b.ret()
    return b.build()


@pytest.mark.parametrize("policy", ["ipdom", "minsp_pc"])
def test_call_ret_and_sp(policy):
    threads, _ = run_batch(call_program(), [10, 20], policy)
    assert threads[0].regs[3] == 25
    assert threads[1].regs[3] == 45
    for t in threads:
        assert t.depth == 0
        assert t.sp == t.stack_top - 128  # frame fully released


def test_minsp_prioritizes_deeper_call():
    """A thread inside a call executes before shallower threads resume."""
    b = ProgramBuilder("t")
    b.ble("r1", "zero", "skip")
    b.call("fn", frame=16)
    b.label("skip")
    b.addi("r2", "r2", 1)
    b.halt()
    b.label("fn")
    b.addi("r2", "r2", 10)
    b.ret()
    program = b.build()
    threads, res = run_batch(program, [1, 0], "minsp_pc")
    assert threads[0].regs[2] == 11
    assert threads[1].regs[2] == 1


def store_load_program():
    b = ProgramBuilder("t")
    b.st("r1", "sp", -8, Segment.STACK)
    b.ld("r2", "sp", -8, Segment.STACK)
    b.halt()
    return b.build()


@pytest.mark.parametrize("policy", ["ipdom", "minsp_pc"])
def test_private_stacks_do_not_alias(policy):
    threads, _ = run_batch(store_load_program(), [111, 222, 333], policy)
    for t, v in zip(threads, [111, 222, 333]):
        assert t.regs[2] == v


def _spinlock_setup():
    """Classic SIMT-induced deadlock: t1 spins on a lock t0 holds."""
    b = ProgramBuilder("spin")
    # r1 = who I am (0 acquires first because it arrives at the amoswap
    # one step earlier via the initial branch)
    b.li("r10", 1)
    b.bne("r1", "zero", "spin")
    # t0 path: acquire (lock starts 0), work, release
    b.amoswap("r3", "r20", "r10")      # returns 0 -> acquired
    b.li("r4", 20)
    with b.loop("r4"):
        b.addi("r5", "r5", 1)
    b.st("zero", "r20", 0, Segment.HEAP)  # release
    b.jmp("done")
    b.label("spin")
    b.amoswap("r3", "r20", "r10")
    b.bne("r3", "zero", "spin")        # spin until lock free
    b.label("done")
    b.addi("r6", "r6", 1)
    b.halt()
    program = b.build()

    mem = MemoryImage()
    lock_addr = 0x4000_1000
    mem.write(lock_addr, 0)
    threads = []
    for tid in range(2):
        t = ThreadState(tid)
        t.regs[1] = tid
        t.regs[20] = lock_addr
        threads.append(t)
    return program, threads, mem


@pytest.mark.parametrize("fastpath", [True, False])
def test_spinlock_escape_makes_progress(fastpath):
    """Without multipath escape the MinSP-PC schedule would spin
    forever; the escape hatch must let t0 release the lock."""
    program, threads, mem = _spinlock_setup()
    ex = MinSpPcExecutor(program, spin_k=16, spin_b=4, spin_t=16,
                         max_steps=20_000, fastpath=fastpath)
    res = ex.run(threads, mem)
    assert not res.truncated
    assert all(t.halted for t in threads)
    assert all(t.regs[6] == 1 for t in threads)


def _minpc_deadlock_setup():
    """A spin loop at *lower* pcs than the lock holder's work loop.

    Pure MinPC keeps selecting the spinner (lowest pc wins), so the
    holder never runs and never releases: the textbook SIMT-induced
    livelock the spin_k/spin_b/spin_t escape exists for.
    """
    b = ProgramBuilder("deadlock")
    b.li("r10", 1)
    b.jmp("start")
    b.label("spin")                    # low-pc spin loop
    b.amoswap("r3", "r20", "r10")
    b.bne("r3", "zero", "spin")
    b.jmp("done")
    b.label("start")
    b.amoswap("r3", "r20", "r10")      # everyone tries; t0 wins (tid order)
    b.bne("r3", "zero", "spin")        # losers spin at lower pcs
    b.li("r4", 20)                     # winner's work loop (higher pcs)
    with b.loop("r4"):
        b.addi("r5", "r5", 1)
    b.st("zero", "r20", 0, Segment.HEAP)  # release
    b.label("done")
    b.addi("r6", "r6", 1)
    b.halt()
    program = b.build()

    mem = MemoryImage()
    lock_addr = 0x4000_1000
    mem.write(lock_addr, 0)
    threads = []
    for tid in range(2):
        t = ThreadState(tid)
        t.regs[20] = lock_addr
        threads.append(t)
    return program, threads, mem


@pytest.mark.parametrize("fastpath", [True, False])
def test_spinlock_escape_boost_actually_triggers(fastpath):
    """The spin parameters actively trigger the boost: the same batch
    with the escape disabled (huge spin_k) spins until truncation."""
    program, threads, mem = _minpc_deadlock_setup()
    ex = MinSpPcExecutor(program, spin_k=10**9, spin_b=4, spin_t=16,
                         max_steps=2_000, fastpath=fastpath)
    res = ex.run(threads, mem)
    assert res.truncated          # the lock holder was starved
    assert not threads[0].halted  # ... and never released

    # re-enable the escape on the same batch: completes well within
    # the same step budget
    program2, threads2, mem2 = _minpc_deadlock_setup()
    ex2 = MinSpPcExecutor(program2, spin_k=16, spin_b=4, spin_t=16,
                          max_steps=2_000, fastpath=fastpath)
    res2 = ex2.run(threads2, mem2)
    assert not res2.truncated
    assert all(t.halted for t in threads2)
    assert all(t.regs[6] == 1 for t in threads2)


def test_minsp_thread_injected_mid_run():
    """Threads appended to the batch mid-run (e.g. by a sink modelling
    request arrival) must not break the spin-escape bookkeeping, which
    initializes ``last_executed`` lazily for unknown tids."""
    from repro.engine import StepSink

    program = loop_program()
    threads = []
    for tid, n in enumerate([1, 8]):
        t = ThreadState(tid)
        t.regs[1] = n
        threads.append(t)

    class InjectSink(StepSink):
        def __init__(self):
            self.steps = 0

        def on_step(self, pc, inst, active, addrs, outcomes):
            self.steps += 1
            if self.steps == 3:  # mid-run: divergence already exists
                t = ThreadState(len(threads))
                t.regs[1] = 2
                threads.append(t)

        def on_done(self):
            pass

    ex = MinSpPcExecutor(program, sink=InjectSink(), spin_k=2, spin_b=10,
                         spin_t=4, max_steps=10_000)
    res = ex.run(threads, mem=MemoryImage())
    assert not res.truncated
    assert len(threads) == 3
    assert all(t.halted for t in threads)
    assert threads[2].regs[2] == 3 * 2  # the late thread ran its loop
    assert res.batch_size == 3


def test_cfg_reconvergence_point_of_diamond():
    program = diamond_program()
    cfg = ControlFlowGraph(program)
    branch_pc = 1
    assert cfg.reconvergence_pc(branch_pc) == program.labels["join"]


def test_max_steps_truncation():
    b = ProgramBuilder("inf")
    b.label("top")
    b.jmp("top")
    program = b.build()
    mem = MemoryImage()
    threads = [ThreadState(0)]
    res = MinSpPcExecutor(program, max_steps=100).run(threads, mem)
    assert res.truncated


def test_predicated_executor_architecturally_equivalent():
    """Predication changes timing/energy events, not results."""
    from repro.engine.lockstep import PredicatedExecutor

    program = diamond_program()
    inputs = [5, -1, 3, -2]
    ipdom_threads, _ = run_batch(program, inputs, "ipdom")
    mem = MemoryImage()
    threads = []
    for tid, x in enumerate(inputs):
        t = ThreadState(tid)
        t.regs[1] = x
        threads.append(t)
    PredicatedExecutor(program).run(threads, mem)
    for a, b in zip(ipdom_threads, threads):
        assert a.regs[4] == b.regs[4]
        assert a.retired == b.retired


def test_predicated_executor_reports_full_width():
    """Every step the sink sees carries the full SIMD width (and
    emulated ops an inflated width)."""
    from repro.engine import StepSink
    from repro.engine.lockstep import PredicatedExecutor
    from repro.isa import OpClass

    widths = []

    class Sink(StepSink):
        def on_step(self, pc, inst, active, addrs, outcomes):
            widths.append((inst.cls, active))
            assert outcomes is None  # predicates never reach the BP

        def on_done(self):
            pass

    b = ProgramBuilder("pred")
    b.ble("r1", "zero", "skip")
    b.addi("r2", "r2", 1)
    b.label("skip")
    b.amoadd("r3", "r4", "r2")
    b.halt()
    program = b.build()

    mem = MemoryImage()
    threads = []
    for tid, x in enumerate([1, 0, 1, 0]):
        t = ThreadState(tid)
        t.regs[1] = x
        t.regs[4] = 0x4000_0100
        threads.append(t)
    PredicatedExecutor(program, sink=Sink(),
                       emulation_factor=4).run(threads, mem)
    normal = [w for cls, w in widths if cls is not OpClass.ATOMIC]
    assert all(w == 4 for w in normal)
    emulated = [w for cls, w in widths if cls is OpClass.ATOMIC]
    assert emulated == [16]
