"""Chaos-conformance suite: schedule generation determinism, the
conservation invariants under injected faults, and byte-identical
replay/campaign output."""

import pytest

from repro.fuzz.chaos import (
    ChaosCase,
    ChaosError,
    campaign_cases,
    case_digest,
    case_line,
    gen_fault_schedule,
    main,
    run_campaign,
    run_case,
)
from repro.system.fleet import BALANCERS


class TestScheduleGenerator:
    def test_same_seed_same_schedule(self):
        assert gen_fault_schedule(7) == gen_fault_schedule(7)

    def test_different_seeds_differ(self):
        assert gen_fault_schedule(1) != gen_fault_schedule(2)

    def test_schedules_are_frozen_configs(self):
        shape, faults, zones = gen_fault_schedule(0)
        assert hash((shape, faults, zones)) == hash(gen_fault_schedule(0))

    def test_fault_seeds_never_collide_across_layers(self):
        # rack and zone schedules draw from disjoint seeds per case
        seen = set()
        for s in range(20):
            _shape, faults, zones = gen_fault_schedule(s)
            assert faults.seed not in seen
            assert zones.seed not in seen
            seen.update((faults.seed, zones.seed))


class TestRunCase:
    def test_case_passes_invariants_and_pins_digest(self):
        case = ChaosCase(seed=3, balancer="round_robin", resilient=True)
        p = run_case(case)
        assert p["completed"] + p["violated"] == p["n"]
        assert p["digest"] == case_digest(p)
        assert run_case(case)["digest"] == p["digest"]

    def test_bare_vs_resilient_differ(self):
        bare = run_case(ChaosCase(3, "round_robin", False))
        res = run_case(ChaosCase(3, "round_robin", True))
        assert bare["digest"] != res["digest"]
        assert res["violated"] <= bare["violated"]

    def test_digest_ignores_its_own_key_only(self):
        p = run_case(ChaosCase(0, "least_loaded", False))
        q = dict(p)
        q["completed"] += 1
        assert case_digest(q) != case_digest(p)

    def test_case_line_is_deterministic(self):
        case = ChaosCase(5, "batch_aware", True)
        p = run_case(case)
        assert case_line(case, p) == case_line(case, p)
        assert f"{p['digest']:08x}" in case_line(case, p)


class TestCampaign:
    def test_matrix_covers_every_cell(self):
        cases = campaign_cases(range(3), ("round_robin", "adaptive"))
        assert len(cases) == 3 * 2 * 2
        assert len(set(cases)) == len(cases)

    def test_campaign_serial_vs_jobs_identical(self):
        serial = run_campaign(range(2), ("round_robin",), jobs=1)
        fanned = run_campaign(range(2), ("round_robin",), jobs=4)
        assert [(c, p["digest"]) for c, p in serial] \
            == [(c, p["digest"]) for c, p in fanned]

    def test_every_balancer_survives_a_zone_kill_seed(self):
        # seed 3 draws a planned zone kill; all four balancers must
        # keep exactly-once resolution through it
        for bal in BALANCERS:
            p = run_case(ChaosCase(3, bal, True))
            assert p["completed"] + p["violated"] == p["n"]

    def test_broken_invariant_raises_chaos_error(self, monkeypatch):
        import repro.fuzz.chaos as chaos

        real = chaos.run_case
        calls = []

        def flaky(case):
            p = real(case)
            calls.append(case)
            p = dict(p)
            p["digest"] += len(calls)  # replay digests diverge
            return p

        monkeypatch.setattr(chaos, "run_case", flaky)
        with pytest.raises(ChaosError, match="replay diverged"):
            chaos._case_worker(ChaosCase(0, "round_robin", False))


class TestChaosCLI:
    def test_main_prints_one_line_per_case(self, capsys):
        assert main(["--seeds", "2", "--balancers", "round_robin"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert len(out) == 2 * 1 * 2 + 1
        assert out[-1].startswith("chaos: 4 cases")

    def test_main_rejects_unknown_balancer(self):
        with pytest.raises(SystemExit):
            main(["--balancers", "nope"])
