"""ChipResult / ServeReport dataclass behavior tests."""

import pytest

from repro.core.simr import ServeReport
from repro.timing.chip import ChipResult
from repro.timing.memhier import Counters


def make_result(**kw):
    defaults = dict(config_name="cpu", service="t", n_requests=10,
                    core_cycles=25_000.0,
                    latencies_cycles=[2500.0] * 10,
                    counters=Counters(), simt_efficiency=1.0,
                    scalar_instructions=10_000, freq_ghz=2.5, n_cores=98,
                    batch_size=1)
    defaults.update(kw)
    return ChipResult(**defaults)


def test_latency_conversions():
    r = make_result()
    assert r.avg_latency_cycles == 2500.0
    assert r.avg_latency_us == pytest.approx(1.0)


def test_empty_latencies():
    r = make_result(latencies_cycles=[])
    assert r.avg_latency_cycles == 0.0


def test_throughput_scales_with_cores():
    r = make_result()
    per_core = r.n_requests / r.core_time_s
    assert r.chip_throughput_rps == pytest.approx(per_core * 98)


def test_zero_cycles_guards():
    r = make_result(core_cycles=0.0)
    assert r.chip_throughput_rps == 0.0
    assert r.ipc == 0.0


def test_ipc():
    r = make_result()
    assert r.ipc == pytest.approx(10_000 / 25_000)


def test_serve_report_from_chip():
    r = make_result()
    rep = ServeReport.from_chip(r)
    assert rep.config_name == "cpu"
    assert rep.n_requests == 10
    assert rep.avg_latency_us == pytest.approx(1.0)
    assert rep.requests_per_joule > 0
    assert rep.chip_result is r


def test_counters_missing_key_reads_zero():
    c = Counters()
    assert c["nonexistent"] == 0
    c.inc("x")
    c.inc("x", 2)
    assert c["x"] == 3
    d = Counters()
    d.inc("x", 5)
    d.merge(c)
    assert d["x"] == 8
