"""System-level queueing simulator tests (uqsim role)."""

import pytest

from repro.system.queueing import _percentile
from repro.system import (
    EndToEndConfig,
    Job,
    Simulator,
    Station,
    max_throughput_kqps,
    run_end_to_end,
    saturation_sweep,
)


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda t: seen.append(("b", t)))
        sim.schedule(1.0, lambda t: seen.append(("a", t)))
        sim.run()
        assert seen == [("a", 1.0), ("b", 5.0)]

    def test_ties_fifo(self):
        sim = Simulator()
        seen = []
        for name in "abc":
            sim.schedule(1.0, lambda t, n=name: seen.append(n))
        sim.run()
        assert seen == ["a", "b", "c"]


class TestStation:
    def test_single_server_queues(self):
        sim = Simulator()
        st = Station(sim, "s", latency_us=10.0, servers=1)
        done = []
        sim.schedule(0.0, lambda t: st.arrive(
            t, Job(0, 0.0), lambda tt, js: done.append(tt)))
        sim.schedule(0.0, lambda t: st.arrive(
            t, Job(1, 0.0), lambda tt, js: done.append(tt)))
        sim.run()
        assert done == [10.0, 20.0]

    def test_batch_waits_for_fill(self):
        sim = Simulator()
        st = Station(sim, "s", latency_us=10.0, servers=1, batch_size=4,
                     batch_timeout_us=100.0)
        done = []

        def collect(tt, js):  # one shared callback per batched station
            done.append((tt, len(js)))

        for i in range(4):
            sim.schedule(float(i), lambda t, i=i: st.arrive(
                t, Job(i, 0.0), collect))
        sim.run()
        assert done == [(13.0, 4)]  # dispatched at the 4th arrival (t=3)

    def test_batch_timeout_flushes_partial(self):
        sim = Simulator()
        st = Station(sim, "s", latency_us=10.0, servers=1, batch_size=4,
                     batch_timeout_us=20.0)
        done = []
        sim.schedule(0.0, lambda t: st.arrive(
            t, Job(0, 0.0), lambda tt, js: done.append((tt, len(js)))))
        sim.run()
        assert done == [(30.0, 1)]  # 20us timeout + 10us service

    def test_pipelined_occupancy_allows_overlap(self):
        sim = Simulator()
        st = Station(sim, "s", latency_us=100.0, servers=1,
                     occupancy_us=1.0)
        done = []
        for i in range(4):
            sim.schedule(0.0, lambda t, i=i: st.arrive(
                t, Job(i, 0.0), lambda tt, js: done.append(tt)))
        sim.run()
        assert done == [100.0, 101.0, 102.0, 103.0]


class TestPercentile:
    """Regression for the nearest-rank off-by-one: ``int(q * n)`` indexed
    one past the nearest rank, so the p99 of 100 samples returned the
    maximum and even-length medians returned the upper middle value."""

    @pytest.mark.parametrize("values,q,expected", [
        ([1.0], 0.5, 1.0),
        ([1.0], 0.99, 1.0),
        ([1.0, 2.0], 0.5, 1.0),              # even-length median: lower mid
        ([1.0, 2.0, 3.0], 0.5, 2.0),
        ([1.0, 2.0, 3.0, 4.0], 0.5, 2.0),    # was 3.0 pre-fix
        ([5.0, 1.0, 3.0], 1.0, 5.0),         # unsorted input
        ([7.0] * 5, 0.2, 7.0),
        (list(map(float, range(1, 11))), 0.95, 10.0),   # ceil(9.5) -> 10th
        (list(map(float, range(1, 101))), 0.50, 50.0),
        (list(map(float, range(1, 101))), 0.99, 99.0),  # was 100.0 pre-fix
        (list(map(float, range(1, 101))), 1.0, 100.0),
        ([], 0.99, 0.0),
    ])
    def test_nearest_rank(self, values, q, expected):
        assert _percentile(values, q) == expected


class TestEndToEnd:
    def test_request_conservation(self):
        res = run_end_to_end(EndToEndConfig(), qps=5000, n_requests=500)
        assert res.completed == 500

    def test_rpu_split_conservation(self):
        cfg = EndToEndConfig(rpu=True, batch_split=True)
        res = run_end_to_end(cfg, qps=20000, n_requests=500)
        assert res.completed == 500

    def test_rpu_nosplit_conservation(self):
        cfg = EndToEndConfig(rpu=True, batch_split=False)
        res = run_end_to_end(cfg, qps=20000, n_requests=500)
        assert res.completed == 500

    def test_percentiles_ordered(self):
        res = run_end_to_end(EndToEndConfig(), qps=10000, n_requests=800)
        assert 0 < res.p50_us <= res.p99_us

    def test_latency_grows_near_saturation(self):
        cfg = EndToEndConfig()
        low = run_end_to_end(cfg, qps=2000, n_requests=800)
        high = run_end_to_end(cfg, qps=40000, n_requests=800)
        assert high.p99_us > 3 * low.p99_us

    def test_rpu_sustains_higher_load(self):
        points = [10000, 20000, 40000, 60000, 80000]
        cpu = saturation_sweep(EndToEndConfig(), points, n_requests=800)
        rpu = saturation_sweep(
            EndToEndConfig(rpu=True, batch_split=True), points,
            n_requests=800)
        assert max_throughput_kqps(rpu) >= 3 * max_throughput_kqps(cpu)

    def test_split_improves_average_latency(self):
        """Fig. 22's message: without splitting, hits wait for their
        batch's storage misses, inflating the average."""
        q = 40000
        no_split = run_end_to_end(
            EndToEndConfig(rpu=True, batch_split=False), q, 1500)
        split = run_end_to_end(
            EndToEndConfig(rpu=True, batch_split=True), q, 1500)
        assert split.avg_latency_us < no_split.avg_latency_us

    def test_split_does_not_change_tail_much(self):
        q = 40000
        no_split = run_end_to_end(
            EndToEndConfig(rpu=True, batch_split=False), q, 1500)
        split = run_end_to_end(
            EndToEndConfig(rpu=True, batch_split=True), q, 1500)
        assert no_split.p99_us <= 1.5 * split.p99_us + 100

    def test_storage_latency_visible_in_tail(self):
        """With a 90% hit rate the p99 must include storage visits."""
        res = run_end_to_end(EndToEndConfig(), qps=2000, n_requests=1000)
        assert res.p99_us > EndToEndConfig().storage_us

    def test_deterministic_given_seed(self):
        a = run_end_to_end(EndToEndConfig(), 5000, 300, seed=3)
        b = run_end_to_end(EndToEndConfig(), 5000, 300, seed=3)
        assert a.avg_latency_us == b.avg_latency_us
