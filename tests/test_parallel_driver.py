"""Parallel experiment driver: determinism and serial/parallel parity."""

import dataclasses

import pytest

from repro.core.run import BatchTask, run_batch_task, run_batch_tasks
from repro.experiments.common import (
    WorkerTaskError,
    parallel_map,
    resolve_jobs,
    set_default_jobs,
    task_seed,
    task_timeout_s,
)


def _square(x):
    return x * x


def _square_or_fail(x):
    if x == 13:
        raise ValueError("unlucky item")
    return x * x


def _sleep_forever(x):
    import time

    if x == 2:
        time.sleep(60)
    return x


def test_parallel_map_matches_serial_and_preserves_order():
    items = list(range(20))
    assert parallel_map(_square, items, jobs=1) == [x * x for x in items]
    assert parallel_map(_square, items, jobs=4) == [x * x for x in items]


def test_parallel_map_single_item_stays_serial():
    assert parallel_map(_square, [3], jobs=8) == [9]


def test_resolve_jobs_precedence(monkeypatch):
    set_default_jobs(None)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == 1
    assert resolve_jobs(6) == 6
    assert resolve_jobs(0) == 1  # floor at one worker
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs() == 3
    assert resolve_jobs(2) == 2  # explicit beats environment
    set_default_jobs(5)
    try:
        assert resolve_jobs() == 5  # CLI default beats environment
    finally:
        set_default_jobs(None)


def test_parallel_map_names_the_failing_item():
    with pytest.raises(WorkerTaskError) as exc:
        parallel_map(_square_or_fail, list(range(20)), jobs=4)
    msg = str(exc.value)
    assert "13" in msg  # the failing item is identified...
    assert "unlucky item" in msg  # ...with the worker's traceback
    assert "ValueError" in msg


def test_task_timeout_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
    assert task_timeout_s() is None
    monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
    assert task_timeout_s() == 2.5
    monkeypatch.setenv("REPRO_TASK_TIMEOUT", "bogus")
    assert task_timeout_s() is None
    monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0")
    assert task_timeout_s() is None


def test_task_timeout_kills_hung_worker(monkeypatch):
    monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0.2")
    with pytest.raises(WorkerTaskError) as exc:
        parallel_map(_sleep_forever, [0, 1, 2, 3], jobs=2)
    assert "REPRO_TASK_TIMEOUT" in str(exc.value)
    assert "TimeoutError" in str(exc.value)


def test_task_seed_is_deterministic_and_distinct():
    assert task_seed("post", 0, 3) == task_seed("post", 0, 3)
    seeds = {task_seed(svc, chip, batch)
             for svc in ("post", "memcached")
             for chip in ("cpu", "rpu")
             for batch in range(4)}
    assert len(seeds) == 16  # no collisions across the sweep


def test_batch_tasks_parallel_is_bit_identical():
    tasks = [
        BatchTask("memcached", 8, task_seed("memcached", b))
        for b in range(3)
    ] + [
        BatchTask("urlshort", 8, task_seed("urlshort", 0), policy="ipdom"),
    ]
    serial = run_batch_tasks(tasks, jobs=1)
    parallel = run_batch_tasks(tasks, jobs=2)
    assert [dataclasses.asdict(r) for r in serial] == \
        [dataclasses.asdict(r) for r in parallel]


def test_batch_task_carries_its_own_seed():
    a = run_batch_task(BatchTask("memcached", 8, 1))
    b = run_batch_task(BatchTask("memcached", 8, 2))
    assert dataclasses.asdict(a) != dataclasses.asdict(b)


@pytest.mark.parametrize("flags", [[], ["--jobs", "2"]])
def test_run_all_output_independent_of_jobs(flags, capsys):
    """The acceptance contract: ``--jobs N`` stdout is byte-identical."""
    from repro.experiments import run_all

    args = ["--only", "fig13", "--only", "table04", "--scale", "0.1"]
    assert run_all.main(args) == 0
    baseline = capsys.readouterr().out
    assert run_all.main(args + flags) == 0
    assert capsys.readouterr().out == baseline
    set_default_jobs(None)  # don't leak the CLI default to other tests
