"""Set-associative cache model tests."""

import pytest

from repro.memsys import SetAssociativeCache


def make(size=1024, assoc=2, line=32, banks=1):
    return SetAssociativeCache("t", size, assoc, line, n_banks=banks)


def test_geometry():
    c = make(size=64 * 1024, assoc=8, line=32)
    assert c.n_sets == 64 * 1024 // (8 * 32)


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        SetAssociativeCache("t", 1000, 3, 32)


def test_miss_then_hit():
    c = make()
    assert c.access(0x1000) is False
    assert c.access(0x1000) is True
    assert c.access(0x1010) is True  # same line
    assert c.stats.hits == 2 and c.stats.misses == 1


def test_lru_eviction_order():
    c = make(size=2 * 32, assoc=2, line=32)  # one set, two ways
    c.access(0)       # A
    c.access(32)      # B
    c.access(0)       # touch A -> B is LRU
    c.access(64)      # C evicts B
    assert c.access(0) is True
    assert c.access(64) is True
    assert c.access(32) is False  # B was evicted
    assert c.stats.evictions >= 1


def test_writeback_counted_only_for_dirty():
    c = make(size=2 * 32, assoc=2, line=32)
    c.access(0, write=True)
    c.access(32)
    c.access(64)  # evicts LRU (dirty line 0)
    assert c.stats.writebacks == 1
    c.access(96)  # evicts clean line 32
    assert c.stats.writebacks == 1


def test_write_hit_marks_dirty():
    c = make(size=2 * 32, assoc=2, line=32)
    c.access(0)              # clean fill
    c.access(0, write=True)  # dirty it
    c.access(32)
    c.access(64)             # evicts line 0
    assert c.stats.writebacks == 1


def test_probe_does_not_disturb_state():
    c = make()
    c.access(0x2000)
    before = c.stats.accesses
    assert c.probe(0x2000) is True
    assert c.probe(0x3000) is False
    assert c.stats.accesses == before


def test_bank_conflicts_count_max_per_bank():
    c = make(banks=8)
    # 8 addresses in distinct banks -> serialization 1
    addrs = [i * 32 for i in range(8)]
    assert c.bank_conflicts(addrs) == 1
    # all in the same bank -> serialization 8
    addrs = [i * 32 * 8 for i in range(8)]
    assert c.bank_conflicts(addrs) == 8
    assert c.bank_conflicts([]) == 0


def test_flush_and_reset_stats():
    c = make()
    c.access(0x100)
    c.flush()
    assert c.access(0x100) is False
    c.reset_stats()
    assert c.stats.accesses == 0


def test_miss_rate_and_mpki():
    c = make()
    for i in range(10):
        c.access(i * 4096)
    assert c.stats.miss_rate == 1.0
    assert c.stats.mpki(1.0) == 10.0
    assert c.stats.mpki(0.0) == 0.0


def test_capacity_monotonicity_on_streaming_reuse():
    """A bigger cache never misses more on a two-pass stream."""
    trace = [i * 32 for i in range(512)] * 2
    small, big = make(size=4096, assoc=8), make(size=32768, assoc=8)
    for a in trace:
        small.access(a)
        big.access(a)
    assert big.stats.misses <= small.stats.misses
