"""MemoryImage, ThreadState and single-instruction semantics tests."""

import pytest

from repro.engine import MemoryImage, ThreadState, execute, segment_of, stack_base
from repro.engine.memory import GLOBAL_BASE, HEAP_BASE, STACK_TOP
from repro.isa import SP, Instruction, OpClass, Segment, SyscallKind
from repro.isa.builder import ProgramBuilder


def test_background_values_deterministic():
    m1 = MemoryImage(salt=5)
    m2 = MemoryImage(salt=5)
    assert m1.read(0x4000_0000) == m2.read(0x4000_0000)
    assert MemoryImage(salt=6).read(0x4000_0000) != m1.read(0x4000_0000) or True


def test_write_read_roundtrip_aligned():
    m = MemoryImage()
    m.write(0x4000_0004, 42)  # canonicalized to the 8-byte word
    assert m.read(0x4000_0000) == 42
    assert len(m) == 1


def test_words_helpers():
    m = MemoryImage()
    m.write_words(HEAP_BASE, [1, 2, 3])
    assert m.read_words(HEAP_BASE, 3) == [1, 2, 3]


def test_stack_bases_disjoint_and_descending():
    b0, b1 = stack_base(0), stack_base(1)
    assert b0 == STACK_TOP
    assert b0 - b1 == 64 * 1024


def test_segment_of():
    assert segment_of(GLOBAL_BASE + 8) == "global"
    assert segment_of(HEAP_BASE + 8) == "heap"
    assert segment_of(STACK_TOP - 8) == "stack"


def test_thread_initial_state():
    t = ThreadState(3)
    assert t.sp == t.stack_top - 128
    assert not t.halted
    assert t.depth == 0
    snap = t.snapshot()
    assert snap["pc"] == 0 and snap["retired"] == 0


def _exec(op, cls, thread, mem, **kw):
    inst = Instruction(op=op, cls=cls, **kw)
    return execute(thread, inst, None, mem)


def test_alu_semantics():
    t, m = ThreadState(0), MemoryImage()
    t.regs[2], t.regs[3] = 7, 5
    _exec("add", OpClass.ALU, t, m, dst=1, srcs=(2, 3))
    assert t.regs[1] == 12
    _exec("sub", OpClass.ALU, t, m, dst=1, srcs=(2, 3))
    assert t.regs[1] == 2
    _exec("slt", OpClass.ALU, t, m, dst=1, srcs=(3, 2))
    assert t.regs[1] == 1


def test_r0_writes_dropped():
    t, m = ThreadState(0), MemoryImage()
    t.regs[2] = 9
    _exec("mov", OpClass.ALU, t, m, dst=0, srcs=(2,))
    assert t.regs[0] == 0


def test_div_rem_by_zero_defined():
    t, m = ThreadState(0), MemoryImage()
    t.regs[2], t.regs[3] = 7, 0
    _exec("div", OpClass.MUL, t, m, dst=1, srcs=(2, 3))
    assert t.regs[1] == 0
    _exec("rem", OpClass.MUL, t, m, dst=1, srcs=(2, 3))
    assert t.regs[1] == 0


def test_load_store_and_trace():
    t, m = ThreadState(0), MemoryImage()
    t.regs[2] = HEAP_BASE
    addrs = []
    st = Instruction(op="st", cls=OpClass.STORE, srcs=(2, 3), imm=16)
    t.regs[3] = 99
    execute(t, st, None, m, addrs)
    ld = Instruction(op="ld", cls=OpClass.LOAD, dst=4, srcs=(2,), imm=16)
    execute(t, ld, None, m, addrs)
    assert t.regs[4] == 99
    assert addrs == [(0, HEAP_BASE + 16, 8), (0, HEAP_BASE + 16, 8)]


def test_branch_outcomes():
    t, m = ThreadState(0), MemoryImage()
    t.regs[1], t.regs[2] = 1, 2
    inst = Instruction(op="blt", cls=OpClass.BRANCH, srcs=(1, 2))
    taken = execute(t, inst, 10, m)
    assert taken is True and t.pc == 10
    t.pc = 0
    inst = Instruction(op="bge", cls=OpClass.BRANCH, srcs=(1, 2))
    taken = execute(t, inst, 10, m)
    assert taken is False and t.pc == 1


def test_call_ret_push_pop_return_address():
    t, m = ThreadState(0), MemoryImage()
    addrs = []
    call = Instruction(op="call", cls=OpClass.CALL, imm=64,
                       segment=Segment.STACK)
    execute(t, call, 20, m, addrs)
    assert t.pc == 20 and t.depth == 1
    assert t.sp == t.stack_top - 128 - 64
    assert m.read(t.sp) == 1  # return pc
    ret = Instruction(op="ret", cls=OpClass.RET, segment=Segment.STACK)
    execute(t, ret, None, m, addrs)
    assert t.pc == 1 and t.depth == 0
    assert len(addrs) == 2  # push + pop traced


def test_atomic_amoadd_and_amoswap():
    t, m = ThreadState(0), MemoryImage()
    t.regs[2] = HEAP_BASE
    m.write(HEAP_BASE, 10)
    t.regs[3] = 5
    amo = Instruction(op="amoadd", cls=OpClass.ATOMIC, dst=1, srcs=(2, 3))
    execute(t, amo, None, m)
    assert t.regs[1] == 10 and m.read(HEAP_BASE) == 15
    swap = Instruction(op="amoswap", cls=OpClass.ATOMIC, dst=1, srcs=(2, 3))
    execute(t, swap, None, m)
    assert t.regs[1] == 15 and m.read(HEAP_BASE) == 5


def test_syscall_records_trace_and_halt():
    t, m = ThreadState(0), MemoryImage()
    sc = Instruction(op="syscall", cls=OpClass.SYSCALL,
                     syscall=SyscallKind.STORAGE)
    execute(t, sc, None, m)
    assert t.syscall_trace == [(0, "storage")]
    halt = Instruction(op="halt", cls=OpClass.HALT)
    execute(t, halt, None, m)
    assert t.halted


def test_retired_counts_every_instruction():
    t, m = ThreadState(0), MemoryImage()
    for _ in range(5):
        _exec("addi", OpClass.ALU, t, m, dst=1, srcs=(1,), imm=1)
    assert t.retired == 5 and t.regs[1] == 5
