"""CLI and example-script smoke tests."""

import subprocess
import sys

import pytest

from repro.experiments import run_all


def test_run_all_unknown_experiment_exits():
    with pytest.raises(SystemExit):
        run_all.main(["--only", "fig99"])


def test_run_all_single_cheap_experiment(capsys):
    assert run_all.main(["--only", "fig05", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 5" in out
    assert "threads" in out.lower()


def test_run_all_table_experiments(capsys):
    assert run_all.main(["--only", "table04", "--only", "table05"]) == 0
    out = capsys.readouterr().out
    assert "Table IV" in out and "L1-Xbar" in out


@pytest.mark.parametrize("script,args", [
    ("examples/quickstart.py", ["64"]),
])
def test_example_scripts_run(script, args):
    proc = subprocess.run(
        [sys.executable, script, *args],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "relative to the CPU" in proc.stdout


def test_run_all_json_export(tmp_path, capsys):
    out = tmp_path / "rows.json"
    assert run_all.main(["--only", "fig05", "--only", "fig13",
                         "--scale", "0.1", "--json", str(out)]) == 0
    capsys.readouterr()
    import json

    data = json.loads(out.read_text())
    assert data["scale"] == 0.1
    assert "fig05" in data["experiments"]
    rows = data["experiments"]["fig13"]
    assert rows[0]["reduction"] == 4.0


def test_fig13_experiment_values():
    from repro.experiments import fig13_stack_interleaving as fig13

    rows = {r.label: r for r in fig13.run()}
    assert rows["batch 32"]["rpu_lines"] == 8.0  # the paper's example
    assert rows["batch 32"]["cpu_accesses"] == 32.0
    table = fig13.mapping_table(batch=4, words=2)
    assert "0x2" in table  # physical window addresses present
