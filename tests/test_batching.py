"""Batching server tests: policies, splitter, tuner."""

import random

import pytest

from repro.batching import (
    BatchSizeTuner,
    batch_naive,
    batch_per_api,
    batch_per_api_size,
    form_batches,
    memcached_miss_predicate,
    rebatch_orphans,
    split_batch,
)
from repro.workloads.base import Request


def make_requests(n=64, apis=2, seed=0):
    rng = random.Random(seed)
    return [
        Request(rid=i, service="t", api=f"api{i % apis}",
                api_id=i % apis, size=rng.randint(1, 16),
                key=rng.getrandbits(16))
        for i in range(n)
    ]


def all_rids(batches):
    return sorted(r.rid for b in batches for r in b)


class TestPolicies:
    def test_naive_preserves_arrival_order(self):
        reqs = make_requests(70)
        batches = batch_naive(reqs, 32)
        assert [len(b) for b in batches] == [32, 32, 6]
        assert [r.rid for r in batches[0]] == list(range(32))

    def test_every_policy_conserves_requests(self):
        reqs = make_requests(100, apis=3)
        for policy in ("naive", "per_api", "per_api_size"):
            assert all_rids(form_batches(reqs, 32, policy)) == \
                list(range(100))

    def test_per_api_batches_are_api_pure(self):
        reqs = make_requests(100, apis=3)
        for batch in batch_per_api(reqs, 32):
            assert len({r.api_id for r in batch}) == 1

    def test_per_api_size_sorts_by_size(self):
        reqs = make_requests(100, apis=2)
        for batch in batch_per_api_size(reqs, 32):
            sizes = [r.size for r in batch]
            assert sizes == sorted(sizes)
            assert len({r.api_id for r in batch}) == 1

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError):
            form_batches(make_requests(8), 8, "bogus")

    def test_batch_size_one(self):
        batches = form_batches(make_requests(5), 1, "naive")
        assert [len(b) for b in batches] == [1] * 5


class TestIsolateOutliers:
    def test_outliers_get_their_own_batches(self):
        from repro.batching import batch_isolate_outliers
        reqs = make_requests(40)
        for r in reqs[:3]:
            r.size = 100  # maliciously long queries
        batches = batch_isolate_outliers(reqs, 16, size_limit=24)
        singles = [b for b in batches if len(b) == 1]
        assert len(singles) >= 3
        assert all(b[0].size > 24 for b in singles[-3:])
        assert all_rids(batches) == list(range(40))

    def test_no_outliers_reduces_to_per_api_size(self):
        from repro.batching import batch_isolate_outliers, batch_per_api_size
        reqs = make_requests(40)
        a = batch_isolate_outliers(reqs, 16)
        b = batch_per_api_size(reqs, 16)
        assert [[r.rid for r in x] for x in a] == \
            [[r.rid for r in x] for x in b]

    def test_normal_batches_never_contain_outliers(self):
        from repro.batching import batch_isolate_outliers
        reqs = make_requests(60)
        for r in reqs[::7]:
            r.size = 99
        for batch in batch_isolate_outliers(reqs, 16, size_limit=24):
            if len(batch) > 1:
                assert all(r.size <= 24 for r in batch)


class TestSplitter:
    def test_split_partitions(self):
        reqs = make_requests(32)
        for i, r in enumerate(reqs):
            r.payload["mc_hit"] = 0 if i % 4 == 0 else 1
        decision = split_batch(reqs, memcached_miss_predicate)
        assert decision.did_split
        assert len(decision.blocked) == 8
        assert len(decision.fast) == 24
        assert {r.rid for r in decision.fast} | \
            {r.rid for r in decision.blocked} == {r.rid for r in reqs}

    def test_no_split_when_uniform(self):
        reqs = make_requests(8)
        for r in reqs:
            r.payload["mc_hit"] = 1
        decision = split_batch(reqs, memcached_miss_predicate)
        assert not decision.did_split
        assert len(decision.fast) == 8

    def test_rebatch_orphans(self):
        orphans = make_requests(70)
        groups = rebatch_orphans(orphans, 32)
        assert [len(g) for g in groups] == [32, 32, 6]


class TestTuner:
    def test_picks_largest_batch_below_threshold(self):
        curve = {32: 50.0, 16: 25.0, 8: 10.0, 4: 5.0}
        tuner = BatchSizeTuner(lambda b: curve[b], mpki_threshold=20.0)
        result = tuner.tune()
        assert result.chosen == 8
        assert result.mpki_by_batch == curve

    def test_keeps_32_when_everything_fits(self):
        tuner = BatchSizeTuner(lambda b: 1.0, mpki_threshold=20.0)
        assert tuner.tune().chosen == 32

    def test_falls_back_to_smallest(self):
        tuner = BatchSizeTuner(lambda b: 100.0, mpki_threshold=20.0)
        assert tuner.tune().chosen == 4
