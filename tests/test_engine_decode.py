"""Decode-time compilation: handler tables, superblocks, pickling."""

import pickle

from repro.engine import MemoryImage, ThreadState
from repro.engine.decode import (
    RK_BRANCH,
    RK_CALL,
    RK_FALL,
    RK_HALT,
    RK_JUMP,
    RK_RET,
    compile_program,
)
from repro.engine.events import InstructionMixSink, MultiSink
from repro.engine.interpreter import execute
from repro.isa import ControlFlowGraph, OpClass, ProgramBuilder, Segment


def sample_program():
    """One of everything: ALU runs, memory ops, call/ret, atomic, branch."""
    b = ProgramBuilder("sample")
    b.li("r1", 7)
    b.addi("r2", "r1", 3)        # ALU run of >= 2 at the top
    b.muli("r3", "r2", 5)
    b.st("r3", "sp", -8, Segment.STACK)
    b.ld("r4", "sp", -8, Segment.STACK)
    b.amoadd("r5", "r20", "r1")
    b.call("fn", frame=32)
    b.ble("r4", "zero", "skip")
    b.addi("r6", "r6", 1)
    b.label("skip")
    b.halt()
    b.label("fn")
    b.add("r7", "r1", "r2")
    b.ret()
    return b.build()


def test_handler_table_covers_every_pc():
    program = sample_program()
    dec = program.decoded
    n = len(program)
    assert len(dec.handlers) == n
    assert len(dec.superblocks) == n
    assert len(dec.solo_blocks) == n
    assert len(dec.rekey) == n
    assert all(h is not None for h in dec.handlers)


def test_superblocks_are_branch_free_alu_runs():
    """Fused runs contain only ALU/MUL ops and never cross a leader
    (so the only way into the middle of a run is through its prefix)."""
    program = sample_program()
    dec = program.decoded
    leaders = {b.start for b in ControlFlowGraph(program).blocks}
    for pc, entry in enumerate(dec.superblocks):
        if entry is None:
            continue
        k, fn = entry
        assert k >= 2
        assert callable(fn)
        for p in range(pc, pc + k):
            assert program.instructions[p].cls in (OpClass.ALU, OpClass.MUL)
        for p in range(pc + 1, pc + k):
            assert p not in leaders  # no side entrances


def test_rekey_table_matches_instruction_classes():
    program = sample_program()
    dec = program.decoded
    expect = {
        OpClass.BRANCH: RK_BRANCH,
        OpClass.JUMP: RK_JUMP,
        OpClass.CALL: RK_CALL,
        OpClass.RET: RK_RET,
        OpClass.HALT: RK_HALT,
    }
    for pc, inst in enumerate(program.instructions):
        assert dec.rekey[pc][0] == expect.get(inst.cls, RK_FALL)


def _fresh_state(tid=0):
    mem = MemoryImage(salt=5)
    t = ThreadState(tid)
    t.regs[1] = 9
    t.regs[2] = 4
    t.regs[4] = -3
    t.regs[20] = 0x4000_2000
    return t, mem


def test_each_handler_matches_execute():
    """Stepping any single pc through its decoded handler produces the
    same architectural state as the reference interpreter."""
    program = sample_program()
    dec = program.decoded
    for pc in range(len(program)):
        t1, m1 = _fresh_state()
        t2, m2 = _fresh_state()
        t1.pc = t2.pc = pc
        t1.call_stack.append((3, 16))  # so ret has something to pop
        t2.call_stack.append((3, 16))
        out_fast = dec.handlers[pc](t1, m1)
        out_ref = execute(t2, program.instructions[pc],
                          program.targets[pc], m2, None)
        assert t1.snapshot() == t2.snapshot(), f"pc {pc}"
        assert bool(out_fast) == bool(out_ref), f"pc {pc}"
        assert ({a: m1.read(a) for a in m1.written_addresses()}
                == {a: m2.read(a) for a in m2.written_addresses()})


def test_solo_blocks_match_single_stepping():
    """A fused solo chain leaves the same state as stepping its pcs."""
    program = sample_program()
    dec = program.decoded
    for pc, entry in enumerate(dec.solo_blocks):
        if entry is None:
            continue
        k, fn = entry
        t1, m1 = _fresh_state()
        t2, m2 = _fresh_state()
        t1.pc = t2.pc = pc
        t1.call_stack.append((3, 16))  # in case the chain ends in ret
        t2.call_stack.append((3, 16))
        fn(t1, m1)
        for _ in range(k):
            execute(t2, program.instructions[t2.pc],
                    program.targets[t2.pc], m2, None)
        assert t1.snapshot() == t2.snapshot(), f"chain at pc {pc}"
        assert ({a: m1.read(a) for a in m1.written_addresses()}
                == {a: m2.read(a) for a in m2.written_addresses()})


def test_decode_cache_is_per_program_and_lazy():
    program = sample_program()
    assert program._decoded is None  # nothing until first use
    dec = program.decoded
    assert program.decoded is dec  # cached, not recompiled
    assert compile_program(program) is not dec  # explicit call = fresh


def test_program_pickles_without_closures():
    """The decode cache is dropped on pickle (closures cannot cross
    process boundaries) and rebuilt lazily by the receiver."""
    program = sample_program()
    program.decoded  # populate the cache
    clone = pickle.loads(pickle.dumps(program))
    assert clone._decoded is None
    t1, m1 = _fresh_state()
    t2, m2 = _fresh_state()
    from repro.engine import SoloExecutor

    assert SoloExecutor(program).run(t1, m1) == \
        SoloExecutor(clone).run(t2, m2)
    assert t1.snapshot() == t2.snapshot()


def test_pickled_program_rebuilds_decode_tables():
    """Lazy rebuild after unpickling regenerates tables of the same
    shape: one handler per pc, superblocks rooted at the same pcs."""
    program = sample_program()
    orig = program.decoded
    clone = pickle.loads(pickle.dumps(program))
    rebuilt = clone.decoded
    assert rebuilt is not orig
    assert len(rebuilt.handlers) == len(orig.handlers)
    assert ([s is not None for s in rebuilt.superblocks]
            == [s is not None for s in orig.superblocks])


def test_multisink_collapses_single_fanout():
    a, b = InstructionMixSink(), InstructionMixSink()
    assert MultiSink(a) is a
    assert MultiSink(a, None) is a
    assert MultiSink(None, b) is b
    both = MultiSink(a, b)
    assert isinstance(both, MultiSink)
    assert both.sinks == [a, b]
    assert isinstance(MultiSink(), MultiSink)  # empty fan-out still works
