"""Property-based tests for the queueing simulator."""

from hypothesis import given, settings, strategies as st

from repro.system import EndToEndConfig, Job, Simulator, Station, run_end_to_end


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 60), servers=st.integers(1, 4),
       latency=st.floats(1.0, 50.0))
def test_station_serves_every_job_exactly_once(n, servers, latency):
    sim = Simulator()
    st_ = Station(sim, "s", latency_us=latency, servers=servers)
    done = []
    for i in range(n):
        sim.schedule(float(i), lambda t, i=i: st_.arrive(
            t, Job(i, float(i)), lambda tt, js: done.extend(js)))
    sim.run()
    assert sorted(j.jid for j in done) == list(range(n))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 60), batch=st.sampled_from([2, 4, 8]),
       timeout=st.floats(5.0, 100.0))
def test_batched_station_conserves_jobs(n, batch, timeout):
    sim = Simulator()
    st_ = Station(sim, "s", latency_us=10.0, servers=2, batch_size=batch,
                  batch_timeout_us=timeout)
    done = []

    # a batched station dispatches each group through ONE callback
    # (enforced by the sanitizer), so every arrival shares it
    def collect(tt, js):
        done.extend(js)

    for i in range(n):
        sim.schedule(float(i), lambda t, i=i: st_.arrive(
            t, Job(i, float(i)), collect))
    sim.run()
    assert sorted(j.jid for j in done) == list(range(n))
    assert st_.dispatched_jobs == n


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 40))
def test_single_server_completions_are_serialized(n):
    sim = Simulator()
    st_ = Station(sim, "s", latency_us=10.0, servers=1)
    times = []
    for i in range(n):
        sim.schedule(0.0, lambda t, i=i: st_.arrive(
            t, Job(i, 0.0), lambda tt, js: times.append(tt)))
    sim.run()
    assert times == sorted(times)
    assert times[-1] >= 10.0 * n


@settings(max_examples=10, deadline=None)
@given(qps=st.sampled_from([3000, 8000, 15000]),
       hit=st.floats(0.5, 0.99), seed=st.integers(0, 99))
def test_end_to_end_latency_floor_and_conservation(qps, hit, seed):
    cfg = EndToEndConfig(memcached_hit_rate=hit)
    res = run_end_to_end(cfg, qps, n_requests=400, seed=seed)
    assert res.completed == 400
    # nobody finishes faster than the sum of mandatory stages
    floor = (cfg.web_us + cfg.user_us + cfg.mcrouter_us
             + cfg.memcached_us + 2 * cfg.network_us)
    assert res.p50_us >= floor
