"""TLB, DRAM bandwidth and interconnect model tests."""

import pytest

from repro.memsys import (
    BankedTlb,
    CrossbarInterconnect,
    DramModel,
    MeshInterconnect,
    PAGE_SIZE,
    Tlb,
)


class TestTlb:
    def test_miss_then_hit(self):
        t = Tlb(entries=4)
        assert t.access(0) is False
        assert t.access(8) is True  # same page
        assert t.access(PAGE_SIZE) is False

    def test_lru_capacity(self):
        t = Tlb(entries=2)
        t.access(0)
        t.access(PAGE_SIZE)
        t.access(0)  # refresh page 0
        t.access(2 * PAGE_SIZE)  # evicts page 1
        assert t.access(0) is True
        assert t.access(PAGE_SIZE) is False

    def test_invalidate(self):
        t = Tlb(entries=4)
        t.access(0)
        t.invalidate(0)
        assert t.access(0) is False

    def test_stats(self):
        t = Tlb(entries=4)
        t.access(0)
        t.access(0)
        assert t.stats.accesses == 2
        assert t.stats.miss_rate == 0.5


class TestBankedTlb:
    def test_entries_divide_across_banks(self):
        with pytest.raises(ValueError):
            BankedTlb(10, 3)

    def test_duplication_across_banks(self):
        """Lines of one page land in different banks, duplicating the
        translation (the RPU DTLB capacity cost the paper notes)."""
        bt = BankedTlb(64, 8, line_size=32)
        for i in range(8):
            bt.access(i * 32)  # 8 consecutive lines, one page
        assert bt.duplication_factor() > 1.0

    def test_invalidate_checks_every_bank(self):
        bt = BankedTlb(64, 8)
        for i in range(8):
            bt.access(i * 32)
        bt.invalidate(0)
        assert bt.duplication_factor() == 1.0  # empty -> 1.0 by definition

    def test_aggregate_stats(self):
        bt = BankedTlb(64, 8)
        bt.access(0)
        bt.access(0)
        assert bt.stats.accesses == 2
        assert bt.stats.hits == 1


class TestDram:
    def test_base_latency(self):
        d = DramModel(bandwidth_gbps=80, base_latency=100, freq_ghz=2.5,
                      line_size=32)
        done = d.access(0.0)
        assert done == pytest.approx(100 + 32 / (80 / 2.5))

    def test_queueing_under_burst(self):
        d = DramModel(bandwidth_gbps=2.0, base_latency=100, freq_ghz=2.5)
        first = d.access(0.0)
        second = d.access(0.0)  # queues behind the first transfer
        assert second > first
        assert d.stats.avg_queue_delay > 0

    def test_idle_gap_absorbs_queue(self):
        d = DramModel(bandwidth_gbps=2.0, base_latency=100, freq_ghz=2.5)
        d.access(0.0)
        later = d.access(10_000.0)
        assert later == pytest.approx(10_000.0 + 100 + 32 / 0.8)

    def test_reset(self):
        d = DramModel(80, 100, 2.5)
        d.access(0.0)
        d.reset()
        assert d.stats.accesses == 0


class TestNoc:
    def test_crossbar_faster_than_mesh(self):
        mesh = MeshInterconnect(k=10, bytes_per_cycle=3.2)
        xbar = CrossbarInterconnect(ports=20, bytes_per_cycle=64)
        assert xbar.traverse(0.0) < mesh.traverse(0.0)

    def test_serialization_accumulates(self):
        noc = MeshInterconnect(k=10, bytes_per_cycle=1.0)
        t1 = noc.traverse(0.0)
        t2 = noc.traverse(0.0)
        assert t2 - t1 == pytest.approx(32.0)  # one flit of 32B at 1B/cy
        assert noc.stats.traversals == 2

    def test_mesh_latency_scales_with_k(self):
        small = MeshInterconnect(k=4)
        large = MeshInterconnect(k=12)
        assert large.base_latency > small.base_latency
