"""Differential gate: vectorized SoA engine vs its scalar witnesses.

The vectorized structure-of-arrays engine (``REPRO_VECTOR=1``, the
default) must be *bit-identical* to the per-thread fast path it
replaced (``REPRO_VECTOR=0``) under every policy - with the numpy
backend, with the stdlib ``array`` backend (``REPRO_VECTOR_NUMPY=0``),
and on an interpreter where numpy is not importable at all.  The same
holds under the sanitizer and under step-budget truncation, and the
generated-source cache must be provably keyed on program content.
"""

import dataclasses
import random

import pytest

from repro import store
from repro.core.run import prepare_threads
from repro.engine import lanes, vcodegen
from repro.engine.lockstep import make_executor
from repro.engine.memory import MemoryImage
from repro.memsys.alloc import SimrAwareAllocator
from repro.sanitize import SanitizerError
from repro.workloads.registry import get_service

POLICIES = ["solo", "ipdom", "minsp_pc", "predicated"]

#: the branchiest service (calls, divergent ifs, loops) - the one that
#: exercises superblock chains, prefix cuts and matched call/ret elision
SERVICE = "post"
N_REQUESTS = 12
REQUEST_SEED = 321


def _run(policy: str, salt: int = 0, n_requests: int = N_REQUESTS,
         max_steps: int = 4_000_000):
    """One full batch execution; returns every observable final state."""
    service = get_service(SERVICE)
    requests = service.generate_requests(
        n_requests, random.Random(REQUEST_SEED))
    mem = MemoryImage(salt=salt)
    threads = prepare_threads(service, requests, mem, SimrAwareAllocator())
    ex = make_executor(service.program, policy, max_steps=max_steps)
    if policy == "solo":
        result = [ex.run(t, mem) for t in threads]
    else:
        result = dataclasses.asdict(ex.run(threads, mem))
    return {
        "result": result,
        "snapshots": [t.snapshot() for t in threads],
        "syscalls": [list(t.syscall_trace) for t in threads],
        "call_stacks": [list(t.call_stack) for t in threads],
        "memory": {a: mem.read(a) for a in sorted(mem.written_addresses())},
    }


def _assert_same(a, b):
    assert a["snapshots"] == b["snapshots"]
    assert a["syscalls"] == b["syscalls"]
    assert a["call_stacks"] == b["call_stacks"]
    assert a["memory"] == b["memory"]
    assert a["result"] == b["result"]


@pytest.mark.parametrize("policy", POLICIES)
def test_vector_matches_scalar_fallback(policy, monkeypatch):
    monkeypatch.delenv("REPRO_VECTOR", raising=False)
    vec = _run(policy, salt=1)
    monkeypatch.setenv("REPRO_VECTOR", "0")
    _assert_same(vec, _run(policy, salt=1))


@pytest.mark.parametrize("policy", POLICIES)
def test_array_backend_matches_numpy(policy, monkeypatch):
    monkeypatch.delenv("REPRO_VECTOR_NUMPY", raising=False)
    default = _run(policy, salt=2)
    monkeypatch.setenv("REPRO_VECTOR_NUMPY", "0")
    assert lanes.backend_name() == "array"
    _assert_same(default, _run(policy, salt=2))


@pytest.mark.parametrize("policy", ["ipdom", "minsp_pc"])
def test_numpy_absent_interpreter(policy, monkeypatch):
    """With numpy made unimportable the engine silently runs on the
    stdlib ``array`` backend and stays bit-identical."""
    baseline = _run(policy, salt=3)
    monkeypatch.setattr(lanes, "_NUMPY", False)
    assert lanes.backend_name() == "array"
    _assert_same(baseline, _run(policy, salt=3))


@pytest.mark.parametrize("policy", ["ipdom", "minsp_pc", "predicated"])
def test_sanitized_vector_run(policy, monkeypatch):
    """REPRO_SANITIZE=1 turns on the lane/mask/cache invariants; a
    clean engine must pass them and still produce identical state."""
    plain = _run(policy, salt=4)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    _assert_same(plain, _run(policy, salt=4))


@pytest.mark.parametrize("policy", ["ipdom", "minsp_pc"])
@pytest.mark.parametrize("max_steps", [50, 500, 5000])
def test_truncation_matches_scalar_fallback(policy, max_steps,
                                            monkeypatch):
    """An exhausted step budget must stop the vector engine at exactly
    the state the scalar fast path stops at: superblock chains may only
    be entered when they fit in the remaining budget."""
    monkeypatch.delenv("REPRO_VECTOR", raising=False)
    vec = _run(policy, salt=5, max_steps=max_steps)
    monkeypatch.setenv("REPRO_VECTOR", "0")
    _assert_same(vec, _run(policy, salt=5, max_steps=max_steps))


def test_vector_program_has_superblock_grains():
    """The compiled tables for a real service actually contain the
    coarse grains the engine schedules (chains with prefix cuts, blocks,
    ALU runs) - otherwise the other tests only cover single-stepping."""
    vp = get_service(SERVICE).program.vdecoded
    chain_lists = [c for c in vp.chains if c is not None]
    assert chain_lists, "no superblock chains compiled"
    assert any(len(c) > 1 for c in chain_lists), \
        "no entry-depth prefix cuts compiled"
    # every candidate list is longest-first so the engine can take the
    # first legal one
    for cl in chain_lists:
        lens = [c[0] for c in cl]
        assert lens == sorted(lens, reverse=True)
    assert any(b is not None for b in vp.blocks)
    assert any(r is not None for r in vp.runs)


def test_codegen_cache_roundtrip_and_tamper(monkeypatch):
    """The generated source is cached under (engine fingerprint,
    program digest); a warm hit returns identical source, and the
    sanitizer catches a poisoned cache entry."""
    program = get_service(SERVICE).program
    fresh = vcodegen.generate_source(program)
    fp = store.source_fingerprint(vcodegen._CODEGEN_MODULES)
    import sys as _sys
    key = (vcodegen._program_digest(program),
           _sys.implementation.cache_tag)
    store.record("vcode", fp, key, fresh)
    assert store.lookup("vcode", fp, key) == fresh
    # warm compile must agree with the recorded source
    assert vcodegen._cached_source(program, None) == fresh
    # poison the entry (the store is content-addressed, so publishing
    # is a no-op while the good entry exists - drop it first): a plain
    # warm hit trusts the poisoned source, the sanitizer does not
    import os as _os
    path = store.get_store()._path("vcode", store.address("vcode", fp, key))
    _os.unlink(path)
    store.record("vcode", fp, key, fresh + "\n# tampered\n")
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert vcodegen._cached_source(program, None) != fresh
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    with pytest.raises(SanitizerError):
        vcodegen._cached_source(program, None)
    # restore a good entry for any later compile in this store
    _os.unlink(path)
    store.record("vcode", fp, key, fresh)


def test_program_digest_is_content_addressed():
    """Two different programs must not share a cache key."""
    a = get_service(SERVICE).program
    b = get_service("hdsearch-leaf").program
    assert vcodegen._program_digest(a) != vcodegen._program_digest(b)
    assert vcodegen._program_digest(a) == vcodegen._program_digest(a)
