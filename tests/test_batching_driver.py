"""RPU driver tests: batch context switching and grouped I/O wakeups."""

import pytest

from repro.batching import (
    BatchTask,
    ComputePhase,
    IoPhase,
    RpuDriver,
    make_io_batch,
)


def test_single_compute_batch():
    driver = RpuDriver(context_switch_us=2.0)
    stats = driver.run([BatchTask(0, [ComputePhase(100.0)])])
    assert stats.makespan_us == pytest.approx(102.0)
    assert stats.context_switches == 1
    assert stats.busy_us == pytest.approx(100.0)


def test_grouped_wakeup_single_switch_per_io_phase():
    driver = RpuDriver(context_switch_us=2.0, wake_policy="grouped")
    io = [10.0] * 32
    stats = driver.run([make_io_batch(0, 50.0, io, post_compute_us=20.0)])
    # switch in, compute, block, wake once, switch in, finish
    assert stats.context_switches == 2
    assert stats.interrupts == 32


def test_eager_wakeup_pays_per_interrupt():
    grouped = RpuDriver(wake_policy="grouped")
    eager = RpuDriver(wake_policy="eager")
    io = [float(5 + i) for i in range(32)]
    g = grouped.run([make_io_batch(0, 50.0, io, post_compute_us=20.0)])
    e = eager.run([make_io_batch(0, 50.0, io, post_compute_us=20.0)])
    assert e.context_switches > g.context_switches + 20
    # 31 extra wakes, each a context switch (2.0) + handling slot (0.5);
    # grouped pays one handling slot for the whole phase
    assert e.makespan_us == pytest.approx(g.makespan_us + 31 * 2.5 - 0.5)


def test_eager_wakeup_charges_switch_per_extra_wake():
    """Regression: each extra eager wake costs a context switch *and* an
    interrupt handling slot (the code used to charge only the handling
    time while the docstring promised both)."""
    driver = RpuDriver(context_switch_us=2.0, interrupt_handling_us=0.5,
                       wake_policy="eager")
    stats = driver.run([make_io_batch(0, 10.0, [1.0, 2.0, 3.0],
                                      post_compute_us=4.0)])
    # switch in (2) + compute (10) + last completion (3)
    # + 2 extra wakes * (switch 2 + handling 0.5)
    # + switch back in (2) + post compute (4)
    assert stats.makespan_us == pytest.approx(2 + 10 + 3 + 2 * 2.5 + 2 + 4)
    assert stats.context_switches == 4  # in, 2 extra wakes, back in
    assert stats.interrupts == 3


def test_io_overlaps_with_other_batches():
    """While one batch waits on storage, the core runs another."""
    driver = RpuDriver(context_switch_us=1.0)
    a = make_io_batch(0, 10.0, [1000.0] * 8, post_compute_us=10.0)
    b = BatchTask(1, [ComputePhase(500.0)])
    stats = driver.run([a, b])
    # makespan ~ max(io wait path, serial compute), far below the sum
    assert stats.makespan_us < 10.0 + 1000.0 + 10.0 + 500.0
    assert stats.utilization > 0.4


def test_batches_finish_and_record_times():
    driver = RpuDriver()
    tasks = [BatchTask(i, [ComputePhase(10.0)]) for i in range(4)]
    driver.run(tasks)
    finishes = [t.finished_at for t in tasks]
    assert all(f > 0 for f in finishes)
    assert finishes == sorted(finishes)


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        RpuDriver(wake_policy="sometimes")


def test_grouped_wakeup_waits_for_slowest_thread():
    driver = RpuDriver(context_switch_us=0.0, interrupt_handling_us=0.0)
    stats = driver.run([make_io_batch(0, 0.0, [1.0, 2.0, 300.0],
                                      post_compute_us=5.0)])
    assert stats.makespan_us >= 305.0
