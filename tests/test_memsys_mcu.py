"""Memory coalescing unit and stack interleaving tests."""

import pytest

from repro.engine.memory import HEAP_BASE, STACK_TOP, stack_base
from repro.isa import Segment
from repro.memsys import (
    MemoryCoalescingUnit,
    StackInterleaver,
    scalar_accesses,
)


def heap_accesses(addrs, size=8):
    return [(i, a, size) for i, a in enumerate(addrs)]


def test_same_word_broadcast_is_single_access():
    mcu = MemoryCoalescingUnit()
    res = mcu.coalesce(Segment.HEAP,
                       heap_accesses([HEAP_BASE + 64] * 32))
    assert res.pattern == "same_word"
    assert res.n_accesses == 1


def test_consecutive_words_coalesce_per_line():
    mcu = MemoryCoalescingUnit(line_size=32)
    addrs = [HEAP_BASE + 8 * i for i in range(32)]  # 256B consecutive
    res = mcu.coalesce(Segment.HEAP, heap_accesses(addrs))
    assert res.pattern == "consecutive"
    assert res.n_accesses == 8  # 256B / 32B lines


def test_divergent_gets_one_access_per_lane():
    mcu = MemoryCoalescingUnit()
    addrs = [HEAP_BASE + 4096 * i for i in range(16)]
    res = mcu.coalesce(Segment.HEAP, heap_accesses(addrs))
    assert res.pattern == "divergent"
    assert res.n_accesses == 16


def test_empty_access_list():
    mcu = MemoryCoalescingUnit()
    assert mcu.coalesce(Segment.HEAP, []).n_accesses == 0


def test_scalar_accesses_reference():
    res = scalar_accesses(heap_accesses([HEAP_BASE, HEAP_BASE + 8]))
    assert res.pattern == "scalar"
    assert res.n_accesses == 2


def test_stack_interleaving_paper_example():
    """32 threads pushing an 8-byte value -> 8 line accesses, the
    paper's Section III-B2 worked example (vs 32 on the CPU)."""
    interleaver = StackInterleaver(32)
    mcu = MemoryCoalescingUnit(interleaver=interleaver)
    accesses = [(t, stack_base(t) - 128, 8) for t in range(32)]
    res = mcu.coalesce(Segment.STACK, accesses)
    assert res.pattern == "stack"
    assert res.n_accesses == 8
    assert scalar_accesses(accesses).n_accesses == 32


def test_stack_tagged_heap_pointer_not_remapped():
    """A stack-tagged op whose address is actually in the heap must not
    go through the interleaver (dynamic address detection)."""
    interleaver = StackInterleaver(32)
    mcu = MemoryCoalescingUnit(interleaver=interleaver)
    res = mcu.coalesce(Segment.STACK,
                       heap_accesses([HEAP_BASE + 4096 * i
                                      for i in range(4)]))
    assert res.pattern == "divergent"


def test_interleaver_owner_tid():
    si = StackInterleaver(32)
    for tid in (0, 1, 5, 31):
        top = stack_base(tid)
        assert si.owner_tid(top - 1) == tid
        assert si.owner_tid(top - 64 * 1024 + 1) == tid


def test_interleaver_same_offset_addresses_contiguous():
    """The same stack offset across threads maps to one dense region."""
    si = StackInterleaver(8)
    vaddrs = [stack_base(t) - 200 for t in range(8)]
    phys = sorted(si.physical(v) for v in vaddrs)
    assert phys[-1] - phys[0] == (8 - 1) * 4  # 4B interleave


def test_interleaver_distinct_vaddrs_distinct_paddrs():
    si = StackInterleaver(8)
    seen = set()
    for t in range(8):
        for off in range(128, 256, 4):
            pa = si.physical(stack_base(t) - off)
            assert pa not in seen
            seen.add(pa)


def test_partial_batch_stack_coalescing_still_beats_scalar():
    interleaver = StackInterleaver(32)
    mcu = MemoryCoalescingUnit(interleaver=interleaver)
    accesses = [(t, stack_base(t) - 128, 8) for t in range(12)]
    res = mcu.coalesce(Segment.STACK, accesses)
    assert res.n_accesses <= 12
