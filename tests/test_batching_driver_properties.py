"""Property-based tests for the RPU driver scheduler."""

from hypothesis import given, settings, strategies as st

from repro.batching import BatchTask, ComputePhase, IoPhase, RpuDriver


def _tasks(compute_lists, io_lists):
    tasks = []
    for i, (c, io) in enumerate(zip(compute_lists, io_lists)):
        phases = [ComputePhase(c)]
        if io:
            phases.append(IoPhase(tuple(io)))
            phases.append(ComputePhase(1.0))
        tasks.append(BatchTask(i, phases))
    return tasks


@settings(max_examples=40, deadline=None)
@given(computes=st.lists(st.floats(1.0, 100.0), min_size=1, max_size=6),
       ios=st.lists(st.lists(st.floats(1.0, 200.0), min_size=0,
                              max_size=8), min_size=1, max_size=6))
def test_grouped_never_more_switches_than_eager(computes, ios):
    n = min(len(computes), len(ios))
    computes, ios = computes[:n], ios[:n]
    grouped = RpuDriver(wake_policy="grouped").run(_tasks(computes, ios))
    eager = RpuDriver(wake_policy="eager").run(_tasks(computes, ios))
    assert grouped.context_switches <= eager.context_switches
    assert grouped.interrupts == eager.interrupts


@settings(max_examples=40, deadline=None)
@given(computes=st.lists(st.floats(1.0, 100.0), min_size=1, max_size=8))
def test_compute_only_makespan_is_sum_plus_switches(computes):
    driver = RpuDriver(context_switch_us=2.0)
    stats = driver.run(_tasks(computes, [[] for _ in computes]))
    expected = sum(computes) + 2.0 * len(computes)
    assert stats.makespan_us <= expected + 1e-6
    assert stats.busy_us <= stats.makespan_us


@settings(max_examples=30, deadline=None)
@given(io=st.lists(st.floats(1.0, 500.0), min_size=1, max_size=16))
def test_every_task_finishes(io):
    tasks = _tasks([10.0], [io])
    RpuDriver().run(tasks)
    assert all(t.finished_at > 0 for t in tasks)
