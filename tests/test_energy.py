"""Energy model tests: runtime accounting, Table V, Equation 1."""

import random

import pytest

from repro.energy import (
    CPU_ENERGY,
    RPU_ENERGY,
    EnergyComposition,
    anticipated_gain_range,
    chip_totals,
    constants_for,
    core_totals,
    energy_efficiency_gain,
    energy_of,
    format_table,
    frontend_ooo_share,
    requests_per_joule,
    simt_overhead_share,
)
from repro.timing import CPU_CONFIG, RPU_CONFIG, run_chip
from repro.workloads import get_service


@pytest.fixture(scope="module")
def cpu_result():
    service = get_service("post")
    requests = service.generate_requests(96, random.Random(5))
    return run_chip(service, requests, CPU_CONFIG)


@pytest.fixture(scope="module")
def rpu_result():
    service = get_service("post")
    requests = service.generate_requests(96, random.Random(5))
    return run_chip(service, requests, RPU_CONFIG)


class TestRuntimeEnergy:
    def test_breakdown_parts_positive(self, cpu_result):
        bd = energy_of(cpu_result)
        assert bd.frontend_ooo > 0
        assert bd.execution > 0
        assert bd.memory > 0
        assert bd.static > 0
        assert bd.simt_overhead == 0  # MIMD design

    def test_total_is_sum(self, cpu_result):
        bd = energy_of(cpu_result)
        assert bd.total == pytest.approx(
            bd.frontend_ooo + bd.execution + bd.memory
            + bd.simt_overhead + bd.static)

    def test_shares_sum_to_one(self, cpu_result):
        bd = energy_of(cpu_result)
        total = sum(bd.share(p) for p in
                    ("frontend_ooo", "execution", "memory",
                     "simt_overhead"))
        assert total == pytest.approx(1.0)

    def test_cpu_frontend_dominates(self, cpu_result):
        bd = energy_of(cpu_result)
        assert bd.share("frontend_ooo") > 0.5  # paper: ~73% average

    def test_rpu_has_simt_overhead(self, rpu_result):
        bd = energy_of(rpu_result)
        assert bd.simt_overhead > 0

    def test_rpu_frontend_amortized(self, cpu_result, rpu_result):
        cpu_fe = energy_of(cpu_result).frontend_ooo / cpu_result.n_requests
        rpu_fe = energy_of(rpu_result).frontend_ooo / rpu_result.n_requests
        assert rpu_fe < cpu_fe / 5

    def test_requests_per_joule_positive(self, cpu_result):
        assert requests_per_joule(cpu_result) > 0

    def test_constants_lookup(self):
        assert constants_for("cpu") is CPU_ENERGY
        assert constants_for("rpu-no-mcu") is RPU_ENERGY
        with pytest.raises(KeyError):
            constants_for("tpu")

    def test_rpu_cache_energy_ratios(self):
        assert RPU_ENERGY.l1_access / CPU_ENERGY.l1_access == \
            pytest.approx(1.72, abs=0.1)
        assert RPU_ENERGY.l2_access / CPU_ENERGY.l2_access == \
            pytest.approx(1.82, abs=0.1)


class TestAreaPower:
    def test_core_ratios_match_paper(self):
        totals = core_totals()
        assert totals["core_area_ratio"] == pytest.approx(6.3, abs=0.2)
        assert totals["core_power_ratio"] == pytest.approx(4.5, abs=0.2)

    def test_frontend_share(self):
        area, power = frontend_ooo_share()
        assert area == pytest.approx(0.40, abs=0.05)
        assert power == pytest.approx(0.50, abs=0.08)

    def test_simt_overhead_share(self):
        assert simt_overhead_share() == pytest.approx(0.118, abs=0.02)

    def test_thread_density(self):
        assert chip_totals()["thread_density_ratio"] == \
            pytest.approx(5.2, abs=0.3)

    def test_chip_totals_match_table(self):
        ch = chip_totals()
        assert ch["cpu_chip_area_mm2"] == pytest.approx(141, abs=2)
        assert ch["rpu_chip_area_mm2"] == pytest.approx(173.9, abs=2)
        assert ch["cpu_chip_power_w"] == pytest.approx(338.1, abs=3)
        assert ch["rpu_chip_power_w"] == pytest.approx(304.2, abs=3)

    def test_format_table_renders(self):
        text = format_table()
        assert "L1-Xbar" in text and "Total Chip" in text


class TestEquationOne:
    def test_gain_increases_with_batch(self):
        assert energy_efficiency_gain(n=32) > energy_efficiency_gain(n=8)

    def test_gain_increases_with_efficiency(self):
        assert energy_efficiency_gain(eff=0.95) > \
            energy_efficiency_gain(eff=0.5)

    def test_gain_increases_with_coalescing(self):
        assert energy_efficiency_gain(r=0.9) > energy_efficiency_gain(r=0.1)

    def test_degenerate_batch_of_one(self):
        assert energy_efficiency_gain(n=1, eff=1.0, r=0.0,
                                      simt_overhead=0.0) == \
            pytest.approx(1.0)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            energy_efficiency_gain(n=0)
        with pytest.raises(ValueError):
            energy_efficiency_gain(eff=0.0)
        with pytest.raises(ValueError):
            energy_efficiency_gain(r=1.5)
        with pytest.raises(ValueError):
            EnergyComposition(frontend_ooo=0.9, execution=0.9,
                              memory=0.9, static=0.9)

    def test_anticipated_range_matches_paper(self):
        low, high = anticipated_gain_range()
        assert 1.5 < low < 3.0
        assert 8.0 < high < 11.0
